"""Fig. 14: ablation of wave grouping and the tuning algorithm.

Compares the tuned FlashOverlap partition against (a) equally-sized groupings
with group sizes 1..32 and (b) a deliberately misconfigured wave size, on the
two setups of the paper's ablation (GEMM+AR on 2x RTX 4090 and GEMM+RS on
4x A800).  The conclusions to reproduce: no fixed or equal group size wins
everywhere, and the tuned partition matches or beats all of them.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.comm.primitives import CollectiveKind
from repro.comm.topology import a800_nvlink, rtx4090_pcie
from repro.core.baselines import NonOverlapBaseline
from repro.core.config import OverlapProblem
from repro.core.executor import OverlapExecutor
from repro.core.tuner import PredictiveTuner
from repro.core.wave_grouping import WavePartition
from repro.gpu.device import A800, RTX_4090
from repro.gpu.gemm import GemmShape

from conftest import run_once

EQUAL_GROUP_SIZES = (1, 2, 4, 8, 16, 32)

CASES = {
    "rtx4090-ar-2gpu": [
        OverlapProblem(GemmShape(4096, 8192, 8192), RTX_4090, rtx4090_pcie(2), CollectiveKind.ALL_REDUCE),
        OverlapProblem(GemmShape(8192, 8192, 1024), RTX_4090, rtx4090_pcie(2), CollectiveKind.ALL_REDUCE),
        OverlapProblem(GemmShape(16384, 8192, 1024), RTX_4090, rtx4090_pcie(2), CollectiveKind.ALL_REDUCE),
    ],
    "a800-rs-4gpu": [
        OverlapProblem(GemmShape(32768, 8192, 2048), A800, a800_nvlink(4), CollectiveKind.REDUCE_SCATTER),
        OverlapProblem(GemmShape(4096, 8192, 8192), A800, a800_nvlink(4), CollectiveKind.REDUCE_SCATTER),
        OverlapProblem(GemmShape(2048, 8192, 16384), A800, a800_nvlink(4), CollectiveKind.REDUCE_SCATTER),
    ],
}


def evaluate_case(problem, settings):
    executor = OverlapExecutor(problem, settings)
    waves = executor.num_waves()
    non_overlap = NonOverlapBaseline(settings).latency(problem)

    speedups = {}
    for group in EQUAL_GROUP_SIZES:
        partition = WavePartition.equal_groups(waves, group)
        speedups[f"equal-{group}"] = non_overlap / executor.simulate(partition).latency

    # Misconfigured wave size: the schedule believes waves are 20 tiles larger
    # than they are, so every signal waits for tiles of the *next* wave.
    wrong_wave = executor.gemm_contended.wave_tiles(problem.compute_sm_count() + 20)
    misconfigured = WavePartition.per_wave(len(wrong_wave))
    from repro.core.signaling import GroupAssignment

    assignment = GroupAssignment.build(misconfigured, wrong_wave)
    payloads = executor.group_payload_bytes(assignment)
    # Communication of a misconfigured group can only start when the last wave
    # containing one of its tiles finishes.
    import numpy as np

    wave_end = executor.gemm_contended.wave_completion_times(problem.compute_sm_count())
    tile_wave = {}
    for wave_index, tiles in enumerate(executor.wave_tiles()):
        for t in tiles:
            tile_wave[t] = wave_index
    comm_end = 0.0
    comm = executor.comm_model
    for group_index, tiles in enumerate(assignment.group_tiles):
        ready = wave_end[max(tile_wave[t] for t in tiles)]
        duration = comm.latency(payloads[group_index])
        comm_end = max(comm_end, ready + settings.comm_launch_s) + duration
    speedups["misconfigured-wave"] = non_overlap / comm_end

    tuned = PredictiveTuner(settings).tune(problem)
    tuned_latency = (
        executor.simulate(tuned.partition).latency
        if tuned.use_overlap
        else executor.simulate_sequential().latency
    )
    speedups["flashoverlap"] = non_overlap / tuned_latency
    return speedups


@pytest.mark.parametrize("case", list(CASES))
def test_fig14_grouping_ablation(benchmark, save_report, fast_settings, case):
    problems = CASES[case]
    results = run_once(benchmark, lambda: [evaluate_case(p, fast_settings) for p in problems])

    methods = list(results[0])
    rows = [
        [f"{p.shape.m}x{p.shape.n}x{p.shape.k}"] + [r[m] for m in methods]
        for p, r in zip(problems, results)
    ]
    save_report(
        f"fig14_grouping_{case}",
        format_table(["shape", *methods], rows, title=f"Fig. 14 -- grouping ablation ({case})"),
    )

    for problem, speedups in zip(problems, results):
        flash = speedups["flashoverlap"]
        # (1) The tuned configuration matches or beats every equal-size grouping.
        best_equal = max(v for k, v in speedups.items() if k.startswith("equal-"))
        assert flash >= best_equal * 0.99, problem.shape
        # (2) A misconfigured wave size never helps (within modeling noise).
        assert speedups["misconfigured-wave"] <= flash * 1.02, problem.shape

    # (2b) On average across the cases the misconfiguration clearly loses.
    import numpy as np

    assert np.mean([r["misconfigured-wave"] for r in results]) < np.mean(
        [r["flashoverlap"] for r in results]
    )

    # (3) No single equal group size is optimal across all cases.
    winners = set()
    for speedups in results:
        equals = {k: v for k, v in speedups.items() if k.startswith("equal-")}
        winners.add(max(equals, key=equals.get))
    assert len(winners) >= 2 or "equal-1" not in winners
