"""Fig. 10: operator-level average speedups per primitive / server / GPU count.

For every combination of collective primitive (AR, RS, A2A), server type
(A800-NVLink, RTX4090-PCIe) and GPU count (2, 4, 8), sweep the Table 3 shape
suite and report the mean/min/max speedup of FlashOverlap and the supported
baselines, normalised to the non-overlap execution -- the same bars (with
whiskers) as Fig. 10.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.speedup import shape_survey, summarize_speedups
from repro.comm.primitives import CollectiveKind
from repro.comm.topology import a800_nvlink, rtx4090_pcie
from repro.core.config import OverlapProblem
from repro.gpu.device import A800, RTX_4090
from repro.workloads.shapes import operator_suite

from conftest import run_once, scaled

SERVERS = {
    "a800": (A800, a800_nvlink),
    "rtx4090": (RTX_4090, rtx4090_pcie),
}
PRIMITIVES = (CollectiveKind.ALL_REDUCE, CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALL_TO_ALL)
GPU_COUNTS = (2, 4, 8)


def survey(family, collective, n_gpus, settings, smoke_mode=False):
    device, topo_builder = SERVERS[family]
    topology = topo_builder(n_gpus)
    suite = operator_suite(
        collective,
        family,
        mn_points=scaled(smoke_mode, 4, 2),
        k_points=scaled(smoke_mode, 3, 2),
    )

    def build(shape):
        return OverlapProblem(shape=shape, device=device, topology=topology, collective=collective)

    comparisons = shape_survey(suite, build, settings=settings)
    return summarize_speedups(comparisons)


@pytest.mark.parametrize("family", ["a800", "rtx4090"])
@pytest.mark.parametrize("collective", PRIMITIVES, ids=lambda c: c.short_name)
def test_fig10_operator_speedup(benchmark, save_report, fast_settings, family, collective, smoke):
    gpu_counts = scaled(smoke, GPU_COUNTS, (4,))

    def collect():
        return {n: survey(family, collective, n, fast_settings, smoke) for n in gpu_counts}

    per_gpu_count = run_once(benchmark, collect)

    methods = sorted({m for summary in per_gpu_count.values() for m in summary})
    rows = []
    for n, summary in per_gpu_count.items():
        for method in methods:
            if method not in summary:
                continue
            stats = summary[method]
            rows.append([f"{n} GPUs", method, stats["mean"], stats["min"], stats["max"]])
    report = format_table(
        ["config", "method", "mean speedup", "min", "max"],
        rows,
        title=f"Fig. 10 -- GEMM+{collective.short_name} on {family}",
    )
    save_report(f"fig10_{collective.short_name.lower()}_{family}", report)

    for n, summary in per_gpu_count.items():
        flash = summary["flashoverlap"]
        # FlashOverlap always helps on average and never collapses below ~1.
        assert flash["mean"] > 1.02, (family, collective, n)
        assert flash["min"] > 0.95, (family, collective, n)
        assert flash["max"] < 1.80, (family, collective, n)
        # It beats the decomposition baseline on average (Fig. 10).
        vanilla = summary["vanilla-decomposition"]
        assert flash["mean"] > vanilla["mean"] * 0.99, (family, collective, n)
