"""Fig. 8: effective bandwidth versus message size.

Regenerates the AllReduce bandwidth curves on the 4x RTX 4090 (PCIe) and
4x A800 (NVLink) servers and checks the two properties the design relies on:
a sharp degradation below a knee (which is why tile-by-tile communication is
hopeless) and saturation for large messages.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.comm.primitives import CollectiveKind, CollectiveModel
from repro.comm.topology import a800_nvlink, rtx4090_pcie

from conftest import run_once

SIZES_MB = [0.1875, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]


def collect_curves():
    curves = {}
    for name, topology in (("4x RTX 4090 (PCIe)", rtx4090_pcie(4)), ("4x A800 (NVLink)", a800_nvlink(4))):
        model = CollectiveModel(CollectiveKind.ALL_REDUCE, topology)
        curves[name] = np.array(
            [model.bus_bandwidth(mb * 1024 * 1024) / 1e9 for mb in SIZES_MB]
        )
    return curves


def test_fig08_bandwidth_curves(benchmark, save_report):
    curves = run_once(benchmark, collect_curves)

    rows = [
        [f"{mb:g} MB"] + [f"{curves[name][i]:.2f}" for name in curves]
        for i, mb in enumerate(SIZES_MB)
    ]
    report = format_table(
        ["message size", *curves.keys()],
        rows,
        title="Fig. 8 -- AllReduce bus bandwidth (GB/s) vs per-GPU data size",
    )
    save_report("fig08_bandwidth_curve", report)

    for name, series in curves.items():
        # Monotone rise to saturation.
        assert np.all(np.diff(series) >= -1e-9), name
        # The 192 KB tile message achieves a small fraction of peak (paper: ~13%).
        assert series[0] / series[-1] < 0.35, name
        # Large messages come close to the peak bus bandwidth.
        assert series[-1] / series.max() > 0.95, name
    # NVLink is roughly an order of magnitude faster than PCIe at saturation.
    assert curves["4x A800 (NVLink)"][-1] > 5 * curves["4x RTX 4090 (PCIe)"][-1]
