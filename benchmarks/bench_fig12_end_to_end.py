"""Fig. 12 / Table 4: end-to-end speedups of the four applications.

For every Table 4 application the bench reports the end-to-end speedup of
FlashOverlap over the non-overlap execution plus the per-operator speedups of
the two dominant "GEMM + collective" sizes ("size 1" / "size 2" in Fig. 12).
The paper reports end-to-end gains of 1.05-1.13x on A800 servers.
"""

from repro.analysis.reporting import format_table
from repro.workloads.e2e import paper_workloads

from conftest import run_once


def collect(settings):
    results = []
    for workload in paper_workloads(settings):
        operator_speedups = workload.operator_speedups()
        results.append(
            {
                "name": workload.name,
                "e2e": workload.speedup(),
                "operators": operator_speedups,
                "target_fraction": workload.overlap_target_fraction(),
            }
        )
    return results


def test_fig12_end_to_end(benchmark, save_report, fast_settings):
    results = run_once(benchmark, lambda: collect(fast_settings))

    rows = []
    for entry in results:
        ordered = sorted(entry["operators"].items(), key=lambda kv: kv[1], reverse=True)
        sizes = ", ".join(f"{name}: {speedup:.2f}x" for name, speedup in ordered[:2])
        rows.append([entry["name"], entry["e2e"], entry["target_fraction"], sizes])
    report = format_table(
        ["application", "e2e speedup", "GEMM+X share", "top operator speedups"],
        rows,
        title="Fig. 12 -- end-to-end speedups (A800 substrate)",
    )
    save_report("fig12_end_to_end", report)

    for entry in results:
        # Paper: 1.05-1.13x end to end; allow a little slack on either side.
        assert 1.01 < entry["e2e"] < 1.30, entry["name"]
        # Amdahl consistency: e2e gain below the best operator gain.
        assert entry["e2e"] < max(entry["operators"].values()), entry["name"]
        # No overlapped operator regresses (compute-dominated ones may fall
        # back to the sequential path and sit at ~1.0x).
        assert all(s > 0.99 for s in entry["operators"].values()), entry["name"]
        assert max(entry["operators"].values()) > 1.10, entry["name"]

    # The T2V workload (largest token count) benefits the most among the
    # inference workloads, mirroring the paper's observation.
    by_name = {e["name"]: e["e2e"] for e in results}
    assert by_name["Step-Video-T2V (TP=4)"] >= by_name["Mixtral-8x7B training (EP=4, TP=2)"]
