"""Fig. 3: wave pattern of GEMM tile completion times.

Reproduces the staircase of tile completion times for the paper's example
(M=2048, N=K=8192 on an RTX 4090): tiles complete in distinct waves, and with
block swizzling the completion order does not follow the address order.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.gpu.device import RTX_4090
from repro.gpu.gemm import GemmKernelModel, GemmShape, GemmTileConfig

from conftest import run_once


def collect_wave_pattern():
    shape = GemmShape(m=2048, n=8192, k=8192)
    config = GemmTileConfig(tile_m=128, tile_n=256, swizzle_size=3)
    model = GemmKernelModel(shape, RTX_4090, config)
    times = model.tile_completion_times(jitter=0.05, seed=0)
    waves = model.wave_tiles()
    return model, times, waves


def test_fig03_wave_pattern(benchmark, save_report):
    model, times, waves = run_once(benchmark, collect_wave_pattern)

    # The paper's headline numbers: 512 tiles in 4 waves on 128 SMs.
    assert model.num_tiles == 512
    assert model.num_waves() == 4

    wave_ms = model.wave_completion_times() * 1e3
    rows = []
    order = model.execution_order()
    for index, tiles in enumerate(waves):
        spread = times[tiles] * 1e3
        # Address discontiguity: how many launched tiles are non-adjacent.
        adjacent = sum(1 for a, b in zip(tiles, tiles[1:]) if b == a + 1)
        rows.append(
            [
                f"W{index + 1}",
                len(tiles),
                f"{spread.min():.3f}",
                f"{spread.max():.3f}",
                f"{wave_ms[index]:.3f}",
                f"{1 - adjacent / max(1, len(tiles) - 1):.2f}",
            ]
        )
    report = format_table(
        ["wave", "tiles", "first done (ms)", "last done (ms)", "wave end (ms)", "addr discontiguity"],
        rows,
        title="Fig. 3 -- wave pattern of tile completion (M=2048, N=K=8192, RTX 4090)",
    )
    save_report("fig03_wave_pattern", report)

    # Within-wave spread is < 5% of a wave duration; waves are well separated.
    wave_len = model.wave_duration()
    for index, tiles in enumerate(waves):
        spread = times[tiles]
        assert spread.max() - spread.min() <= 0.055 * wave_len
    # The swizzled completion order does not match the address order.
    assert order != sorted(order)
    assert np.argmax(times) != model.num_tiles - 1 or order[-1] == model.num_tiles - 1


def test_fig03_reordered_index_is_monotone(benchmark, save_report):
    """Fig. 3(b): after reordering by execution order, completion time is
    monotone in the reordered tile index."""

    def collect():
        model, times, _ = collect_wave_pattern()
        order = model.execution_order()
        return times[order]

    reordered_times = run_once(benchmark, collect)
    wave_len = GemmKernelModel(
        GemmShape(2048, 8192, 8192), RTX_4090, GemmTileConfig(tile_m=128, tile_n=256)
    ).wave_duration()
    violations = np.sum(np.diff(reordered_times) < -0.06 * wave_len)
    save_report(
        "fig03_reordered_monotonicity",
        f"non-monotone steps after reordering: {int(violations)} / {len(reordered_times) - 1}",
    )
    assert violations == 0
