"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it collects the
data through the library's public API inside the timed callable, then renders
the same rows/series the paper reports and stores them under
``benchmarks/output/`` (and echoes them to stdout, visible with ``pytest -s``).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="reduced-size benchmark mode (tiny grids, 1-2 repetitions) for CI smoke runs",
    )


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    """True when the run was started with ``--smoke`` (CI fast mode)."""
    return request.config.getoption("--smoke")


def scaled(smoke_mode: bool, full, reduced):
    """Pick the reduced variant of a grid/axis in smoke mode, else the full one."""
    return reduced if smoke_mode else full


@pytest.fixture(scope="session")
def report_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_report(report_dir):
    """Write a rendered report to ``benchmarks/output/<name>.txt`` and stdout."""

    def _save(name: str, text: str) -> Path:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===\n{text}\n")
        return path

    return _save


@pytest.fixture
def fast_settings():
    from repro.core.config import OverlapSettings

    return OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


def run_once(benchmark, fn):
    """Run a heavy data-collection routine exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
