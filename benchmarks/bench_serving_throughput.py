"""Perf harness for the online serving subsystem (``repro.serve``).

A standalone CLI (like ``bench_tuner_throughput.py``) that measures the
serving simulator under deterministic Poisson traffic and emits a
machine-readable ``BENCH_serving.json``:

* **plan cache benefit**: the same serving run with the shape-bucketed plan
  cache vs with caching disabled (every lookup re-tunes); reports wall-clock
  speedup and tuner invocations per iteration, and asserts the simulated
  metrics are identical (the cache is a pure optimisation);
* **overlap vs non-overlap serving**: the *simulated* serving-level speedups
  (mean e2e latency, TTFT p99, makespan) of overlap execution over the
  sequential baseline -- deterministic, so portable across machines;
* **simulator throughput**: iterations/s and simulated-vs-wall time ratio of
  the event loop itself;
* **batched fast path**: wall-clock speedup of the batched serving loop
  (``ServingSimulator(fast=True)``, the default) over the
  one-event-per-iteration reference on decode-heavy chat traffic, asserting
  the two are bit-identical.

``--check`` compares the speedup ratios against a committed baseline
(``benchmarks/BENCH_serving_baseline.json``) and exits non-zero on a >2x
regression; ratios rather than absolute times are compared so the gate is
portable across CI machines.

Usage::

    python benchmarks/bench_serving_throughput.py            # full run
    python benchmarks/bench_serving_throughput.py --smoke    # CI-sized run
    python benchmarks/bench_serving_throughput.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro import obs
from repro.atomic import atomic_write_text
from repro.comm.topology import a800_nvlink
from repro.core.config import OverlapSettings
from repro.serve import (
    PlanCache,
    PoissonArrivals,
    ServeConfig,
    ServingSimulator,
    distribution_by_name,
)
from repro.serve.simulator import SERVE_MODELS, SMOKE_SCENARIO
from repro.workloads.llm import LLAMA3_70B

DEFAULT_OUT = Path(__file__).resolve().parent / "output" / "BENCH_serving.json"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_serving_baseline.json"

#: Fail --check when a speedup ratio drops below baseline / REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0


def _scenario(smoke: bool) -> tuple[ServeConfig, list]:
    """The benchmark's serving scenario (CI-sized in smoke mode)."""
    settings = OverlapSettings()
    if smoke:
        # The exact `repro serve --smoke` scenario (single source of truth).
        scenario = SMOKE_SCENARIO
        config = ServeConfig(
            model=SERVE_MODELS[scenario["workload"]],
            topology=a800_nvlink(4),
            layers=scenario["layers"],
            max_batch_tokens=scenario["max_batch_tokens"],
            max_batch_size=scenario["max_batch_size"],
            settings=settings,
        )
        arrivals = PoissonArrivals(
            rate_rps=scenario["rate"],
            distribution=distribution_by_name(scenario["distribution"]),
            seed=0,
            num_requests=scenario["requests"],
        )
    else:
        config = ServeConfig(
            model=LLAMA3_70B,
            topology=a800_nvlink(4),
            layers=4,
            max_batch_tokens=4096,
            max_batch_size=32,
            settings=settings,
        )
        arrivals = PoissonArrivals(
            rate_rps=48.0,
            distribution=distribution_by_name("code"),
            seed=0,
            num_requests=64,
        )
    return config, arrivals.generate()


def bench_plan_cache(config: ServeConfig, requests: list) -> tuple[dict, bool]:
    """Cached vs cache-disabled serving wall time (identical simulated output)."""

    def run(capacity: int):
        cache = PlanCache(config.settings, capacity=capacity)
        start = time.perf_counter()
        result = ServingSimulator(config, plan_cache=cache, mode="overlap").run(requests)
        return result, time.perf_counter() - start

    cached_result, cached_s = run(capacity=64)
    uncached_result, uncached_s = run(capacity=0)
    stats = cached_result.plan_cache_stats
    transparent = json.dumps(cached_result.metrics().to_dict()) == json.dumps(
        uncached_result.metrics().to_dict()
    )
    return {
        "iterations": cached_result.iterations,
        "tuner_invocations_cached": stats["tuner_invocations"],
        "tuner_invocations_uncached": uncached_result.plan_cache_stats["tuner_invocations"],
        "tuner_invocations_per_iteration": stats["tuner_invocations"] / cached_result.iterations,
        "hit_rate": stats["hit_rate"],
        "cached_s": cached_s,
        "uncached_s": uncached_s,
        "speedup": uncached_s / cached_s,
    }, transparent


def bench_overlap_vs_baseline(config: ServeConfig, requests: list) -> tuple[dict, bool, bool]:
    """Simulated serving-level speedups of overlap over the sequential baseline."""
    overlap = ServingSimulator(config, mode="overlap").run(requests)
    repeat = ServingSimulator(config, mode="overlap").run(requests)
    baseline = ServingSimulator(config, mode="non-overlap").run(requests)
    deterministic = json.dumps(overlap.to_dict()) == json.dumps(repeat.to_dict())
    om, bm = overlap.metrics(), baseline.metrics()
    overlap_wins = om.e2e_latency.mean < bm.e2e_latency.mean
    return {
        "iterations": overlap.iterations,
        "overlap_e2e_mean_s": om.e2e_latency.mean,
        "baseline_e2e_mean_s": bm.e2e_latency.mean,
        "e2e_mean": {"speedup": bm.e2e_latency.mean / om.e2e_latency.mean},
        "ttft_p99": {"speedup": bm.ttft.p99 / om.ttft.p99},
        "makespan": {"speedup": baseline.makespan_s / overlap.makespan_s},
    }, deterministic, overlap_wins


def bench_simulator_throughput(config: ServeConfig, requests: list) -> dict:
    """Event-loop throughput once every plan bucket is warm."""
    cache = PlanCache(config.settings)
    simulator = ServingSimulator(config, plan_cache=cache, mode="overlap")
    simulator.run(requests)  # warm the plan cache and the ops-by-bucket memo
    start = time.perf_counter()
    result = ServingSimulator(config, plan_cache=cache, mode="overlap").run(requests)
    wall_s = time.perf_counter() - start
    return {
        "iterations": result.iterations,
        "iterations_per_s": result.iterations / wall_s,
        "simulated_s": result.makespan_s,
        "wall_s": wall_s,
        "simulated_over_wall": result.makespan_s / wall_s,
    }


def bench_fast_path(config: ServeConfig, smoke: bool) -> tuple[dict, bool]:
    """Batched serving loop vs the one-event-per-iteration reference.

    Decode-heavy chat traffic maximizes silent steady-decode runs -- the case
    the fast path collapses in bulk.  Both arms are timed best-of-N; the
    overlap arm shares a warmed plan cache per arm (identical warm-up, so the
    cumulative cache stats -- and hence the full result payloads -- stay
    comparable between arms).
    """
    # A modest arrival rate keeps few requests in flight at once, so decode
    # runs stay silent for long stretches -- the regime the paper's serving
    # traces spend most of their time in.
    requests = PoissonArrivals(
        rate_rps=8.0 if smoke else 4.0,
        distribution=distribution_by_name("chat"),
        seed=0,
        num_requests=24 if smoke else 64,
    ).generate()
    repeats = 3

    def measure(mode: str, warm: bool):
        results, best = {}, {}
        for fast in (True, False):
            cache = None
            if mode == "overlap":
                cache = PlanCache(config.settings, capacity=64)
                if warm:  # identical warm-up on each arm's private cache
                    ServingSimulator(config, plan_cache=cache, mode=mode).run(requests)
            best[fast] = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                results[fast] = ServingSimulator(
                    config, plan_cache=cache, mode=mode, fast=fast
                ).run(requests)
                best[fast] = min(best[fast], time.perf_counter() - start)
        identical = json.dumps(results[True].to_dict(), sort_keys=True) == json.dumps(
            results[False].to_dict(), sort_keys=True
        )
        return {
            "iterations": results[True].iterations,
            "reference_s": best[False],
            "fast_s": best[True],
            "speedup": best[False] / best[True],
        }, identical

    non_overlap, non_overlap_identical = measure("non-overlap", warm=False)
    overlap, overlap_identical = measure("overlap", warm=True)
    return {
        "requests": len(requests),
        "non_overlap": non_overlap,
        "overlap_warm_cache": overlap,
    }, non_overlap_identical and overlap_identical


def _walk_speedups(metrics: dict, prefix: str = "") -> dict[str, float]:
    """Flatten every ``speedup`` ratio in the metrics tree."""
    found: dict[str, float] = {}
    for key, value in metrics.items():
        if isinstance(value, dict):
            found.update(_walk_speedups(value, f"{prefix}{key}."))
        elif key == "speedup":
            found[f"{prefix}{key}"] = float(value)
    return found


def check_regressions(report: dict, baseline_path: Path) -> list[str]:
    """Speedup ratios that regressed >2x vs the committed baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = _walk_speedups(report["metrics"])
    reference = _walk_speedups(baseline.get("metrics", {}))
    failures = []
    for name, ref_value in reference.items():
        cur_value = current.get(name)
        if cur_value is None:
            failures.append(f"{name}: missing from current report (baseline {ref_value:.2f}x)")
        elif cur_value < ref_value / REGRESSION_FACTOR:
            failures.append(
                f"{name}: {cur_value:.2f}x is a >{REGRESSION_FACTOR:g}x regression "
                f"vs baseline {ref_value:.2f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="report JSON path")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="committed baseline JSON"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero on a >{REGRESSION_FACTOR:g}x speedup regression vs the baseline",
    )
    args = parser.parse_args(argv)

    config, requests = _scenario(args.smoke)
    with obs.observe() as obs_session:
        with obs.span("plan_cache"):
            plan_cache, cache_transparent = bench_plan_cache(config, requests)
        with obs.span("serving"):
            serving, deterministic, overlap_wins = bench_overlap_vs_baseline(config, requests)
        with obs.span("simulator"):
            simulator = bench_simulator_throughput(config, requests)
        with obs.span("fast_path"):
            fast_path, fast_path_identical = bench_fast_path(config, args.smoke)
    report = {
        "meta": {
            "smoke": args.smoke,
            "model": config.model.name,
            "requests": len(requests),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "metrics": {
            "plan_cache": plan_cache,
            "serving": serving,
            "simulator": simulator,
            "fast_path": fast_path,
        },
        "checks": {
            "deterministic": deterministic,
            "plan_cache_transparent": cache_transparent,
            "fast_path_bit_identical": fast_path_identical,
            "fewer_tunes_than_iterations": (
                plan_cache["tuner_invocations_cached"] < plan_cache["iterations"]
            ),
            "overlap_beats_baseline": overlap_wins,
        },
        "observability": obs_session.snapshot(command="bench_serving_throughput").to_dict(),
    }

    args.out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.out}")
    for name, value in _walk_speedups(report["metrics"]).items():
        print(f"  {name:45s} {value:8.2f}x")
    print(f"  {'tuner invocations / iteration':45s} "
          f"{plan_cache['tuner_invocations_per_iteration']:8.4f}")
    for name, ok in report["checks"].items():
        print(f"  {name:45s} {'ok' if ok else 'FAILED'}")

    failed = [name for name, ok in report["checks"].items() if not ok]
    if failed:
        print(f"serving checks failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    if args.check:
        if not args.baseline.exists():
            print(f"baseline {args.baseline} missing; cannot --check", file=sys.stderr)
            return 1
        failures = check_regressions(report, args.baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no >{REGRESSION_FACTOR:g}x regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
