"""Fig. 11: per-shape comparison on typical GEMM+RS shapes (A800).

Reproduces the per-shape bars of Fig. 11: for nine typical (M, N, K) points,
the speedup of every method over the non-overlap execution, on 4x A800.
FlashOverlap should win on most shapes, with the fusion baseline (FLUX)
allowed to win at K=2048 where its epilogue saving matters most.
"""

from repro.analysis.reporting import format_table
from repro.analysis.speedup import compare_methods
from repro.comm.primitives import CollectiveKind
from repro.comm.topology import a800_nvlink
from repro.core.config import OverlapProblem
from repro.gpu.device import A800
from repro.workloads.shapes import fig11_shapes

from conftest import run_once, scaled


def collect(settings, smoke_mode=False):
    topology = a800_nvlink(4)
    # Smoke mode keeps one shape per K so every regime is still touched.
    shapes = list(fig11_shapes())[:: scaled(smoke_mode, 1, 3)]
    results = []
    for shape in shapes:
        problem = OverlapProblem(
            shape=shape, device=A800, topology=topology, collective=CollectiveKind.REDUCE_SCATTER
        )
        results.append((shape, compare_methods(problem, settings=settings)))
    return results


def test_fig11_typical_shapes(benchmark, save_report, fast_settings, smoke):
    results = run_once(benchmark, lambda: collect(fast_settings, smoke))

    methods = sorted(results[0][1].speedups)
    rows = [
        [f"{shape.m}x{shape.n}", shape.k] + [comparison.speedups.get(m, float("nan")) for m in methods]
        for shape, comparison in results
    ]
    report = format_table(
        ["MxN", "K", *methods],
        rows,
        title="Fig. 11 -- GEMM+RS speedups on typical shapes (4x A800)",
    )
    save_report("fig11_typical_shapes", report)

    wins = 0
    for shape, comparison in results:
        flash = comparison.speedups["flashoverlap"]
        assert flash > 1.0, shape
        best_other = max(v for k, v in comparison.speedups.items() if k != "flashoverlap")
        if flash >= best_other * 0.999:
            wins += 1
        elif shape.k > 2048:
            # Outside the small-K regime FlashOverlap should stay within a few
            # percent of the best method even when it does not win outright.
            assert flash > best_other * 0.90, shape
    # FlashOverlap wins on most of the shapes (nine in the full run).
    assert wins >= max(1, len(results) // 2 + 1)
