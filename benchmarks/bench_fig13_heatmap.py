"""Fig. 13: speedup heatmaps and ratio-of-theoretical heatmaps.

Sweeps the (M x N, K) grid of Fig. 13 on both servers:

* RTX 4090 (PCIe), GEMM+RS with TP=2 -- panel (a)/(c);
* A800 (NVLink), GEMM+AR with TP=4 -- panel (b)/(d);

and checks the qualitative shape of the paper's heatmaps: every cell speeds
up, the achieved-over-theoretical ratio is high (mostly > 0.8), and on the
A800 the speedup grows as K shrinks (communication share rises).
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_heatmap
from repro.analysis.speedup import speedup_heatmap
from repro.comm.primitives import CollectiveKind
from repro.comm.topology import a800_nvlink, rtx4090_pcie
from repro.core.config import OverlapProblem
from repro.gpu.device import A800, RTX_4090
from repro.workloads.shapes import fig13_grid, fig13_shape

from conftest import run_once, scaled

CONFIGS = {
    "rtx4090": dict(device=RTX_4090, topology=rtx4090_pcie(2), collective=CollectiveKind.REDUCE_SCATTER),
    "a800": dict(device=A800, topology=a800_nvlink(4), collective=CollectiveKind.ALL_REDUCE),
}


@pytest.mark.parametrize("family", ["rtx4090", "a800"])
def test_fig13_heatmap(benchmark, save_report, fast_settings, family, smoke):
    config = CONFIGS[family]
    mn_values, k_values = fig13_grid(family)
    # Sub-sample the grid to keep the bench fast while preserving the trends
    # (more aggressively in smoke mode: the corners still span both axes).
    step = scaled(smoke, 2, 3)
    mn_values = mn_values[::step]
    k_values = k_values[::step]

    def builder(mn_mega, k_kilo):
        return OverlapProblem(shape=fig13_shape(mn_mega, k_kilo), **config)

    result = run_once(
        benchmark, lambda: speedup_heatmap(mn_values, k_values, builder, settings=fast_settings)
    )

    speedup_text = format_heatmap(
        result.speedup, [f"K={k}k" for k in k_values], [f"{mn}Mi" for mn in mn_values],
        corner="", title=f"Fig. 13 -- overlap speedup on {family}",
    )
    ratio_text = format_heatmap(
        result.theoretical_ratio, [f"K={k}k" for k in k_values], [f"{mn}Mi" for mn in mn_values],
        corner="", title=f"Fig. 13 -- ratio of theoretical speedup on {family}",
    )
    save_report(f"fig13_heatmap_{family}", speedup_text + "\n\n" + ratio_text)

    assert np.all(result.speedup > 1.0)
    assert np.all(result.speedup < 1.8)
    assert np.all(result.theoretical_ratio > 0.65)
    assert result.mean_theoretical_ratio() > 0.80

    if family == "a800":
        # High NVLink bandwidth: smaller K (more communication-heavy) gains more.
        assert result.speedup[0].mean() > result.speedup[-1].mean()
        # Larger outputs utilise bandwidth better: the ratio improves with M x N.
        assert result.theoretical_ratio[:, -1].mean() >= result.theoretical_ratio[:, 0].mean() - 0.05
