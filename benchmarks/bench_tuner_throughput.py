"""Perf harness for the vectorized tuning & reordering fast path.

Unlike the ``bench_fig*`` scripts (which regenerate paper figures through
pytest-benchmark), this is a standalone CLI that measures the *throughput* of
the tuning/reordering subsystem old-vs-new and emits a machine-readable
``BENCH_tuning.json`` so subsequent PRs can track the perf trajectory:

* predictive tuning throughput (candidates/s), scalar reference loop vs the
  vectorized ``predict_batch`` path, with the tuning decisions asserted
  identical,
* functional pipeline reorder throughput (elements/s), per-tile/per-row
  reference loops vs the cached index permutations, with outputs asserted
  ``np.allclose`` (in fact bit-identical),
* offline-profile memoization (cold vs warm tune calls),
* exhaustive tuner, naive per-candidate simulation vs the incremental
  early-abandoning search,
* the tuning portion of a sweep (the smoke preset's scenarios) old vs new.

``--check`` compares the speedup ratios against a committed baseline
(``benchmarks/BENCH_tuning_baseline.json`` by default) and exits non-zero on
a >2x regression; ratios rather than absolute times are compared so the gate
is portable across CI machines.

Usage::

    python benchmarks/bench_tuner_throughput.py            # full run
    python benchmarks/bench_tuner_throughput.py --smoke    # CI-sized run
    python benchmarks/bench_tuner_throughput.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro import obs
from repro.atomic import atomic_write_text
from repro.comm.primitives import CollectiveKind
from repro.comm.topology import rtx4090_pcie
from repro.core.config import OverlapProblem, OverlapSettings
from repro.core.predictor import LatencyPredictor, OfflineProfile, clear_profile_caches
from repro.core.reordering import (
    build_reorder_plan,
    run_all_to_all_pipeline,
    run_allreduce_pipeline,
    run_reduce_scatter_pipeline,
)
from repro.core.tuner import ExhaustiveTuner, PredictiveTuner
from repro.core.wave_grouping import candidate_partitions_matrix
from repro.gpu.device import RTX_4090
from repro.gpu.gemm import GemmShape
from repro.sweep.presets import smoke_matrix

DEFAULT_OUT = Path(__file__).resolve().parent / "output" / "BENCH_tuning.json"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_tuning_baseline.json"

#: Fail --check when a speedup ratio drops below baseline / REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` (seconds)."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_predictive_tuning(smoke: bool, repeats: int) -> tuple[dict, bool]:
    """Candidates/s of the scalar reference loop vs predict_batch."""
    problem = OverlapProblem(
        shape=GemmShape(2048, 8192, 8192),
        device=RTX_4090,
        topology=rtx4090_pcie(4),
        collective=CollectiveKind.ALL_REDUCE,
    )
    settings = OverlapSettings()
    profile = OfflineProfile.build(problem, settings)
    predictor = LatencyPredictor(profile, total_bytes=problem.output_bytes())
    candidates = PredictiveTuner(settings).candidates(profile.num_waves)
    matrix = candidate_partitions_matrix(candidates)
    inner = 1 if smoke else 5

    def scalar() -> None:
        for _ in range(inner):
            for partition in candidates:
                predictor.predict(partition)

    def batch() -> None:
        for _ in range(inner):
            predictor.predict_batch(matrix)

    scalar_s = _time(scalar, repeats)
    batch_s = _time(batch, repeats)
    evaluated = len(candidates) * inner
    identical = bool(
        np.array_equal(
            predictor.predict_batch(matrix),
            np.array([predictor.predict(p) for p in candidates]),
        )
        and PredictiveTuner(settings, vectorized=True).tune(problem)
        == PredictiveTuner(settings, vectorized=False).tune(problem)
    )
    return {
        "candidates": len(candidates),
        "scalar_candidates_per_s": evaluated / scalar_s,
        "batch_candidates_per_s": evaluated / batch_s,
        "speedup": scalar_s / batch_s,
    }, identical


def bench_pipeline_reorder(smoke: bool, repeats: int) -> tuple[dict, bool]:
    """Elements/s of the per-tile reference reorders vs the index fast path.

    Sized so the reorder stages dominate (many tiles per matrix, as in the
    paper's operator shapes): what is measured is the pre/post-communication
    reordering, not the functional NumPy collective both paths share.
    """
    rng = np.random.default_rng(0)
    size = 256 if smoke else 512
    tile = 8
    n_gpus = 4
    metrics: dict[str, dict] = {}
    all_equal = True

    def add(name: str, runner, elements: int) -> None:
        nonlocal all_equal
        fast = runner(True)
        ref = runner(False)
        all_equal = all_equal and all(
            np.array_equal(a, b) for a, b in zip(fast.outputs, ref.outputs)
        )
        all_equal = all_equal and fast.allclose()
        fast_s = _time(lambda: runner(True), repeats)
        ref_s = _time(lambda: runner(False), repeats)
        metrics[name] = {
            "reference_elements_per_s": elements / ref_s,
            "fast_elements_per_s": elements / fast_s,
            "speedup": ref_s / fast_s,
        }

    # AllReduce: tile-level reorder over a shuffled multi-group plan.
    from repro.tensor.layout import TileLayout

    layout = TileLayout(m=size, n=size, tile_m=tile, tile_n=tile)
    order = list(rng.permutation(layout.num_tiles))
    step = max(1, layout.num_tiles // 8)
    groups = [order[i : i + step] for i in range(0, len(order), step)]
    ar_plan = build_reorder_plan(CollectiveKind.ALL_REDUCE, layout, groups, n_gpus)
    ar_mats = [rng.normal(size=(size, size)) for _ in range(n_gpus)]
    add(
        "allreduce",
        lambda fast: run_allreduce_pipeline(ar_mats, ar_plan, fast=fast),
        n_gpus * size * size,
    )

    rs_plan = build_reorder_plan(CollectiveKind.REDUCE_SCATTER, layout, groups, n_gpus)
    add(
        "reducescatter",
        lambda fast: run_reduce_scatter_pipeline(ar_mats, rs_plan, fast=fast),
        n_gpus * size * size,
    )

    # All-to-All: per-source plans, random token routing.
    a2a_size = 64 if smoke else 192
    a2a_layout = TileLayout(m=a2a_size, n=a2a_size, tile_m=8, tile_n=8)
    a2a_plans, a2a_mats, a2a_dests = [], [], []
    for _ in range(n_gpus):
        order = list(rng.permutation(a2a_layout.num_tiles))
        step = max(1, a2a_layout.num_tiles // 6)
        groups = [order[i : i + step] for i in range(0, len(order), step)]
        a2a_plans.append(
            build_reorder_plan(CollectiveKind.ALL_TO_ALL, a2a_layout, groups, n_gpus)
        )
        a2a_mats.append(rng.normal(size=(a2a_size, a2a_size)))
        a2a_dests.append(rng.integers(0, n_gpus, size=a2a_size))
    add(
        "alltoall",
        lambda fast: run_all_to_all_pipeline(a2a_mats, a2a_dests, a2a_plans, fast=fast),
        n_gpus * a2a_size * a2a_size,
    )

    speedups = [metrics[name]["speedup"] for name in metrics]
    metrics["speedup_geomean"] = float(np.exp(np.mean(np.log(speedups))))
    return metrics, all_equal


def bench_profile_memoization(smoke: bool, repeats: int) -> dict:
    """Tune calls with cold caches vs memoized offline profiles.

    Both timed callables run several inner passes so the measured spans stay
    well above the millisecond scale -- the CI regression gate compares these
    ratios on shared runners, where sub-millisecond best-of timings flake.
    """
    problems = [
        OverlapProblem(
            shape=GemmShape(m, 4096, 4096),
            device=RTX_4090,
            topology=rtx4090_pcie(4),
            collective=CollectiveKind.ALL_REDUCE,
        )
        for m in ((1024, 2048) if smoke else (1024, 2048, 4096, 8192))
    ]
    settings = OverlapSettings()
    tuner = PredictiveTuner(settings)
    inner = 5

    def cold() -> None:
        for _ in range(inner):
            clear_profile_caches()
            for problem in problems:
                tuner.tune(problem)

    def warm() -> None:
        for _ in range(inner):
            for problem in problems:
                tuner.tune(problem)

    cold_s = _time(cold, repeats)
    warm()  # populate
    warm_s = _time(warm, repeats)
    return {"cold_s": cold_s, "warm_s": warm_s, "speedup": cold_s / warm_s}


def bench_exhaustive(smoke: bool, repeats: int) -> dict:
    """Naive per-candidate simulation vs incremental early-abandoning search."""
    problem = OverlapProblem(
        shape=GemmShape(1024, 4096, 4096) if smoke else GemmShape(2048, 8192, 8192),
        device=RTX_4090,
        topology=rtx4090_pcie(4),
        collective=CollectiveKind.ALL_REDUCE,
    )
    settings = OverlapSettings()
    inner = 3  # keep the incremental span above the timer-noise floor

    def naive() -> None:
        for _ in range(inner):
            ExhaustiveTuner(settings, incremental=False).tune(problem)

    def incremental() -> None:
        for _ in range(inner):
            ExhaustiveTuner(settings, incremental=True).tune(problem)

    naive_s = _time(naive, repeats)
    incremental_s = _time(incremental, repeats)
    return {"naive_s": naive_s, "incremental_s": incremental_s, "speedup": naive_s / incremental_s}


def bench_sweep_tuning(smoke: bool, repeats: int) -> dict:
    """Tuning wall-clock of the smoke sweep's scenarios, old path vs new.

    "Old" is pre-fast-path behavior: scalar candidate loop and a fresh
    offline profile per job.  "New" is the shipped configuration: vectorized
    ranking plus process-level profile memoization.
    """
    scenarios = smoke_matrix().expand()
    jobs = [(s.to_problem(), s.to_settings()) for s in scenarios]

    def old() -> None:
        for problem, settings in jobs:
            clear_profile_caches()
            PredictiveTuner(settings, vectorized=False).tune(problem)

    def new() -> None:
        for problem, settings in jobs:
            PredictiveTuner(settings).tune(problem)

    old_s = _time(old, repeats)
    clear_profile_caches()
    new()  # first pass pays the cache misses, as a real sweep's first job does
    new_s = _time(new, repeats)
    return {"jobs": len(jobs), "old_s": old_s, "new_s": new_s, "speedup": old_s / new_s}


def _walk_speedups(metrics: dict, prefix: str = "") -> dict[str, float]:
    """Flatten every ``speedup`` ratio in the metrics tree."""
    found: dict[str, float] = {}
    for key, value in metrics.items():
        if isinstance(value, dict):
            found.update(_walk_speedups(value, f"{prefix}{key}."))
        elif key in ("speedup", "speedup_geomean"):
            found[f"{prefix}{key}"] = float(value)
    return found


def check_regressions(report: dict, baseline_path: Path) -> list[str]:
    """Speedup ratios that regressed >2x vs the committed baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = _walk_speedups(report["metrics"])
    reference = _walk_speedups(baseline.get("metrics", {}))
    failures = []
    for name, ref_value in reference.items():
        cur_value = current.get(name)
        if cur_value is None:
            failures.append(f"{name}: missing from current report (baseline {ref_value:.2f}x)")
        elif cur_value < ref_value / REGRESSION_FACTOR:
            failures.append(
                f"{name}: {cur_value:.2f}x is a >{REGRESSION_FACTOR:g}x regression "
                f"vs baseline {ref_value:.2f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run (small grids, 1 repeat)")
    parser.add_argument("--repeats", type=int, default=None, help="timing repetitions (best-of)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="report JSON path")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="committed baseline JSON"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero on a >{REGRESSION_FACTOR:g}x speedup regression vs the baseline",
    )
    args = parser.parse_args(argv)
    # Best-of-3 even in smoke mode: the regression gate compares ratios, and a
    # single measurement on a loaded CI runner is too noisy to gate on.
    repeats = args.repeats if args.repeats is not None else 3

    with obs.observe() as obs_session:
        with obs.span("predictive_tuning"):
            predictive, decisions_identical = bench_predictive_tuning(args.smoke, repeats)
        with obs.span("pipeline_reorder"):
            reorder, pipelines_match = bench_pipeline_reorder(args.smoke, repeats)
        with obs.span("profile_memoization"):
            memoization = bench_profile_memoization(args.smoke, repeats)
        with obs.span("exhaustive_tuner"):
            exhaustive = bench_exhaustive(args.smoke, repeats)
        with obs.span("sweep_tuning"):
            sweep_tuning = bench_sweep_tuning(args.smoke, repeats)
    report = {
        "meta": {
            "smoke": args.smoke,
            "repeats": repeats,
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "metrics": {
            "predictive_tuning": predictive,
            "pipeline_reorder": reorder,
            "profile_memoization": memoization,
            "exhaustive_tuner": exhaustive,
            "sweep_tuning": sweep_tuning,
        },
        "checks": {
            "tuning_decisions_identical": decisions_identical,
            "pipeline_outputs_allclose": pipelines_match,
        },
        "observability": obs_session.snapshot(command="bench_tuner_throughput").to_dict(),
    }

    args.out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.out}")
    for name, value in _walk_speedups(report["metrics"]).items():
        print(f"  {name:45s} {value:8.2f}x")
    for name, ok in report["checks"].items():
        print(f"  {name:45s} {'ok' if ok else 'FAILED'}")

    failed = [name for name, ok in report["checks"].items() if not ok]
    if failed:
        print(f"equivalence checks failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    if args.check:
        if not args.baseline.exists():
            print(f"baseline {args.baseline} missing; cannot --check", file=sys.stderr)
            return 1
        failures = check_regressions(report, args.baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no >{REGRESSION_FACTOR:g}x regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
