"""Perf harness for the pipeline scheduling layer (``repro.pp``).

A standalone CLI (like ``bench_e2e_speedup.py``) that scans llama3-training
over stage count x microbatch count x schedule through one shared plan store
and emits a machine-readable ``BENCH_pp.json``:

* **bubble grid**: bubble ratio and step latency per (stages, microbatches,
  schedule) -- at every grid point the ratio must fall strictly from GPipe
  to 1F1B to zero-bubble;
* **schedule gains**: the step-time ratios GPipe/1F1B and 1F1B/zero-bubble
  (the pipeline-scheduling analogue of the overlap speedups), plus the
  FlashOverlap-over-non-overlap speedup per schedule -- deterministic
  ratios, portable across machines;
* **degeneracy and reuse checks**: a 1-stage/1-microbatch run embeds e2e
  totals bit-identical to ``repro e2e``, plan reuse is bit-identical to
  re-tuning, and repeated runs are deterministic;
* **replay fast path**: wall-clock speedup of the vectorized topological
  sweep (``replay_tasks(fast=True)``) over the event-by-event reference on
  large pipeline schedules and wide synthetic DAGs, asserting the two are
  bit-identical.

``--check`` compares every ``*speedup*`` ratio against a committed baseline
(``benchmarks/BENCH_pp_baseline.json``) and exits non-zero on a >2x
regression; ratios rather than absolute times are compared so the gate is
portable across CI machines.

Usage::

    python benchmarks/bench_pp_bubble.py            # full grid (8 paper layers)
    python benchmarks/bench_pp_bubble.py --smoke    # CI-sized grid (4 layers)
    python benchmarks/bench_pp_bubble.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro import obs
from repro.atomic import atomic_write_text
from repro.core.config import OverlapSettings
from repro.e2e import EndToEndEstimator
from repro.pp import PipelineEstimator
from repro.pp.schedule import KNOWN_SCHEDULES, StageCostVector, generate_schedule
from repro.sim.replay import ReplayTask, replay_tasks
from repro.workloads.e2e import build_workload
from repro.workloads.pipeline import build_pipeline_workload

DEFAULT_OUT = Path(__file__).resolve().parent / "output" / "BENCH_pp.json"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_pp_baseline.json"

WORKLOAD = "llama3-training"

#: Fail --check when a speedup ratio drops below baseline / REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0


def _grid(smoke: bool) -> tuple[int, list[int], list[int]]:
    """(layers, stage counts, microbatch counts) of the scan."""
    if smoke:
        return 4, [2, 4], [4, 8]
    return 8, [2, 4, 8], [4, 8, 16]


def bench_bubble_grid(smoke: bool) -> tuple[dict, bool, bool]:
    """Scan stages x microbatches x schedule through one shared plan store."""
    layers, stage_counts, microbatch_counts = _grid(smoke)
    settings = OverlapSettings()
    estimator = PipelineEstimator(settings)
    grid: dict[str, dict] = {}
    monotonic = True
    for stages in stage_counts:
        for microbatches in microbatch_counts:
            workload = build_pipeline_workload(
                WORKLOAD, stages=stages, microbatches=microbatches,
                layers=layers, settings=settings,
            )
            estimate = estimator.estimate(workload)
            bubbles = estimate.bubble_ratios()
            monotonic = monotonic and (
                bubbles["gpipe"] > bubbles["1f1b"] > bubbles["zero-bubble"]
            )
            steps = {name: s.step_latency for name, s in estimate.schedules.items()}
            grid[f"stages{stages}-mb{microbatches}"] = {
                "stage_layers": list(estimate.stage_layers),
                "bubble_ratio": bubbles,
                "step_ms": {name: step * 1e3 for name, step in steps.items()},
                "overlap_speedup": {
                    name: s.speedup for name, s in estimate.schedules.items()
                },
                "gpipe_over_1f1b_speedup": steps["gpipe"] / steps["1f1b"],
                "1f1b_over_zero_bubble_speedup": steps["1f1b"] / steps["zero-bubble"],
            }
    stats = estimator.plan_store.stats()
    hits_seen = stats["hit_rate"] > 0
    grid["plan_store"] = {
        "lookups": stats["lookups"],
        "hit_rate": stats["hit_rate"],
        "tuner_invocations": stats["tuner_invocations"],
    }
    return grid, monotonic, hits_seen


def _pipeline_tasks(stages: int, microbatches: int) -> list[ReplayTask]:
    """A zero-bubble schedule over slightly imbalanced synthetic stage costs."""
    costs = tuple(
        StageCostVector(
            forward=1e-3 * (1.0 + 0.05 * (s % 3)),
            dgrad=1.1e-3,
            wgrad=0.9e-3,
        )
        for s in range(stages)
    )
    schedule = generate_schedule(
        "zero-bubble", costs, microbatches, fwd_delay=5e-5, bwd_delay=5e-5
    )
    return schedule.tasks()


def _wide_dag_tasks(resources: int, layers: int) -> list[ReplayTask]:
    """A layered DAG wide enough for the numpy frontier sweep."""
    tasks = []
    for layer in range(layers):
        for r in range(resources):
            deps = ()
            if layer:
                deps = (
                    (f"t{layer - 1}-{r}", 0.0),
                    (f"t{layer - 1}-{(r + 1) % resources}", 1e-5),
                )
            tasks.append(
                ReplayTask(
                    name=f"t{layer}-{r}",
                    resource=f"r{r}",
                    duration=1e-4 * ((layer + r) % 7 + 1),
                    deps=deps,
                )
            )
    return tasks


def bench_replay_fast_path(smoke: bool) -> tuple[dict, bool]:
    """Vectorized replay sweep vs the event-by-event reference (bit-identical)."""
    if smoke:
        cases = {
            "pipeline-s8-mb64": _pipeline_tasks(8, 64),
            "wide-dag-r96-l24": _wide_dag_tasks(96, 24),
        }
        repeats = 3
    else:
        cases = {
            "pipeline-s8-mb128": _pipeline_tasks(8, 128),
            "pipeline-s16-mb128": _pipeline_tasks(16, 128),
            "wide-dag-r128-l48": _wide_dag_tasks(128, 48),
            "wide-dag-r256-l64": _wide_dag_tasks(256, 64),
        }
        repeats = 5

    def best_of(tasks: list[ReplayTask], fast: bool):
        result, best = None, float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            result = replay_tasks(tasks, fast=fast)
            best = min(best, time.perf_counter() - start)
        return result, best

    metrics: dict[str, dict] = {}
    identical = True
    total_ref = total_fast = 0.0
    for name, tasks in cases.items():
        reference, ref_s = best_of(tasks, fast=False)
        fast, fast_s = best_of(tasks, fast=True)
        identical = identical and (
            fast.spans == reference.spans
            and fast.makespan == reference.makespan
            and fast.busy == reference.busy
            and fast.work == reference.work
        )
        total_ref += ref_s
        total_fast += fast_s
        metrics[name] = {
            "tasks": len(tasks),
            "reference_s": ref_s,
            "fast_s": fast_s,
            "speedup": ref_s / fast_s,
        }
    metrics["total"] = {
        "reference_s": total_ref,
        "fast_s": total_fast,
        "speedup": total_ref / total_fast,
    }
    return metrics, identical


def _schedule_steps(estimate) -> dict:
    return {
        name: [result.step_latency for result in schedule.methods.values()]
        for name, schedule in estimate.schedules.items()
    }


def bench_checks(smoke: bool) -> dict:
    """Degeneracy / reuse / determinism checks of the pipeline estimator."""
    layers, stage_counts, microbatch_counts = _grid(smoke)
    settings = OverlapSettings()

    def run(reuse: bool):
        workload = build_pipeline_workload(
            WORKLOAD, stages=stage_counts[0], microbatches=microbatch_counts[0],
            layers=layers, settings=settings,
        )
        return PipelineEstimator(settings, reuse=reuse).estimate(workload)

    first, second, unreused = run(True), run(True), run(False)
    deterministic = json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
        second.to_dict(), sort_keys=True
    )
    reuse_identical = json.dumps(_schedule_steps(first), sort_keys=True) == json.dumps(
        _schedule_steps(unreused), sort_keys=True
    )

    degenerate = PipelineEstimator(settings).estimate(
        build_pipeline_workload(WORKLOAD, stages=1, microbatches=1,
                                layers=layers, settings=settings)
    )
    reference = EndToEndEstimator(settings).estimate(
        build_workload(WORKLOAD, layers=layers, settings=settings)
    )
    s1m1_matches = degenerate.microbatch_estimate.to_dict() == reference.to_dict()
    return {
        "deterministic": deterministic,
        "reuse_bit_identical": reuse_identical,
        "s1m1_matches_e2e": s1m1_matches,
    }


def _walk_speedups(metrics: dict, prefix: str = "") -> dict[str, float]:
    """Flatten every ``*speedup*`` ratio in the metrics tree."""
    found: dict[str, float] = {}
    for key, value in metrics.items():
        if isinstance(value, dict):
            found.update(_walk_speedups(value, f"{prefix}{key}."))
        elif "speedup" in key or prefix.rstrip(".").endswith("speedup"):
            found[f"{prefix}{key}"] = float(value)
    return found


def check_regressions(report: dict, baseline_path: Path) -> list[str]:
    """Speedup ratios that regressed >2x vs the committed baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = _walk_speedups(report["metrics"])
    reference = _walk_speedups(baseline.get("metrics", {}))
    failures = []
    for name, ref_value in reference.items():
        cur_value = current.get(name)
        if cur_value is None:
            failures.append(f"{name}: missing from current report (baseline {ref_value:.2f}x)")
        elif cur_value < ref_value / REGRESSION_FACTOR:
            failures.append(
                f"{name}: {cur_value:.2f}x is a >{REGRESSION_FACTOR:g}x regression "
                f"vs baseline {ref_value:.2f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized grid (4 layers)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="report JSON path")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="committed baseline JSON"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero on a >{REGRESSION_FACTOR:g}x speedup regression vs the baseline",
    )
    args = parser.parse_args(argv)

    with obs.observe() as obs_session:
        with obs.span("grid"):
            grid, monotonic, hits_seen = bench_bubble_grid(args.smoke)
        with obs.span("checks"):
            checks = bench_checks(args.smoke)
        with obs.span("replay"):
            replay, replay_identical = bench_replay_fast_path(args.smoke)
    report = {
        "meta": {
            "smoke": args.smoke,
            "workload": WORKLOAD,
            "schedules": list(KNOWN_SCHEDULES),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "metrics": {"grid": grid, "replay": replay},
        "checks": {
            "bubble_strictly_decreasing_everywhere": monotonic,
            "plan_store_reused_across_grid": hits_seen,
            "replay_fast_bit_identical": replay_identical,
            **checks,
        },
        "observability": obs_session.snapshot(command="bench_pp_bubble").to_dict(),
    }

    args.out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.out}")
    for point, payload in grid.items():
        if "bubble_ratio" not in payload:
            continue
        bubbles = payload["bubble_ratio"]
        print(f"  {point:18s} bubble: "
              + "  ".join(f"{name} {bubbles[name] * 100:5.1f}%" for name in KNOWN_SCHEDULES))
    for name, value in sorted(_walk_speedups(report["metrics"]).items()):
        print(f"  {name:60s} {value:8.3f}x")
    for name, ok in report["checks"].items():
        print(f"  {name:60s} {'ok' if ok else 'FAILED'}")

    failed = [name for name, ok in report["checks"].items() if not ok]
    if failed:
        print(f"pp checks failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    if args.check:
        if not args.baseline.exists():
            print(f"baseline {args.baseline} missing; cannot --check", file=sys.stderr)
            return 1
        failures = check_regressions(report, args.baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no >{REGRESSION_FACTOR:g}x regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
