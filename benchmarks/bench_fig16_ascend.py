"""Fig. 16: GEMM+AllReduce speedup on HUAWEI Ascend 910B NPUs.

Demonstrates the adaptability claim: the same signaling/reordering design runs
on a different accelerator + interconnect (Ascend 910B over HCCS with an
HCCL-like collective library) and consistently accelerates typical LLM shapes
under TP=2 and TP=4, up to ~1.4x (the paper reports up to 1.37x).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.comm.primitives import CollectiveKind
from repro.comm.topology import ascend_hccs
from repro.core.config import OverlapProblem
from repro.core.overlap import FlashOverlapOperator
from repro.gpu.device import ASCEND_910B
from repro.workloads.shapes import ascend_suite

from conftest import run_once


def collect(tp, settings):
    topology = ascend_hccs(tp)
    results = []
    for shape in ascend_suite():
        problem = OverlapProblem(
            shape=shape, device=ASCEND_910B, topology=topology,
            collective=CollectiveKind.ALL_REDUCE,
        )
        report = FlashOverlapOperator(problem, settings).report()
        results.append((shape, report))
    return results


@pytest.mark.parametrize("tp", [2, 4])
def test_fig16_ascend_speedup(benchmark, save_report, fast_settings, tp):
    results = run_once(benchmark, lambda: collect(tp, fast_settings))

    rows = [
        [f"{shape.m}x{shape.n}x{shape.k}", report.speedup, report.ratio_of_theoretical]
        for shape, report in results
    ]
    save_report(
        f"fig16_ascend_tp{tp}",
        format_table(["shape", "speedup", "ratio of theoretical"], rows,
                     title=f"Fig. 16 -- GEMM+AR on Ascend 910B, TP={tp}"),
    )

    speedups = [report.speedup for _, report in results]
    # The paper reports consistent acceleration on all tested cases, up to 1.37x.
    assert all(s > 1.0 for s in speedups)
    assert max(speedups) < 1.55
    assert max(speedups) > 1.10
