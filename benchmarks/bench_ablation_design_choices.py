"""Ablations of FlashOverlap's own design choices (DESIGN.md Sec. 5).

Not a single paper figure, but the knobs the paper motivates qualitatively:

* signaling granularity -- tile-wise vs wave-wise vs group-wise signaling
  (Sec. 3.2.3: a wave costs nothing in opportunity but fixes fragmentation);
* search pruning bounds (S1, SP) -- tighter bounds shrink the candidate set
  without losing performance;
* bandwidth-curve sampling density -- the predictor needs only a handful of
  sampled points per decade;
* decomposition chunk count -- the baseline's own tuning knob, showing the
  fragmentation trade-off FlashOverlap avoids.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.comm.bandwidth import AnalyticBandwidthCurve, default_sample_sizes, sample_bandwidth
from repro.comm.primitives import CollectiveKind
from repro.comm.topology import rtx4090_pcie
from repro.core.baselines import NonOverlapBaseline, VanillaDecompositionBaseline
from repro.core.config import OverlapProblem, OverlapSettings
from repro.core.executor import OverlapExecutor
from repro.core.predictor import LatencyPredictor, OfflineProfile
from repro.core.tuner import PredictiveTuner
from repro.core.wave_grouping import WavePartition
from repro.gpu.device import RTX_4090
from repro.gpu.gemm import GemmShape

from conftest import run_once

PROBLEM = OverlapProblem(
    shape=GemmShape(4096, 8192, 8192),
    device=RTX_4090,
    topology=rtx4090_pcie(4),
    collective=CollectiveKind.ALL_REDUCE,
)
SETTINGS = OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


def test_ablation_signal_granularity(benchmark, save_report):
    """Tile-wise signaling drowns in per-call latency; wave-wise fixes most of
    it; tuned grouping recovers the rest."""

    def collect():
        executor = OverlapExecutor(PROBLEM, SETTINGS)
        waves = executor.num_waves()
        non_overlap = NonOverlapBaseline(SETTINGS).latency(PROBLEM)
        comm = executor.comm_model
        tile_bytes = PROBLEM.tile_config().tile_bytes()
        # Tile-wise: one collective call per tile (the strawman of Sec. 3.2.2).
        num_tiles = executor.gemm_contended.num_tiles
        tile_wise_comm = num_tiles * (comm.latency(tile_bytes) + SETTINGS.comm_launch_s)
        tile_wise = max(executor.gemm_contended.duration(PROBLEM.compute_sm_count()), 0) + 0
        tile_wise_latency = max(
            executor.gemm_contended.wave_completion_times(PROBLEM.compute_sm_count())[0],
            0.0,
        ) + tile_wise_comm
        wave_wise = executor.simulate(WavePartition.per_wave(waves)).latency
        tuned = PredictiveTuner(SETTINGS).tune(PROBLEM)
        tuned_latency = executor.simulate(tuned.partition).latency
        return {
            "non-overlap": non_overlap,
            "tile-wise signaling": tile_wise_latency,
            "wave-wise signaling": wave_wise,
            "tuned wave grouping": tuned_latency,
        }

    latencies = run_once(benchmark, collect)
    non_overlap = latencies["non-overlap"]
    rows = [[name, lat * 1e3, non_overlap / lat] for name, lat in latencies.items()]
    save_report(
        "ablation_signal_granularity",
        format_table(["granularity", "latency (ms)", "speedup"], rows,
                     title="Ablation -- signaling granularity (GEMM+AR, 4x RTX 4090)"),
    )
    # Tile-wise fragmentation is catastrophic; wave-wise signaling already
    # removes most of it; the tuned grouping is needed to actually beat the
    # sequential execution on this communication-heavy PCIe case.
    assert latencies["tile-wise signaling"] > non_overlap
    assert latencies["wave-wise signaling"] < latencies["tile-wise signaling"] * 0.5
    assert latencies["tuned wave grouping"] <= latencies["wave-wise signaling"] * 1.001
    assert latencies["tuned wave grouping"] < non_overlap


def test_ablation_pruning_bounds(benchmark, save_report):
    """The (S1, SP) pruning keeps the tuned quality while shrinking the space."""

    def collect():
        executor = OverlapExecutor(PROBLEM, SETTINGS)
        rows = []
        for s1, sp in ((1, 1), (2, 4), (4, 8), (32, 32)):
            settings = OverlapSettings(
                executor_jitter=0.0, bandwidth_profile_noise=0.0,
                max_first_group=s1, max_last_group=sp,
            )
            result = PredictiveTuner(settings).tune(PROBLEM)
            latency = executor.simulate(result.partition).latency
            rows.append((f"S1={s1}, SP={sp}", result.candidates_evaluated, latency))
        return rows

    rows = run_once(benchmark, collect)
    save_report(
        "ablation_pruning_bounds",
        format_table(["bounds", "candidates", "latency (s)"], rows,
                     title="Ablation -- search pruning bounds"),
    )
    latencies = [r[2] for r in rows]
    # The paper's (2, 4) setting loses nothing relative to the widest search.
    assert latencies[1] <= min(latencies) * 1.02


def test_ablation_bandwidth_sampling_density(benchmark, save_report):
    """A few sampled points per decade are enough for accurate prediction."""

    def collect():
        executor = OverlapExecutor(PROBLEM, SETTINGS)
        analytic = AnalyticBandwidthCurve.for_topology(PROBLEM.topology)
        partition = WavePartition.equal_groups(executor.num_waves(), 2)
        actual = executor.simulate(partition).latency
        rows = []
        for points in (1, 2, 4, 8):
            sampled = sample_bandwidth(
                analytic, default_sample_sizes(points_per_decade=points), noise=0.0
            )
            profile = OfflineProfile.build(PROBLEM, SETTINGS)
            predictor = LatencyPredictor(
                OfflineProfile(
                    num_waves=profile.num_waves,
                    wave_time=profile.wave_time,
                    wave_bytes=profile.wave_bytes,
                    comm_model=profile.comm_model.with_curve(sampled),
                    sequential_compute_time=profile.sequential_compute_time,
                ),
                total_bytes=PROBLEM.output_bytes(),
            )
            error = abs(actual - predictor.predict(partition)) / actual
            rows.append((points, sampled.num_samples, error))
        return rows

    rows = run_once(benchmark, collect)
    save_report(
        "ablation_sampling_density",
        format_table(["points/decade", "samples", "prediction error"], rows,
                     title="Ablation -- bandwidth-curve sampling density"),
    )
    assert all(error < 0.10 for _, _, error in rows)


def test_ablation_decomposition_chunks(benchmark, save_report):
    """The decomposition baseline's own knob: more chunks fragment both the
    GEMM and the communication (the trade-off FlashOverlap sidesteps)."""

    def collect():
        non_overlap = NonOverlapBaseline(SETTINGS).latency(PROBLEM)
        return [
            (chunks, non_overlap / VanillaDecompositionBaseline(chunks, SETTINGS).latency(PROBLEM))
            for chunks in (1, 2, 4, 8, 16, 64)
        ]

    rows = run_once(benchmark, collect)
    save_report(
        "ablation_decomposition_chunks",
        format_table(["chunks", "speedup vs non-overlap"], rows,
                     title="Ablation -- decomposition chunk count"),
    )
    speedups = dict(rows)
    assert speedups[64] < max(speedups.values())
    assert max(speedups.values()) < 1.4
