"""Fig. 4: share of end-to-end time spent in "GEMM + collective" pairs.

Reproduces the latency-share breakdown of the four Table 4 applications on the
A800 substrate: the GEMM+AR / GEMM+RS / GEMM+A2A shares should be a
substantial fraction (the paper quotes roughly 30-45% for the TP workloads).
"""

from repro.analysis.breakdown import breakdown_fractions, latency_breakdown_table
from repro.workloads.e2e import llama2_training_workload, paper_workloads

from conftest import run_once


def collect_breakdowns(settings):
    workloads = paper_workloads(settings)
    # Fig. 4 additionally profiles Llama2-7B training under TP=4, PP=2.
    workloads.append(llama2_training_workload(settings=settings))
    return workloads, [breakdown_fractions(w) for w in workloads]


def test_fig04_time_share(benchmark, save_report, fast_settings):
    workloads, fractions = run_once(benchmark, lambda: collect_breakdowns(fast_settings))
    save_report("fig04_time_share", latency_breakdown_table(workloads))

    by_name = {w.name: f for w, f in zip(workloads, fractions)}
    inference = by_name["Llama3-70B inference (TP=8)"]
    training = by_name["Llama3-70B training (TP=8)"]
    moe = by_name["Mixtral-8x7B training (EP=4, TP=2)"]
    t2v = by_name["Step-Video-T2V (TP=4)"]
    llama2 = by_name["Llama2-7B training (TP=4, PP=2)"]
    # Fig. 4: GEMM+RS takes roughly 30% of Llama2-7B training time.
    assert 0.15 < llama2["GEMM+RS"] < 0.45

    # TP inference / T2V: GEMM+AR is a large share of the end-to-end time.
    assert 0.25 < inference["GEMM+AR"] < 0.55
    assert 0.20 < t2v["GEMM+AR"] < 0.55
    # TP training replaces AllReduce by ReduceScatter.
    assert training["GEMM+RS"] > 0.15
    assert training["GEMM+AR"] == 0.0
    # MoE training has a visible GEMM+A2A share.
    assert moe["GEMM+A2A"] > 0.05
    # Every workload keeps a non-trivial "others" share.
    for name, shares in by_name.items():
        assert shares["others"] > 0.3, name
        assert abs(sum(shares.values()) - 1.0) < 1e-9
