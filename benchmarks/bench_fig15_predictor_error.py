"""Fig. 15: CDF of the latency-prediction error and search quality.

Evaluates the predictor over many (shape, partition, parallelism) combinations
on both server types, reports the error CDF, and checks the paper's two
claims: the mean error stays below ~5%, and the predictive search reaches
>99% of the exhaustive search's performance (claim C2).
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.comm.primitives import CollectiveKind
from repro.comm.topology import a800_nvlink, rtx4090_pcie
from repro.core.config import OverlapProblem
from repro.core.executor import OverlapExecutor
from repro.core.predictor import LatencyPredictor, OfflineProfile
from repro.core.tuner import search_quality
from repro.core.wave_grouping import WavePartition
from repro.gpu.device import A800, RTX_4090
from repro.workloads.shapes import operator_suite

from conftest import run_once

SERVERS = {
    "rtx4090": (RTX_4090, rtx4090_pcie),
    "a800": (A800, a800_nvlink),
}
GROUP_SIZES = (1, 2, 3, 4, 6, 8, 12, 16)


def collect_errors(family, settings):
    device, topo_builder = SERVERS[family]
    errors = []
    for collective in (CollectiveKind.ALL_REDUCE, CollectiveKind.REDUCE_SCATTER):
        suite = operator_suite(collective, family, mn_points=3, k_points=3)
        for n_gpus in (2, 4):
            topology = topo_builder(n_gpus)
            for shape in suite:
                problem = OverlapProblem(
                    shape=shape, device=device, topology=topology, collective=collective
                )
                executor = OverlapExecutor(problem, settings)
                predictor = LatencyPredictor(
                    OfflineProfile.build(problem, settings), total_bytes=problem.output_bytes()
                )
                for group in GROUP_SIZES:
                    partition = WavePartition.equal_groups(executor.num_waves(), group)
                    predicted = predictor.predict(partition)
                    actual = executor.simulate(partition).latency
                    errors.append((actual - predicted) / actual)
    return np.array(errors)


@pytest.mark.parametrize("family", ["rtx4090", "a800"])
def test_fig15_prediction_error_cdf(benchmark, save_report, fast_settings, family):
    errors = run_once(benchmark, lambda: collect_errors(family, fast_settings))
    abs_errors = np.abs(errors)

    percentiles = [10, 25, 50, 75, 90, 95, 99]
    rows = [[f"p{p}", float(np.percentile(abs_errors, p))] for p in percentiles]
    rows.append(["mean", float(abs_errors.mean())])
    rows.append(["cases", int(abs_errors.size)])
    save_report(
        f"fig15_error_cdf_{family}",
        format_table(["percentile", "error ratio"], rows,
                     title=f"Fig. 15 -- prediction error CDF on {family} ({abs_errors.size} cases)"),
    )

    # Paper: >250 combinations per GPU type, average error ratio ~3.4%.
    assert abs_errors.size >= 250
    assert abs_errors.mean() < 0.06
    assert np.percentile(abs_errors, 90) < 0.12
    # The executor adds real overheads, so the actual latency is (almost)
    # always at or above the prediction.
    assert np.mean(errors >= -1e-9) > 0.95


def test_fig15_search_quality(benchmark, save_report, fast_settings):
    problems = [
        OverlapProblem(shape, RTX_4090, rtx4090_pcie(4), CollectiveKind.ALL_REDUCE)
        for shape in operator_suite(CollectiveKind.ALL_REDUCE, "rtx4090", mn_points=3, k_points=2)
    ] + [
        OverlapProblem(shape, A800, a800_nvlink(4), CollectiveKind.REDUCE_SCATTER)
        for shape in operator_suite(CollectiveKind.REDUCE_SCATTER, "a800", mn_points=3, k_points=2)
    ]

    def collect():
        return [search_quality(problem, fast_settings) for problem in problems]

    qualities = run_once(benchmark, collect)
    ratios = np.array([q["performance_ratio"] for q in qualities])
    rows = [
        [p.describe(), q["performance_ratio"]] for p, q in zip(problems, qualities)
    ]
    save_report(
        "fig15_search_quality",
        format_table(["problem", "predictive / exhaustive"], rows,
                     title="Claim C2 -- predictive search vs exhaustive search"),
    )
    # Claim C2: the predictive search achieves > 99% of the exhaustive
    # search's performance on average (and never collapses).
    assert ratios.mean() > 0.99
    assert ratios.min() > 0.95
