"""Perf harness for the auto-parallelism planner (``repro plan``).

A standalone CLI (like ``bench_pp_bubble.py``) that runs the joint
TP x stages x microbatches x schedule x overlap search over one 8-GPU A800
server and emits a machine-readable ``BENCH_plan.json``:

* **search efficiency**: candidate shells, priced batches, pruned batches
  and the plan-store hit rate of the sweep (the search must serve more than
  half of its lookups from cache);
* **frontier**: the latency/memory Pareto points and their mutual
  non-domination;
* **winner gains**: the overlap-over-non-overlap speedup at the winning
  configuration, the winner's gain over the best GPipe/non-overlap
  configuration (the classic baseline) and over the worst priced
  configuration -- deterministic ratios, portable across machines;
* **soundness checks**: pruning never changes the frontier, repeated
  searches are bit-identical, and the winner replays bit-identically
  through the ``repro pp`` / ``repro e2e`` paths.

``--check`` compares every ``*speedup*`` ratio against a committed baseline
(``benchmarks/BENCH_plan_baseline.json``) and exits non-zero on a >2x
regression; ratios rather than absolute times are compared so the gate is
portable across CI machines.

Usage::

    python benchmarks/bench_plan_search.py            # full space (8 paper layers)
    python benchmarks/bench_plan_search.py --smoke    # CI-sized space (4 layers)
    python benchmarks/bench_plan_search.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro import obs
from repro.atomic import atomic_write_text
from repro.cluster import ClusterSpec
from repro.plan import dominates, search_plan, verify_replay

DEFAULT_OUT = Path(__file__).resolve().parent / "output" / "BENCH_plan.json"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_plan_baseline.json"

WORKLOAD = "llama3-training"

#: Fail --check when a speedup ratio drops below baseline / REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0


def _space(smoke: bool) -> dict:
    """The searched space: the CI-sized smoke grid or the paper-sized one."""
    if smoke:
        return dict(layers=4, tp_degrees=(2, 4, 8), microbatch_counts=(2, 4, 8))
    return dict(layers=8, tp_degrees=None, microbatch_counts=None)


def bench_search(smoke: bool) -> tuple[dict, dict]:
    """Run the search (plus determinism / soundness replicas); build the report."""
    space = _space(smoke)
    cluster = ClusterSpec(gpus=8)

    report = search_plan(workload=WORKLOAD, cluster=cluster, **space)
    replica = search_plan(workload=WORKLOAD, cluster=cluster, **space)
    unpruned = search_plan(workload=WORKLOAD, cluster=cluster, **space, prune=False)

    winner = report.winner
    points = report.points
    frontier = report.frontier
    step = winner.predicted["step_latency"]
    gpipe_baseline = min(
        p.step_latency for p in points
        if p.schedule == "gpipe" and p.method == "non-overlap"
    )
    worst = max(p.step_latency for p in points)
    stats = report.plan_stats

    metrics = {
        "search": {
            "shells": report.space["shells"],
            "batches": report.space["batches"],
            "evaluated": report.space["evaluated"],
            "pruned": len(report.space["pruned"]),
            "points": len(points),
            "store_hit_rate": stats["search_hit_rate"],
            "tuner_invocations": stats["tuner_invocations"],
        },
        "frontier": {
            "size": len(frontier),
            "points": [point.to_dict() for point in frontier],
        },
        "winner": {
            "config": winner.describe(),
            "step_ms": step * 1e3,
            "peak_activation_mib": winner.predicted["peak_activation_bytes"] / 2**20,
            "bubble_ratio": winner.predicted["bubble_ratio"],
            "overlap_speedup": winner.predicted["speedup"],
            "over_gpipe_non_overlap_speedup": gpipe_baseline / step,
            "over_worst_config_speedup": worst / step,
        },
    }
    checks = {
        "deterministic": report.to_json() == replica.to_json(),
        "frontier_nondominated": all(
            not dominates(a, b) for a in frontier for b in frontier
        ),
        "frontier_large_enough": len(frontier) >= (3 if smoke else 2),
        "prune_invariant_frontier": (
            {p.config_key for p in frontier} == {p.config_key for p in unpruned.frontier}
        ),
        "store_hit_rate_above_half": stats["search_hit_rate"] > 0.5,
        "winner_replays_bit_identical": verify_replay(winner)["matches"],
    }
    return metrics, checks


def _walk_speedups(metrics: dict, prefix: str = "") -> dict[str, float]:
    """Flatten every ``*speedup*`` ratio in the metrics tree."""
    found: dict[str, float] = {}
    for key, value in metrics.items():
        if isinstance(value, dict):
            found.update(_walk_speedups(value, f"{prefix}{key}."))
        elif isinstance(value, (int, float)) and "speedup" in key:
            found[f"{prefix}{key}"] = float(value)
    return found


def check_regressions(report: dict, baseline_path: Path) -> list[str]:
    """Speedup ratios that regressed >2x vs the committed baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = _walk_speedups(report["metrics"])
    reference = _walk_speedups(baseline.get("metrics", {}))
    failures = []
    for name, ref_value in reference.items():
        cur_value = current.get(name)
        if cur_value is None:
            failures.append(f"{name}: missing from current report (baseline {ref_value:.2f}x)")
        elif cur_value < ref_value / REGRESSION_FACTOR:
            failures.append(
                f"{name}: {cur_value:.2f}x is a >{REGRESSION_FACTOR:g}x regression "
                f"vs baseline {ref_value:.2f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized space (4 layers)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="report JSON path")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="committed baseline JSON"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero on a >{REGRESSION_FACTOR:g}x speedup regression vs the baseline",
    )
    args = parser.parse_args(argv)

    with obs.observe() as obs_session:
        with obs.span("search"):
            metrics, checks = bench_search(args.smoke)
    report = {
        "meta": {
            "smoke": args.smoke,
            "workload": WORKLOAD,
            "cluster": ClusterSpec(gpus=8).to_dict(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "metrics": metrics,
        "checks": checks,
        "observability": obs_session.snapshot(command="bench_plan_search").to_dict(),
    }

    args.out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.out}")
    search = metrics["search"]
    print(f"  search: {search['evaluated']}/{search['batches']} batches priced "
          f"({search['pruned']} pruned), {search['points']} points, "
          f"{search['store_hit_rate'] * 100:.1f}% store hits")
    print(f"  winner: {metrics['winner']['config']}")
    for name, value in sorted(_walk_speedups(metrics).items()):
        print(f"  {name:50s} {value:8.3f}x")
    for name, ok in checks.items():
        print(f"  {name:50s} {'ok' if ok else 'FAILED'}")

    failed = [name for name, ok in checks.items() if not ok]
    if failed:
        print(f"plan checks failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    if args.check:
        if not args.baseline.exists():
            print(f"baseline {args.baseline} missing; cannot --check", file=sys.stderr)
            return 1
        failures = check_regressions(report, args.baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no >{REGRESSION_FACTOR:g}x regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
