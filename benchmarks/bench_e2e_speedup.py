"""Perf harness for the end-to-end estimator (``repro.e2e``).

A standalone CLI (like ``bench_serving_throughput.py``) that measures the
whole-model estimator over all five paper workloads and emits a
machine-readable ``BENCH_e2e.json``:

* **plan reuse benefit**: the same estimate with the shared plan store vs
  with reuse disabled (every operator occurrence re-tunes); reports
  wall-clock speedup and tuner invocations per overlap-target lookup, and
  asserts the reported latencies are bit-identical (reuse is a pure
  optimisation);
* **end-to-end speedups**: the simulated Table 4 numbers -- FlashOverlap
  over the non-overlap execution and the perfect-overlap bound per workload
  -- deterministic ratios, portable across machines;
* **reuse structure**: plan-store hit rate and tuner invocations per lookup
  (repeated layers and shared shapes must produce hits).

``--check`` compares the speedup ratios against a committed baseline
(``benchmarks/BENCH_e2e_baseline.json``) and exits non-zero on a >2x
regression; ratios rather than absolute times are compared so the gate is
portable across CI machines.

Usage::

    python benchmarks/bench_e2e_speedup.py            # full run (paper layer counts)
    python benchmarks/bench_e2e_speedup.py --smoke    # CI-sized run (2 layers)
    python benchmarks/bench_e2e_speedup.py --smoke --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro import obs
from repro.atomic import atomic_write_text
from repro.core.config import OverlapSettings
from repro.e2e import estimate_models

DEFAULT_OUT = Path(__file__).resolve().parent / "output" / "BENCH_e2e.json"
DEFAULT_BASELINE = Path(__file__).resolve().parent / "BENCH_e2e_baseline.json"

#: Fail --check when a speedup ratio drops below baseline / REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0


def _run(smoke: bool, reuse: bool):
    """One estimate of all five workloads; returns (report, wall seconds)."""
    settings = OverlapSettings()
    layers = 2 if smoke else None
    start = time.perf_counter()
    report = estimate_models(layers=layers, settings=settings, reuse=reuse)
    return report, time.perf_counter() - start


def _totals(report) -> dict:
    """The latencies the reuse arms must agree on, bit for bit."""
    return {
        estimate.name: [
            estimate.overlap_total,
            estimate.non_overlap_total,
            estimate.theoretical_total,
        ]
        for estimate in report.estimates
    }


def bench_plan_reuse(smoke: bool) -> tuple[dict, bool, bool]:
    """Shared-store vs no-reuse wall time (identical reported latencies)."""
    reused, reused_s = _run(smoke, reuse=True)
    unreused, unreused_s = _run(smoke, reuse=False)
    stats = reused.plan_stats
    transparent = json.dumps(_totals(reused), sort_keys=True) == json.dumps(
        _totals(unreused), sort_keys=True
    )
    hits_seen = stats["hit_rate"] > 0
    return {
        "lookups": stats["lookups"],
        "distinct_plans": stats["size"],
        "hit_rate": stats["hit_rate"],
        "tuner_invocations_reused": stats["tuner_invocations"],
        "tuner_invocations_unreused": unreused.plan_stats["tuner_invocations"],
        "tuner_invocations_per_lookup": stats["tuner_invocations"] / stats["lookups"],
        "reused_s": reused_s,
        "unreused_s": unreused_s,
        # Wall-clock ratio: informational only.  Deliberately NOT named
        # "speedup" so the --check gate (which compares every speedup ratio)
        # never fails on machine-load jitter; the gated ratios are the
        # deterministic simulated speedups below.
        "wall_speedup": unreused_s / reused_s,
    }, transparent, hits_seen


def bench_e2e_speedups(smoke: bool) -> tuple[dict, bool, bool]:
    """Simulated whole-model speedups per workload plus determinism check."""
    report, _ = _run(smoke, reuse=True)
    repeat, _ = _run(smoke, reuse=True)
    deterministic = json.dumps(report.to_dict(), sort_keys=True) == json.dumps(
        repeat.to_dict(), sort_keys=True
    )
    per_workload = {}
    for estimate in report.estimates:
        per_workload[estimate.name] = {
            "layers": estimate.layers,
            "non_overlap_ms": estimate.non_overlap_total * 1e3,
            "overlap_ms": estimate.overlap_total * 1e3,
            "bound_ms": estimate.theoretical_total * 1e3,
            "speedup": estimate.speedup,
            "bound_speedup": estimate.bound_speedup,
            "plan_hit_rate": estimate.plan_stats["hit_rate"],
        }
    all_speed_up = all(e.speedup > 1.0 for e in report.estimates)
    return per_workload, deterministic, all_speed_up


def _walk_speedups(metrics: dict, prefix: str = "") -> dict[str, float]:
    """Flatten every ``speedup`` ratio in the metrics tree."""
    found: dict[str, float] = {}
    for key, value in metrics.items():
        if isinstance(value, dict):
            found.update(_walk_speedups(value, f"{prefix}{key}."))
        elif key in ("speedup", "bound_speedup"):
            found[f"{prefix}{key}"] = float(value)
    return found


def check_regressions(report: dict, baseline_path: Path) -> list[str]:
    """Speedup ratios that regressed >2x vs the committed baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = _walk_speedups(report["metrics"])
    reference = _walk_speedups(baseline.get("metrics", {}))
    failures = []
    for name, ref_value in reference.items():
        cur_value = current.get(name)
        if cur_value is None:
            failures.append(f"{name}: missing from current report (baseline {ref_value:.2f}x)")
        elif cur_value < ref_value / REGRESSION_FACTOR:
            failures.append(
                f"{name}: {cur_value:.2f}x is a >{REGRESSION_FACTOR:g}x regression "
                f"vs baseline {ref_value:.2f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run (2 layers per model)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="report JSON path")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="committed baseline JSON"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero on a >{REGRESSION_FACTOR:g}x speedup regression vs the baseline",
    )
    args = parser.parse_args(argv)

    with obs.observe() as obs_session:
        with obs.span("plan_reuse"):
            reuse, reuse_transparent, hits_seen = bench_plan_reuse(args.smoke)
        with obs.span("workloads"):
            workloads, deterministic, all_speed_up = bench_e2e_speedups(args.smoke)
    report = {
        "meta": {
            "smoke": args.smoke,
            "workloads": sorted(workloads),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "metrics": {
            "plan_reuse": reuse,
            "workloads": workloads,
        },
        "checks": {
            "deterministic": deterministic,
            "reuse_bit_identical": reuse_transparent,
            "repeated_layers_hit_store": hits_seen,
            "fewer_tunes_than_lookups": reuse["tuner_invocations_reused"] < reuse["lookups"],
            "every_workload_speeds_up": all_speed_up,
        },
        "observability": obs_session.snapshot(command="bench_e2e_speedup").to_dict(),
    }

    args.out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.out}")
    print(f"  {'plan_reuse.wall_speedup (not gated)':60s} {reuse['wall_speedup']:8.2f}x")
    for name, value in _walk_speedups(report["metrics"]).items():
        print(f"  {name:60s} {value:8.2f}x")
    print(f"  {'tuner invocations / lookup':60s} "
          f"{reuse['tuner_invocations_per_lookup']:8.4f}")
    for name, ok in report["checks"].items():
        print(f"  {name:60s} {'ok' if ok else 'FAILED'}")

    failed = [name for name, ok in report["checks"].items() if not ok]
    if failed:
        print(f"e2e checks failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    if args.check:
        if not args.baseline.exists():
            print(f"baseline {args.baseline} missing; cannot --check", file=sys.stderr)
            return 1
        failures = check_regressions(report, args.baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION {failure}", file=sys.stderr)
            return 1
        print(f"no >{REGRESSION_FACTOR:g}x regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
