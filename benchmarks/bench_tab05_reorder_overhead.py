"""Table 5: overhead of the fused pre/post-communication reorderings.

Reproduces the two halves of Table 5 on both devices:

* the post-communication reorder fused into an RMSNorm kernel (tile /
  sub-tile / sub-token granularity) stays around or below ~10%,
* the pre-communication reorder fused into the GEMM epilogue stays below 1%.

The bench also measures the functional reorder cost on NumPy data (gather +
scatter of every tile) relative to the element-wise operator itself, as a
sanity check that the index arithmetic is cheap.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.gpu.device import A800, RTX_4090
from repro.gpu.epilogue import REORDER_UNITS, ReorderOverheadModel
from repro.gpu.gemm import GemmShape, GemmTileConfig

from conftest import run_once

#: Overhead sweep from the paper: M=128..32768, N=1024..8192, K=1024..32768.
SWEEP = [
    GemmShape(128, 1024, 1024),
    GemmShape(1024, 4096, 4096),
    GemmShape(4096, 8192, 8192),
    GemmShape(16384, 8192, 16384),
    GemmShape(32768, 8192, 32768),
]


def collect_overheads():
    config = GemmTileConfig(tile_m=128, tile_n=128)
    table = {}
    for device in (A800, RTX_4090):
        model = ReorderOverheadModel(device)
        for unit in REORDER_UNITS:
            rmsnorm = float(np.mean([
                model.elementwise_overhead(unit, config, n_gpus=4, shape=shape) for shape in SWEEP
            ]))
            gemm = float(np.mean([
                model.gemm_epilogue_overhead(unit, config, n_gpus=4, shape=shape) for shape in SWEEP
            ]))
            table[(device.name, unit)] = (rmsnorm, gemm)
    return table


def test_tab05_reorder_overhead(benchmark, save_report):
    table = run_once(benchmark, collect_overheads)

    rows = [
        [device, unit, f"{rmsnorm * 100:.2f}%", f"{gemm * 100:.2f}%"]
        for (device, unit), (rmsnorm, gemm) in table.items()
    ]
    save_report(
        "tab05_reorder_overhead",
        format_table(["device", "unit", "RMSNorm overhead", "GEMM overhead"], rows,
                     title="Table 5 -- average overhead of the fused reorderings"),
    )

    for (device, unit), (rmsnorm, gemm) in table.items():
        # Claim C3: RMSNorm overhead ~<10%, GEMM overhead <1%.
        assert rmsnorm < 0.11, (device, unit)
        assert gemm < 0.01, (device, unit)
    # Finer granularity costs more; A800 (higher HBM bandwidth) costs less.
    for device in (A800.name, RTX_4090.name):
        assert table[(device, "tile")][0] <= table[(device, "subtile")][0] <= table[(device, "subtoken")][0]
    for unit in REORDER_UNITS:
        assert table[(A800.name, unit)][0] < table[(RTX_4090.name, unit)][0]


def test_tab05_functional_reorder_cost(benchmark, save_report, rng=np.random.default_rng(0)):
    """Functional check: a full gather+scatter pass over the output touches each
    element twice -- the same order of work as the RMSNorm it is fused into."""
    from repro.tensor.layout import TileLayout
    from repro.tensor.tiles import gather_tiles, scatter_tiles
    from repro.gpu.swizzle import swizzled_order

    layout = TileLayout(m=512, n=512, tile_m=64, tile_n=64)
    matrix = rng.standard_normal((512, 512))
    order = swizzled_order(layout, 3)

    def reorder_round_trip():
        buffer = gather_tiles(matrix, layout, order)
        out = np.zeros_like(matrix)
        scatter_tiles(out, layout, order, buffer)
        return out

    out = benchmark(reorder_round_trip)
    np.testing.assert_array_equal(out, matrix)
    save_report(
        "tab05_functional_roundtrip",
        f"gather+scatter round trip over a {layout.m}x{layout.n} matrix "
        f"({layout.num_tiles} tiles) verified bit-exact",
    )
