"""End-to-end exercise of the parallel scenario-sweep subsystem.

Fans a multi-preset scenario matrix out over worker processes, persists the
JSONL result store and the shape-cache warm start, then re-runs with resume
enabled and checks that no job is re-executed and no shape is re-tuned --
the contract the CI smoke job relies on.
"""

import pytest

from repro.core.tuner import GemmShapeCache
from repro.sweep import (
    ResultStore,
    SweepRunner,
    group_summary_table,
    matrix_from_preset,
    scenario_table,
)

from conftest import run_once, scaled


@pytest.fixture
def matrices(smoke):
    names = scaled(smoke, ["llm-inference", "moe-alltoall", "table3-ar-rtx4090"], ["smoke"])
    return [matrix_from_preset(name) for name in names]


def test_sweep_matrix_end_to_end(benchmark, save_report, tmp_path, matrices, smoke):
    store = ResultStore(tmp_path / "sweep.jsonl")
    cache_path = tmp_path / "shapes.json"

    def collect():
        runner = SweepRunner(store, workers=2, cache_path=str(cache_path))
        return [runner.run(matrix) for matrix in matrices]

    summaries = run_once(benchmark, collect)
    records = [record for summary in summaries for record in summary.records]

    total = sum(summary.total_scenarios for summary in summaries)
    assert total >= 12
    assert sum(summary.executed for summary in summaries) == total
    assert sum(summary.failed for summary in summaries) == 0

    report = (
        scenario_table(records, title="sweep -- per-scenario results")
        + "\n\n"
        + group_summary_table(records, title="sweep -- per-group summary")
    )
    save_report("sweep_matrix" + ("_smoke" if smoke else ""), report)

    # The persisted artefacts exist and are loadable.
    assert store.path.exists()
    assert len(store.completed_ids()) == total
    cache = GemmShapeCache.load(cache_path)
    assert len(cache) > 0

    # Resume: a re-run over the same matrices executes nothing.
    resumed = SweepRunner(store, workers=2, resume=True, cache=cache)
    for matrix in matrices:
        summary = resumed.run(matrix)
        assert summary.executed == 0
        assert summary.tuned == 0
