#!/usr/bin/env python3
"""Inside the tuner: design space, predictive search and the shape cache.

Shows what the real-time tuning stage of FlashOverlap does for one GEMM+RS
operator on simulated A800 GPUs:

* how large the raw wave-grouping design space is and what the pruning keeps,
* how well the latency predictor tracks the (simulated) ground truth,
* that the predictive search matches the exhaustive search,
* how the nearest-neighbour shape cache avoids re-tuning similar shapes.

Run with:  python examples/tuning_and_search.py
"""

from __future__ import annotations

from repro import A800, CollectiveKind, GemmShape, OverlapProblem, WavePartition, a800_nvlink
from repro.analysis.reporting import format_table
from repro.core.executor import OverlapExecutor
from repro.core.predictor import LatencyPredictor, OfflineProfile
from repro.core.tuner import ExhaustiveTuner, GemmShapeCache, PredictiveTuner
from repro.core.wave_grouping import design_space_size


def main() -> None:
    problem = OverlapProblem(
        shape=GemmShape(m=16384, n=8192, k=2048),
        device=A800,
        topology=a800_nvlink(4),
        collective=CollectiveKind.REDUCE_SCATTER,
    )
    executor = OverlapExecutor(problem)
    waves = executor.num_waves()
    print(f"problem      : {problem.describe()}")
    print(f"waves        : {waves}")
    print(f"design space : 2^(T-1) = {design_space_size(min(waves, 60)):,} partitions\n")

    # Predictor vs ground truth for a few equal-size groupings.
    profile = OfflineProfile.build(problem)
    predictor = LatencyPredictor(profile, total_bytes=problem.output_bytes())
    rows = []
    for group in (1, 2, 4, 8, 16):
        partition = WavePartition.equal_groups(waves, group)
        predicted = predictor.predict(partition) * 1e3
        actual = executor.simulate(partition).latency * 1e3
        rows.append([f"equal groups of {group}", f"{predicted:.3f}", f"{actual:.3f}",
                     f"{abs(actual - predicted) / actual * 100:.2f}%"])
    print(format_table(["partition", "predicted (ms)", "simulated (ms)", "error"], rows,
                       title="Latency predictor vs simulation"))

    # Predictive search vs exhaustive search over the same candidate family.
    predictive = PredictiveTuner().tune(problem)
    exhaustive = ExhaustiveTuner().tune(problem, executor)
    predictive_actual = executor.simulate(predictive.partition).latency * 1e3
    exhaustive_actual = executor.simulate(exhaustive.partition).latency * 1e3
    print()
    print(f"predictive search : {predictive.partition}  -> {predictive_actual:.3f} ms "
          f"({predictive.candidates_evaluated} candidates, predictor only)")
    print(f"exhaustive search : {exhaustive.partition}  -> {exhaustive_actual:.3f} ms "
          f"({exhaustive.candidates_evaluated} candidates, fully simulated)")
    print(f"predictive reaches {exhaustive_actual / predictive_actual * 100:.2f}% "
          f"of the exhaustive search's performance\n")

    # Shape cache: nearby shapes reuse the tuned partition.
    cache = GemmShapeCache()
    tuner = PredictiveTuner()
    cache.lookup_or_tune(problem, tuner)
    nearby = problem.with_shape(GemmShape(m=16384, n=8192, k=2304))
    reused = cache.lookup_or_tune(nearby, tuner)
    print(f"shape cache: {len(cache)} entr{'y' if len(cache) == 1 else 'ies'} after tuning "
          f"{problem.shape} and looking up {nearby.shape}")
    print(f"reused partition for the nearby shape: {reused.partition}")


if __name__ == "__main__":
    main()
