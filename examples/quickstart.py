#!/usr/bin/env python3
"""Quickstart: overlap one GEMM with its AllReduce on a simulated 4x RTX 4090.

Walks through the whole FlashOverlap flow on a single operator:

1. describe the problem (GEMM shape, device, topology, collective),
2. tune the wave-group partition with the predictive search,
3. simulate the overlapped execution and compare against the sequential
   baseline and the perfect-overlap bound,
4. verify numerical correctness of the reordering pipeline on a small
   instance of the same problem.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CollectiveKind,
    FlashOverlapOperator,
    GemmShape,
    GemmTileConfig,
    OverlapProblem,
    RTX_4090,
    rtx4090_pcie,
)
from repro.gpu.device import GPUSpec
from repro.comm.topology import Topology, InterconnectKind


def operator_level_demo() -> None:
    """Tune and simulate a realistic operator-level case."""
    problem = OverlapProblem(
        shape=GemmShape(m=4096, n=8192, k=7168),
        device=RTX_4090,
        topology=rtx4090_pcie(4),
        collective=CollectiveKind.ALL_REDUCE,
    )
    operator = FlashOverlapOperator(problem)

    plan = operator.plan()
    print(f"problem          : {problem.describe()}")
    print(f"waves            : {plan.partition.num_waves}")
    print(f"tuned partition  : {plan.partition} "
          f"({plan.tuning.candidates_evaluated} candidates evaluated)")

    report = operator.report()
    print(f"non-overlap      : {report.non_overlap_latency * 1e3:8.3f} ms")
    print(f"FlashOverlap     : {report.overlap_latency * 1e3:8.3f} ms")
    print(f"perfect overlap  : {report.theoretical_latency * 1e3:8.3f} ms")
    print(f"speedup          : {report.speedup:.3f}x "
          f"({report.ratio_of_theoretical * 100:.1f}% of the theoretical bound)")

    result = operator.simulate(plan)
    print("\ntimeline (compute stream vs communication stream):")
    print(result.trace.render_ascii(width=76))


def correctness_demo() -> None:
    """Check that reorder -> NCCL-style collective -> reorder is exact."""
    tiny_device = GPUSpec(name="tiny-gpu", sm_count=8, fp16_tflops=4.0, hbm_bandwidth_gbps=200.0)
    tiny_topology = Topology(
        name="tiny-pcie", n_gpus=4, kind=InterconnectKind.PCIE,
        peak_bus_bandwidth_gbps=10.0, base_latency_us=20.0, half_saturation_mb=0.5,
        comm_sm_count=2, supports_p2p=False,
    )
    problem = OverlapProblem(
        shape=GemmShape(m=64, n=48, k=32),
        device=tiny_device,
        topology=tiny_topology,
        collective=CollectiveKind.ALL_REDUCE,
        gemm_config=GemmTileConfig(tile_m=8, tile_n=8, tile_k=8, swizzle_size=3),
    )
    operator = FlashOverlapOperator(problem)
    result = operator.run_numeric(compute_gemm=True, rng=np.random.default_rng(0))
    status = "all close" if result.allclose() else "MISMATCH"
    print(f"\nnumerical check  : {status} "
          f"(max |error| = {result.max_abs_error():.2e}, "
          f"{result.groups_communicated} wave groups communicated)")


if __name__ == "__main__":
    operator_level_demo()
    correctness_demo()
