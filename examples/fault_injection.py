#!/usr/bin/env python3
"""Chaos-test the serving simulator with a deterministic fault plan.

Walks through the robustness layer end to end:

1. run the CI-sized serving scenario against the ``replica-crash`` preset
   and read the degraded-mode axis off the report (availability, recovery,
   retry amplification, goodput under failure vs fault-free),
2. load the mixed fault plan from ``examples/fault_plan.json`` and serve
   through it with retries, a per-request deadline and a warm spare,
3. verify the chaos run replays byte-identically (same seed + same plan
   ⇒ the same report, bit for bit).

Run with:  python examples/fault_injection.py
"""

from __future__ import annotations

from pathlib import Path

import repro.api as api
from repro.comm.topology import a800_nvlink
from repro.faults import FaultPlan, ResiliencePolicy, RetryPolicy, verify_fault_replay
from repro.serve import PoissonArrivals, ServeConfig, distribution_by_name

PLAN_JSON = Path(__file__).with_name("fault_plan.json")


def preset_demo() -> None:
    """One crash mid-run: what does it cost?"""
    report = api.serve(smoke=True, fault_preset="replica-crash")
    print(report.summary_table())
    print()
    summary = report.fault_summary()
    print(f"availability            : {summary['availability']:.1%}")
    print(f"mean recovery           : {summary['recovery_s']['mean'] * 1e3:.0f} ms")
    print(f"goodput under failure   : {summary['goodput_under_failure_rps']:.1f} req/s")
    print(f"vs fault-free           : {summary['goodput_ratio_vs_fault_free']:.3f}x")


def custom_plan_demo() -> None:
    """Serve through the example plan with the full resilience policy on."""
    report = api.serve(
        smoke=True,
        faults=str(PLAN_JSON),
        retry_policy="retries=3,backoff=0.05,multiplier=2,jitter=0.25",
        deadline=5.0,
        admission_limit=32,
        warm_spares=1,
    )
    summary = report.fault_summary()
    print(f"plan                    : {summary['plan']}")
    print(f"retry amplification     : {summary['retry_amplification']:.2f}x")
    print(f"dropped/shed/timed out  : {summary['dropped']}/{summary['shed']}"
          f"/{summary['timed_out']}")


def replay_demo() -> None:
    """Same seed + same fault plan => byte-identical chaos run."""
    config = ServeConfig(layers=2, max_batch_tokens=4096, max_batch_size=16,
                         topology=a800_nvlink(4))
    requests = PoissonArrivals(
        rate_rps=64.0,
        distribution=distribution_by_name("summarize"),
        seed=0,
        num_requests=16,
    ).generate()
    plan = FaultPlan.load(PLAN_JSON)
    policy = ResiliencePolicy(retry=RetryPolicy(max_retries=2), deadline_s=5.0)
    result = verify_fault_replay(config, requests, plan, policy)
    for name, ok in result["checks"].items():
        print(f"{name:<24}: {'ok' if ok else 'MISMATCH'}")
    assert result["matches"], "chaos run did not replay bit-identically"


if __name__ == "__main__":
    print("=== replica-crash preset ===")
    preset_demo()
    print()
    print("=== custom fault plan + resilience policy ===")
    custom_plan_demo()
    print()
    print("=== bit-identical replay ===")
    replay_demo()
