#!/usr/bin/env python3
"""Profiling a run with the observability layer (`repro.obs`).

Three ways to see inside a run:

1. `api.plan(..., profile=True)` -- the facade opens an observability
   session, runs the search inside a root span and attaches the frozen
   `ProfileSnapshot` to the report (`report.profile`, and the
   `observability` key of `to_dict()`);
2. a manual `obs.observe()` session around any library calls, then
   `session.snapshot()` -- the same data without going through a facade;
3. the CLI equivalents: `repro plan --smoke --profile` (tables) and
   `--profile-json profile.json` (machine-readable snapshot).

Run with:  python examples/profiling.py
"""

from __future__ import annotations

import json

import repro.api as api
from repro import obs


def profiled_facade_call() -> None:
    """The one-liner: profile=True on any api.* function."""
    report = api.plan("llama3-training", smoke=True, profile=True)
    snapshot = report.profile

    print(snapshot.phase_table())
    print()
    print(snapshot.metrics_table())
    print()

    counters = snapshot.metrics["counters"]
    print(f"winner        : {report.winner.describe()}")
    print(f"priced        : {counters['plan.batches_evaluated']} batches "
          f"({counters['plan.batches_pruned']} pruned, "
          f"{counters['plan.batches_skipped']} skipped)")
    print(f"plan store    : {counters['plan_store.hits']} hits / "
          f"{counters['plan_store.misses']} misses "
          f"({counters['plan_store.tuner_invocations']} tuner invocations)")

    # The snapshot rides along in the JSON payload -- only when profiled.
    assert "observability" in report.to_dict()
    assert "observability" not in api.plan("llama3-training", smoke=True).to_dict()


def manual_session() -> None:
    """Wrap any library calls yourself when there is no facade to ask."""
    from repro.core.config import OverlapProblem, OverlapSettings
    from repro.core.tuner import PredictiveTuner
    from repro.comm.topology import rtx4090_pcie
    from repro.comm.primitives import CollectiveKind
    from repro.gpu.device import RTX_4090
    from repro.gpu.gemm import GemmShape

    with obs.observe() as session:
        for m in (1024, 2048, 4096):
            problem = OverlapProblem(
                shape=GemmShape(m, 8192, 8192),
                device=RTX_4090,
                topology=rtx4090_pcie(4),
                collective=CollectiveKind.ALL_REDUCE,
            )
            PredictiveTuner(OverlapSettings()).tune(problem)

    snapshot = session.snapshot(command="tune three shapes")
    print(snapshot.phase_table())
    tuner_calls = snapshot.metrics["counters"]["tuner.invocations{method=predictive}"]
    print(f"tuner calls   : {tuner_calls}")

    # The full snapshot is plain JSON (validated by repro.obs.validate_profile).
    payload = json.loads(snapshot.to_json())
    obs.validate_profile(payload)
    print(f"snapshot keys : {', '.join(sorted(payload))}")


if __name__ == "__main__":
    profiled_facade_call()
    print()
    manual_session()
