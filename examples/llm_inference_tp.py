#!/usr/bin/env python3
"""Llama3-70B tensor-parallel inference: where the communication time goes and
what overlapping buys end to end.

Reproduces, for one decoder layer under TP=8 on simulated A800 GPUs:

* the Fig. 4-style latency-share breakdown (how much of the time is
  "GEMM followed by AllReduce"),
* the per-operator speedups of the two row-parallel projections,
* the end-to-end speedup of the layer, compared against the vanilla
  decomposition baseline.

Run with:  python examples/llm_inference_tp.py
"""

from __future__ import annotations

from repro.analysis.breakdown import breakdown_fractions
from repro.analysis.reporting import format_table
from repro.core.baselines import VanillaDecompositionBaseline
from repro.workloads.e2e import llama3_inference_workload


def main() -> None:
    workload = llama3_inference_workload(chunk_size=16384, layers=1)
    print(f"workload: {workload.name} (one decoder layer, chunked prefill of 16384 tokens)\n")

    shares = breakdown_fractions(workload)
    rows = [[pattern, f"{share * 100:.1f}%"] for pattern, share in shares.items()]
    print(format_table(["pattern", "share of layer latency"], rows,
                       title="Latency breakdown (non-overlapped execution)"))

    print()
    operator_rows = []
    for name, speedup in workload.operator_speedups().items():
        operator_rows.append([name, f"{speedup:.3f}x"])
    print(format_table(["overlapped operator", "speedup"], operator_rows,
                       title="Per-operator speedups with FlashOverlap"))

    flash = workload.speedup("flashoverlap")
    vanilla = workload.speedup(VanillaDecompositionBaseline())
    print()
    print(f"end-to-end layer speedup, FlashOverlap          : {flash:.3f}x")
    print(f"end-to-end layer speedup, vanilla decomposition : {vanilla:.3f}x")
    print(f"time spent in GEMM+collective pairs             : "
          f"{workload.overlap_target_fraction() * 100:.1f}%")


if __name__ == "__main__":
    main()
