#!/usr/bin/env python3
"""Mixtral-8x7B expert-parallel training: overlapping GEMM with All-to-All.

MoE layers route tokens dynamically, so the expert GEMMs and the combine
All-to-All are imbalanced across GPUs.  This example shows:

* the routing imbalance produced by a skewed expert popularity,
* how the imbalance stretches both phases of the GEMM+A2A operator,
* the tuned overlap plan and its speedup, per layer and end to end,
* the numerical correctness of the sub-token reordering on a small instance.

Run with:  python examples/moe_alltoall_training.py
"""

from __future__ import annotations

import numpy as np

from repro import CollectiveKind, FlashOverlapOperator, GemmShape, GemmTileConfig, OverlapProblem
from repro.analysis.breakdown import breakdown_fractions
from repro.analysis.reporting import format_table
from repro.comm.topology import InterconnectKind, Topology
from repro.gpu.device import GPUSpec
from repro.workloads.e2e import mixtral_training_workload
from repro.workloads.moe import MIXTRAL_8X7B, route_tokens


def routing_demo() -> None:
    report = route_tokens(num_tokens=32768, config=MIXTRAL_8X7B, ep=4, concentration=1.0, seed=0)
    rows = [[f"GPU {gpu}", int(tokens)] for gpu, tokens in enumerate(report.tokens_per_gpu)]
    print(format_table(["rank", "routed tokens"], rows, title="Expert-parallel token routing (EP=4)"))
    print(f"imbalance factor (max / mean): {report.imbalance_factor:.3f}\n")


def layer_demo() -> None:
    workload = mixtral_training_workload(input_tokens=32768, layers=1)
    shares = breakdown_fractions(workload)
    rows = [[pattern, f"{share * 100:.1f}%"] for pattern, share in shares.items()]
    print(format_table(["pattern", "share of layer latency"], rows,
                       title="Mixtral-8x7B training layer (EP=4, TP=2) breakdown"))
    print()
    for name, speedup in workload.operator_speedups().items():
        print(f"  {name:30s} {speedup:.3f}x")
    print(f"\nend-to-end layer speedup with FlashOverlap: {workload.speedup():.3f}x\n")


def correctness_demo() -> None:
    """Sub-token reordering keeps every routed token intact."""
    device = GPUSpec(name="tiny-npu", sm_count=8, fp16_tflops=4.0, hbm_bandwidth_gbps=200.0)
    topology = Topology(
        name="tiny-ep", n_gpus=4, kind=InterconnectKind.PCIE,
        peak_bus_bandwidth_gbps=10.0, base_latency_us=20.0, half_saturation_mb=0.5,
        comm_sm_count=2, supports_p2p=False,
    )
    problem = OverlapProblem(
        shape=GemmShape(m=64, n=48, k=32),
        device=device,
        topology=topology,
        collective=CollectiveKind.ALL_TO_ALL,
        gemm_config=GemmTileConfig(tile_m=8, tile_n=8, tile_k=8, swizzle_size=2),
        imbalance=1.3,
    )
    operator = FlashOverlapOperator(problem)
    result = operator.run_numeric(rng=np.random.default_rng(1))
    status = "all close" if result.allclose() else "MISMATCH"
    print(f"sub-token All-to-All correctness check: {status} "
          f"(max |error| = {result.max_abs_error():.2e})")


if __name__ == "__main__":
    routing_demo()
    layer_demo()
    correctness_demo()
