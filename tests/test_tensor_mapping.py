"""Tests for the reordering mapping table (repro.tensor.mapping)."""

import numpy as np
import pytest

from repro.tensor.mapping import MappingTable


class TestConstruction:
    def test_from_order(self):
        table = MappingTable.from_order([3, 0, 2, 1])
        assert table.position_of(3) == 0
        assert table.position_of(0) == 1
        assert table.original_of(2) == 2
        assert len(table) == 4

    def test_append_auto_position(self):
        table = MappingTable()
        assert table.append(7) == 0
        assert table.append(2) == 1
        assert 7 in table and 2 in table and 5 not in table

    def test_duplicate_original_rejected(self):
        table = MappingTable.from_order([0, 1])
        with pytest.raises(ValueError):
            table.append(1)

    def test_duplicate_position_rejected(self):
        table = MappingTable()
        table.append(0, position=0)
        with pytest.raises(ValueError):
            table.append(1, position=0)


class TestQueries:
    def test_inverse_round_trip(self):
        order = [5, 3, 1, 0, 2, 4]
        table = MappingTable.from_order(order)
        inverse = table.inverse()
        assert [inverse[p] for p in range(len(order))] == order

    def test_as_permutation(self):
        order = [2, 0, 1]
        table = MappingTable.from_order(order)
        np.testing.assert_array_equal(table.as_permutation(), np.array(order))

    def test_as_permutation_requires_dense_positions(self):
        table = MappingTable()
        table.append(0, position=0)
        table.append(1, position=2)
        assert not table.is_permutation()
        with pytest.raises(ValueError):
            table.as_permutation()

    def test_original_of_missing_position(self):
        table = MappingTable.from_order([0])
        with pytest.raises(KeyError):
            table.original_of(3)

    def test_size_bytes(self):
        table = MappingTable.from_order(range(10))
        assert table.size_bytes() == 40
        assert table.size_bytes(index_bytes=8) == 80


class TestMerge:
    def test_merge_offsets_positions(self):
        first = MappingTable.from_order([4, 2])
        second = MappingTable.from_order([1, 3])
        merged = first.merge(second, position_offset=2)
        assert merged.position_of(4) == 0
        assert merged.position_of(1) == 2
        assert merged.position_of(3) == 3
        assert merged.is_permutation() is False or len(merged) == 4

    def test_merge_does_not_mutate_inputs(self):
        first = MappingTable.from_order([0])
        second = MappingTable.from_order([1])
        first.merge(second, position_offset=1)
        assert len(first) == 1
        assert len(second) == 1
