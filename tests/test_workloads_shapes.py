"""Tests for the GEMM shape suites (repro.workloads.shapes, Table 3)."""

import pytest

from repro.comm.primitives import CollectiveKind
from repro.workloads.shapes import (
    TABLE3_RANGES,
    ascend_suite,
    fig11_shapes,
    fig13_grid,
    fig13_shape,
    operator_suite,
)


class TestOperatorSuite:
    @pytest.mark.parametrize("collective", list(CollectiveKind))
    @pytest.mark.parametrize("family", ["a800", "rtx4090"])
    def test_suites_exist_for_table3_entries(self, collective, family):
        if (collective, family) not in TABLE3_RANGES:
            pytest.skip("not a Table 3 combination")
        suite = operator_suite(collective, family)
        assert len(suite) >= 10
        for shape in suite:
            assert shape.m >= 128 and shape.n >= 1024 and shape.k >= 1024

    def test_shapes_respect_table3_ranges(self):
        suite = operator_suite(CollectiveKind.ALL_REDUCE, "a800")
        (mn_lo, mn_hi), (k_lo, k_hi) = TABLE3_RANGES[(CollectiveKind.ALL_REDUCE, "a800")]
        for shape in suite:
            mn = shape.m * shape.n / 1024**2
            assert mn_lo * 0.9 <= mn <= mn_hi * 1.1
            assert k_lo * 1024 <= shape.k <= k_hi * 1024

    def test_4090_shapes_smaller_than_a800(self):
        a800 = operator_suite(CollectiveKind.ALL_REDUCE, "a800")
        rtx = operator_suite(CollectiveKind.ALL_REDUCE, "rtx4090")
        assert max(s.m * s.n for s in rtx) < max(s.m * s.n for s in a800)

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            operator_suite(CollectiveKind.ALL_REDUCE, "h100")

    def test_suite_is_deterministic(self):
        a = operator_suite(CollectiveKind.ALL_TO_ALL, "rtx4090")
        b = operator_suite(CollectiveKind.ALL_TO_ALL, "rtx4090")
        assert a.shapes == b.shapes


class TestFigureSuites:
    def test_fig11_has_nine_typical_shapes(self):
        suite = fig11_shapes()
        assert len(suite) == 9
        assert {s.k for s in suite} == {2048, 4096, 8192}
        assert {s.m for s in suite} == {16384, 32768, 49152}

    def test_fig13_grids(self):
        mn, k = fig13_grid("rtx4090")
        assert len(mn) == 7 and len(k) == 7
        mn_a800, k_a800 = fig13_grid("a800")
        assert min(mn_a800) > max(mn) / 2
        with pytest.raises(KeyError):
            fig13_grid("tpu")

    def test_fig13_shape_expansion(self):
        shape = fig13_shape(64, 8)
        assert shape.m * shape.n == 64 * 1024 * 1024
        assert shape.k == 8192

    def test_ascend_suite(self):
        suite = ascend_suite()
        assert len(suite) == 8
        assert all(s.m >= 2048 for s in suite)
