"""Tests for kernel-launch descriptors (repro.gpu.kernels)."""

import pytest

from repro.gpu.kernels import KernelCategory, KernelLaunch


class TestKernelLaunch:
    def test_basic_construction(self):
        kernel = KernelLaunch(name="gemm", duration=1e-3, category=KernelCategory.GEMM, sm_count=64)
        assert kernel.duration == 1e-3
        assert kernel.category is KernelCategory.GEMM

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="bad", duration=-1.0)

    def test_negative_sm_count_rejected(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="bad", duration=1.0, sm_count=-1)

    def test_scaled_copy(self):
        kernel = KernelLaunch(name="comm", duration=2e-3, metadata={"bytes": 10})
        scaled = kernel.scaled(0.5)
        assert scaled.duration == pytest.approx(1e-3)
        assert scaled.name == "comm"
        assert scaled.metadata == {"bytes": 10}
        assert scaled.metadata is not kernel.metadata

    def test_scaled_negative_factor(self):
        with pytest.raises(ValueError):
            KernelLaunch(name="x", duration=1.0).scaled(-1.0)

    def test_categories_cover_pipeline(self):
        values = {c.value for c in KernelCategory}
        assert {"gemm", "comm", "signal", "elementwise", "reorder"} <= values
