"""Shared fixtures: small, fast problem instances used across the test suite.

The "small" devices and shapes keep the functional (NumPy) pipelines cheap
while still exercising multiple waves, multiple groups, ragged tiles and every
collective primitive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import Topology, InterconnectKind, a800_nvlink, rtx4090_pcie
from repro.core.config import OverlapProblem, OverlapSettings
from repro.gpu.device import A800, RTX_4090, GPUSpec
from repro.gpu.gemm import GemmShape, GemmTileConfig
from repro.tensor.layout import TileLayout


@pytest.fixture(autouse=True)
def _numpy_rng_isolation():
    """Seed and sandbox the *global* numpy RNG around every test.

    Hypothesis-driven suites (and any code that touches ``np.random.*``
    module-level functions) would otherwise leak RNG state across tests,
    making golden/serving results depend on execution order as the suite
    grows.  Every test starts from the same seeded global state and whatever
    state existed before the test is restored afterwards.
    """
    state = np.random.get_state()
    np.random.seed(0xF1A54)
    yield
    np.random.set_state(state)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_device() -> GPUSpec:
    """A made-up 8-SM device so that small matrices still span several waves."""
    return GPUSpec(
        name="tiny-gpu",
        sm_count=8,
        fp16_tflops=4.0,
        hbm_bandwidth_gbps=200.0,
        compute_efficiency=0.8,
        kernel_launch_us=5.0,
    )


@pytest.fixture
def tiny_topology() -> Topology:
    """A 4-GPU PCIe-like topology with a small SM cost."""
    return Topology(
        name="tiny-pcie",
        n_gpus=4,
        kind=InterconnectKind.PCIE,
        peak_bus_bandwidth_gbps=10.0,
        base_latency_us=20.0,
        half_saturation_mb=0.5,
        comm_sm_count=2,
        supports_p2p=False,
    )


@pytest.fixture
def small_layout() -> TileLayout:
    """A 4x6 tile grid of 8x8 tiles (uniform)."""
    return TileLayout(m=32, n=48, tile_m=8, tile_n=8)


@pytest.fixture
def small_tile_config() -> GemmTileConfig:
    return GemmTileConfig(tile_m=8, tile_n=8, tile_k=8, swizzle_size=2)


@pytest.fixture
def small_problem(tiny_device, tiny_topology, small_tile_config) -> OverlapProblem:
    """A small AllReduce problem: 32x48 output, 24 tiles, 4 waves on 6 SMs."""
    return OverlapProblem(
        shape=GemmShape(m=32, n=48, k=64),
        device=tiny_device,
        topology=tiny_topology,
        collective=CollectiveKind.ALL_REDUCE,
        gemm_config=small_tile_config,
    )


@pytest.fixture
def fast_settings() -> OverlapSettings:
    """Settings with no stochastic jitter (deterministic tests)."""
    return OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


@pytest.fixture
def paper_problem_4090() -> OverlapProblem:
    """A realistic RTX 4090 operator-level problem (used by slower tests)."""
    return OverlapProblem(
        shape=GemmShape(m=2048, n=8192, k=8192),
        device=RTX_4090,
        topology=rtx4090_pcie(4),
        collective=CollectiveKind.ALL_REDUCE,
    )


@pytest.fixture
def paper_problem_a800() -> OverlapProblem:
    """A realistic A800 operator-level problem."""
    return OverlapProblem(
        shape=GemmShape(m=8192, n=8192, k=4096),
        device=A800,
        topology=a800_nvlink(4),
        collective=CollectiveKind.REDUCE_SCATTER,
    )
