"""Tests for device specifications (repro.gpu.device)."""

import pytest

from repro.gpu.device import (
    A800,
    ASCEND_910B,
    RTX_4090,
    GPUSpec,
    device_by_name,
    known_devices,
)


class TestGPUSpec:
    def test_derived_rates(self):
        spec = GPUSpec(name="x", sm_count=100, fp16_tflops=100.0, hbm_bandwidth_gbps=1000.0)
        assert spec.flops_per_second == pytest.approx(1e14)
        assert spec.flops_per_sm == pytest.approx(1e12)
        assert spec.memory_bytes_per_second == pytest.approx(1e12)
        assert spec.kernel_launch_seconds == pytest.approx(6e-6)

    def test_with_sm_count_scales_flops_not_bandwidth(self):
        reduced = RTX_4090.with_sm_count(64)
        assert reduced.sm_count == 64
        assert reduced.fp16_tflops == pytest.approx(RTX_4090.fp16_tflops / 2)
        assert reduced.hbm_bandwidth_gbps == RTX_4090.hbm_bandwidth_gbps
        # Per-SM throughput is preserved.
        assert reduced.flops_per_sm == pytest.approx(RTX_4090.flops_per_sm)

    def test_with_sm_count_invalid(self):
        with pytest.raises(ValueError):
            RTX_4090.with_sm_count(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sm_count": 0},
            {"fp16_tflops": -1.0},
            {"hbm_bandwidth_gbps": 0.0},
            {"compute_efficiency": 1.5},
            {"compute_efficiency": 0.0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        base = dict(name="bad", sm_count=10, fp16_tflops=10.0, hbm_bandwidth_gbps=100.0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            GPUSpec(**base)


class TestPresets:
    def test_paper_devices_present(self):
        devices = known_devices()
        assert {"rtx4090", "a800", "ascend910b"} <= set(devices)

    def test_rtx4090_matches_datasheet(self):
        assert RTX_4090.sm_count == 128
        assert RTX_4090.fp16_tflops == pytest.approx(330.0)
        assert RTX_4090.hbm_bandwidth_gbps == pytest.approx(1008.0)

    def test_a800_has_higher_bandwidth_than_4090(self):
        # Table 5 discussion: comparable FP16 TFLOPS but ~2x HBM bandwidth.
        assert A800.hbm_bandwidth_gbps > 1.8 * RTX_4090.hbm_bandwidth_gbps
        assert abs(A800.fp16_tflops - RTX_4090.fp16_tflops) / RTX_4090.fp16_tflops < 0.1

    def test_ascend_is_distinct_platform(self):
        assert ASCEND_910B.sm_count != A800.sm_count

    def test_device_by_name_aliases(self):
        assert device_by_name("RTX 4090") is RTX_4090
        assert device_by_name("a800") is A800
        assert device_by_name("Ascend_910B") is ASCEND_910B

    def test_device_by_name_unknown(self):
        with pytest.raises(KeyError):
            device_by_name("tpu-v9")
