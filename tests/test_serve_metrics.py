"""Tests for the serving metrics (repro.serve.metrics)."""

import pytest

from repro.serve.metrics import SLO, LatencyStats, RequestRecord, compute_metrics


def record(rid=0, arrival=0.0, first=1.0, finish=2.0, prompt=10, output=5):
    return RequestRecord(
        request_id=rid,
        arrival_time=arrival,
        first_token_time=first,
        finish_time=finish,
        prompt_tokens=prompt,
        output_tokens=output,
    )


class TestRequestRecord:
    def test_latency_definitions(self):
        r = record(arrival=1.0, first=1.5, finish=3.5, output=5)
        assert r.ttft == pytest.approx(0.5)
        assert r.e2e_latency == pytest.approx(2.5)
        assert r.tpot == pytest.approx(2.0 / 4)  # 4 gaps after the first token

    def test_single_token_output_has_zero_tpot(self):
        assert record(output=1).tpot == 0.0


class TestLatencyStats:
    def test_percentiles_on_known_series(self):
        values = [float(v) for v in range(1, 101)]
        stats = LatencyStats.from_values(values)
        assert stats.count == 100
        assert stats.mean == pytest.approx(50.5)
        assert stats.p50 == pytest.approx(50.5)
        assert stats.p99 == pytest.approx(99.01)
        assert stats.max == 100.0

    def test_empty_series(self):
        stats = LatencyStats.from_values([])
        assert stats.count == 0
        assert stats.p99 == 0.0


class TestSLO:
    def test_met_by(self):
        slo = SLO(ttft_s=1.0, tpot_s=0.5)
        assert slo.met_by(record(arrival=0.0, first=0.9, finish=2.0, output=5))
        assert not slo.met_by(record(arrival=0.0, first=1.1, finish=2.0, output=5))
        assert not slo.met_by(record(arrival=0.0, first=0.5, finish=4.6, output=3))

    def test_rejects_non_positive_bounds(self):
        with pytest.raises(ValueError):
            SLO(ttft_s=0.0)


class TestComputeMetrics:
    def test_throughput_and_goodput(self):
        records = [
            record(rid=0, arrival=0.0, first=0.5, finish=1.0, prompt=10, output=5),
            record(rid=1, arrival=0.0, first=2.0, finish=4.0, prompt=20, output=3),
        ]
        metrics = compute_metrics(records, makespan_s=4.0, slo=SLO(ttft_s=1.0, tpot_s=1.0))
        assert metrics.requests_completed == 2
        assert metrics.output_tokens_per_s == pytest.approx(8 / 4.0)
        assert metrics.total_tokens_per_s == pytest.approx(38 / 4.0)
        assert metrics.requests_per_s == pytest.approx(0.5)
        # Only request 0 meets TTFT <= 1s.
        assert metrics.slo_attainment == pytest.approx(0.5)
        assert metrics.goodput_requests_per_s == pytest.approx(0.25)
        assert metrics.goodput_requests_per_s <= metrics.requests_per_s

    def test_empty_records(self):
        metrics = compute_metrics([], makespan_s=0.0)
        assert metrics.requests_completed == 0
        assert metrics.slo_attainment == 0.0
        assert metrics.output_tokens_per_s == 0.0

    def test_to_dict_is_json_stable(self):
        import json

        records = [record()]
        a = compute_metrics(records, makespan_s=2.0).to_dict()
        b = compute_metrics(records, makespan_s=2.0).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
