"""Golden conformance tests for ``repro e2e --smoke --json``.

The committed fixtures under ``tests/golden/e2e/`` are the exact JSON reports
of the smoke estimate of each paper workload.  Any change to the latency
models, the tuner, the plan store or the report schema shows up as a diff
here -- intentional changes must regenerate the fixtures:

    repro e2e --smoke --workload <name> --json tests/golden/e2e/<name>.json

(once per workload; the README documents the same update path).  Floats are
compared with a tight relative tolerance so the fixtures stay portable
across interpreter/numpy builds; everything else must match exactly.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.workloads.e2e import workload_builders

GOLDEN_DIR = Path(__file__).resolve().parent / "golden" / "e2e"
WORKLOADS = sorted(workload_builders())


def _assert_matches(expected, actual, path="$"):
    """Recursive diff: exact for structure/ints/strings, tolerant for floats."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected object, got {type(actual).__name__}"
        assert sorted(expected) == sorted(actual), (
            f"{path}: keys differ: {sorted(expected)} vs {sorted(actual)}"
        )
        for key in expected:
            _assert_matches(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(expected) == len(actual), (
            f"{path}: list length {len(expected)} vs {len(actual)}"
        )
        for index, (e, a) in enumerate(zip(expected, actual)):
            _assert_matches(e, a, f"{path}[{index}]")
    elif isinstance(expected, float) and not isinstance(expected, bool):
        assert actual == pytest.approx(expected, rel=1e-6, abs=1e-12), f"{path}: {actual} != {expected}"
    else:
        assert expected == actual, f"{path}: {actual!r} != {expected!r}"


@pytest.mark.parametrize("name", WORKLOADS)
def test_smoke_report_matches_golden(name, tmp_path):
    fixture = GOLDEN_DIR / f"{name}.json"
    assert fixture.exists(), (
        f"missing golden fixture {fixture}; generate it with "
        f"`repro e2e --smoke --workload {name} --json {fixture}`"
    )
    out = tmp_path / f"{name}.json"
    assert cli_main(["e2e", "--smoke", "--workload", name, "--json", str(out)]) == 0
    _assert_matches(json.loads(fixture.read_text()), json.loads(out.read_text()))


def test_smoke_runs_all_five_with_plan_reuse(tmp_path, capsys):
    """The acceptance-criteria run: all five workloads, hit rate > 0."""
    out = tmp_path / "all.json"
    assert cli_main(["e2e", "--smoke", "--json", str(out)]) == 0
    report = json.loads(out.read_text())
    assert sorted(report["meta"]["workloads"]) == WORKLOADS
    assert len(report["workloads"]) == 5
    assert report["plan_store"]["hit_rate"] > 0
    for payload in report["workloads"].values():
        assert payload["plan_stats"]["hit_rate"] > 0, payload["name"]
        assert payload["speedup"] > 1.0, payload["name"]
    printed = capsys.readouterr().out
    assert "Table 4" in printed and "plan store" in printed
