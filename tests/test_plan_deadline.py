"""Wall-clock deadline on the plan search (``repro plan --deadline``).

A fake clock drives ``search_plan``'s deadline deterministically: each call
advances by a fixed step, so "the budget runs out after N priced batches"
becomes an exact statement rather than a timing-dependent one.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.plan import search_plan

SMOKE = dict(
    workload="llama3-training",
    cluster=ClusterSpec(gpus=8),
    layers=4,
    tp_degrees=(2, 4, 8),
    microbatch_counts=(2, 4, 8),
)


class FakeClock:
    """Monotonic clock advancing ``step`` seconds per reading."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture(scope="module")
def unbounded():
    return search_plan(**SMOKE)


class TestDeadlineTruncation:
    def test_no_deadline_is_never_truncated(self, unbounded):
        assert unbounded.space["truncated"] is False
        assert unbounded.meta["deadline_s"] is None
        assert "TRUNCATED" not in unbounded.summary_table()

    def test_fake_clock_truncates_after_budget(self, unbounded):
        # The deadline check reads the clock once per batch; the constructor
        # reading burns 1s, so a 4.5s budget prices exactly 3 batches before
        # the 4th check (t=5.0) trips the deadline.
        report = search_plan(**SMOKE, deadline_s=4.5, clock=FakeClock(step=1.0))
        assert report.space["truncated"] is True
        assert report.meta["deadline_s"] == 4.5
        total = unbounded.space["batches"]
        assert report.space["batches"] == total
        assert 0 < report.space["evaluated"] < total
        reasons = {p["reason"] for p in report.space["pruned"]}
        assert "wall-clock deadline exceeded" in reasons
        # Skipped batches are reported, never silently dropped.
        deadline_pruned = [p for p in report.space["pruned"]
                          if p["reason"] == "wall-clock deadline exceeded"]
        assert report.space["evaluated"] + len(report.space["pruned"]) == total
        assert len(deadline_pruned) >= 1
        assert "TRUNCATED" in report.summary_table()

    def test_truncated_search_returns_best_so_far_frontier(self, unbounded):
        report = search_plan(**SMOKE, deadline_s=4.5, clock=FakeClock(step=1.0))
        assert report.points
        assert report.frontier
        assert report.winner is not None
        # Batches are priced best-bound-first, so everything the truncated
        # search priced is a prefix of the unbounded search's pricing order
        # and the partial frontier is consistent with the full one.
        full_keys = {(p.tp, p.stages, p.microbatches, p.schedule, p.method)
                     for p in unbounded.points}
        partial_keys = {(p.tp, p.stages, p.microbatches, p.schedule, p.method)
                        for p in report.points}
        assert partial_keys <= full_keys

    def test_zero_deadline_prices_nothing(self):
        report = search_plan(**SMOKE, deadline_s=0.0, clock=FakeClock(step=1.0))
        assert report.space["truncated"] is True
        assert report.space["evaluated"] == 0
        assert report.winner is None
        assert len(report.space["pruned"]) == report.space["batches"]

    def test_generous_deadline_matches_unbounded_search(self, unbounded):
        import json

        report = search_plan(**SMOKE, deadline_s=10_000.0, clock=FakeClock(step=1.0))
        assert report.space["truncated"] is False
        bounded = report.to_dict()
        free = unbounded.to_dict()
        bounded["meta"].pop("deadline_s")
        free["meta"].pop("deadline_s")
        assert json.dumps(bounded, sort_keys=True) == json.dumps(free, sort_keys=True)


class TestDeadlineFacade:
    def test_api_plan_passes_deadline_through(self):
        import repro.api as api

        report = api.plan(smoke=True, deadline=0.0)
        assert report.space["truncated"] is True
        assert report.meta["deadline_s"] == 0.0
