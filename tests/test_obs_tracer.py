"""Tests for the span tracer: deterministic trees under the FakeClock.

The FakeClock advances by one step per reading, so the exact same code path
always produces the exact same span tree -- the golden test below pins the
tree (and the profile JSON built from it) byte for byte.
"""

import json

from repro import obs
from repro.obs import FakeClock

#: The tree `_traced_run` must produce under FakeClock(start=0, step=1).
#: Ticks in tree order: root opens at 0; a spans [1, 2); b spans [3, 6)
#: around c at [4, 5); root closes at 7.
GOLDEN_TREE = [
    {
        "attrs": {"kind": "test"},
        "children": [
            {"attrs": {}, "children": [], "duration_s": 1.0, "name": "a", "start_s": 1.0},
            {
                "attrs": {"items": 3},
                "children": [
                    {"attrs": {}, "children": [], "duration_s": 1.0, "name": "c", "start_s": 4.0}
                ],
                "duration_s": 3.0,
                "name": "b",
                "start_s": 3.0,
            },
        ],
        "duration_s": 7.0,
        "name": "root",
        "start_s": 0.0,
    }
]


def _traced_run():
    with obs.observe(clock=FakeClock(start=0.0, step=1.0)) as session:
        with obs.span("root", kind="test"):
            with obs.span("a"):
                pass
            with obs.span("b") as b:
                b.note(items=3)
                with obs.span("c"):
                    pass
    return session


class TestGoldenTree:
    def test_span_tree_matches_golden_bytes(self):
        session = _traced_run()
        assert json.dumps(session.tracer.root_dicts(), sort_keys=True) == json.dumps(
            GOLDEN_TREE, sort_keys=True
        )

    def test_snapshot_json_is_byte_stable(self):
        first = _traced_run().snapshot(command="test").to_json()
        second = _traced_run().snapshot(command="test").to_json()
        assert first == second

    def test_phases_are_direct_children_plus_untracked(self):
        snapshot = _traced_run().snapshot()
        assert snapshot.command == "root"
        assert snapshot.total_s == 7.0
        assert snapshot.phases == [
            {"name": "a", "count": 1, "total_s": 1.0},
            {"name": "b", "count": 1, "total_s": 3.0},
            {"name": "(untracked)", "count": 0, "total_s": 3.0},
        ]

    def test_sibling_spans_aggregate_by_name(self):
        with obs.observe(clock=FakeClock()) as session:
            with obs.span("root"):
                for _ in range(3):
                    with obs.span("phase"):
                        pass
        (phase, untracked) = session.snapshot().phases
        assert phase == {"name": "phase", "count": 3, "total_s": 3.0}
        assert untracked["name"] == "(untracked)"


class TestSpanBehaviour:
    def test_disabled_span_is_shared_null_noop(self):
        assert not obs.enabled()
        first = obs.span("anything", ignored=1)
        second = obs.span("other")
        assert first is second  # the shared NULL_SPAN
        with first as active:
            active.note(also_ignored=True)  # must not raise

    def test_failed_span_is_marked(self):
        with obs.observe(clock=FakeClock()) as session:
            try:
                with obs.span("boom"):
                    raise RuntimeError("nope")
            except RuntimeError:
                pass
        (root,) = session.tracer.roots
        assert root.attrs == {"failed": True}

    def test_nested_observe_joins_the_outer_session(self):
        with obs.observe(clock=FakeClock()) as outer:
            with obs.observe() as inner:
                assert inner is outer
                with obs.span("inner-span"):
                    pass
            assert obs.enabled()  # inner exit must not tear the session down
        assert not obs.enabled()
        assert [node.name for node in outer.tracer.roots] == ["inner-span"]

    def test_events_land_in_the_flight_recorder(self):
        with obs.observe(clock=FakeClock()) as session:
            obs.event("tick", detail="x")
        (entry,) = session.recorder.entries()
        assert entry == {"kind": "event", "name": "tick", "time_s": 0.0, "attrs": {"detail": "x"}}

    def test_tracer_truncates_past_max_nodes(self):
        from repro.obs import Tracer

        tracer = Tracer(FakeClock(), max_nodes=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.roots) == 2
