"""Tests for the analysis helpers (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis.breakdown import PATTERNS, breakdown_fractions, latency_breakdown_table
from repro.analysis.reporting import format_heatmap, format_markdown_table, format_table
from repro.analysis.speedup import (
    compare_methods,
    shape_survey,
    speedup_heatmap,
    summarize_speedups,
)
from repro.comm.primitives import CollectiveKind
from repro.comm.topology import rtx4090_pcie
from repro.core.config import OverlapProblem, OverlapSettings
from repro.gpu.device import RTX_4090
from repro.gpu.gemm import GemmShape
from repro.workloads.e2e import llama3_inference_workload


@pytest.fixture
def settings():
    return OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


class TestReporting:
    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]], precision=2)
        assert "name" in text and "1.23" in text and "bb" in text

    def test_format_markdown_table(self):
        text = format_markdown_table(["x"], [[1.5]])
        assert text.startswith("| x |")
        assert "| 1.500 |" in text

    def test_format_heatmap(self):
        grid = np.array([[1.0, 2.0], [3.0, 4.0]])
        text = format_heatmap(grid, ["r1", "r2"], ["c1", "c2"], corner="K")
        assert "r1" in text and "c2" in text and "4.00" in text

    def test_format_heatmap_shape_mismatch(self):
        with pytest.raises(ValueError):
            format_heatmap(np.zeros((2, 2)), ["a"], ["b", "c"])


class TestSpeedupSurveys:
    def _problem(self, shape: GemmShape) -> OverlapProblem:
        return OverlapProblem(
            shape=shape, device=RTX_4090, topology=rtx4090_pcie(4),
            collective=CollectiveKind.ALL_REDUCE,
        )

    def test_compare_methods_includes_flashoverlap(self, settings):
        comparison = compare_methods(self._problem(GemmShape(2048, 8192, 8192)), settings=settings)
        assert "flashoverlap" in comparison.speedups
        assert "vanilla-decomposition" in comparison.speedups
        # P2P methods are excluded on the PCIe box.
        assert "flux" not in comparison.speedups
        assert comparison.best_method() == "flashoverlap"

    def test_summarize_speedups(self, settings):
        shapes = [GemmShape(2048, 8192, 8192), GemmShape(4096, 8192, 8192)]
        comparisons = shape_survey(shapes, self._problem, settings=settings)
        summary = summarize_speedups(comparisons)
        assert summary["flashoverlap"]["count"] == 2
        assert summary["flashoverlap"]["min"] <= summary["flashoverlap"]["mean"] <= summary["flashoverlap"]["max"]

    def test_speedup_heatmap_shapes_and_ranges(self, settings):
        def builder(mn_mega, k_kilo):
            total = mn_mega * 1024 * 1024
            return self._problem(GemmShape(total // 8192, 8192, k_kilo * 1024))

        result = speedup_heatmap([16, 32], [8, 16], builder, settings=settings)
        assert result.speedup.shape == (2, 2)
        assert np.all(result.speedup > 0.9)
        assert np.all(result.theoretical_ratio <= 1.0)
        assert result.peak_speedup() >= result.speedup.min()
        assert 0.5 < result.mean_theoretical_ratio() <= 1.0


class TestBreakdown:
    def test_breakdown_fractions_contains_all_patterns(self, settings):
        workload = llama3_inference_workload(layers=1, settings=settings)
        fractions = breakdown_fractions(workload)
        assert set(fractions) == set(PATTERNS)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_breakdown_table_renders(self, settings):
        workload = llama3_inference_workload(layers=1, settings=settings)
        text = latency_breakdown_table([workload])
        assert "GEMM+AR" in text and "%" in text
