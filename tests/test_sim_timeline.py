"""Tests for the stream-ordered timeline builder (repro.sim.timeline)."""

import pytest

from repro.gpu.kernels import KernelCategory, KernelLaunch
from repro.sim.timeline import StreamTimeline


def kernel(name, duration):
    return KernelLaunch(name=name, duration=duration)


class TestEnqueue:
    def test_in_order_execution_on_one_stream(self):
        timeline = StreamTimeline()
        a = timeline.enqueue("s", kernel("a", 2.0))
        b = timeline.enqueue("s", kernel("b", 3.0))
        assert (a.start, a.end) == (0.0, 2.0)
        assert (b.start, b.end) == (2.0, 5.0)
        assert timeline.makespan() == 5.0

    def test_streams_are_independent(self):
        timeline = StreamTimeline()
        timeline.enqueue("x", kernel("a", 5.0))
        b = timeline.enqueue("y", kernel("b", 1.0))
        assert b.start == 0.0

    def test_cross_stream_dependency(self):
        timeline = StreamTimeline()
        timeline.enqueue("compute", kernel("gemm", 4.0))
        comm = timeline.enqueue("comm", kernel("ar", 2.0), not_before=4.0)
        assert comm.start == 4.0
        assert comm.end == 6.0

    def test_dependency_does_not_move_busy_stream_backwards(self):
        timeline = StreamTimeline()
        timeline.enqueue("comm", kernel("first", 10.0))
        second = timeline.enqueue("comm", kernel("second", 1.0), not_before=3.0)
        assert second.start == 10.0

    def test_launch_overhead_applied(self):
        timeline = StreamTimeline(launch_overhead=0.5)
        a = timeline.enqueue("s", kernel("a", 1.0))
        b = timeline.enqueue("s", kernel("b", 1.0), pay_launch_overhead=False)
        assert a.start == 0.5
        assert b.start == a.end

    def test_run_sequence(self):
        timeline = StreamTimeline()
        spans = timeline.run_sequence("s", [kernel("a", 1.0), kernel("b", 2.0)], not_before=5.0)
        assert spans[0].start == 5.0
        assert spans[1].start == 6.0


class TestQueries:
    def test_barrier(self):
        timeline = StreamTimeline()
        timeline.enqueue("x", kernel("a", 3.0))
        timeline.enqueue("y", kernel("b", 7.0))
        assert timeline.barrier(["x"]) == 3.0
        assert timeline.barrier() == 7.0
        assert StreamTimeline().barrier() == 0.0

    def test_idle_time(self):
        timeline = StreamTimeline()
        timeline.enqueue("compute", kernel("gemm", 10.0))
        timeline.enqueue("comm", kernel("ar", 2.0), not_before=8.0)
        assert timeline.idle_time("comm") == pytest.approx(8.0)

    def test_marker_has_zero_duration(self):
        timeline = StreamTimeline()
        span = timeline.record_marker("comm", "signal-g1", 2.5)
        assert span.duration == 0.0
        assert span.category is KernelCategory.SIGNAL

    def test_trace_is_valid(self):
        timeline = StreamTimeline()
        for i in range(5):
            timeline.enqueue("s", kernel(f"k{i}", 1.0))
        timeline.trace.validate_stream_order()
