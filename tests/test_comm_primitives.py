"""Tests for the collective latency models (repro.comm.primitives)."""

import pytest

from repro.comm.bandwidth import AnalyticBandwidthCurve, sample_bandwidth
from repro.comm.primitives import CollectiveKind, CollectiveModel, ring_volume_factor
from repro.comm.topology import a800_nvlink, rtx4090_pcie


class TestCollectiveKind:
    def test_from_name_aliases(self):
        assert CollectiveKind.from_name("AllReduce") is CollectiveKind.ALL_REDUCE
        assert CollectiveKind.from_name("ar") is CollectiveKind.ALL_REDUCE
        assert CollectiveKind.from_name("reduce_scatter") is CollectiveKind.REDUCE_SCATTER
        assert CollectiveKind.from_name("A2A") is CollectiveKind.ALL_TO_ALL
        assert CollectiveKind.from_name("all-gather") is CollectiveKind.ALL_GATHER

    def test_from_name_unknown(self):
        with pytest.raises(KeyError):
            CollectiveKind.from_name("gatherv")

    def test_short_names(self):
        assert CollectiveKind.ALL_REDUCE.short_name == "AR"
        assert CollectiveKind.ALL_TO_ALL.short_name == "A2A"


class TestVolumeFactors:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_ring_factors(self, n):
        scale = (n - 1) / n
        assert ring_volume_factor(CollectiveKind.ALL_REDUCE, n) == pytest.approx(2 * scale)
        assert ring_volume_factor(CollectiveKind.REDUCE_SCATTER, n) == pytest.approx(scale)
        assert ring_volume_factor(CollectiveKind.ALL_GATHER, n) == pytest.approx(scale)
        assert ring_volume_factor(CollectiveKind.ALL_TO_ALL, n) == pytest.approx(scale)

    def test_single_gpu_moves_nothing(self):
        assert ring_volume_factor(CollectiveKind.ALL_REDUCE, 1) == 0.0


class TestLatencyModel:
    @pytest.fixture
    def model(self):
        return CollectiveModel(kind=CollectiveKind.ALL_REDUCE, topology=rtx4090_pcie(4))

    def test_latency_monotonic_in_size(self, model):
        latencies = [model.latency(s) for s in (1 << 16, 1 << 20, 1 << 24, 1 << 28)]
        assert all(b > a for a, b in zip(latencies, latencies[1:]))

    def test_zero_payload_free(self, model):
        assert model.latency(0) == 0.0

    def test_negative_payload_rejected(self, model):
        with pytest.raises(ValueError):
            model.latency(-1)

    def test_allreduce_costs_about_twice_reducescatter(self):
        topo = a800_nvlink(4)
        size = 256 << 20
        ar = CollectiveModel(CollectiveKind.ALL_REDUCE, topo).latency(size)
        rs = CollectiveModel(CollectiveKind.REDUCE_SCATTER, topo).latency(size)
        assert ar / rs == pytest.approx(2.0, rel=0.1)

    def test_segmentation_is_never_cheaper(self, model):
        size = 64 << 20
        whole = model.latency(size)
        for segments in (2, 4, 16):
            assert model.segmented_latency(size, segments) >= whole

    def test_segmentation_penalty_grows_with_fragmentation(self, model):
        size = 64 << 20
        assert model.segmented_latency(size, 64) > model.segmented_latency(size, 4)

    def test_invalid_segments(self, model):
        with pytest.raises(ValueError):
            model.segmented_latency(1 << 20, 0)

    def test_bus_bandwidth_approaches_peak(self, model):
        bus = model.bus_bandwidth(1 << 30)
        assert bus < model.topology.peak_bus_bandwidth_bytes
        assert bus > 0.9 * model.topology.peak_bus_bandwidth_bytes

    def test_effective_bandwidth_below_bus_bandwidth_for_allreduce(self, model):
        size = 64 << 20
        assert model.effective_bandwidth(size) < model.bus_bandwidth(size)

    def test_a2a_setup_scales_with_peers(self):
        topo = rtx4090_pcie(8)
        a2a = CollectiveModel(CollectiveKind.ALL_TO_ALL, topo)
        ar = CollectiveModel(CollectiveKind.ALL_REDUCE, topo)
        assert a2a.setup_latency() > ar.setup_latency()

    def test_sm_cost_comes_from_topology(self, model):
        assert model.sm_cost == model.topology.comm_sm_count

    def test_with_sampled_curve_close_to_analytic(self):
        topo = a800_nvlink(4)
        model = CollectiveModel(CollectiveKind.REDUCE_SCATTER, topo)
        sampled = sample_bandwidth(AnalyticBandwidthCurve.for_topology(topo), noise=0.0)
        swapped = model.with_curve(sampled)
        for size in (1 << 20, 64 << 20, 512 << 20):
            assert swapped.latency(size) == pytest.approx(model.latency(size), rel=1e-3)

    def test_nvlink_faster_than_pcie(self):
        size = 128 << 20
        pcie = CollectiveModel(CollectiveKind.ALL_REDUCE, rtx4090_pcie(4)).latency(size)
        nvlink = CollectiveModel(CollectiveKind.ALL_REDUCE, a800_nvlink(4)).latency(size)
        assert nvlink < pcie / 4
