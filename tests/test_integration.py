"""Cross-module integration tests mirroring the artifact experiments.

E1 -- correctness and speedup of the full operator across primitives and GPU
      counts; E2 -- predictive-search quality; E3 -- reordering overhead.
"""

import numpy as np
import pytest

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import Topology, InterconnectKind, a800_nvlink, rtx4090_pcie
from repro.core.config import OverlapProblem, OverlapSettings
from repro.core.executor import OverlapExecutor
from repro.core.overlap import FlashOverlapOperator
from repro.core.predictor import LatencyPredictor, OfflineProfile
from repro.core.tuner import PredictiveTuner, search_quality
from repro.core.wave_grouping import WavePartition
from repro.gpu.device import A800, RTX_4090, GPUSpec
from repro.gpu.epilogue import ReorderOverheadModel
from repro.gpu.gemm import GemmShape, GemmTileConfig


SETTINGS = OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


def small_numeric_problem(collective: CollectiveKind, n_gpus: int) -> OverlapProblem:
    """A functional-path problem small enough for exact NumPy execution."""
    device = GPUSpec(name="tiny", sm_count=8, fp16_tflops=4.0, hbm_bandwidth_gbps=200.0)
    topology = Topology(
        name="tiny",
        n_gpus=n_gpus,
        kind=InterconnectKind.PCIE,
        peak_bus_bandwidth_gbps=10.0,
        base_latency_us=20.0,
        half_saturation_mb=0.5,
        comm_sm_count=2,
        supports_p2p=False,
    )
    return OverlapProblem(
        shape=GemmShape(m=64, n=48, k=32),
        device=device,
        topology=topology,
        collective=collective,
        gemm_config=GemmTileConfig(tile_m=8, tile_n=8, tile_k=8, swizzle_size=3),
    )


class TestExperimentE1Correctness:
    """Artifact E1(1): the overlapped result matches the plain collective."""

    @pytest.mark.parametrize("collective", [
        CollectiveKind.ALL_REDUCE, CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALL_TO_ALL,
    ])
    @pytest.mark.parametrize("n_gpus", [2, 4, 8])
    def test_all_primitives_and_gpu_counts(self, collective, n_gpus):
        problem = small_numeric_problem(collective, n_gpus)
        operator = FlashOverlapOperator(problem, SETTINGS)
        result = operator.run_numeric()
        assert result.allclose(), (
            f"{collective.short_name} on {n_gpus} GPUs: max error {result.max_abs_error()}"
        )

    def test_correctness_independent_of_partition(self):
        problem = small_numeric_problem(CollectiveKind.ALL_REDUCE, 4)
        operator = FlashOverlapOperator(problem, SETTINGS)
        waves = operator.executor.num_waves()
        for partition in (
            WavePartition.per_wave(waves),
            WavePartition.single_group(waves),
            WavePartition.equal_groups(waves, 3),
        ):
            plan = operator.plan(partition)
            assert operator.run_numeric(plan).allclose()


class TestExperimentE1Speedup:
    """Artifact E1(2): overlap speedups in the paper's ranges."""

    @pytest.mark.parametrize("collective,topo_builder,device,shape,lo,hi", [
        (CollectiveKind.ALL_REDUCE, rtx4090_pcie, RTX_4090, GemmShape(2048, 8192, 8192), 1.05, 1.70),
        (CollectiveKind.REDUCE_SCATTER, rtx4090_pcie, RTX_4090, GemmShape(4096, 8192, 16384), 1.05, 1.70),
        (CollectiveKind.ALL_TO_ALL, rtx4090_pcie, RTX_4090, GemmShape(2048, 8192, 16384), 1.05, 1.70),
        (CollectiveKind.ALL_REDUCE, a800_nvlink, A800, GemmShape(8192, 8192, 4096), 1.05, 1.60),
        (CollectiveKind.REDUCE_SCATTER, a800_nvlink, A800, GemmShape(16384, 8192, 2048), 1.05, 1.60),
    ])
    def test_operator_level_speedup(self, collective, topo_builder, device, shape, lo, hi):
        problem = OverlapProblem(
            shape=shape, device=device, topology=topo_builder(4), collective=collective
        )
        report = FlashOverlapOperator(problem, SETTINGS).report()
        assert lo < report.speedup < hi
        assert report.ratio_of_theoretical > 0.65

    @pytest.mark.parametrize("n_gpus", [2, 4, 8])
    def test_speedup_holds_across_gpu_counts(self, n_gpus):
        problem = OverlapProblem(
            shape=GemmShape(2048, 8192, 8192), device=RTX_4090,
            topology=rtx4090_pcie(n_gpus), collective=CollectiveKind.ALL_REDUCE,
        )
        assert FlashOverlapOperator(problem, SETTINGS).speedup() > 1.02

    def test_never_materially_slower_than_non_overlap(self):
        # The compute-dominated corner: overlap provides little, the fallback
        # must prevent deterioration.
        problem = OverlapProblem(
            shape=GemmShape(4096, 4096, 16384), device=A800,
            topology=a800_nvlink(8), collective=CollectiveKind.REDUCE_SCATTER,
        )
        assert FlashOverlapOperator(problem, SETTINGS).speedup() > 0.97


class TestExperimentE2Search:
    """Artifact E2: predictor error and predictive-search quality."""

    def _problems(self):
        for shape in (GemmShape(2048, 8192, 8192), GemmShape(4096, 8192, 7168)):
            yield OverlapProblem(
                shape=shape, device=RTX_4090, topology=rtx4090_pcie(4),
                collective=CollectiveKind.ALL_REDUCE,
            )
        yield OverlapProblem(
            shape=GemmShape(16384, 8192, 2048), device=A800, topology=a800_nvlink(4),
            collective=CollectiveKind.REDUCE_SCATTER,
        )

    def test_mean_prediction_error_below_10_percent(self):
        errors = []
        for problem in self._problems():
            executor = OverlapExecutor(problem, SETTINGS)
            predictor = LatencyPredictor(
                OfflineProfile.build(problem, SETTINGS), total_bytes=problem.output_bytes()
            )
            for group in (1, 2, 4, 8):
                partition = WavePartition.equal_groups(executor.num_waves(), group)
                predicted = predictor.predict(partition)
                actual = executor.simulate(partition).latency
                errors.append(abs(actual - predicted) / actual)
        assert float(np.mean(errors)) < 0.10

    def test_predictive_search_reaches_99_percent_of_exhaustive(self):
        for problem in self._problems():
            quality = search_quality(problem, SETTINGS)
            assert quality["performance_ratio"] > 0.97

    def test_tuned_partition_beats_fixed_groupings_somewhere(self):
        # Fig. 14: no single fixed group size wins everywhere, the tuner does.
        wins = 0
        for problem in self._problems():
            executor = OverlapExecutor(problem, SETTINGS)
            tuned = PredictiveTuner(SETTINGS).tune(problem)
            tuned_latency = executor.simulate(tuned.partition).latency
            fixed = min(
                executor.simulate(WavePartition.equal_groups(executor.num_waves(), g)).latency
                for g in (1, 4)
            )
            if tuned_latency <= fixed * 1.001:
                wins += 1
        assert wins >= 2


class TestExperimentE3Overhead:
    """Artifact E3: reordering overheads stay within the paper's bounds."""

    def test_rmsnorm_overhead_within_10_percent(self):
        config = GemmTileConfig(tile_m=128, tile_n=128)
        for device in (A800, RTX_4090):
            model = ReorderOverheadModel(device)
            for unit in ("tile", "subtile", "subtoken"):
                overhead = model.elementwise_overhead(
                    unit, config, n_gpus=4, shape=GemmShape(4096, 8192, 8192)
                )
                assert overhead < 0.105

    def test_gemm_overhead_within_1_percent(self):
        config = GemmTileConfig(tile_m=128, tile_n=128)
        for device in (A800, RTX_4090):
            model = ReorderOverheadModel(device)
            for unit in ("tile", "subtile", "subtoken"):
                overhead = model.gemm_epilogue_overhead(
                    unit, config, n_gpus=4, shape=GemmShape(4096, 8192, 8192)
                )
                assert overhead < 0.01
