"""Tests for the shape-bucketed LRU plan cache (repro.serve.plan_cache)."""

import pytest

from repro.core.baselines import NonOverlapBaseline
from repro.core.tuner import GemmShapeCache, PredictiveTuner
from repro.serve.plan_cache import PlanCache, bucket_tokens


class TestBucketing:
    @pytest.mark.parametrize(
        "tokens,expected",
        [(1, 16), (15, 16), (16, 16), (17, 32), (100, 128), (1000, 1024), (1024, 1024)],
    )
    def test_power_of_two_rounding(self, tokens, expected):
        assert bucket_tokens(tokens) == expected

    def test_min_bucket_floor(self):
        assert bucket_tokens(3, min_bucket=64) == 64

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bucket_tokens(0)


@pytest.fixture
def problem(small_problem):
    """The conftest small problem (m=32: already on a bucket edge)."""
    return small_problem


def at_tokens(problem, m):
    from dataclasses import replace

    return problem.with_shape(replace(problem.shape, m=m))


class TestLookup:
    def test_same_bucket_is_a_hit(self, problem, fast_settings):
        cache = PlanCache(fast_settings, capacity=4)
        first = cache.lookup(at_tokens(problem, 17))
        second = cache.lookup(at_tokens(problem, 32))  # same bucket (32)
        assert (cache.hits, cache.misses) == (1, 1)
        assert second is first
        assert cache.tuner_invocations == 1

    def test_distinct_buckets_miss(self, problem, fast_settings):
        cache = PlanCache(fast_settings, capacity=4)
        cache.lookup(at_tokens(problem, 16))
        cache.lookup(at_tokens(problem, 32))
        assert (cache.hits, cache.misses) == (0, 2)
        assert len(cache) == 2

    def test_plan_never_slower_than_baseline(self, problem, fast_settings):
        cache = PlanCache(fast_settings, capacity=4)
        for m in (16, 32, 64):
            plan = cache.lookup(at_tokens(problem, m))
            assert plan.overlap_latency <= plan.non_overlap_latency
            baseline = NonOverlapBaseline(fast_settings).latency(plan.problem)
            assert plan.non_overlap_latency == baseline

    def test_capacity_zero_disables_caching(self, problem, fast_settings):
        cache = PlanCache(fast_settings, capacity=0)
        cache.lookup(problem)
        cache.lookup(problem)
        assert (cache.hits, cache.misses) == (0, 2)
        assert len(cache) == 0
        assert cache.tuner_invocations == 2


class TestLRUEviction:
    def test_eviction_order_is_least_recently_used(self, problem, fast_settings):
        cache = PlanCache(fast_settings, capacity=2)
        key_a = cache.key(at_tokens(problem, 16))
        key_b = cache.key(at_tokens(problem, 32))
        key_c = cache.key(at_tokens(problem, 64))

        cache.lookup(at_tokens(problem, 16))  # A
        cache.lookup(at_tokens(problem, 32))  # B
        cache.lookup(at_tokens(problem, 16))  # touch A: B is now LRU
        assert cache.cached_keys() == [key_b, key_a]

        cache.lookup(at_tokens(problem, 64))  # C evicts B
        assert cache.evictions == 1
        assert cache.cached_keys() == [key_a, key_c]

        cache.lookup(at_tokens(problem, 32))  # B was evicted: tunes again
        assert cache.misses == 4
        assert cache.tuner_invocations == 4

    def test_counters_and_stats(self, problem, fast_settings):
        cache = PlanCache(fast_settings, capacity=1)
        cache.lookup(at_tokens(problem, 16))
        cache.lookup(at_tokens(problem, 16))
        cache.lookup(at_tokens(problem, 32))
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["evictions"] == 1
        assert stats["lookups"] == 3
        assert stats["hit_rate"] == pytest.approx(1 / 3)
        assert stats["size"] == 1
        assert stats["capacity"] == 1
        assert stats["tuner_invocations"] == 2

    def test_count_repeat_hits_bulk_accounts_silent_lookups(self, problem, fast_settings):
        """The serving fast path replays collapsed steady-decode iterations as
        bulk warm hits instead of re-issuing each lookup."""
        cache = PlanCache(fast_settings, capacity=4)
        cache.lookup(problem)  # one real miss warms the bucket
        cache.count_repeat_hits(3)
        assert (cache.hits, cache.misses) == (3, 1)
        assert cache.lookups == 4
        assert cache.tuner_invocations == 1
        stats = cache.stats()
        assert stats["hits"] == 3
        assert stats["hit_rate"] == pytest.approx(3 / 4)

    def test_count_repeat_hits_non_positive_is_a_noop(self, problem, fast_settings):
        cache = PlanCache(fast_settings, capacity=4)
        cache.lookup(problem)
        cache.count_repeat_hits(0)
        cache.count_repeat_hits(-2)
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.lookups == 1


class TestCacheHitIdenticalToFreshTune:
    def test_hit_equals_fresh_plan_bit_for_bit(self, problem, fast_settings):
        fresh_cache = PlanCache(fast_settings, capacity=4)
        fresh = fresh_cache.lookup(problem)

        cache = PlanCache(fast_settings, capacity=4)
        cache.lookup(at_tokens(problem, 20))  # miss tunes the bucket (32)
        hit = cache.lookup(problem)  # hit on the same bucket
        assert cache.hits == 1

        assert hit.tuning == fresh.tuning
        assert hit.problem == fresh.problem
        assert hit.overlap_latency == fresh.overlap_latency
        assert hit.non_overlap_latency == fresh.non_overlap_latency


class TestWarmStart:
    def test_warm_start_skips_the_tuner(self, problem, fast_settings):
        bucketed = PlanCache(fast_settings).bucketed_problem(problem)
        warm = GemmShapeCache()
        warm.add(bucketed.shape, PredictiveTuner(fast_settings).tune(bucketed))

        cache = PlanCache(fast_settings, capacity=4, warm_start=warm)
        cache.lookup(problem)
        assert cache.tuner_invocations == 0
        assert cache.warm_start_hits == 1
        assert cache.misses == 1  # still a plan-cache miss, served from warm start

    def test_fresh_tunes_feed_the_warm_start(self, problem, fast_settings):
        warm = GemmShapeCache()
        cache = PlanCache(fast_settings, capacity=4, warm_start=warm)
        cache.lookup(problem)
        assert cache.tuner_invocations == 1
        assert len(warm) == 1

    def test_warm_start_use_overlap_is_revalidated(self, problem, fast_settings):
        """A warm entry's overlap decision (possibly from another platform) is
        re-checked against the ground-truth executor in *both* directions."""
        from dataclasses import replace

        bucketed = PlanCache(fast_settings).bucketed_problem(problem)
        honest = PlanCache(fast_settings, capacity=4).lookup(problem)

        tuned = PredictiveTuner(fast_settings).tune(bucketed)
        warm = GemmShapeCache()
        # Persist the entry with the overlap decision flipped.
        warm.add(bucketed.shape, replace(tuned, use_overlap=not honest.tuning.use_overlap))

        plan = PlanCache(fast_settings, capacity=4, warm_start=warm).lookup(problem)
        assert plan.tuning.use_overlap == honest.tuning.use_overlap
        assert plan.overlap_latency == honest.overlap_latency
