"""Paper-model conformance: exact shapes, collectives and settings plumbing.

Complements ``test_workloads_models.py`` (structural checks) with the exact
per-model expectations of the paper's Table 4 workloads: every overlap
target's (M, N, K) and collective kind, MoE routing bounds, and the
``settings``/registry plumbing the e2e estimator relies on.
"""

import math

import pytest

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import a800_nvlink
from repro.core.config import DEFAULT_SETTINGS, OverlapSettings
from repro.gpu.device import A800
from repro.workloads.e2e import (
    build_workload,
    llama2_training_workload,
    llama3_inference_workload,
    llama3_training_workload,
    mixtral_training_workload,
    paper_workloads,
    step_video_workload,
    workload_builders,
)
from repro.workloads.llm import LLAMA3_70B
from repro.workloads.moe import MIXTRAL_8X7B, route_tokens
from repro.workloads.t2v import STEP_VIDEO_T2V


def _targets(workload):
    """name -> problem for every overlap target of one layer."""
    return {op.name: op.problem for op in workload.operators if op.is_overlap_target}


class TestLlama3Shapes:
    def test_inference_gemm_shapes_and_collectives(self):
        targets = _targets(llama3_inference_workload(chunk_size=16384))
        h, inter, tp = LLAMA3_70B.hidden_size, LLAMA3_70B.intermediate_size, 8
        attn, mlp = targets["attn-out-proj+AR"], targets["mlp-down+AR"]
        assert (attn.shape.m, attn.shape.n, attn.shape.k) == (16384, h, h // tp)
        assert (mlp.shape.m, mlp.shape.n, mlp.shape.k) == (16384, h, inter // tp)
        assert {p.collective for p in targets.values()} == {CollectiveKind.ALL_REDUCE}
        assert all(p.n_gpus == tp for p in targets.values())

    def test_training_forward_and_wgrad_shapes(self):
        targets = _targets(llama3_training_workload(input_tokens=16384))
        h, inter, tp, t = LLAMA3_70B.hidden_size, LLAMA3_70B.intermediate_size, 8, 16384
        assert {p.collective for p in targets.values()} == {CollectiveKind.REDUCE_SCATTER}
        fwd_attn = targets["attn-out-proj+RS"]
        assert (fwd_attn.shape.m, fwd_attn.shape.n, fwd_attn.shape.k) == (t, h, h // tp)
        wgrad_out = targets["bwd-wgrad-out-proj+RS"]
        assert (wgrad_out.shape.m, wgrad_out.shape.n, wgrad_out.shape.k) == (h, h // tp, t)
        wgrad_mlp = targets["bwd-wgrad-mlp-down+RS"]
        assert (wgrad_mlp.shape.m, wgrad_mlp.shape.n, wgrad_mlp.shape.k) == (inter // tp, h, t)


class TestMixtralShapes:
    def test_expert_a2a_shapes_carry_measured_imbalance(self):
        workload = mixtral_training_workload(input_tokens=32768)
        targets = _targets(workload)
        h = MIXTRAL_8X7B.hidden_size
        inter = MIXTRAL_8X7B.expert_intermediate_size // 2  # TP=2 shard
        per_gpu = math.ceil(32768 * MIXTRAL_8X7B.top_k / 4)  # EP=4
        down = targets["expert-down+A2A"]
        assert (down.shape.m, down.shape.n, down.shape.k) == (per_gpu, h, inter)
        dgrad = targets["bwd-expert-dgrad+A2A"]
        assert (dgrad.shape.m, dgrad.shape.n, dgrad.shape.k) == (per_gpu, inter, h)
        expected = route_tokens(32768, MIXTRAL_8X7B, ep=4).imbalance_factor
        for name in ("expert-down+A2A", "bwd-expert-dgrad+A2A"):
            assert targets[name].collective is CollectiveKind.ALL_TO_ALL
            assert targets[name].imbalance == pytest.approx(expected)
        # The TP=2 attention block adds one AllReduce target at full tokens.
        attn = targets["attn-out-proj+AR"]
        assert (attn.shape.m, attn.shape.k) == (32768, h // 2)
        assert attn.collective is CollectiveKind.ALL_REDUCE


class TestStepVideoShapes:
    def test_three_allreduce_projections(self):
        targets = _targets(step_video_workload(input_tokens=33792))
        h, inter, tp, t = STEP_VIDEO_T2V.hidden_size, STEP_VIDEO_T2V.intermediate_size, 4, 33792
        assert set(targets) == {"self-attn-out+AR", "cross-attn-out+AR", "mlp-down+AR"}
        for name in ("self-attn-out+AR", "cross-attn-out+AR"):
            assert (targets[name].shape.m, targets[name].shape.n, targets[name].shape.k) == (
                t, h, h // tp,
            )
        mlp = targets["mlp-down+AR"]
        assert (mlp.shape.m, mlp.shape.n, mlp.shape.k) == (t, h, inter // tp)
        assert {p.collective for p in targets.values()} == {CollectiveKind.ALL_REDUCE}


class TestMoERouting:
    def test_determinism_per_seed(self):
        for seed in range(5):
            a = route_tokens(4096, MIXTRAL_8X7B, ep=4, seed=seed)
            b = route_tokens(4096, MIXTRAL_8X7B, ep=4, seed=seed)
            assert (a.tokens_per_expert == b.tokens_per_expert).all()
            assert a.imbalance_factor == b.imbalance_factor

    def test_imbalance_factor_bounds(self):
        # The most-loaded GPU holds between the mean (factor 1) and
        # everything (factor ep); token counts are conserved exactly.
        for seed in range(10):
            report = route_tokens(4096, MIXTRAL_8X7B, ep=4, seed=seed)
            assert 1.0 <= report.imbalance_factor <= 4.0
            assert report.tokens_per_gpu.sum() == 4096 * MIXTRAL_8X7B.top_k
            assert (report.tokens_per_expert >= 0).all()


class TestSettingsPropagation:
    def test_paper_workloads_propagate_settings(self):
        custom = OverlapSettings(seed=11, executor_jitter=0.0)
        workloads = paper_workloads(settings=custom)
        assert len(workloads) == 4
        for workload in workloads:
            assert workload.settings is custom, workload.name
        # Defaults stay the shared default settings object.
        for workload in paper_workloads():
            assert workload.settings is DEFAULT_SETTINGS, workload.name

    def test_registry_builders_propagate_settings_and_knobs(self):
        custom = OverlapSettings(seed=7)
        topology = a800_nvlink(4)
        for name in workload_builders():
            workload = build_workload(
                name, tokens=1024, device=A800, topology=topology, layers=2, settings=custom
            )
            assert workload.settings is custom, name
            assert workload.layers == 2, name
            for op in workload.operators:
                if op.problem is not None:
                    assert op.problem.topology is topology, (name, op.name)

    def test_registry_layer_defaults_match_paper(self):
        # The paper truncates the training models to 8 / 4 layers per node.
        layers = {name: build_workload(name, tokens=512).layers for name in workload_builders()}
        assert layers["mixtral-training"] == 4
        assert all(count == 8 for name, count in layers.items() if name != "mixtral-training")

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build_workload("gpt-17")

    def test_explicit_topology_rederives_tp(self):
        # A multi-node placement must stay a realizable configuration: the
        # sharded GEMM dimensions follow the collective's GPU count.
        from repro.comm.topology import multinode_a800

        topology = multinode_a800(n_nodes=2, gpus_per_node=8)
        inference = build_workload("llama3-inference", tokens=16384, topology=topology)
        attn = _targets(inference)["attn-out-proj+AR"]
        assert attn.shape.k == LLAMA3_70B.hidden_size // 16
        assert attn.n_gpus == 16
        assert "TP=16" in inference.name

        moe = build_workload("mixtral-training", tokens=4096, topology=topology)
        down = _targets(moe)["expert-down+A2A"]
        assert down.shape.k == MIXTRAL_8X7B.expert_intermediate_size // 4  # TP = 16/EP
        assert "EP=4, TP=4" in moe.name

    def test_mixtral_rejects_indivisible_gpu_count(self):
        with pytest.raises(ValueError, match="divisible by EP=4"):
            build_workload("mixtral-training", tokens=1024, topology=a800_nvlink(6))

    def test_llama2_is_the_fifth_workload(self):
        assert set(workload_builders()) == {
            "llama3-inference",
            "llama3-training",
            "llama2-training",
            "mixtral-training",
            "step-video",
        }
        workload = llama2_training_workload(input_tokens=2048, layers=1)
        assert "Llama2-7B" in workload.name
