"""End-to-end invariants of the auto-parallelism search (``repro plan``).

The CI-sized smoke space (llama3-training, 8 GPUs, TP/microbatches in
{2, 4, 8}) is searched once per module; the suite then asserts the
acceptance properties of the planner:

* the Pareto frontier has >= 3 non-dominated points and respects dominance;
* the winner is the latency-minimal priced configuration, and every frontier
  configuration replayed as a plain single-config ``repro pp`` run
  reproduces its predicted step latency bit-identically (so the winner also
  beats every swept single-config run);
* the plan store serves > 50% of search lookups from cache;
* dominated-config pruning never changes the frontier (soundness);
* the winning plan JSON round-trips and replays bit-identically through the
  pp and e2e estimation paths.
"""

import json

import pytest

from repro.cluster import ClusterSpec
from repro.core.config import OverlapSettings
from repro.plan import (
    ParallelismPlan,
    dominates,
    estimate_plan,
    search_plan,
    verify_replay,
)
from repro.pp.report import estimate_pipelines

SMOKE = dict(
    workload="llama3-training",
    cluster=ClusterSpec(gpus=8),
    layers=4,
    tp_degrees=(2, 4, 8),
    microbatch_counts=(2, 4, 8),
)


@pytest.fixture(scope="module")
def smoke_report():
    return search_plan(**SMOKE)


class TestSmokeSearch:
    def test_frontier_has_three_nondominated_points(self, smoke_report):
        frontier = smoke_report.frontier
        assert len(frontier) >= 3
        for a in frontier:
            for b in frontier:
                assert not dominates(a, b)

    def test_winner_is_latency_minimal(self, smoke_report):
        best = min(point.step_latency for point in smoke_report.points)
        assert smoke_report.winner.predicted["step_latency"] == best

    def test_store_hit_rate_exceeds_half(self, smoke_report):
        stats = smoke_report.plan_stats
        assert stats["search_lookups"] > 0
        assert stats["search_hit_rate"] > 0.5

    def test_space_accounting(self, smoke_report):
        space = smoke_report.space
        assert space["total_gpus"] == 8
        assert space["evaluated"] + len(space["pruned"]) == space["batches"]
        assert space["points"] == len(smoke_report.points)
        for entry in space["pruned"]:
            assert "dominated" in entry["reason"] or "budget" in entry["reason"]

    def test_frontier_points_replay_as_single_config_runs(self, smoke_report):
        # Each frontier configuration, swept as a plain `repro pp` run with a
        # fresh estimator, reproduces the searched step latency bit-exactly;
        # the winner's latency-minimality therefore extends to every
        # single-config run of the space.
        cluster = SMOKE["cluster"]
        for point in smoke_report.frontier:
            report = estimate_pipelines(
                names=[SMOKE["workload"]],
                stages=point.stages,
                microbatches=point.microbatches,
                schedules=(point.schedule,),
                device=cluster.device_spec,
                topology=cluster.topology_for_tp(point.tp),
                layers=SMOKE["layers"],
                settings=OverlapSettings(seed=0),
                partition=point.partition,
            )
            replayed = report.estimates[0].schedules[point.schedule].methods[point.method]
            assert replayed.step_latency == point.step_latency

    def test_pruning_never_changes_the_frontier(self, smoke_report):
        unpruned = search_plan(**SMOKE, prune=False)
        assert unpruned.space["pruned"] == []
        assert ({p.config_key for p in unpruned.frontier}
                == {p.config_key for p in smoke_report.frontier})
        # Pruned batches were genuinely dominated: no unpruned point from
        # them beats the winner.
        best = smoke_report.winner.predicted["step_latency"]
        assert min(p.step_latency for p in unpruned.points) == best

    def test_report_serializes(self, smoke_report):
        payload = json.loads(smoke_report.to_json())
        assert set(payload) == {"meta", "space", "points", "frontier", "winner", "plan_store"}
        assert payload["winner"]["schedule"] == smoke_report.winner.schedule
        assert smoke_report.summary_table().startswith("Pareto frontier")


class TestWinnerPlan:
    def test_round_trip(self, smoke_report, tmp_path):
        winner = smoke_report.winner
        assert ParallelismPlan.from_dict(winner.to_dict()) == winner
        path = winner.save(tmp_path / "plan.json")
        assert ParallelismPlan.load(path) == winner

    def test_version_check(self, smoke_report):
        payload = smoke_report.winner.to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            ParallelismPlan.from_dict(payload)

    def test_replay_is_bit_identical(self, smoke_report):
        result = verify_replay(smoke_report.winner)
        assert result["matches"], result

    def test_estimate_plan_matches_prediction(self, smoke_report):
        winner = smoke_report.winner
        estimate = estimate_plan(winner)
        replayed = estimate.schedules[winner.schedule].methods[winner.method]
        assert replayed.step_latency == winner.predicted["step_latency"]


class TestSearchEdges:
    def test_infeasible_degrees_yield_no_winner(self):
        report = search_plan(
            workload="llama3-training",
            cluster=ClusterSpec(gpus=8),
            layers=4,
            tp_degrees=(3,),
            microbatch_counts=(2,),
        )
        assert report.points == [] and report.winner is None
        assert any("divide" in s["reason"] or "degree" in s["reason"]
                   for s in report.space["skipped"])

    def test_max_configs_budget(self):
        report = search_plan(
            workload="llama3-training",
            cluster=ClusterSpec(gpus=8),
            layers=4,
            tp_degrees=(2, 4),
            microbatch_counts=(2, 4),
            max_configs=1,
        )
        assert report.space["evaluated"] == 1
        assert any("budget" in entry["reason"] for entry in report.space["pruned"])
        assert report.winner is not None

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            search_plan(methods=("theoretical",))
