"""Unit tests for the fault-model layer (repro.faults) in isolation.

Covers the versioned :class:`FaultPlan` schema (validation, round-trips,
seeded generation, presets), the resilience policy knobs, the compiled
:class:`SpeedTimeline` / :class:`FaultInjector` queries, and the
``resource_profiles`` hook the replay engine grew for stragglers.
"""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    ResiliencePolicy,
    RetryPolicy,
    SpeedTimeline,
    SpeedWindow,
    build_fault_preset,
    fault_presets,
    parse_retry_policy,
)
from repro.sim.replay import ReplayTask, replay_tasks


class TestFaultEvent:
    def test_round_trip(self):
        event = FaultEvent(kind="straggler", start=1.0, duration=2.0, factor=1.5)
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor", start=0.0, duration=1.0)

    def test_crash_needs_positive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(kind="crash", start=0.0, duration=0.0)

    def test_straggler_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(kind="straggler", start=0.0, duration=1.0, factor=0.5)

    def test_degraded_link_factor_bounds(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(kind="degraded-link", start=0.0, duration=1.0, factor=0.0)
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(kind="degraded-link", start=0.0, duration=1.0, factor=1.5)

    def test_drop_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultEvent(kind="drop", start=0.0, duration=1.0, probability=1.5)

    def test_end_property(self):
        assert FaultEvent(kind="crash", start=1.0, duration=0.5).end == 1.5


class TestFaultPlan:
    def test_overlapping_crashes_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            FaultPlan(events=(
                FaultEvent(kind="crash", start=0.0, duration=2.0),
                FaultEvent(kind="crash", start=1.0, duration=1.0),
            ))

    def test_of_kind_sorted_by_start(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="straggler", start=5.0, duration=1.0, factor=2.0),
            FaultEvent(kind="straggler", start=1.0, duration=1.0, factor=2.0),
        ))
        assert [e.start for e in plan.of_kind("straggler")] == [1.0, 5.0]

    def test_fault_free(self):
        assert FaultPlan().is_fault_free
        assert not FaultPlan(events=(FaultEvent(kind="crash", start=0.0, duration=1.0),)).is_fault_free

    def test_save_load_round_trip(self, tmp_path):
        plan = build_fault_preset("replica-crash", horizon=10.0)
        path = plan.save(tmp_path / "plan.json")
        loaded = FaultPlan.load(path)
        assert loaded == plan
        # Serialized form is stable (sorted keys, trailing newline).
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert json.loads(text)["version"] == plan.version

    def test_version_mismatch_rejected(self):
        payload = FaultPlan().to_dict()
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_dict(payload)

    def test_generate_is_seed_deterministic(self):
        kwargs = dict(horizon=100.0, crash_rate=0.05, recovery_s=2.0,
                      straggler_rate=0.05, drop_probability=0.1)
        first = FaultPlan.generate(seed=7, **kwargs)
        second = FaultPlan.generate(seed=7, **kwargs)
        assert json.dumps(first.to_dict(), sort_keys=True) == \
            json.dumps(second.to_dict(), sort_keys=True)
        assert FaultPlan.generate(seed=8, **kwargs) != first

    def test_generate_crash_windows_disjoint(self):
        plan = FaultPlan.generate(horizon=200.0, seed=3, crash_rate=0.2, recovery_s=4.0)
        crashes = plan.of_kind("crash")
        for left, right in zip(crashes, crashes[1:]):
            assert left.end <= right.start

    def test_presets_catalogued(self):
        presets = fault_presets()
        for name in ("replica-crash", "double-crash", "straggler",
                     "degraded-link", "drop-storm", "chaos"):
            assert name in presets
            plan = build_fault_preset(name, horizon=10.0)
            for event in plan.events:
                assert event.kind in FAULT_KINDS

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown fault preset"):
            build_fault_preset("nope", horizon=10.0)


class TestRetryPolicy:
    def test_delay_grows_with_attempt(self):
        policy = RetryPolicy(backoff_s=0.1, multiplier=2.0, jitter=0.0)
        assert policy.delay(2, request_id=0) == pytest.approx(0.2)
        assert policy.delay(3, request_id=0) > policy.delay(2, request_id=0)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=0.1, multiplier=1.0, jitter=0.5, seed=1)
        once = policy.delay(1, request_id=42)
        again = policy.delay(1, request_id=42)
        assert once == again
        assert 0.1 <= once <= 0.15
        assert policy.delay(1, request_id=43) != once

    def test_parse_spec(self):
        policy = parse_retry_policy("retries=5,backoff=0.2,multiplier=3,jitter=0", seed=9)
        assert policy.max_retries == 5
        assert policy.backoff_s == pytest.approx(0.2)
        assert policy.multiplier == pytest.approx(3.0)
        assert policy.jitter == 0.0
        assert policy.seed == 9

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError):
            parse_retry_policy("retries=1,flux=2")


class TestResiliencePolicy:
    def test_engaged_flag(self):
        assert not ResiliencePolicy().engaged
        assert ResiliencePolicy(deadline_s=1.0).engaged
        assert ResiliencePolicy(admission_limit=4).engaged

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(admission_limit=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(warm_spares=-1)


class TestSpeedTimeline:
    def test_nominal_is_exact(self):
        timeline = SpeedTimeline(())
        assert timeline.is_nominal
        assert timeline.finish_time(1.25, 0.5) == 1.75  # bit-exact, not approx

    def test_zero_speed_stalls(self):
        timeline = SpeedTimeline((SpeedWindow(start=1.0, end=2.0, speed=0.0),))
        # Work started before the outage resumes after it.
        assert timeline.finish_time(0.5, 1.0) == pytest.approx(2.5)

    def test_slowdown_stretches_work(self):
        timeline = SpeedTimeline((SpeedWindow(start=0.0, end=10.0, speed=0.5),))
        assert timeline.finish_time(0.0, 1.0) == pytest.approx(2.0)

    def test_availability(self):
        timeline = SpeedTimeline((SpeedWindow(start=0.0, end=2.0, speed=0.0),))
        assert timeline.availability(8.0) == pytest.approx(0.75)


class TestFaultInjector:
    def test_downtime_and_recovery(self):
        plan = FaultPlan(events=(FaultEvent(kind="crash", start=2.0, duration=1.0),))
        injector = FaultInjector(plan)
        assert injector.is_down(2.5)
        assert not injector.is_down(3.5)
        assert injector.next_up(2.5) == pytest.approx(3.0)
        assert injector.availability(10.0) == pytest.approx(0.9)

    def test_warm_spares_shrink_outages(self):
        plan = FaultPlan(events=(FaultEvent(kind="crash", start=2.0, duration=1.0),))
        policy = ResiliencePolicy(warm_spares=1, failover_delay_s=0.05)
        injector = FaultInjector(plan, policy)
        assert injector.failovers == 1
        assert injector.availability(10.0) > 0.99

    def test_comm_factor_composes(self):
        plan = FaultPlan(events=(
            FaultEvent(kind="degraded-link", start=0.0, duration=4.0, factor=0.5),
            FaultEvent(kind="degraded-link", start=2.0, duration=4.0, factor=0.8),
        ))
        injector = FaultInjector(plan)
        assert injector.comm_factor_at(1.0) == pytest.approx(0.5)
        assert injector.comm_factor_at(3.0) == pytest.approx(0.5)  # min, not product
        assert injector.comm_factor_at(5.0) == pytest.approx(0.8)
        assert injector.comm_factor_at(9.0) == 1.0

    def test_drops_are_deterministic(self):
        plan = FaultPlan(seed=5, events=(
            FaultEvent(kind="drop", start=0.0, duration=10.0, probability=0.5),
        ))
        injector = FaultInjector(plan)
        decisions = [injector.drops(request_id=i, attempt=1, time=1.0) for i in range(64)]
        assert decisions == [injector.drops(request_id=i, attempt=1, time=1.0) for i in range(64)]
        assert any(decisions) and not all(decisions)
        # Outside the window nothing drops.
        assert not any(injector.drops(request_id=i, attempt=1, time=11.0) for i in range(64))


class TestReplayResourceProfiles:
    def test_straggling_resource_stretches_the_timeline(self):
        tasks = [
            ReplayTask(name="a", resource="stage-0", duration=1.0),
            ReplayTask(name="b", resource="stage-0", duration=1.0, deps=(("a", 0.0),)),
        ]
        nominal = replay_tasks(tasks)
        slowed = replay_tasks(
            tasks,
            resource_profiles={
                "stage-0": SpeedTimeline((SpeedWindow(start=0.0, end=10.0, speed=0.5),))
            },
        )
        assert nominal.makespan == pytest.approx(2.0)
        assert slowed.makespan == pytest.approx(4.0)

    def test_nominal_profile_changes_nothing(self):
        tasks = [ReplayTask(name="a", resource="r", duration=1.5)]
        assert replay_tasks(tasks, resource_profiles={"r": SpeedTimeline(())}).makespan == \
            replay_tasks(tasks).makespan
