"""Lint: library code must not read the clock behind the obs layer's back.

The ruff configuration bans ``time.time`` / ``time.perf_counter`` /
``time.monotonic`` in ``src/repro`` via TID251 (see pyproject.toml), but ruff
is a dev-only dependency; this test enforces the same rule with a plain
source scan so the tier-1 suite catches violations on machines without ruff.

``src/repro/obs`` is the one sanctioned wrapper (``SystemClock`` /
``obs.now``); everything else must route timing through it so an injected
``FakeClock`` sees every reading.  ``time.sleep`` stays allowed -- retry
backoff is genuine wall-clock work, not a measurement.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Direct clock reads; matched as calls or bare attribute references.
BANNED = re.compile(r"\btime\.(time|perf_counter|monotonic)\b")


def _is_exempt(path: Path) -> bool:
    return "obs" in path.relative_to(SRC).parts[:1]


def test_no_direct_clock_reads_outside_obs():
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        if _is_exempt(path):
            continue
        for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            code = line.split("#", 1)[0]
            if BANNED.search(code):
                violations.append(f"{path.relative_to(SRC.parent)}:{lineno}: {line.strip()}")
    assert not violations, (
        "direct clock reads outside repro.obs (use obs.now() instead):\n"
        + "\n".join(violations)
    )


def test_obs_clock_is_the_wrapper():
    # The exemption exists for exactly one reason: SystemClock wraps the timer.
    clock_src = (SRC / "obs" / "clock.py").read_text(encoding="utf-8")
    assert "time.perf_counter()" in clock_src
