"""Tests for the declarative scenario matrix (repro.sweep.matrix/presets)."""

import pytest

from repro.core.config import OverlapSettings
from repro.sweep.matrix import Platform, Scenario, ScenarioMatrix
from repro.sweep.presets import matrix_from_preset, sweep_presets


@pytest.fixture
def small_matrix() -> ScenarioMatrix:
    return ScenarioMatrix.build(
        name="unit",
        workload="unit",
        shapes=[(512, 1024, 1024), (1024, 2048, 1024)],
        platforms=[("rtx4090", "rtx4090-pcie", 4), ("a800", "a800-nvlink", 4)],
        collectives=["allreduce", "reducescatter"],
        seeds=[0, 1],
    )


class TestExpansion:
    def test_cartesian_size(self, small_matrix):
        # 2 shapes x 2 platforms x 2 collectives x 2 seeds
        assert len(small_matrix.expand()) == 16

    def test_expansion_is_deterministic(self, small_matrix):
        first = [s.job_id for s in small_matrix.expand()]
        second = [s.job_id for s in small_matrix.expand()]
        assert first == second

    def test_expansion_is_duplicate_free(self, small_matrix):
        ids = [s.job_id for s in small_matrix.expand()]
        assert len(ids) == len(set(ids))

    def test_repeated_axis_values_collapse(self):
        matrix = ScenarioMatrix.build(
            name="dup",
            workload="dup",
            shapes=[(512, 1024, 1024), (512, 1024, 1024)],
            platforms=[("rtx4090", "rtx4090-pcie", 4)],
            collectives=["allreduce", "allreduce"],
        )
        assert len(matrix.expand()) == 1

    def test_job_ids_are_content_derived(self):
        a = Scenario(workload="w", m=512, n=1024, k=1024, device="rtx4090",
                     topology="rtx4090-pcie", gpus=4, collective="allreduce")
        b = Scenario(workload="w", m=512, n=1024, k=1024, device="rtx4090",
                     topology="rtx4090-pcie", gpus=4, collective="allreduce")
        c = Scenario(workload="w", m=512, n=1024, k=2048, device="rtx4090",
                     topology="rtx4090-pcie", gpus=4, collective="allreduce")
        assert a.job_id == b.job_id
        assert a.job_id != c.job_id


class TestScenarioMaterialisation:
    def test_to_problem_round_trips_axes(self):
        scenario = Scenario(workload="w", m=512, n=1024, k=1024, device="a800",
                            topology="a800-nvlink", gpus=8, collective="reducescatter",
                            imbalance=1.2)
        problem = scenario.to_problem()
        assert problem.shape.m == 512
        assert problem.n_gpus == 8
        assert problem.collective.short_name == "RS"
        assert problem.imbalance == 1.2

    def test_settings_overrides_apply(self):
        scenario = Scenario(
            workload="w", m=512, n=1024, k=1024, device="rtx4090",
            topology="rtx4090-pcie", gpus=4, collective="allreduce",
            seed=7, settings_overrides=(("max_last_group", 2.0), ("signal_poll_us", 5.0)),
        )
        settings = scenario.to_settings(OverlapSettings())
        assert settings.max_last_group == 2
        assert isinstance(settings.max_last_group, int)
        assert settings.signal_poll_us == 5.0
        assert settings.seed == 7

    def test_unknown_settings_axis_rejected(self):
        with pytest.raises(KeyError, match="unknown OverlapSettings axes"):
            ScenarioMatrix.build(
                name="bad", workload="bad",
                shapes=[(512, 1024, 1024)],
                platforms=[("rtx4090", "rtx4090-pcie", 4)],
                collectives=["allreduce"],
                settings_grid=[{"not_a_field": 1}],
            )

    def test_scenario_dict_round_trip(self):
        scenario = Scenario(
            workload="w", m=512, n=1024, k=1024, device="rtx4090",
            topology="rtx4090-pcie", gpus=4, collective="allreduce",
            imbalance=1.1, seed=3, settings_overrides=(("max_last_group", 3.0),),
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario


class TestMatrixConfig:
    def test_matrix_dict_round_trip(self, small_matrix):
        rebuilt = ScenarioMatrix.from_dict(small_matrix.to_dict())
        assert [s.job_id for s in rebuilt.expand()] == [s.job_id for s in small_matrix.expand()]

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            ScenarioMatrix.build(name="x", workload="x", shapes=[],
                                 platforms=[("rtx4090", "rtx4090-pcie", 4)],
                                 collectives=["allreduce"])

    def test_platform_needs_two_gpus(self):
        with pytest.raises(ValueError):
            Platform(device="rtx4090", topology="rtx4090-pcie", gpus=1)


class TestPresets:
    def test_every_preset_expands(self):
        for name in sweep_presets():
            scenarios = matrix_from_preset(name).expand()
            assert scenarios, name
            ids = [s.job_id for s in scenarios]
            assert len(ids) == len(set(ids)), name

    def test_every_preset_scenario_materialises(self):
        # Every scenario of every preset must reconstruct into a live problem.
        for name in sweep_presets():
            for scenario in matrix_from_preset(name).expand():
                problem = scenario.to_problem()
                assert problem.output_bytes() > 0

    def test_smoke_preset_is_at_least_twelve_cheap_scenarios(self):
        scenarios = matrix_from_preset("smoke").expand()
        assert len(scenarios) >= 12
        assert all(s.m * s.n <= 2048 * 2048 for s in scenarios)

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="unknown sweep preset"):
            matrix_from_preset("nope")

    def test_serving_presets_grid_over_arrival_rates(self):
        from repro.sweep.presets import serving_matrix

        low = serving_matrix(rate_rps=8.0)
        high = serving_matrix(rate_rps=128.0)
        assert low.name == "serving-rate8" and high.name == "serving-rate128"
        assert {s.workload for s in low.expand()} == {"serving-rate8"}
        # Heavier traffic batches more tokens per iteration, reaching larger
        # GEMM M buckets than the light-traffic preset.
        assert max(s.m for s in high.expand()) > max(s.m for s in low.expand())
        # The dry-run derivation is deterministic.
        assert serving_matrix(rate_rps=8.0).expand() == low.expand()
