"""Atomic persistence: interrupted writes never corrupt existing artifacts.

``repro.atomic.atomic_write_text`` backs every JSON artifact the toolkit
persists (shape caches, plan JSON, reports, benchmark baselines, traces):
content goes to a temp file in the target directory first and lands via
``os.replace``, so a reader -- or a crash -- can only ever observe the old
bytes or the new bytes, never a torn file.
"""

import os

import pytest

from repro.atomic import atomic_write_text
from repro.core.tuner import GemmShapeCache


class TestAtomicWriteText:
    def test_writes_content_and_returns_path(self, tmp_path):
        path = atomic_write_text(tmp_path / "out.txt", "hello\n")
        assert path.read_text(encoding="utf-8") == "hello\n"

    def test_creates_parent_directories(self, tmp_path):
        path = atomic_write_text(tmp_path / "a" / "b" / "out.txt", "x")
        assert path.exists()

    def test_overwrites_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"

    def test_interrupted_write_preserves_the_original(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "precious")

        real_replace = os.replace

        def failing_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(target, "torn")
        monkeypatch.setattr(os, "replace", real_replace)

        assert target.read_text(encoding="utf-8") == "precious"

    def test_no_temp_files_left_behind(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "first")

        monkeypatch.setattr(os, "replace",
                            lambda src, dst: (_ for _ in ()).throw(OSError("boom")))
        with pytest.raises(OSError):
            atomic_write_text(target, "second")
        monkeypatch.undo()

        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.txt"]


class TestArtifactsUseAtomicWrites:
    def test_shape_cache_save_survives_interruption(self, tmp_path, monkeypatch):
        cache = GemmShapeCache()
        path = tmp_path / "cache.json"
        cache.save(path)
        before = path.read_text(encoding="utf-8")

        monkeypatch.setattr(os, "replace",
                            lambda src, dst: (_ for _ in ()).throw(OSError("boom")))
        with pytest.raises(OSError):
            cache.save(path)
        monkeypatch.undo()

        assert path.read_text(encoding="utf-8") == before
        assert GemmShapeCache.load(path).to_json() == before

    def test_plan_save_is_atomic_and_newline_terminated(self, tmp_path):
        import repro.api as api

        report = api.plan(smoke=True)
        path = report.winner.save(tmp_path / "plan.json")
        text = path.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["plan.json"]

    def test_report_save_json_round_trips(self, tmp_path):
        import json

        import repro.api as api

        report = api.plan(smoke=True)
        path = report.save_json(tmp_path / "report.json")
        assert json.loads(path.read_text(encoding="utf-8")) == report.to_dict()
        assert sorted(p.name for p in tmp_path.iterdir()) == ["report.json"]
