"""Tests for the latency predictor (repro.core.predictor, Alg. 1)."""

import numpy as np
import pytest

from repro.core.executor import OverlapExecutor
from repro.core.predictor import LatencyPredictor, OfflineProfile
from repro.core.wave_grouping import WavePartition, candidate_partitions


@pytest.fixture
def profile(paper_problem_4090, fast_settings):
    return OfflineProfile.build(paper_problem_4090, fast_settings)


@pytest.fixture
def predictor(profile, paper_problem_4090):
    return LatencyPredictor(profile, total_bytes=paper_problem_4090.output_bytes())


class TestOfflineProfile:
    def test_wave_count_uses_contended_sms(self, profile, paper_problem_4090):
        gemm = paper_problem_4090.gemm_model()
        assert profile.num_waves == gemm.num_waves(paper_problem_4090.compute_sm_count())
        assert profile.num_waves >= gemm.num_waves()  # fewer SMs -> at least as many waves

    def test_wave_time_positive(self, profile):
        assert profile.wave_time > 0
        assert profile.wave_bytes > 0

    def test_comm_model_uses_sampled_curve(self, profile):
        from repro.comm.bandwidth import SampledBandwidthCurve

        assert isinstance(profile.comm_model.curve, SampledBandwidthCurve)

    def test_total_output_bytes_override(self, profile):
        assert profile.total_output_bytes(123.0) == 123.0
        assert profile.total_output_bytes() == profile.num_waves * profile.wave_bytes


class TestPrediction:
    def test_group_bytes_respect_total(self, predictor, paper_problem_4090):
        for partition in (
            WavePartition.single_group(predictor.profile.num_waves),
            WavePartition.equal_groups(predictor.profile.num_waves, 3),
        ):
            payloads = predictor.group_bytes(partition)
            assert payloads.sum() <= predictor.profile.num_waves * predictor.profile.wave_bytes + 1
            assert payloads.sum() >= paper_problem_4090.output_bytes() * 0.99
            assert np.all(payloads >= 0)

    def test_timeline_is_causal(self, predictor):
        partition = WavePartition.equal_groups(predictor.profile.num_waves, 2)
        timeline = predictor.timeline(partition)
        assert np.all(timeline.comm_start >= timeline.compute_end - 1e-12)
        assert np.all(np.diff(timeline.comm_end) > 0)
        assert timeline.latency == timeline.comm_end[-1]

    def test_some_partition_beats_non_overlap(self, predictor, fast_settings):
        candidates = candidate_partitions(
            predictor.profile.num_waves, 2, 4, fast_settings.max_exhaustive_waves
        )
        best = min(predictor.predict(p) for p in candidates)
        assert best < predictor.predict_non_overlap()

    def test_single_group_close_to_non_overlap(self, predictor):
        single = predictor.predict(WavePartition.single_group(predictor.profile.num_waves))
        non_overlap = predictor.predict_non_overlap()
        # The single-group plan pays SM contention but hides nothing; it should
        # sit near (and not far below) the sequential prediction.
        assert single >= non_overlap * 0.95
        assert single <= non_overlap * 1.3

    def test_wave_count_mismatch_rejected(self, predictor):
        with pytest.raises(ValueError):
            predictor.predict(WavePartition((1, 1)))

    def test_imbalance_increases_prediction(self, paper_problem_4090, fast_settings):
        from dataclasses import replace

        balanced = OfflineProfile.build(paper_problem_4090, fast_settings)
        skewed = replace(balanced, imbalance=1.4)
        partition = WavePartition.equal_groups(balanced.num_waves, 2)
        assert LatencyPredictor(skewed).predict(partition) > LatencyPredictor(balanced).predict(
            partition
        )

    def test_fragmentation_penalty_visible(self, predictor):
        # Per-wave signaling pays more per-call setup than a 4-wave grouping:
        # total communication time (ignoring overlap) is larger.
        waves = predictor.profile.num_waves
        per_wave = predictor.group_comm_times(WavePartition.per_wave(waves))
        grouped = predictor.group_comm_times(WavePartition.equal_groups(waves, 4))
        assert per_wave.sum() > grouped.sum()


class TestPredictionAccuracy:
    def test_prediction_tracks_simulation(self, paper_problem_4090, fast_settings):
        """Claim C2 backbone: the predictor errs by a few percent and always
        on the optimistic side (the executor adds real overheads)."""
        executor = OverlapExecutor(paper_problem_4090, fast_settings)
        profile = OfflineProfile.build(paper_problem_4090, fast_settings)
        predictor = LatencyPredictor(profile, total_bytes=paper_problem_4090.output_bytes())
        errors = []
        for group_size in (1, 2, 3, 4, 6):
            partition = WavePartition.equal_groups(executor.num_waves(), group_size)
            predicted = predictor.predict(partition)
            actual = executor.simulate(partition).latency
            errors.append(abs(actual - predicted) / actual)
            assert actual >= predicted * 0.98
        assert float(np.mean(errors)) < 0.10

    def test_prediction_ranks_partitions_consistently(self, paper_problem_4090, fast_settings):
        executor = OverlapExecutor(paper_problem_4090, fast_settings)
        profile = OfflineProfile.build(paper_problem_4090, fast_settings)
        predictor = LatencyPredictor(profile, total_bytes=paper_problem_4090.output_bytes())
        waves = executor.num_waves()
        partitions = [WavePartition.equal_groups(waves, g) for g in (1, 4, waves)]
        predicted = [predictor.predict(p) for p in partitions]
        actual = [executor.simulate(p).latency for p in partitions]
        assert np.argsort(predicted).tolist() == np.argsort(actual).tolist()
