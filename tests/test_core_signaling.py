"""Tests for the signaling mechanism (repro.core.signaling)."""

import numpy as np
import pytest

from repro.core.signaling import (
    CountingTable,
    GroupAssignment,
    SignalOrderError,
    SignalSchedule,
)
from repro.core.wave_grouping import WavePartition


@pytest.fixture
def wave_tiles():
    # 3 waves of 2 tiles each, swizzled order as in Fig. 6.
    return [[0, 2], [4, 1], [3, 5]]


@pytest.fixture
def assignment(wave_tiles):
    return GroupAssignment.build(WavePartition((1, 2)), wave_tiles)


class TestCountingTable:
    def test_fires_exactly_when_group_completes(self):
        table = CountingTable(group_sizes=(2, 4))
        assert table.record_tile(0) is False
        assert table.record_tile(0) is True
        assert table.is_complete(0)
        for _ in range(3):
            assert table.record_tile(1) is False
        assert table.record_tile(1) is True
        assert table.all_complete()

    def test_overcounting_rejected(self):
        table = CountingTable(group_sizes=(1,))
        table.record_tile(0)
        with pytest.raises(SignalOrderError):
            table.record_tile(0)

    def test_invalid_group_index(self):
        table = CountingTable(group_sizes=(1, 1))
        with pytest.raises(IndexError):
            table.record_tile(2)

    def test_assert_ready(self):
        table = CountingTable(group_sizes=(2,))
        with pytest.raises(SignalOrderError):
            table.assert_ready(0)
        table.record_tile(0)
        table.record_tile(0)
        table.assert_ready(0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            CountingTable(group_sizes=())
        with pytest.raises(ValueError):
            CountingTable(group_sizes=(0,))


class TestGroupAssignment:
    def test_groups_follow_wave_partition(self, assignment):
        assert assignment.num_groups == 2
        assert assignment.tiles_of(0) == (0, 2)
        assert assignment.tiles_of(1) == (4, 1, 3, 5)
        assert assignment.group_tile_counts() == (2, 4)

    def test_group_of_tile(self, assignment):
        assert assignment.group_of_tile[0] == 0
        assert assignment.group_of_tile[5] == 1

    def test_duplicate_tile_rejected(self):
        with pytest.raises(ValueError):
            GroupAssignment.build(WavePartition((1, 1)), [[0, 1], [1, 2]])

    def test_counting_table_sizes(self, assignment):
        table = assignment.counting_table()
        assert table.group_sizes == (2, 4)


class TestSignalSchedule:
    def test_ready_time_is_last_tile_of_group(self, assignment):
        times = np.array([1.0, 2.5, 1.2, 3.0, 2.0, 2.8])
        schedule = SignalSchedule.from_tile_times(assignment, times, signal_latency=0.1)
        assert schedule.ready_time(0) == pytest.approx(1.2 + 0.1)
        assert schedule.ready_time(1) == pytest.approx(3.0 + 0.1)
        assert schedule.is_monotonic()

    def test_wave_order_gives_monotonic_signals(self, wave_tiles):
        partition = WavePartition.per_wave(3)
        assignment = GroupAssignment.build(partition, wave_tiles)
        times = np.array([1.0, 2.0, 1.0, 3.0, 2.0, 3.0])
        schedule = SignalSchedule.from_tile_times(assignment, times)
        np.testing.assert_allclose(schedule.group_ready_times, [1.0, 2.0, 3.0])

    def test_replay_counts_every_tile(self, assignment):
        # All tiles present, arbitrary completion order: every group fires.
        times = np.arange(6, dtype=float)[::-1]
        schedule = SignalSchedule.from_tile_times(assignment, times)
        assert not np.isnan(schedule.group_ready_times).any()
