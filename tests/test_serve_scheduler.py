"""Tests for the continuous-batching scheduler (repro.serve.scheduler)."""

import pytest

from repro.serve.arrivals import PoissonArrivals, Request, distribution_by_name
from repro.serve.scheduler import (
    ContinuousBatchingScheduler,
    iteration_gemm_shapes,
    profile_iteration_tokens,
)
from repro.workloads.llm import LLAMA2_7B


def request(rid, prompt, output, arrival=0.0):
    return Request(
        request_id=rid, arrival_time=arrival, prompt_tokens=prompt, output_tokens=output
    )


class TestBatchPacking:
    def test_single_request_chunked_prefill(self):
        scheduler = ContinuousBatchingScheduler(max_batch_tokens=64, max_batch_size=4)
        scheduler.add(request(0, prompt=150, output=2))

        batch = scheduler.next_batch()
        assert [c.tokens for c in batch.prefill] == [64]
        assert not batch.prefill[0].finishes_prefill
        scheduler.apply(batch)

        batch = scheduler.next_batch()
        assert [c.tokens for c in batch.prefill] == [64]
        scheduler.apply(batch)

        batch = scheduler.next_batch()
        assert [c.tokens for c in batch.prefill] == [22]
        assert batch.prefill[0].finishes_prefill
        outcome = scheduler.apply(batch)
        assert outcome.first_tokens == (0,)  # prefill emits the first token

        batch = scheduler.next_batch()  # one decode left
        assert batch.prefill == () and batch.decode == (0,)
        outcome = scheduler.apply(batch)
        assert outcome.finished == (0,)
        assert not scheduler.has_work

    def test_decode_has_priority_over_prefill(self):
        scheduler = ContinuousBatchingScheduler(max_batch_tokens=16, max_batch_size=4)
        scheduler.add(request(0, prompt=4, output=8))
        scheduler.apply(scheduler.next_batch())  # request 0 finishes prefill
        scheduler.add(request(1, prompt=100, output=2))
        batch = scheduler.next_batch()
        assert batch.decode == (0,)
        assert [c.tokens for c in batch.prefill] == [15]  # leftover budget
        assert batch.total_tokens == 16

    def test_token_budget_respected(self):
        scheduler = ContinuousBatchingScheduler(max_batch_tokens=32, max_batch_size=8)
        for rid in range(8):
            scheduler.add(request(rid, prompt=20, output=4))
        while scheduler.has_work:
            batch = scheduler.next_batch()
            assert batch.total_tokens <= 32
            scheduler.apply(batch)

    def test_batch_size_bounds_admission(self):
        scheduler = ContinuousBatchingScheduler(max_batch_tokens=1024, max_batch_size=2)
        for rid in range(5):
            scheduler.add(request(rid, prompt=8, output=1))
        batch = scheduler.next_batch()
        assert batch.num_requests == 2
        assert scheduler.waiting_count == 3

    def test_no_work_returns_none(self):
        scheduler = ContinuousBatchingScheduler()
        assert scheduler.next_batch() is None

    def test_duplicate_request_id_rejected(self):
        scheduler = ContinuousBatchingScheduler()
        scheduler.add(request(0, prompt=4, output=1))
        with pytest.raises(ValueError, match="already enqueued"):
            scheduler.add(request(0, prompt=4, output=1))


class TestSteadyDecodeRun:
    """The fast path's silent-run detector and its bulk-apply counterpart."""

    def steady_scheduler(self, outputs, max_batch_tokens=512, max_batch_size=8):
        """All requests prefilled in one batch, now mid-decode."""
        scheduler = ContinuousBatchingScheduler(
            max_batch_tokens=max_batch_tokens, max_batch_size=max_batch_size
        )
        for rid, output in enumerate(outputs):
            scheduler.add(request(rid, prompt=4, output=output))
        scheduler.apply(scheduler.next_batch())  # every prefill fits at once
        return scheduler

    def test_empty_scheduler_has_no_run(self):
        scheduler = ContinuousBatchingScheduler(max_batch_tokens=64, max_batch_size=4)
        assert scheduler.steady_decode_run() == 0

    def test_run_is_min_output_remaining_minus_one(self):
        # Prefill emits the first token, so outputs (5, 3) leave (4, 2)
        # decodes; only the first of the two remaining request-1 decodes is
        # silent -- the second finishes request 1.
        scheduler = self.steady_scheduler([5, 3])
        assert scheduler.steady_decode_run() == 1

    def test_last_token_iteration_is_never_silent(self):
        scheduler = self.steady_scheduler([2, 2])  # one decode each left
        assert scheduler.steady_decode_run() == 0

    def test_pending_admission_blocks_the_run(self):
        scheduler = self.steady_scheduler([8], max_batch_size=2)
        assert scheduler.steady_decode_run() == 6
        scheduler.add(request(99, prompt=4, output=4))  # waiting + a free slot
        assert scheduler.steady_decode_run() == 0

    def test_full_slots_keep_the_run_alive(self):
        scheduler = self.steady_scheduler([8], max_batch_size=1)
        scheduler.add(request(99, prompt=4, output=4))  # waiting, but no slot
        assert scheduler.steady_decode_run() == 6

    def test_pending_prefill_blocks_the_run(self):
        scheduler = ContinuousBatchingScheduler(max_batch_tokens=64, max_batch_size=4)
        scheduler.add(request(0, prompt=4, output=8))
        scheduler.add(request(1, prompt=150, output=8))  # needs chunked prefill
        scheduler.apply(scheduler.next_batch())  # 0 done, 1 mid-prefill
        assert scheduler.steady_decode_run() == 0

    def test_overflowing_token_budget_blocks_the_run(self):
        scheduler = self.steady_scheduler([8, 8, 8])
        scheduler.max_batch_tokens = 2  # 3 running decodes no longer fit
        assert scheduler.steady_decode_run() == 0

    def test_advance_decodes_matches_repeated_silent_batches(self):
        fast = self.steady_scheduler([6, 4])
        slow = self.steady_scheduler([6, 4])
        run = fast.steady_decode_run()
        assert run == 2
        fast.advance_decodes(run)
        for _ in range(run):
            batch = slow.next_batch()
            assert batch.prefill == () and batch.decode == (0, 1)
            outcome = slow.apply(batch)
            assert outcome.first_tokens == () and outcome.finished == ()
        assert fast.steady_decode_run() == slow.steady_decode_run() == 0
        # The next real batch finishes request 1 on both schedulers.
        for scheduler in (fast, slow):
            outcome = scheduler.apply(scheduler.next_batch())
            assert outcome.finished == (1,)

    def test_advance_decodes_rejects_negative(self):
        scheduler = self.steady_scheduler([6])
        with pytest.raises(ValueError, match=">= 0"):
            scheduler.advance_decodes(-1)

    def test_advance_decodes_rejects_crossing_a_request_boundary(self):
        scheduler = self.steady_scheduler([6, 4])
        with pytest.raises(ValueError, match="past a request boundary"):
            scheduler.advance_decodes(3)  # request 1 has only 3 decodes left

    def test_advance_decodes_rejects_pending_prefill(self):
        scheduler = ContinuousBatchingScheduler(max_batch_tokens=64, max_batch_size=4)
        scheduler.add(request(0, prompt=150, output=8))
        scheduler.apply(scheduler.next_batch())  # mid-prefill
        with pytest.raises(ValueError, match="past a request boundary"):
            scheduler.advance_decodes(1)


class TestTokenConservation:
    def test_all_tokens_scheduled_exactly_once(self):
        requests = [
            request(rid, prompt=13 + 7 * rid, output=3 + rid, arrival=0.0)
            for rid in range(6)
        ]
        scheduler = ContinuousBatchingScheduler(max_batch_tokens=24, max_batch_size=3)
        for r in requests:
            scheduler.add(r)
        prefill_tokens: dict[int, int] = {}
        output_tokens: dict[int, int] = {}
        while scheduler.has_work:
            batch = scheduler.next_batch()
            for chunk in batch.prefill:
                prefill_tokens[chunk.request_id] = (
                    prefill_tokens.get(chunk.request_id, 0) + chunk.tokens
                )
            outcome = scheduler.apply(batch)
            for rid in batch.decode + outcome.first_tokens:
                output_tokens[rid] = output_tokens.get(rid, 0) + 1
        for r in requests:
            assert prefill_tokens[r.request_id] == r.prompt_tokens
            assert output_tokens[r.request_id] == r.output_tokens

    def test_single_token_output_finishes_at_prefill(self):
        scheduler = ContinuousBatchingScheduler(max_batch_tokens=64, max_batch_size=4)
        scheduler.add(request(0, prompt=10, output=1))
        outcome = scheduler.apply(scheduler.next_batch())
        assert outcome.first_tokens == (0,)
        assert outcome.finished == (0,)
        assert not scheduler.has_work


class TestIterationShapes:
    def test_row_parallel_projections(self):
        shapes = iteration_gemm_shapes(512, LLAMA2_7B, tp=4)
        assert [(s.m, s.n, s.k) for s in shapes] == [
            (512, 4096, 1024),
            (512, 4096, 2752),
        ]

    def test_rejects_empty_iteration(self):
        with pytest.raises(ValueError):
            iteration_gemm_shapes(0, LLAMA2_7B, tp=4)


class TestProfileIterationTokens:
    def _requests(self, n=16, seed=0):
        return PoissonArrivals(
            rate_rps=50.0,
            distribution=distribution_by_name("chat"),
            seed=seed,
            num_requests=n,
        ).generate()

    def test_deterministic(self):
        a = profile_iteration_tokens(self._requests(), max_batch_tokens=256)
        b = profile_iteration_tokens(self._requests(), max_batch_tokens=256)
        assert a == b
        assert a  # produced at least one iteration

    def test_budget_respected_and_tokens_conserved(self):
        requests = self._requests()
        tokens = profile_iteration_tokens(requests, max_batch_tokens=256)
        assert max(tokens) <= 256
        assert sum(tokens) == sum(r.prompt_tokens + r.output_tokens - 1 for r in requests)
