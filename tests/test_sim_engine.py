"""Tests for the discrete-event engine (repro.sim.engine)."""

import pytest

from repro.sim.engine import EventEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = EventEngine()
        log = []
        engine.schedule(3.0, log.append, "c")
        engine.schedule(1.0, log.append, "a")
        engine.schedule(2.0, log.append, "b")
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 3.0
        assert engine.processed_events == 3

    def test_fifo_among_equal_times(self):
        engine = EventEngine()
        log = []
        for name in "abc":
            engine.schedule(1.0, log.append, name)
        engine.run()
        assert log == ["a", "b", "c"]

    def test_schedule_after(self):
        engine = EventEngine()
        times = []
        engine.schedule(1.0, lambda: engine.schedule_after(0.5, lambda: times.append(engine.now)))
        engine.run()
        assert times == [1.5]

    def test_scheduling_in_the_past_rejected(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule(0.5, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_after(-1.0, lambda: None)

    def test_callbacks_can_chain_events(self):
        engine = EventEngine()
        hits = []

        def tick(remaining):
            hits.append(engine.now)
            if remaining > 0:
                engine.schedule_after(1.0, tick, remaining - 1)

        engine.schedule(0.0, tick, 3)
        engine.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]


class TestControl:
    def test_run_until_stops_early(self):
        engine = EventEngine()
        log = []
        engine.schedule(1.0, log.append, 1)
        engine.schedule(5.0, log.append, 5)
        engine.run(until=2.0)
        assert log == [1]
        assert engine.pending_events == 1
        engine.run()
        assert log == [1, 5]

    def test_run_until_with_empty_queue_advances_clock(self):
        engine = EventEngine()
        assert engine.run(until=3.0) == 3.0
        assert engine.now == 3.0

    def test_run_until_advances_past_executed_events(self):
        # Events at 1.0 and 2.0 both execute; the clock must land on `until`,
        # not stay at the last event time.
        engine = EventEngine()
        log = []
        engine.schedule(1.0, log.append, 1)
        engine.schedule(2.0, log.append, 2)
        assert engine.run(until=3.5) == 3.5
        assert log == [1, 2]
        assert engine.now == 3.5

    def test_run_until_advances_when_breaking_on_future_event(self):
        # The head event is past `until`: nothing executes, but simulated
        # time still passes up to `until` (min(until, next-event time)).
        engine = EventEngine()
        log = []
        engine.schedule(5.0, log.append, 5)
        assert engine.run(until=2.0) == 2.0
        assert log == []
        assert engine.now == 2.0
        # A later shorter horizon keeps the clock monotonic.
        assert engine.run(until=1.0) == 2.0

    def test_run_until_skips_cancelled_head_beyond_horizon(self):
        engine = EventEngine()
        handle = engine.schedule(5.0, lambda: None)
        engine.cancel(handle)
        assert engine.run(until=2.0) == 2.0

    def test_max_events_limit_does_not_advance_to_until(self):
        engine = EventEngine()
        log = []
        engine.schedule(1.0, log.append, 1)
        engine.schedule(2.0, log.append, 2)
        engine.run(until=10.0, max_events=1)
        assert log == [1]
        assert engine.now == 1.0

    def test_next_event_time_peeks_past_cancelled_heads(self):
        engine = EventEngine()
        assert engine.next_event_time() is None
        cancelled = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.cancel(cancelled)
        assert engine.next_event_time() == 2.0
        engine.run()
        assert engine.next_event_time() is None

    def test_advance_to_moves_clock_forward_only(self):
        engine = EventEngine()
        engine.advance_to(1.5)
        assert engine.now == 1.5
        with pytest.raises(ValueError):
            engine.advance_to(1.0)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.now == 2.0

    def test_max_events_limit(self):
        engine = EventEngine()
        log = []
        for t in range(5):
            engine.schedule(float(t), log.append, t)
        engine.run(max_events=2)
        assert log == [0, 1]

    def test_cancel_skips_event(self):
        engine = EventEngine()
        log = []
        handle = engine.schedule(1.0, log.append, "x")
        engine.schedule(2.0, log.append, "y")
        engine.cancel(handle)
        engine.run()
        assert log == ["y"]

    def test_reset(self):
        engine = EventEngine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.processed_events == 0


class TestPendingCounter:
    """pending_events is a live counter updated on schedule/cancel/execute."""

    def test_counts_schedule_and_execute(self):
        engine = EventEngine()
        events = [engine.schedule(float(t), lambda: None) for t in range(4)]
        assert engine.pending_events == 4
        engine.run(until=1.5)
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0
        assert all(e.executed for e in events)

    def test_cancel_decrements_once(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.cancel(handle)
        assert engine.pending_events == 1
        engine.cancel(handle)  # double cancel is a no-op
        assert engine.pending_events == 1
        engine.run()
        assert engine.pending_events == 0

    def test_cancel_after_execution_is_noop(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.pending_events == 0
        engine.cancel(handle)
        assert engine.pending_events == 0

    def test_counter_tracks_events_scheduled_by_callbacks(self):
        engine = EventEngine()

        def chain(depth):
            if depth:
                engine.schedule_after(1.0, chain, depth - 1)

        engine.schedule(0.0, chain, 3)
        assert engine.pending_events == 1
        engine.run()
        assert engine.pending_events == 0
        assert engine.processed_events == 4

    def test_cancel_of_stale_handle_after_reset_is_noop(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda: None)
        engine.reset()
        engine.cancel(handle)
        assert engine.pending_events == 0
        engine.schedule(1.0, lambda: None)
        assert engine.pending_events == 1
