"""Equivalence suite: the incremental exhaustive tuner vs per-candidate simulation,
and the exhaustive tuner's sequential-fallback decision."""

import math

import pytest

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import InterconnectKind, Topology, rtx4090_pcie
from repro.core.config import OverlapProblem, OverlapSettings
from repro.core.executor import OverlapExecutor
from repro.core.tuner import ExhaustiveTuner
from repro.gpu.device import RTX_4090
from repro.gpu.gemm import GemmShape


@pytest.fixture
def problem(paper_problem_4090):
    return paper_problem_4090


class TestIncrementalExhaustive:
    @pytest.mark.parametrize("jitter", [0.0, 0.02])
    def test_identical_to_naive(self, problem, jitter):
        settings = OverlapSettings(executor_jitter=jitter)
        incremental = ExhaustiveTuner(settings, incremental=True).tune(problem)
        naive = ExhaustiveTuner(settings, incremental=False).tune(problem)
        assert incremental.partition == naive.partition
        assert incremental.predicted_latency == naive.predicted_latency
        assert incremental.use_overlap == naive.use_overlap
        assert incremental.candidates_evaluated == naive.candidates_evaluated

    def test_latency_matches_full_simulation(self, problem, fast_settings):
        result = ExhaustiveTuner(fast_settings).tune(problem)
        executor = OverlapExecutor(problem, fast_settings)
        assert executor.simulate(result.partition).latency == result.predicted_latency

    def test_identical_on_small_problem(self, small_problem, fast_settings):
        incremental = ExhaustiveTuner(fast_settings, incremental=True).tune(small_problem)
        naive = ExhaustiveTuner(fast_settings, incremental=False).tune(small_problem)
        assert incremental.partition == naive.partition
        assert incremental.predicted_latency == naive.predicted_latency

    @pytest.mark.parametrize("imbalance", [1.0, 1.3])
    def test_identical_under_imbalance(self, imbalance, fast_settings):
        problem = OverlapProblem(
            shape=GemmShape(1024, 2048, 1024),
            device=RTX_4090,
            topology=rtx4090_pcie(4),
            collective=CollectiveKind.REDUCE_SCATTER,
            imbalance=imbalance,
        )
        incremental = ExhaustiveTuner(fast_settings, incremental=True).tune(problem)
        naive = ExhaustiveTuner(fast_settings, incremental=False).tune(problem)
        assert incremental.partition == naive.partition
        assert incremental.predicted_latency == naive.predicted_latency


class TestExhaustiveSequentialFallback:
    def test_use_overlap_compares_against_sequential(self, problem, fast_settings):
        result = ExhaustiveTuner(fast_settings).tune(problem)
        sequential = OverlapExecutor(problem, fast_settings).simulate_sequential().latency
        assert result.use_overlap == (result.predicted_latency <= sequential)

    def test_fallback_when_overlap_cannot_win(self, fast_settings):
        # A pathological interconnect: gigantic per-call setup cost and huge
        # SM tax, so splitting the collective into per-group calls can only
        # lose against the single sequential call.
        topology = Topology(
            name="slow-setup",
            n_gpus=4,
            kind=InterconnectKind.PCIE,
            peak_bus_bandwidth_gbps=600.0,
            base_latency_us=50_000.0,
            half_saturation_mb=0.01,
            comm_sm_count=100,
            supports_p2p=False,
        )
        problem = OverlapProblem(
            shape=GemmShape(4096, 4096, 256),
            device=RTX_4090,
            topology=topology,
            collective=CollectiveKind.ALL_REDUCE,
        )
        result = ExhaustiveTuner(fast_settings).tune(problem)
        sequential = OverlapExecutor(problem, fast_settings).simulate_sequential().latency
        assert result.predicted_latency > sequential
        assert not result.use_overlap

    def test_overlap_kept_when_it_wins(self, problem, fast_settings):
        result = ExhaustiveTuner(fast_settings).tune(problem)
        assert result.use_overlap
        assert math.isfinite(result.predicted_latency)
