"""Tests for the event-driven serving simulator (repro.serve.simulator).

The scenario mirrors the CI smoke run: a short summarization burst on the
small model, heavy enough that chunked prefill reaches the buckets where
overlap genuinely wins, light enough that the whole comparison runs in well
under a second.
"""

import json

import pytest

from repro.comm.topology import a800_nvlink
from repro.serve import (
    PlanCache,
    PoissonArrivals,
    ServeConfig,
    ServingSimulator,
    compare_serving,
    distribution_by_name,
)


@pytest.fixture(scope="module")
def config():
    return ServeConfig(layers=2, max_batch_tokens=4096, max_batch_size=16,
                       topology=a800_nvlink(4))


@pytest.fixture(scope="module")
def requests():
    return PoissonArrivals(
        rate_rps=64.0,
        distribution=distribution_by_name("summarize"),
        seed=0,
        num_requests=16,
    ).generate()


@pytest.fixture(scope="module")
def results(config, requests):
    return compare_serving(config, requests)


class TestSimulation:
    def test_all_requests_complete(self, results, requests):
        for result in results.values():
            assert [r.request_id for r in result.records] == [r.request_id for r in requests]

    def test_event_times_are_causal(self, results, requests):
        arrivals = {r.request_id: r.arrival_time for r in requests}
        for result in results.values():
            for record in result.records:
                assert record.first_token_time > arrivals[record.request_id]
                assert record.finish_time >= record.first_token_time
                assert record.finish_time <= result.makespan_s

    def test_token_accounting(self, results, requests):
        expected = sum(r.prompt_tokens + r.output_tokens - 1 for r in requests)
        for result in results.values():
            assert result.total_batched_tokens == expected
            assert sum(result.token_buckets.values()) == result.iterations

    def test_deterministic_metrics_json(self, config, requests, results):
        rerun = ServingSimulator(config, mode="overlap").run(requests)
        assert json.dumps(rerun.to_dict()) == json.dumps(results["overlap"].to_dict())

    def test_rejects_unknown_mode(self, config):
        with pytest.raises(ValueError, match="mode must be one of"):
            ServingSimulator(config, mode="magic")


class TestPlanCacheBenefit:
    def test_fewer_tuner_invocations_than_iterations(self, results):
        overlap = results["overlap"]
        stats = overlap.plan_cache_stats
        assert stats["tuner_invocations"] < overlap.iterations
        assert stats["hits"] > stats["misses"]
        assert stats["hit_rate"] > 0.5

    def test_cache_is_a_pure_optimisation(self, config, requests, results):
        uncached = ServingSimulator(
            config, plan_cache=PlanCache(config.settings, capacity=0), mode="overlap"
        ).run(requests)
        assert json.dumps(uncached.metrics().to_dict()) == json.dumps(
            results["overlap"].metrics().to_dict()
        )
        assert uncached.plan_cache_stats["tuner_invocations"] > (
            results["overlap"].plan_cache_stats["tuner_invocations"]
        )


class TestOverlapBeatsBaseline:
    def test_serving_level_latency_improves(self, results):
        overlap = results["overlap"].metrics()
        baseline = results["non-overlap"].metrics()
        assert overlap.e2e_latency.mean < baseline.e2e_latency.mean
        assert overlap.ttft.p99 <= baseline.ttft.p99
        assert results["overlap"].makespan_s <= results["non-overlap"].makespan_s

    def test_goodput_not_worse(self, results):
        overlap = results["overlap"].metrics()
        baseline = results["non-overlap"].metrics()
        assert overlap.goodput_requests_per_s >= baseline.goodput_requests_per_s


class TestServeConfig:
    def test_describe_mentions_the_parts(self, config):
        text = config.describe()
        assert "TP=4" in text and "A800" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(layers=0)
