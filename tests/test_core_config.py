"""Tests for OverlapProblem / OverlapSettings (repro.core.config)."""

import pytest

from repro.comm.primitives import CollectiveKind
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.gpu.gemm import GemmShape


class TestOverlapProblem:
    def test_derived_models(self, small_problem):
        assert small_problem.n_gpus == 4
        gemm = small_problem.gemm_model()
        assert gemm.num_tiles == 24
        comm = small_problem.collective_model()
        assert comm.kind is CollectiveKind.ALL_REDUCE
        assert small_problem.output_bytes() == 32 * 48 * 2

    def test_compute_sm_count_reserves_comm_sms(self, small_problem):
        assert small_problem.compute_sm_count() == (
            small_problem.device.sm_count - small_problem.topology.comm_sm_count
        )

    def test_compute_sm_count_never_zero(self, small_problem, tiny_device):
        topo = small_problem.topology
        crowded = OverlapProblem(
            shape=small_problem.shape,
            device=tiny_device.with_sm_count(2),
            topology=topo,
            collective=CollectiveKind.ALL_REDUCE,
        )
        assert crowded.compute_sm_count() >= 1

    def test_with_collective_and_shape(self, small_problem):
        rs = small_problem.with_collective(CollectiveKind.REDUCE_SCATTER)
        assert rs.collective is CollectiveKind.REDUCE_SCATTER
        assert rs.shape == small_problem.shape
        resized = small_problem.with_shape(GemmShape(64, 48, 64))
        assert resized.shape.m == 64
        assert resized.collective is small_problem.collective

    def test_imbalance_validation(self, small_problem, tiny_device, tiny_topology):
        with pytest.raises(ValueError):
            OverlapProblem(
                shape=GemmShape(8, 8, 8),
                device=tiny_device,
                topology=tiny_topology,
                collective=CollectiveKind.ALL_TO_ALL,
                imbalance=0.5,
            )

    def test_describe_mentions_primitive_and_device(self, small_problem):
        text = small_problem.describe()
        assert "AR" in text and "tiny-gpu" in text


class TestOverlapSettings:
    def test_paper_defaults(self):
        assert DEFAULT_SETTINGS.max_first_group == 2
        assert DEFAULT_SETTINGS.max_last_group == 4

    def test_unit_conversions(self):
        settings = OverlapSettings(signal_poll_us=2.0, comm_launch_us=10.0)
        assert settings.signal_poll_s == pytest.approx(2e-6)
        assert settings.comm_launch_s == pytest.approx(1e-5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_first_group": 0},
            {"max_last_group": 0},
            {"max_exhaustive_waves": 0},
            {"signal_poll_us": -1.0},
            {"comm_launch_us": -1.0},
        ],
    )
    def test_invalid_settings(self, kwargs):
        with pytest.raises(ValueError):
            OverlapSettings(**kwargs)
