"""Conformance tests for traces, trace export and report formatting.

Locks down the contracts the e2e report and the committed artifacts rely on:
the Chrome trace export round-trips spans losslessly with stable field
ordering (byte-identical re-exports), and the breakdown tables render
percentages that sum to 100.
"""

import json

import pytest

from repro.analysis.breakdown import (
    PATTERNS,
    breakdown_fractions,
    estimate_breakdown_table,
    latency_breakdown_table,
)
from repro.analysis.reporting import format_table
from repro.core.config import OverlapSettings
from repro.e2e import EndToEndEstimator
from repro.gpu.kernels import KernelCategory
from repro.sim.trace import Trace
from repro.sim.trace_export import export_chrome_trace, trace_to_chrome_events
from repro.workloads.e2e import build_workload


@pytest.fixture
def settings():
    return OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


@pytest.fixture
def trace():
    t = Trace()
    t.record("compute", "gemm-w0", 0.0, 2e-3, KernelCategory.GEMM)
    t.record("compute", "gemm-w1", 2e-3, 5e-3, KernelCategory.GEMM)
    t.record("comm", "ar-g0", 2.5e-3, 4e-3, KernelCategory.COMMUNICATION)
    t.record("comm", "signal", 2.5e-3, 2.5e-3, KernelCategory.SIGNAL)
    return t


class TestTraceRoundTrip:
    def test_spans_survive_export(self, trace):
        """Every duration span can be reconstructed from the exported events."""
        events = trace_to_chrome_events(trace)
        threads = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        rebuilt = Trace()
        for event in events:
            if event["ph"] != "X":
                continue
            start = event["ts"] / 1e6
            rebuilt.record(
                threads[event["tid"]],
                event["name"],
                start,
                start + event["dur"] / 1e6,
                KernelCategory(event["cat"]),
            )
        original = [s for s in trace.spans if s.duration > 0]
        assert len(rebuilt.spans) == len(original)
        for a, b in zip(original, rebuilt.spans):
            assert (a.stream, a.name, a.category) == (b.stream, b.name, b.category)
            assert b.start == pytest.approx(a.start, abs=1e-12)
            assert b.duration == pytest.approx(a.duration, abs=1e-12)
        assert rebuilt.makespan() == pytest.approx(trace.makespan())

    def test_export_is_byte_stable(self, trace, tmp_path):
        """Re-exporting the same trace produces byte-identical JSON."""
        a = export_chrome_trace(trace, tmp_path / "a.json").read_bytes()
        b = export_chrome_trace(trace, tmp_path / "b.json").read_bytes()
        assert a == b

    def test_event_field_order_is_stable(self, trace):
        """Key order within each event dict is deterministic across calls."""
        first = [list(e.keys()) for e in trace_to_chrome_events(trace)]
        second = [list(e.keys()) for e in trace_to_chrome_events(trace)]
        assert first == second
        payload = json.dumps(trace_to_chrome_events(trace))
        assert json.dumps(trace_to_chrome_events(trace)) == payload


class TestBreakdownPercentages:
    def _shares_from_table(self, table: str) -> list[float]:
        """Sum the ``NN.N%`` cells of every data row of a breakdown table."""
        sums = []
        for line in table.splitlines():
            cells = [c for c in line.split() if c.endswith("%")]
            if cells:
                sums.append(sum(float(c[:-1]) for c in cells))
        return sums

    def test_workload_breakdown_sums_to_100(self, settings):
        workload = build_workload("llama2-training", tokens=1024, layers=1, settings=settings)
        fractions = breakdown_fractions(workload)
        assert set(fractions) == set(PATTERNS)
        assert sum(fractions.values()) == pytest.approx(1.0)
        for row_sum in self._shares_from_table(latency_breakdown_table([workload])):
            assert row_sum == pytest.approx(100.0, abs=0.2)

    def test_estimate_breakdown_sums_to_100(self, settings):
        workload = build_workload("llama2-training", tokens=1024, layers=1, settings=settings)
        estimate = EndToEndEstimator(settings).estimate(workload)
        assert sum(estimate.pattern_shares().values()) == pytest.approx(1.0)
        table = estimate_breakdown_table([estimate])
        for row_sum in self._shares_from_table(table):
            assert row_sum == pytest.approx(100.0, abs=0.2)
        assert workload.name in table


class TestTableFormatting:
    def test_data_rows_align(self):
        table = format_table(["a", "bb"], [["x", 1.5], ["long-cell", 22.25]], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        data = lines[2:]  # header separator included
        assert len({len(line) for line in lines[1:2] + data[1:]}) == 1

    def test_empty_rows_render_headers(self):
        table = format_table(["only", "headers"], [])
        assert "only" in table and "headers" in table
