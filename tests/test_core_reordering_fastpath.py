"""Equivalence suite: index-based reorder fast paths vs the per-tile reference.

For all three collectives, the cached-index execution (``fast=True``) must
produce outputs *bit-identical* to the per-tile/per-row reference loops
(``fast=False``) -- the fast path only permutes differently, it never changes
a value -- and both must stay ``np.allclose`` to the plain collective.
"""

import numpy as np
import pytest

from repro.comm.primitives import CollectiveKind
from repro.core.reordering import (
    build_reorder_plan,
    run_all_to_all_pipeline,
    run_allreduce_pipeline,
    run_reduce_scatter_pipeline,
)
from repro.tensor.layout import TileLayout
from repro.tensor.tiles import (
    gather_tiles,
    gather_tiles_indexed,
    scatter_tiles,
    scatter_tiles_indexed,
    tile_flat_indices,
)


def _grouped_plan(collective, layout, n_gpus, num_groups, rng):
    order = list(rng.permutation(layout.num_tiles))
    step = max(1, -(-layout.num_tiles // num_groups))
    groups = [order[i : i + step] for i in range(0, len(order), step)]
    return build_reorder_plan(collective, layout, groups, n_gpus)


class TestIndexHelpers:
    @pytest.mark.parametrize(
        "layout",
        [
            TileLayout(m=32, n=48, tile_m=8, tile_n=8),
            TileLayout(m=37, n=53, tile_m=8, tile_n=8),  # ragged edges
        ],
    )
    def test_indexed_gather_matches_reference(self, layout, rng):
        matrix = rng.normal(size=(layout.m, layout.n))
        order = list(rng.permutation(layout.num_tiles))
        indices = tile_flat_indices(layout, order)
        np.testing.assert_array_equal(
            gather_tiles_indexed(matrix, indices), gather_tiles(matrix, layout, order)
        )

    def test_indexed_scatter_matches_reference(self, rng):
        layout = TileLayout(m=37, n=53, tile_m=8, tile_n=8)
        order = list(rng.permutation(layout.num_tiles))
        buffer = rng.normal(size=layout.m * layout.n)
        via_reference = np.zeros((layout.m, layout.n))
        scatter_tiles(via_reference, layout, order, buffer)
        via_indices = np.zeros((layout.m, layout.n))
        scatter_tiles_indexed(via_indices, tile_flat_indices(layout, order), buffer)
        np.testing.assert_array_equal(via_indices, via_reference)

    def test_indexed_scatter_rejects_size_mismatch(self, rng):
        layout = TileLayout(m=16, n=16, tile_m=8, tile_n=8)
        indices = tile_flat_indices(layout, [0, 1])
        with pytest.raises(ValueError, match="permutation"):
            scatter_tiles_indexed(np.zeros((16, 16)), indices, np.zeros(3))

    def test_plan_caches_index_arrays(self, rng):
        layout = TileLayout(m=32, n=32, tile_m=8, tile_n=8)
        plan = _grouped_plan(CollectiveKind.ALL_REDUCE, layout, 4, 3, rng)
        assert plan.group_flat_indices(0) is plan.group_flat_indices(0)
        assert plan.group_subtile_indices(1) is plan.group_subtile_indices(1)
        assert plan.group_subtoken_index(2) is plan.group_subtoken_index(2)


class TestAllReduceFastPath:
    @pytest.mark.parametrize(
        "layout",
        [
            TileLayout(m=32, n=48, tile_m=8, tile_n=8),
            TileLayout(m=37, n=53, tile_m=8, tile_n=8),  # ragged edges
        ],
    )
    @pytest.mark.parametrize("num_groups", [1, 3, 7])
    def test_bit_identical_to_reference(self, layout, num_groups, rng):
        plan = _grouped_plan(CollectiveKind.ALL_REDUCE, layout, 4, num_groups, rng)
        matrices = [rng.normal(size=(layout.m, layout.n)) for _ in range(4)]
        fast = run_allreduce_pipeline(matrices, plan, fast=True)
        reference = run_allreduce_pipeline(matrices, plan, fast=False)
        for fast_out, ref_out in zip(fast.outputs, reference.outputs):
            np.testing.assert_array_equal(fast_out, ref_out)
        assert fast.allclose()
        assert fast.groups_communicated == reference.groups_communicated


class TestReduceScatterFastPath:
    @pytest.mark.parametrize("num_groups", [1, 2, 5])
    def test_bit_identical_to_reference(self, num_groups, rng):
        layout = TileLayout(m=64, n=48, tile_m=8, tile_n=8)
        plan = _grouped_plan(CollectiveKind.REDUCE_SCATTER, layout, 4, num_groups, rng)
        matrices = [rng.normal(size=(layout.m, layout.n)) for _ in range(4)]

        def op(x):
            return np.tanh(x) + 0.5

        fast = run_reduce_scatter_pipeline(matrices, plan, elementwise=op, fast=True)
        reference = run_reduce_scatter_pipeline(matrices, plan, elementwise=op, fast=False)
        for fast_out, ref_out in zip(fast.outputs, reference.outputs):
            np.testing.assert_array_equal(fast_out, ref_out)
        assert fast.extras["owned_rows"] == reference.extras["owned_rows"]
        assert fast.allclose()


class TestAllToAllFastPath:
    @pytest.mark.parametrize("tile_n", [6, 7])  # 7 leaves a ragged column block
    def test_bit_identical_to_reference(self, tile_n, rng):
        n = 4
        plans, matrices, destinations = [], [], []
        for src in range(n):
            layout = TileLayout(m=24, n=30, tile_m=4, tile_n=tile_n)
            plans.append(
                _grouped_plan(CollectiveKind.ALL_TO_ALL, layout, n, src + 2, rng)
            )
            matrices.append(rng.normal(size=(24, 30)))
            destinations.append(rng.integers(0, n, size=24))
        fast = run_all_to_all_pipeline(matrices, destinations, plans, fast=True)
        reference = run_all_to_all_pipeline(matrices, destinations, plans, fast=False)
        for fast_out, ref_out in zip(fast.outputs, reference.outputs):
            np.testing.assert_array_equal(fast_out, ref_out)
        assert fast.allclose()

    def test_skewed_routing(self, rng):
        # Every token to one destination: other ranks receive empty outputs.
        n = 3
        plans, matrices, destinations = [], [], []
        for _ in range(n):
            layout = TileLayout(m=12, n=16, tile_m=4, tile_n=8)
            plans.append(_grouped_plan(CollectiveKind.ALL_TO_ALL, layout, n, 2, rng))
            matrices.append(rng.normal(size=(12, 16)))
            destinations.append(np.full(12, 1))
        fast = run_all_to_all_pipeline(matrices, destinations, plans, fast=True)
        reference = run_all_to_all_pipeline(matrices, destinations, plans, fast=False)
        for fast_out, ref_out in zip(fast.outputs, reference.outputs):
            np.testing.assert_array_equal(fast_out, ref_out)
        assert fast.outputs[0].shape[0] == 0
        assert fast.outputs[1].shape[0] == n * 12
