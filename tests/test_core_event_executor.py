"""Tests for the event-driven executor and its cross-check against the
analytic timeline (repro.core.event_executor)."""

import numpy as np
import pytest

from repro.core.event_executor import EventDrivenExecutor
from repro.core.executor import COMM_STREAM, OverlapExecutor
from repro.core.wave_grouping import WavePartition
from repro.gpu.kernels import KernelCategory


@pytest.fixture
def executor(paper_problem_4090, fast_settings):
    return EventDrivenExecutor(paper_problem_4090, fast_settings)


class TestEventDrivenSimulation:
    def test_result_structure(self, executor):
        partition = WavePartition.equal_groups(executor.num_waves(), 3)
        result = executor.simulate(partition)
        assert result.metadata["event_driven"] is True
        assert result.metadata["events_processed"] > executor.analytic.gemm_contended.num_tiles
        assert result.latency > 0
        assert len(result.group_comm_end) == partition.num_groups

    def test_causality(self, executor):
        partition = WavePartition.per_wave(executor.num_waves())
        result = executor.simulate(partition)
        assert np.all(result.group_comm_start >= result.group_compute_ready)
        assert np.all(np.diff(result.group_comm_end) > 0)

    def test_signal_markers_recorded(self, executor):
        partition = WavePartition.equal_groups(executor.num_waves(), 4)
        result = executor.simulate(partition)
        signals = result.trace.by_category(KernelCategory.SIGNAL)
        assert len(signals) == partition.num_groups
        comm = [s for s in result.trace.spans_on(COMM_STREAM)
                if s.category is KernelCategory.COMMUNICATION]
        assert len(comm) == partition.num_groups

    def test_tile_recording_optional(self, small_problem, fast_settings):
        executor = EventDrivenExecutor(small_problem, fast_settings)
        partition = WavePartition.per_wave(executor.num_waves())
        with_tiles = executor.simulate(partition, record_tiles=True)
        without = executor.simulate(partition, record_tiles=False)
        assert len(with_tiles.trace.spans) > len(without.trace.spans)
        tile_spans = [s for s in with_tiles.trace.spans if s.name.startswith("tile-")]
        assert len(tile_spans) == executor.analytic.gemm_contended.num_tiles

    def test_wave_count_mismatch_rejected(self, executor):
        with pytest.raises(ValueError):
            executor.simulate(WavePartition((1, 1)))


class TestCrossCheck:
    @pytest.mark.parametrize("group_size", [1, 2, 4, 8])
    def test_matches_analytic_executor(self, executor, group_size):
        partition = WavePartition.equal_groups(executor.num_waves(), group_size)
        check = executor.cross_check(partition)
        assert check["within_tolerance"] == 1.0
        assert check["relative_latency_gap"] < 1e-9
        assert check["max_comm_start_gap"] < 1e-12

    def test_matches_on_small_problem(self, small_problem, fast_settings):
        executor = EventDrivenExecutor(small_problem, fast_settings)
        analytic = OverlapExecutor(small_problem, fast_settings)
        for sizes in ((1, 1, 1, 1), (2, 2), (1, 3), (4,)):
            partition = WavePartition(sizes)
            event = executor.simulate(partition).latency
            direct = analytic.simulate(partition).latency
            assert event == pytest.approx(direct, rel=1e-9)

    def test_matches_with_jitter_enabled(self, paper_problem_4090):
        from repro.core.config import OverlapSettings

        settings = OverlapSettings(executor_jitter=0.03)
        executor = EventDrivenExecutor(paper_problem_4090, settings)
        partition = WavePartition.equal_groups(executor.num_waves(), 2)
        check = executor.cross_check(partition)
        assert check["within_tolerance"] == 1.0
