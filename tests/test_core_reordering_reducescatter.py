"""Correctness of the ReduceScatter reordering pipeline (sub-tile unit)."""

import numpy as np
import pytest

from repro.comm.primitives import CollectiveKind
from repro.core.reordering import build_reorder_plan, run_reduce_scatter_pipeline
from repro.core.signaling import GroupAssignment
from repro.core.wave_grouping import WavePartition
from repro.gpu.epilogue import rmsnorm
from repro.gpu.swizzle import swizzled_order, wave_partition
from repro.tensor.layout import TileLayout


def make_plan(layout, partition, n_gpus, swizzle=2, wave_size=6):
    order = swizzled_order(layout, swizzle)
    waves = wave_partition(order, wave_size)
    groups = partition.group_tiles(waves)
    plan = build_reorder_plan(CollectiveKind.REDUCE_SCATTER, layout, groups, n_gpus)
    assignment = GroupAssignment.build(partition, waves)
    return plan, assignment, order


class TestReduceScatterPipeline:
    @pytest.mark.parametrize("partition_sizes", [(4,), (1, 1, 1, 1), (1, 3), (2, 2)])
    def test_identity_elementwise_matches_reference(self, rng, small_layout, partition_sizes):
        partition = WavePartition(partition_sizes)
        plan, assignment, order = make_plan(small_layout, partition, n_gpus=4)
        matrices = [rng.standard_normal((32, 48)) for _ in range(4)]
        result = run_reduce_scatter_pipeline(
            matrices, plan, elementwise=None, assignment=assignment, execution_order=order
        )
        assert result.allclose()

    @pytest.mark.parametrize("n_gpus", [2, 4, 8])
    def test_rmsnorm_between_rs_and_allgather(self, rng, small_layout, n_gpus):
        partition = WavePartition((2, 2))
        plan, assignment, order = make_plan(small_layout, partition, n_gpus=n_gpus)
        matrices = [rng.standard_normal((32, 48)) for _ in range(n_gpus)]
        result = run_reduce_scatter_pipeline(
            matrices, plan, elementwise=rmsnorm, assignment=assignment, execution_order=order
        )
        assert result.allclose()

    def test_each_row_complete_on_exactly_one_gpu(self, rng, small_layout):
        # The property that lets the element-wise operator run before AllGather.
        partition = WavePartition((1, 1, 2))
        plan, assignment, order = make_plan(small_layout, partition, n_gpus=4)
        matrices = [rng.standard_normal((32, 48)) for _ in range(4)]
        result = run_reduce_scatter_pipeline(matrices, plan)
        owned_rows = result.extras["owned_rows"]
        all_rows = sorted(r for rows in owned_rows for r in rows)
        assert all_rows == list(range(32))
        # Block-cyclic assignment: row r goes to GPU (r % tile_m) // (tile_m / n).
        for gpu, rows in enumerate(owned_rows):
            for r in rows:
                assert (r % 8) // 2 == gpu

    def test_pre_allgather_shards_match_reference_rows(self, rng, small_layout):
        partition = WavePartition((2, 2))
        plan, _, _ = make_plan(small_layout, partition, n_gpus=4)
        matrices = [rng.standard_normal((32, 48)) for _ in range(4)]
        result = run_reduce_scatter_pipeline(matrices, plan, elementwise=rmsnorm)
        reference = result.reference[0]
        for rows, shard in zip(result.extras["owned_rows"], result.extras["pre_allgather_shards"]):
            np.testing.assert_allclose(shard, reference[rows, :])

    def test_larger_uniform_layout(self, rng):
        layout = TileLayout(m=64, n=64, tile_m=16, tile_n=16)
        order = swizzled_order(layout, 3)
        waves = wave_partition(order, 5)
        partition = WavePartition.from_sizes([1] * (len(waves) - 2) + [2])
        groups = partition.group_tiles(waves)
        plan = build_reorder_plan(CollectiveKind.REDUCE_SCATTER, layout, groups, 4)
        matrices = [rng.standard_normal((64, 64)) for _ in range(4)]
        result = run_reduce_scatter_pipeline(matrices, plan, elementwise=rmsnorm)
        assert result.allclose()

    def test_wrong_gpu_count_rejected(self, rng, small_layout):
        partition = WavePartition((4,))
        plan, _, _ = make_plan(small_layout, partition, n_gpus=4)
        with pytest.raises(ValueError):
            run_reduce_scatter_pipeline([rng.standard_normal((32, 48))] * 3, plan)

    def test_ragged_layout_rejected(self, rng):
        layout = TileLayout(m=30, n=44, tile_m=8, tile_n=8)
        groups = [list(range(layout.num_tiles))]
        plan = build_reorder_plan(CollectiveKind.REDUCE_SCATTER, layout, groups, 4)
        with pytest.raises(ValueError):
            run_reduce_scatter_pipeline([rng.standard_normal((30, 44))] * 4, plan)

    def test_indivisible_tile_rows_rejected(self, rng):
        layout = TileLayout(m=36, n=48, tile_m=6, tile_n=8)
        groups = [list(range(layout.num_tiles))]
        plan = build_reorder_plan(CollectiveKind.REDUCE_SCATTER, layout, groups, 4)
        with pytest.raises(ValueError):
            run_reduce_scatter_pipeline([rng.standard_normal((36, 48))] * 4, plan)
