"""Differential suite: batched serving fast path vs the reference event loop.

``ServingSimulator(fast=True)`` commits iterations inline between boundary
events and collapses silent steady-decode runs in bulk;
``fast=False`` takes one heap round-trip per iteration.  The two must be
**bit-identical** -- the full ``ServingResult.to_dict()`` payload, including
request records, token buckets, plan-cache stats and fault accounting --
because the fast path performs exactly the reference path's float additions
and counter updates, just without the event-queue detour.  Hypothesis drives
random traffic and batching limits through both loops, fault-free and under
every fault preset, with and without deadlines.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.faults import FaultInjector, ResiliencePolicy, build_fault_preset, fault_presets
from repro.serve.arrivals import PoissonArrivals, distribution_by_name, length_distributions
from repro.serve.simulator import ServeConfig, ServingSimulator, compare_serving


def payload(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def run_both(config, requests, mode="non-overlap", faults_preset=None,
             deadline=None, fault_seed=0):
    results = []
    for fast in (True, False):
        injector = None
        policy = ResiliencePolicy(deadline_s=deadline) if deadline is not None else None
        if faults_preset is not None:
            horizon = max(r.arrival_time for r in requests) + 1.0
            plan = build_fault_preset(faults_preset, horizon, seed=fault_seed)
            injector = FaultInjector(plan, policy=policy)
        results.append(
            ServingSimulator(
                config, mode=mode, faults=injector, resilience=policy, fast=fast
            ).run(requests)
        )
    return results


TRAFFIC = st.fixed_dictionaries(
    {
        "rate": st.sampled_from([4.0, 32.0, 256.0]),
        "requests": st.integers(min_value=1, max_value=16),
        "distribution": st.sampled_from(sorted(length_distributions())),
        "seed": st.integers(min_value=0, max_value=7),
    }
)
LIMITS = st.fixed_dictionaries(
    {
        "max_batch_tokens": st.sampled_from([64, 512, 4096]),
        "max_batch_size": st.sampled_from([2, 8, 16]),
    }
)


class TestFaultFreeBitIdentity:
    @hsettings(max_examples=40, deadline=None)
    @given(traffic=TRAFFIC, limits=LIMITS)
    def test_random_traffic(self, traffic, limits):
        config = ServeConfig(layers=1, **limits)
        requests = PoissonArrivals(
            rate_rps=traffic["rate"],
            distribution=distribution_by_name(traffic["distribution"]),
            seed=traffic["seed"],
            num_requests=traffic["requests"],
        ).generate()
        fast, reference = run_both(config, requests)
        assert payload(fast) == payload(reference)

    @hsettings(max_examples=20, deadline=None)
    @given(traffic=TRAFFIC, deadline=st.sampled_from([0.05, 0.5, 2.0]))
    def test_random_traffic_with_deadlines(self, traffic, deadline):
        config = ServeConfig(layers=1, max_batch_tokens=512, max_batch_size=8)
        requests = PoissonArrivals(
            rate_rps=traffic["rate"],
            distribution=distribution_by_name(traffic["distribution"]),
            seed=traffic["seed"],
            num_requests=traffic["requests"],
        ).generate()
        fast, reference = run_both(config, requests, deadline=deadline)
        assert payload(fast) == payload(reference)

    def test_overlap_mode_with_plan_cache(self):
        """The overlap arm (plan-cache lookups, repeat-hit bulk accounting)."""
        config = ServeConfig(layers=2, max_batch_tokens=4096, max_batch_size=16)
        requests = PoissonArrivals(
            rate_rps=32.0,
            distribution=distribution_by_name("chat"),
            seed=3,
            num_requests=24,
        ).generate()
        fast, reference = run_both(config, requests, mode="overlap")
        assert payload(fast) == payload(reference)
        assert fast.plan_cache_stats == reference.plan_cache_stats

    def test_compare_serving_fast_flag(self):
        config = ServeConfig(layers=1, max_batch_tokens=512, max_batch_size=8)
        requests = PoissonArrivals(
            rate_rps=64.0,
            distribution=distribution_by_name("summarize"),
            seed=1,
            num_requests=8,
        ).generate()
        fast = compare_serving(config, requests, fast=True)
        reference = compare_serving(config, requests, fast=False)
        for arm in ("overlap", "non-overlap"):
            assert payload(fast[arm]) == payload(reference[arm])


class TestFaultedBitIdentity:
    @hsettings(max_examples=30, deadline=None)
    @given(
        preset=st.sampled_from(sorted(fault_presets())),
        traffic=TRAFFIC,
        fault_seed=st.integers(min_value=0, max_value=3),
    )
    def test_every_fault_preset(self, preset, traffic, fault_seed):
        config = ServeConfig(layers=1, max_batch_tokens=512, max_batch_size=8)
        requests = PoissonArrivals(
            rate_rps=traffic["rate"],
            distribution=distribution_by_name(traffic["distribution"]),
            seed=traffic["seed"],
            num_requests=traffic["requests"],
        ).generate()
        fast, reference = run_both(
            config, requests, faults_preset=preset, fault_seed=fault_seed
        )
        assert payload(fast) == payload(reference)

    @pytest.mark.parametrize("preset", sorted(fault_presets()))
    def test_faults_with_deadline_policy(self, preset):
        config = ServeConfig(layers=1, max_batch_tokens=4096, max_batch_size=16)
        requests = PoissonArrivals(
            rate_rps=64.0,
            distribution=distribution_by_name("summarize"),
            seed=7,
            num_requests=16,
        ).generate()
        fast, reference = run_both(
            config, requests, faults_preset=preset, deadline=1.0
        )
        assert payload(fast) == payload(reference)
