"""Tests for the Chrome trace export (repro.sim.trace_export)."""

import json

import pytest

from repro.core.event_executor import EventDrivenExecutor
from repro.core.wave_grouping import WavePartition
from repro.gpu.kernels import KernelCategory
from repro.sim.trace import Trace
from repro.sim.trace_export import export_chrome_trace, load_chrome_trace, trace_to_chrome_events


@pytest.fixture
def trace():
    t = Trace()
    t.record("compute", "gemm", 0.0, 10e-3, KernelCategory.GEMM)
    t.record("comm", "ar-g1", 4e-3, 8e-3, KernelCategory.COMMUNICATION)
    t.record("comm", "signal-g1", 4e-3, 4e-3, KernelCategory.SIGNAL)
    return t


class TestChromeEvents:
    def test_metadata_events_name_streams(self, trace):
        events = trace_to_chrome_events(trace, process_name="gpu0")
        meta = [e for e in events if e["ph"] == "M"]
        assert {"gpu0", "compute", "comm"} == {e["args"]["name"] for e in meta}

    def test_duration_events_in_microseconds(self, trace):
        events = trace_to_chrome_events(trace)
        gemm = next(e for e in events if e.get("name") == "gemm")
        assert gemm["ph"] == "X"
        assert gemm["ts"] == pytest.approx(0.0)
        assert gemm["dur"] == pytest.approx(10_000.0)

    def test_zero_duration_spans_become_instants(self, trace):
        events = trace_to_chrome_events(trace)
        signal = next(e for e in events if e.get("name") == "signal-g1")
        assert signal["ph"] == "i"
        assert "dur" not in signal

    def test_streams_map_to_distinct_threads(self, trace):
        events = trace_to_chrome_events(trace)
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert len(tids) == 2


class TestFileRoundTrip:
    def test_export_and_load(self, trace, tmp_path):
        path = export_chrome_trace(trace, tmp_path / "trace.json")
        payload = load_chrome_trace(path)
        assert payload["displayTimeUnit"] == "ms"
        assert any(e.get("name") == "ar-g1" for e in payload["traceEvents"])
        # The file is valid JSON parsable by any trace viewer.
        json.loads(path.read_text())

    def test_export_of_simulated_overlap(self, small_problem, fast_settings, tmp_path):
        executor = EventDrivenExecutor(small_problem, fast_settings)
        partition = WavePartition.per_wave(executor.num_waves())
        result = executor.simulate(partition, record_tiles=True)
        path = export_chrome_trace(result.trace, tmp_path / "overlap.json")
        payload = load_chrome_trace(path)
        names = {e.get("name") for e in payload["traceEvents"]}
        assert any(str(name).startswith("AR-G") for name in names)
        assert any(str(name).startswith("tile-") for name in names)
