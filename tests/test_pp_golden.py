"""Golden conformance tests for ``repro pp --smoke --json``.

The committed fixtures under ``tests/golden/pp/`` are the exact JSON reports
of the smoke pipeline run (2 stages, 4 microbatches, 4 layers, all three
schedules) of two workloads -- one training stream (llama3-training) and one
forward-only stream with a synthesized backward (llama3-inference).  Any
change to the latency models, the tuner, the plan store, the schedule
generators or the report schema shows up as a diff here -- intentional
changes must regenerate the fixtures:

    repro pp --smoke --workload <name> --json tests/golden/pp/<name>.json

(once per fixture workload; the README documents the same update path).
Floats are compared with a tight relative tolerance so the fixtures stay
portable across interpreter/numpy builds; everything else must match
exactly.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main

GOLDEN_DIR = Path(__file__).resolve().parent / "golden" / "pp"
WORKLOADS = ("llama3-training", "llama3-inference")
SCHEDULES = ("gpipe", "1f1b", "zero-bubble")


def _assert_matches(expected, actual, path="$"):
    """Recursive diff: exact for structure/ints/strings, tolerant for floats."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected object, got {type(actual).__name__}"
        assert sorted(expected) == sorted(actual), (
            f"{path}: keys differ: {sorted(expected)} vs {sorted(actual)}"
        )
        for key in expected:
            _assert_matches(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(expected) == len(actual), (
            f"{path}: list length {len(expected)} vs {len(actual)}"
        )
        for index, (e, a) in enumerate(zip(expected, actual)):
            _assert_matches(e, a, f"{path}[{index}]")
    elif isinstance(expected, float) and not isinstance(expected, bool):
        assert actual == pytest.approx(expected, rel=1e-6, abs=1e-12), f"{path}: {actual} != {expected}"
    else:
        assert expected == actual, f"{path}: {actual!r} != {expected!r}"


@pytest.mark.parametrize("name", WORKLOADS)
def test_smoke_report_matches_golden(name, tmp_path):
    fixture = GOLDEN_DIR / f"{name}.json"
    assert fixture.exists(), (
        f"missing golden fixture {fixture}; generate it with "
        f"`repro pp --smoke --workload {name} --json {fixture}`"
    )
    out = tmp_path / f"{name}.json"
    assert cli_main(["pp", "--smoke", "--workload", name, "--json", str(out)]) == 0
    _assert_matches(json.loads(fixture.read_text()), json.loads(out.read_text()))


@pytest.mark.parametrize("name", WORKLOADS)
def test_golden_covers_three_schedules_with_decreasing_bubble(name):
    """The fixtures themselves honour the acceptance criterion."""
    payload = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    workload = next(iter(payload["workloads"].values()))
    assert sorted(workload["schedules"]) == sorted(SCHEDULES)
    bubbles = [
        workload["schedules"][schedule]["methods"]["overlap"]["bubble_ratio"]
        for schedule in SCHEDULES
    ]
    assert bubbles[0] > bubbles[1] > bubbles[2], bubbles
    for schedule in SCHEDULES:
        assert workload["schedules"][schedule]["speedup"] > 1.0


def test_smoke_default_run(tmp_path, capsys):
    """The acceptance-criteria run: `repro pp --smoke` (llama3-training)."""
    out = tmp_path / "pp.json"
    assert cli_main(["pp", "--smoke", "--json", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["meta"] == {
        "workloads": ["llama3-training"],
        "stages": 2,
        "microbatches": 4,
        "schedules": list(SCHEDULES),
        "tokens": None,
        "layers": 4,
        "device": "A800",
        "seed": 0,
        "reuse": True,
        "smoke": True,
    }
    workload = next(iter(report["workloads"].values()))
    bubbles = [
        workload["schedules"][schedule]["methods"]["overlap"]["bubble_ratio"]
        for schedule in SCHEDULES
    ]
    assert bubbles[0] > bubbles[1] > bubbles[2], bubbles
    assert report["plan_store"]["hit_rate"] > 0
    printed = capsys.readouterr().out
    assert "bubble" in printed and "timeline" in printed and "plan store" in printed


def test_cli_s1m1_e2e_block_is_bit_identical_to_repro_e2e(tmp_path):
    """`repro pp --stages 1 --microbatches 1` embeds the exact e2e report."""
    pp_out = tmp_path / "pp.json"
    e2e_out = tmp_path / "e2e.json"
    args = ["--workload", "llama3-training", "--layers", "2"]
    assert cli_main(["pp", "--stages", "1", "--microbatches", "1", *args,
                     "--json", str(pp_out)]) == 0
    assert cli_main(["e2e", *args, "--json", str(e2e_out)]) == 0
    pp_report = json.loads(pp_out.read_text())
    e2e_report = json.loads(e2e_out.read_text())
    (pp_workload,) = pp_report["workloads"].values()
    (e2e_workload,) = e2e_report["workloads"].values()
    # Totals (and the whole embedded report) are bit-identical: same code
    # path, same plan store, same fresh hit/miss sequence.
    assert pp_workload["e2e"] == e2e_workload
