"""Tests for the sweep runner, result store and aggregation layer."""

import json

import pytest

from repro.core.tuner import GemmShapeCache
from repro.sweep.aggregate import (
    group_summary_table,
    records_to_comparisons,
    scenario_table,
    summarize_by_group,
)
from repro.sweep.matrix import ScenarioMatrix
from repro.sweep.runner import SweepRunner
from repro.sweep.store import ResultStore


@pytest.fixture
def tiny_matrix() -> ScenarioMatrix:
    """Four fast scenarios spanning two shapes and two collectives."""
    return ScenarioMatrix.build(
        name="tiny",
        workload="tiny",
        shapes=[(512, 1024, 1024), (2048, 2048, 2048)],
        platforms=[("rtx4090", "rtx4090-pcie", 4)],
        collectives=["allreduce", "reducescatter"],
    )


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "results.jsonl")


class TestResultStore:
    def test_append_and_read_back(self, store):
        store.append({"job_id": "a", "status": "ok"})
        store.append({"job_id": "b", "status": "error"})
        records = list(store.records())
        assert [r["job_id"] for r in records] == ["a", "b"]

    def test_append_creates_parent_directories(self, tmp_path):
        nested = ResultStore(tmp_path / "deep" / "dir" / "r.jsonl")
        nested.append({"job_id": "a"})
        assert nested.path.exists()

    def test_record_without_job_id_rejected(self, store):
        with pytest.raises(KeyError):
            store.append({"status": "ok"})

    def test_completed_ids_exclude_failures(self, store):
        store.append({"job_id": "good", "status": "ok"})
        store.append({"job_id": "bad", "status": "error"})
        assert store.completed_ids() == {"good"}

    def test_missing_file_is_empty(self, store):
        assert list(store.records()) == []
        assert store.completed_ids() == set()

    def test_latest_by_id_prefers_retry(self, store):
        store.append({"job_id": "j", "status": "error"})
        store.append({"job_id": "j", "status": "ok"})
        assert store.latest_by_id()["j"]["status"] == "ok"

    def test_file_is_one_json_object_per_line(self, store):
        store.append({"job_id": "a", "speedup": 1.25})
        lines = store.path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["speedup"] == 1.25


class TestSweepRunner:
    def test_runs_every_scenario(self, store, tiny_matrix):
        summary = SweepRunner(store).run(tiny_matrix)
        assert summary.total_scenarios == 4
        assert summary.executed == 4
        assert summary.failed == 0
        assert store.completed_ids() == {s.job_id for s in tiny_matrix.expand()}

    def test_records_carry_results(self, store, tiny_matrix):
        summary = SweepRunner(store).run(tiny_matrix)
        for record in summary.records:
            assert record["status"] == "ok"
            assert record["speedup"] > 0
            assert record["overlap_latency"] > 0
            assert record["non_overlap_latency"] > 0
            assert record["partition"]
            assert sum(record["partition"]) > 0

    def test_resume_skips_completed_jobs(self, store, tiny_matrix):
        SweepRunner(store).run(tiny_matrix)
        resumed = SweepRunner(store, resume=True).run(tiny_matrix)
        assert resumed.executed == 0
        assert resumed.tuned == 0
        assert resumed.skipped == 4

    def test_resume_retries_failed_jobs(self, store, tiny_matrix):
        scenarios = tiny_matrix.expand()
        store.append({"job_id": scenarios[0].job_id, "status": "error", "error": "boom"})
        summary = SweepRunner(store, resume=True).run(tiny_matrix)
        assert summary.executed == 4  # the failed record does not count as done
        assert store.completed_ids() == {s.job_id for s in scenarios}

    def test_without_resume_jobs_rerun(self, store, tiny_matrix):
        SweepRunner(store).run(tiny_matrix)
        again = SweepRunner(store).run(tiny_matrix)
        assert again.executed == 4

    def test_worker_processes_match_in_process_results(self, tmp_path, tiny_matrix):
        serial = SweepRunner(ResultStore(tmp_path / "serial.jsonl")).run(tiny_matrix)
        parallel = SweepRunner(ResultStore(tmp_path / "parallel.jsonl"), workers=2).run(tiny_matrix)
        by_id_serial = {r["job_id"]: r for r in serial.records}
        by_id_parallel = {r["job_id"]: r for r in parallel.records}
        assert by_id_serial.keys() == by_id_parallel.keys()
        for job_id, record in by_id_serial.items():
            other = by_id_parallel[job_id]
            assert record["speedup"] == other["speedup"]
            assert record["partition"] == other["partition"]
            assert record["use_overlap"] == other["use_overlap"]

    def test_store_order_is_deterministic_across_worker_counts(self, tmp_path, tiny_matrix):
        store_a = ResultStore(tmp_path / "a.jsonl")
        store_b = ResultStore(tmp_path / "b.jsonl")
        SweepRunner(store_a, workers=1).run(tiny_matrix)
        SweepRunner(store_b, workers=2).run(tiny_matrix)
        order_a = [r["job_id"] for r in store_a.records()]
        order_b = [r["job_id"] for r in store_b.records()]
        assert order_a == order_b

    def test_cache_warm_start_avoids_retuning(self, tmp_path, tiny_matrix):
        cache_path = tmp_path / "cache.json"
        first = SweepRunner(
            ResultStore(tmp_path / "first.jsonl"), cache_path=str(cache_path)
        ).run(tiny_matrix)
        assert first.tuned == 4
        assert cache_path.exists()

        cache = GemmShapeCache.load(cache_path)
        second = SweepRunner(ResultStore(tmp_path / "second.jsonl"), cache=cache).run(tiny_matrix)
        assert second.tuned == 0
        assert second.cache_hits == 4

    def test_failed_scenario_recorded_not_raised(self, store):
        # The topology name only resolves inside the job, so the failure
        # surfaces as an error record rather than an exception in the runner.
        matrix = ScenarioMatrix.build(
            name="bad", workload="bad",
            shapes=[(512, 1024, 1024)],
            platforms=[("a800", "no-such-topology", 4)],
            collectives=["allreduce"],
        )
        summary = SweepRunner(store).run(matrix)
        assert summary.failed == 1
        record = next(iter(store.records()))
        assert record["status"] == "error"
        assert "error" in record

    def test_baselines_mode_adds_method_speedups(self, store, tiny_matrix):
        summary = SweepRunner(store, baselines=True).run(tiny_matrix)
        for record in summary.records:
            assert "flashoverlap" in record["method_speedups"]
            assert "vanilla-decomposition" in record["method_speedups"]


class TestAggregation:
    @pytest.fixture
    def records(self, store, tiny_matrix):
        return SweepRunner(store).run(tiny_matrix).records

    def test_summarize_by_group(self, records):
        summary = summarize_by_group(records)
        assert sum(stats["count"] for stats in summary.values()) == len(records)
        for stats in summary.values():
            assert stats["min_speedup"] <= stats["mean_speedup"] <= stats["max_speedup"]

    def test_scenario_table_lists_every_job(self, records):
        table = scenario_table(records)
        for record in records:
            assert record["job_id"] in table

    def test_group_summary_table_renders(self, records):
        table = group_summary_table(records, keys=("collective",))
        assert "allreduce" in table and "reducescatter" in table

    def test_records_lift_into_analysis_comparisons(self, records):
        comparisons = records_to_comparisons(records)
        assert len(comparisons) == len(records)
        for comparison in comparisons:
            assert "flashoverlap" in comparison.speedups
            assert comparison.problem.output_bytes() > 0

    def test_failed_records_excluded_from_aggregation(self, records):
        poisoned = records + [{"job_id": "x", "status": "error", "scenario": {}}]
        assert len(records_to_comparisons(poisoned)) == len(records)
