"""Tests for the sweep runner, result store and aggregation layer."""

import json

import pytest

from repro.core.tuner import GemmShapeCache
from repro.plans.store import PricedCellStore, plan_key
from repro.sweep.aggregate import (
    group_summary_table,
    records_to_comparisons,
    scenario_table,
    summarize_by_group,
)
from repro.sweep.matrix import ScenarioMatrix
from repro.sweep.runner import SweepRunner
from repro.sweep.store import ResultStore


@pytest.fixture
def tiny_matrix() -> ScenarioMatrix:
    """Four fast scenarios spanning two shapes and two collectives."""
    return ScenarioMatrix.build(
        name="tiny",
        workload="tiny",
        shapes=[(512, 1024, 1024), (2048, 2048, 2048)],
        platforms=[("rtx4090", "rtx4090-pcie", 4)],
        collectives=["allreduce", "reducescatter"],
    )


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "results.jsonl")


class TestResultStore:
    def test_append_and_read_back(self, store):
        store.append({"job_id": "a", "status": "ok"})
        store.append({"job_id": "b", "status": "error"})
        records = list(store.records())
        assert [r["job_id"] for r in records] == ["a", "b"]

    def test_append_creates_parent_directories(self, tmp_path):
        nested = ResultStore(tmp_path / "deep" / "dir" / "r.jsonl")
        nested.append({"job_id": "a"})
        assert nested.path.exists()

    def test_record_without_job_id_rejected(self, store):
        with pytest.raises(KeyError):
            store.append({"status": "ok"})

    def test_completed_ids_exclude_failures(self, store):
        store.append({"job_id": "good", "status": "ok"})
        store.append({"job_id": "bad", "status": "error"})
        assert store.completed_ids() == {"good"}

    def test_missing_file_is_empty(self, store):
        assert list(store.records()) == []
        assert store.completed_ids() == set()

    def test_latest_by_id_prefers_retry(self, store):
        store.append({"job_id": "j", "status": "error"})
        store.append({"job_id": "j", "status": "ok"})
        assert store.latest_by_id()["j"]["status"] == "ok"

    def test_file_is_one_json_object_per_line(self, store):
        store.append({"job_id": "a", "speedup": 1.25})
        lines = store.path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["speedup"] == 1.25


class TestSweepRunner:
    def test_runs_every_scenario(self, store, tiny_matrix):
        summary = SweepRunner(store).run(tiny_matrix)
        assert summary.total_scenarios == 4
        assert summary.executed == 4
        assert summary.failed == 0
        assert store.completed_ids() == {s.job_id for s in tiny_matrix.expand()}

    def test_records_carry_results(self, store, tiny_matrix):
        summary = SweepRunner(store).run(tiny_matrix)
        for record in summary.records:
            assert record["status"] == "ok"
            assert record["speedup"] > 0
            assert record["overlap_latency"] > 0
            assert record["non_overlap_latency"] > 0
            assert record["partition"]
            assert sum(record["partition"]) > 0

    def test_resume_skips_completed_jobs(self, store, tiny_matrix):
        SweepRunner(store).run(tiny_matrix)
        resumed = SweepRunner(store, resume=True).run(tiny_matrix)
        assert resumed.executed == 0
        assert resumed.tuned == 0
        assert resumed.skipped == 4

    def test_resume_retries_failed_jobs(self, store, tiny_matrix):
        scenarios = tiny_matrix.expand()
        store.append({"job_id": scenarios[0].job_id, "status": "error", "error": "boom"})
        summary = SweepRunner(store, resume=True).run(tiny_matrix)
        assert summary.executed == 4  # the failed record does not count as done
        assert store.completed_ids() == {s.job_id for s in scenarios}

    def test_without_resume_jobs_rerun(self, store, tiny_matrix):
        SweepRunner(store).run(tiny_matrix)
        again = SweepRunner(store).run(tiny_matrix)
        assert again.executed == 4

    def test_worker_processes_match_in_process_results(self, tmp_path, tiny_matrix):
        serial = SweepRunner(ResultStore(tmp_path / "serial.jsonl")).run(tiny_matrix)
        parallel = SweepRunner(ResultStore(tmp_path / "parallel.jsonl"), workers=2).run(tiny_matrix)
        by_id_serial = {r["job_id"]: r for r in serial.records}
        by_id_parallel = {r["job_id"]: r for r in parallel.records}
        assert by_id_serial.keys() == by_id_parallel.keys()
        for job_id, record in by_id_serial.items():
            other = by_id_parallel[job_id]
            assert record["speedup"] == other["speedup"]
            assert record["partition"] == other["partition"]
            assert record["use_overlap"] == other["use_overlap"]

    def test_store_order_is_deterministic_across_worker_counts(self, tmp_path, tiny_matrix):
        store_a = ResultStore(tmp_path / "a.jsonl")
        store_b = ResultStore(tmp_path / "b.jsonl")
        SweepRunner(store_a, workers=1).run(tiny_matrix)
        SweepRunner(store_b, workers=2).run(tiny_matrix)
        order_a = [r["job_id"] for r in store_a.records()]
        order_b = [r["job_id"] for r in store_b.records()]
        assert order_a == order_b

    def test_cache_warm_start_avoids_retuning(self, tmp_path, tiny_matrix):
        cache_path = tmp_path / "cache.json"
        first = SweepRunner(
            ResultStore(tmp_path / "first.jsonl"), cache_path=str(cache_path)
        ).run(tiny_matrix)
        assert first.tuned == 4
        assert cache_path.exists()

        cache = GemmShapeCache.load(cache_path)
        second = SweepRunner(ResultStore(tmp_path / "second.jsonl"), cache=cache).run(tiny_matrix)
        assert second.tuned == 0
        assert second.cache_hits == 4

    def test_failed_scenario_recorded_not_raised(self, store):
        # The topology name only resolves inside the job, so the failure
        # surfaces as an error record rather than an exception in the runner.
        matrix = ScenarioMatrix.build(
            name="bad", workload="bad",
            shapes=[(512, 1024, 1024)],
            platforms=[("a800", "no-such-topology", 4)],
            collectives=["allreduce"],
        )
        summary = SweepRunner(store).run(matrix)
        assert summary.failed == 1
        record = next(iter(store.records()))
        assert record["status"] == "error"
        assert "error" in record

    def test_baselines_mode_adds_method_speedups(self, store, tiny_matrix):
        summary = SweepRunner(store, baselines=True).run(tiny_matrix)
        for record in summary.records:
            assert "flashoverlap" in record["method_speedups"]
            assert "vanilla-decomposition" in record["method_speedups"]


PRICED_FIELDS = (
    "use_overlap", "partition", "candidates_evaluated", "overlap_latency",
    "non_overlap_latency", "theoretical_latency", "speedup", "ratio_of_theoretical",
)


def priced_view(records):
    return {r["job_id"]: {k: r[k] for k in PRICED_FIELDS} for r in records}


class TestPricedCellStore:
    def test_plan_key_is_order_insensitive_and_stable(self):
        a = plan_key({"m": 1, "n": 2})
        b = plan_key({"n": 2, "m": 1})
        assert a == b
        assert a != plan_key({"m": 1, "n": 3})

    def test_lookup_counts_hits_and_misses(self):
        cells = PricedCellStore()
        assert cells.lookup("k") is None
        cells.add("k", {"speedup": 1.5})
        assert cells.lookup("k") == {"speedup": 1.5}
        assert cells.stats() == {"size": 1, "hits": 1, "misses": 1}

    def test_round_trips_through_disk(self, tmp_path):
        cells = PricedCellStore()
        cells.add("k", {"overlap_latency": 0.125, "partition": [2, 2]})
        path = tmp_path / "cells.json"
        cells.save(path)
        loaded = PricedCellStore.load(path)
        assert loaded.lookup("k") == {"overlap_latency": 0.125, "partition": [2, 2]}

    def test_load_missing_ok(self, tmp_path):
        assert len(PricedCellStore.load(tmp_path / "nope.json", missing_ok=True)) == 0
        with pytest.raises(FileNotFoundError):
            PricedCellStore.load(tmp_path / "nope.json")


class TestSweepPricedCells:
    def test_second_run_replays_every_cell_bit_identically(self, tmp_path, tiny_matrix):
        cells_path = tmp_path / "cells.json"
        first = SweepRunner(
            ResultStore(tmp_path / "first.jsonl"), plan_store_path=str(cells_path)
        ).run(tiny_matrix)
        assert first.priced_hits == 0
        assert cells_path.exists()

        second = SweepRunner(
            ResultStore(tmp_path / "second.jsonl"), plan_store_path=str(cells_path)
        ).run(tiny_matrix)
        assert second.priced_hits == 4
        assert second.tuned == 0
        assert priced_view(second.records) == priced_view(first.records)
        for record in second.records:
            assert record["priced_cell_hit"] is True

    def test_replayed_cells_match_a_store_free_run(self, tmp_path, tiny_matrix):
        cells_path = tmp_path / "cells.json"
        SweepRunner(
            ResultStore(tmp_path / "warm.jsonl"), plan_store_path=str(cells_path)
        ).run(tiny_matrix)
        replayed = SweepRunner(
            ResultStore(tmp_path / "replayed.jsonl"), plan_store_path=str(cells_path)
        ).run(tiny_matrix)
        plain = SweepRunner(ResultStore(tmp_path / "plain.jsonl")).run(tiny_matrix)
        assert priced_view(replayed.records) == priced_view(plain.records)

    def test_workers_share_the_snapshot_and_ride_cells_back(self, tmp_path, tiny_matrix):
        cells_path = tmp_path / "cells.json"
        parallel = SweepRunner(
            ResultStore(tmp_path / "parallel.jsonl"),
            workers=2,
            plan_store_path=str(cells_path),
        ).run(tiny_matrix)
        assert parallel.priced_hits == 0
        merged = PricedCellStore.load(cells_path)
        assert len(merged) == 4

        again = SweepRunner(
            ResultStore(tmp_path / "again.jsonl"),
            workers=2,
            plan_store_path=str(cells_path),
        ).run(tiny_matrix)
        assert again.priced_hits == 4
        assert priced_view(again.records) == priced_view(parallel.records)

    def test_cell_without_baselines_is_not_replayed_by_a_baselines_run(
        self, tmp_path, tiny_matrix
    ):
        cells_path = tmp_path / "cells.json"
        SweepRunner(
            ResultStore(tmp_path / "warm.jsonl"), plan_store_path=str(cells_path)
        ).run(tiny_matrix)
        enriched = SweepRunner(
            ResultStore(tmp_path / "baselines.jsonl"),
            baselines=True,
            plan_store_path=str(cells_path),
        ).run(tiny_matrix)
        assert enriched.priced_hits == 0
        for record in enriched.records:
            assert "method_speedups" in record
        # The enriched cells were written back and now replay with baselines.
        replay = SweepRunner(
            ResultStore(tmp_path / "replay.jsonl"),
            baselines=True,
            plan_store_path=str(cells_path),
        ).run(tiny_matrix)
        assert replay.priced_hits == 4
        by_id = {r["job_id"]: r for r in enriched.records}
        for record in replay.records:
            assert record["method_speedups"] == by_id[record["job_id"]]["method_speedups"]

    def test_ride_along_keys_never_reach_the_result_store(self, store, tiny_matrix):
        SweepRunner(store, plan_store=PricedCellStore()).run(tiny_matrix)
        for record in store.records():
            assert "priced_cell" not in record
            assert "cache_entry" not in record


class TestAggregation:
    @pytest.fixture
    def records(self, store, tiny_matrix):
        return SweepRunner(store).run(tiny_matrix).records

    def test_summarize_by_group(self, records):
        summary = summarize_by_group(records)
        assert sum(stats["count"] for stats in summary.values()) == len(records)
        for stats in summary.values():
            assert stats["min_speedup"] <= stats["mean_speedup"] <= stats["max_speedup"]

    def test_scenario_table_lists_every_job(self, records):
        table = scenario_table(records)
        for record in records:
            assert record["job_id"] in table

    def test_group_summary_table_renders(self, records):
        table = group_summary_table(records, keys=("collective",))
        assert "allreduce" in table and "reducescatter" in table

    def test_records_lift_into_analysis_comparisons(self, records):
        comparisons = records_to_comparisons(records)
        assert len(comparisons) == len(records)
        for comparison in comparisons:
            assert "flashoverlap" in comparison.speedups
            assert comparison.problem.output_bytes() > 0

    def test_failed_records_excluded_from_aggregation(self, records):
        poisoned = records + [{"job_id": "x", "status": "error", "scenario": {}}]
        assert len(records_to_comparisons(poisoned)) == len(records)
