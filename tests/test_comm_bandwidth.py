"""Tests for the bandwidth curves (repro.comm.bandwidth, Fig. 8)."""

import numpy as np
import pytest

from repro.comm.bandwidth import (
    AnalyticBandwidthCurve,
    SampledBandwidthCurve,
    default_sample_sizes,
    sample_bandwidth,
)
from repro.comm.topology import a800_nvlink, rtx4090_pcie


class TestAnalyticCurve:
    @pytest.fixture
    def curve(self):
        return AnalyticBandwidthCurve.for_topology(rtx4090_pcie(4))

    def test_bandwidth_monotonic_in_size(self, curve):
        sizes = np.geomspace(1e4, 1e9, 30)
        bws = [curve.bandwidth(s) for s in sizes]
        assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))

    def test_bandwidth_saturates_at_peak(self, curve):
        assert curve.bandwidth(1 << 34) < curve.peak_bandwidth_bytes
        assert curve.bandwidth(1 << 34) > 0.95 * curve.peak_bandwidth_bytes

    def test_half_saturation_point(self, curve):
        assert curve.utilization(curve.half_saturation_bytes) == pytest.approx(0.5)

    def test_small_message_degradation(self, curve):
        # Paper Sec. 3.2.2: a 192 KB tile achieves only ~13% of the bandwidth.
        assert curve.utilization(192 * 1024) < 0.2

    def test_zero_size(self, curve):
        assert curve.bandwidth(0) == 0.0
        assert curve.transfer_time(0) == 0.0

    def test_transfer_time_is_affine(self, curve):
        # (s + s_half) / peak: doubling size adds exactly s/peak.
        t1 = curve.transfer_time(1 << 20)
        t2 = curve.transfer_time(1 << 21)
        assert t2 - t1 == pytest.approx((1 << 20) / curve.peak_bandwidth_bytes)

    def test_knee_bytes(self, curve):
        knee = curve.knee_bytes(0.8)
        assert curve.utilization(knee) == pytest.approx(0.8)
        with pytest.raises(ValueError):
            curve.knee_bytes(1.5)

    def test_nvlink_needs_larger_messages_to_saturate(self):
        # A fast link amortises its per-transfer cost only with big messages,
        # so the NVLink knee sits at a larger message size than the PCIe knee.
        pcie = AnalyticBandwidthCurve.for_topology(rtx4090_pcie(4))
        nvlink = AnalyticBandwidthCurve.for_topology(a800_nvlink(4))
        assert nvlink.knee_bytes() > pcie.knee_bytes()


class TestSampledCurve:
    @pytest.fixture
    def analytic(self):
        return AnalyticBandwidthCurve.for_topology(a800_nvlink(4))

    def test_sampling_without_noise_interpolates_exactly(self, analytic):
        sampled = sample_bandwidth(analytic, noise=0.0)
        for size in (1 << 20, 5 << 20, 123 << 20):
            assert sampled.transfer_time(size) == pytest.approx(
                analytic.transfer_time(size), rel=1e-6
            )

    def test_extrapolation_beyond_samples(self, analytic):
        sampled = sample_bandwidth(analytic, noise=0.0)
        big = float(sampled.sizes_bytes[-1] * 8)
        assert sampled.transfer_time(big) == pytest.approx(analytic.transfer_time(big), rel=0.05)

    def test_noise_changes_samples_deterministically(self, analytic):
        a = sample_bandwidth(analytic, noise=0.05, seed=1)
        b = sample_bandwidth(analytic, noise=0.05, seed=1)
        c = sample_bandwidth(analytic, noise=0.05, seed=2)
        np.testing.assert_array_equal(a.bandwidths_bytes, b.bandwidths_bytes)
        assert not np.array_equal(a.bandwidths_bytes, c.bandwidths_bytes)

    def test_invalid_samples_rejected(self):
        with pytest.raises(ValueError):
            SampledBandwidthCurve(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            SampledBandwidthCurve(np.array([2.0, 1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            SampledBandwidthCurve(np.array([1.0, 2.0]), np.array([1.0, -1.0]))

    def test_zero_size(self, analytic):
        sampled = sample_bandwidth(analytic)
        assert sampled.bandwidth(0) == 0.0


class TestSampleSizes:
    def test_default_sizes_are_log_spaced(self):
        sizes = default_sample_sizes()
        assert np.all(np.diff(sizes) > 0)
        assert sizes[0] >= 64 * 1024
        assert sizes[-1] <= (1 << 30) + 1

    def test_points_per_decade(self):
        dense = default_sample_sizes(points_per_decade=8)
        sparse = default_sample_sizes(points_per_decade=2)
        assert len(dense) > len(sparse)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            default_sample_sizes(min_bytes=0)
        with pytest.raises(ValueError):
            default_sample_sizes(min_bytes=100, max_bytes=50)


class TestVectorizedCurves:
    """Array inputs evaluate element-wise identically to the scalar paths."""

    @pytest.fixture
    def analytic(self):
        return AnalyticBandwidthCurve(peak_bandwidth_bytes=50e9, half_saturation_bytes=4e6)

    @pytest.fixture
    def sampled(self, analytic):
        return sample_bandwidth(analytic, default_sample_sizes(), noise=0.02, seed=5)

    def test_analytic_bandwidth_accepts_arrays(self, analytic):
        sizes = np.array([-1.0, 0.0, 1.0, 1e4, 4e6, 1e9])
        batch = analytic.bandwidth(sizes)
        np.testing.assert_array_equal(batch, [analytic.bandwidth(s) for s in sizes])

    def test_analytic_transfer_time_accepts_arrays(self, analytic):
        sizes = np.array([0.0, 64.0, 1e5, 4e6, 1e9])
        np.testing.assert_array_equal(
            analytic.transfer_time(sizes), [analytic.transfer_time(s) for s in sizes]
        )

    def test_sampled_transfer_time_accepts_arrays(self, sampled):
        # Below the smallest sample, on samples, between samples, above the top.
        sizes = np.concatenate(
            [[0.0, 1.0, 1024.0], sampled.sizes_bytes[:3], sampled.sizes_bytes[:2] * 1.7, [1e12]]
        )
        np.testing.assert_array_equal(
            sampled.transfer_time(sizes), [sampled.transfer_time(s) for s in sizes]
        )

    def test_sampled_bandwidth_accepts_arrays(self, sampled):
        sizes = np.array([0.0, 1e5, 1e6, 1e8, 1e12])
        np.testing.assert_array_equal(
            sampled.bandwidth(sizes), [sampled.bandwidth(s) for s in sizes]
        )

    def test_sample_bandwidth_uses_one_vectorized_call(self, analytic):
        sizes = default_sample_sizes()
        curve = sample_bandwidth(analytic, sizes)
        np.testing.assert_array_equal(curve.bandwidths_bytes, [analytic.bandwidth(s) for s in sizes])
