"""Tests for the ring collectives (repro.comm.ring)."""

import numpy as np
import pytest

from repro.comm.collectives import all_gather, all_reduce, reduce_scatter_flat
from repro.comm.ring import ring_all_gather, ring_all_reduce, ring_reduce_scatter


@pytest.fixture(params=[2, 3, 4, 8])
def n_ranks(request):
    return request.param


class TestRingReduceScatter:
    def test_matches_direct_reduce_scatter(self, rng, n_ranks):
        size = n_ranks * 6
        buffers = [rng.standard_normal(size) for _ in range(n_ranks)]
        ring_result, _ = ring_reduce_scatter(buffers)
        direct = reduce_scatter_flat(buffers)
        for a, b in zip(ring_result, direct):
            np.testing.assert_allclose(a, b)

    def test_traffic_matches_ring_bound(self, rng, n_ranks):
        size = n_ranks * 8
        buffers = [rng.standard_normal(size) for _ in range(n_ranks)]
        _, report = ring_reduce_scatter(buffers)
        expected = (n_ranks - 1) / n_ranks * size
        assert report.volume_factor(size) == pytest.approx(expected / size)

    def test_uneven_chunks_still_correct(self, rng):
        buffers = [rng.standard_normal(10) for _ in range(3)]
        ring_result, _ = ring_reduce_scatter(buffers)
        total = sum(buffers)
        # np.array_split boundaries: 4, 3, 3.
        np.testing.assert_allclose(ring_result[0], total[:4])
        np.testing.assert_allclose(ring_result[1], total[4:7])
        np.testing.assert_allclose(ring_result[2], total[7:])

    def test_mismatched_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            ring_reduce_scatter([rng.standard_normal(4), rng.standard_normal(5)])


class TestRingAllGather:
    def test_matches_direct_all_gather(self, rng, n_ranks):
        chunks = [rng.standard_normal(5) for _ in range(n_ranks)]
        ring_result, _ = ring_all_gather(chunks)
        direct = all_gather(chunks)
        for a, b in zip(ring_result, direct):
            np.testing.assert_allclose(a, np.asarray(b).ravel())

    def test_traffic_matches_ring_bound(self, rng, n_ranks):
        chunks = [rng.standard_normal(7) for _ in range(n_ranks)]
        _, report = ring_all_gather(chunks)
        total = 7 * n_ranks
        assert report.elements_sent_per_rank == pytest.approx((n_ranks - 1) / n_ranks * total)


class TestRingAllReduce:
    def test_matches_direct_all_reduce(self, rng, n_ranks):
        buffers = [rng.standard_normal((4, n_ranks)) for _ in range(n_ranks)]
        ring_result, _ = ring_all_reduce(buffers)
        direct = all_reduce(buffers)
        for a, b in zip(ring_result, direct):
            np.testing.assert_allclose(a, b)

    def test_volume_factor_is_twice_reduce_scatter(self, rng, n_ranks):
        size = n_ranks * 4
        buffers = [rng.standard_normal(size) for _ in range(n_ranks)]
        _, report = ring_all_reduce(buffers)
        expected_factor = 2.0 * (n_ranks - 1) / n_ranks
        assert report.volume_factor(size) == pytest.approx(expected_factor)
        assert report.steps == 2 * (n_ranks - 1)

    def test_single_rank_degenerates(self, rng):
        buffers = [rng.standard_normal(6)]
        result, report = ring_all_reduce(buffers)
        np.testing.assert_allclose(result[0], buffers[0])
        assert report.elements_sent_per_rank == 0.0

    def test_combine_rejects_rank_mismatch(self, rng):
        _, r2 = ring_all_reduce([rng.standard_normal(4) for _ in range(2)])
        _, r3 = ring_all_reduce([rng.standard_normal(6) for _ in range(3)])
        with pytest.raises(ValueError):
            r2.combine(r3)
