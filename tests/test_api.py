"""CLI <-> facade parity, the report protocol, and ClusterSpec semantics.

Every subcommand's ``--json`` payload must equal the ``to_dict()`` of the
corresponding :mod:`repro.api` call on the same configuration -- the CLI is
a thin shell over the facade, so the two can never drift.  Smoke-sized
configurations keep the suite CI-friendly.
"""

import json

import pytest

import repro.api as api
from repro.cli import main
from repro.cluster import ClusterSpec


def _normalized(report) -> dict:
    """The facade report as plain JSON data (tuples -> lists, etc.)."""
    return json.loads(report.to_json())


def _cli_json(tmp_path, argv: list[str]) -> dict:
    target = tmp_path / "cli.json"
    assert main([*argv, "--json", str(target)]) == 0
    return json.loads(target.read_text(encoding="utf-8"))


class TestParity:
    def test_e2e(self, tmp_path):
        cli = _cli_json(tmp_path, ["e2e", "--smoke", "--workload", "llama3-training"])
        assert cli == _normalized(api.estimate(["llama3-training"], smoke=True))

    def test_pp(self, tmp_path):
        cli = _cli_json(tmp_path, ["pp", "--smoke"])
        assert cli == _normalized(api.pp(smoke=True))

    def test_serve(self, tmp_path):
        cli = _cli_json(tmp_path, ["serve", "--smoke"])
        facade = api.serve(smoke=True, cluster=ClusterSpec(topology="a800-nvlink", gpus=4))
        assert cli == _normalized(facade)

    def test_plan(self, tmp_path):
        cli = _cli_json(tmp_path, ["plan", "--smoke"])
        assert cli == _normalized(api.plan(smoke=True))

    def test_sweep(self, tmp_path):
        out = tmp_path / "results.jsonl"
        cli = _cli_json(tmp_path, ["sweep", "--preset", "smoke", "--out", str(out)])
        # Same store: job IDs dedupe, so the records and completion counts of
        # the facade re-run are identical.
        facade = api.sweep(["smoke"], out=out)
        assert cli == _normalized(facade)

    def test_pp_partition_flag(self, tmp_path):
        cli = _cli_json(tmp_path, ["pp", "--smoke", "--partition", "3,1"])
        facade = api.pp(smoke=True, partition=(3, 1))
        assert cli == _normalized(facade)
        assert cli["meta"]["partition"] == [3, 1]


class TestReportProtocol:
    @pytest.mark.parametrize("build", [
        lambda: api.estimate(["llama3-training"], smoke=True),
        lambda: api.pp(smoke=True),
        lambda: api.serve(smoke=True),
        lambda: api.plan(smoke=True),
    ])
    def test_protocol_surface(self, build, tmp_path):
        report = build()
        assert isinstance(report.summary_table(), str) and report.summary_table()
        payload = json.loads(report.to_json())
        assert payload == json.loads(json.dumps(report.to_dict(), sort_keys=True, default=list))
        saved = report.save_json(tmp_path / "nested" / "report.json")
        assert json.loads(saved.read_text(encoding="utf-8")) == payload

    def test_serve_requires_traffic(self):
        with pytest.raises(ValueError, match="no requests"):
            api.serve(rate=1e-4, duration=1e-6)

    def test_sweep_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            api.sweep()
        with pytest.raises(ValueError, match="exactly one"):
            api.sweep(["smoke"], config="matrix.json", out=tmp_path / "r.jsonl")


class TestClusterSpec:
    def test_paper_default_resolves_to_none(self):
        assert ClusterSpec().resolve() is None

    def test_gpus_scale_the_default_preset(self):
        topology = ClusterSpec(gpus=8).resolve()
        assert topology.n_gpus == 8 and "a800" in topology.name

    def test_named_preset(self):
        topology = ClusterSpec(topology="rtx4090-pcie", gpus=4).resolve()
        assert topology.name == "rtx4090-pcie" and topology.n_gpus == 4

    def test_multinode_overrides_preset(self):
        spec = ClusterSpec(topology="rtx4090-pcie", nodes=2, gpus_per_node=4)
        assert spec.total_gpus == 8
        assert "2node" in spec.resolve().name

    def test_topology_for_tp_inside_one_server(self):
        assert ClusterSpec(gpus=8).topology_for_tp(4).n_gpus == 4

    def test_topology_for_tp_crosses_nodes(self):
        spec = ClusterSpec(nodes=2, gpus_per_node=8)
        assert "2node" in spec.topology_for_tp(16).name
        with pytest.raises(ValueError, match="split"):
            spec.topology_for_tp(12)

    def test_round_trip(self):
        spec = ClusterSpec(device="rtx4090", topology="rtx4090-pcie", gpus=4)
        assert ClusterSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(device="nope")
        with pytest.raises(ValueError):
            ClusterSpec(topology="nope")
        with pytest.raises(ValueError):
            ClusterSpec(gpus=1)
