"""Tests for the end-to-end workload aggregation (Fig. 4 / Fig. 12)."""

import pytest

from repro.comm.primitives import CollectiveKind
from repro.core.baselines import VanillaDecompositionBaseline
from repro.core.config import OverlapProblem, OverlapSettings
from repro.workloads.e2e import (
    llama3_inference_workload,
    mixtral_training_workload,
    paper_workloads,
    step_video_workload,
)
from repro.workloads.operators import EndToEndWorkload, OperatorInstance


@pytest.fixture
def settings():
    return OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


@pytest.fixture
def inference(settings):
    return llama3_inference_workload(layers=1, settings=settings)


class TestOperatorInstance:
    def test_pattern_labels(self, paper_problem_4090):
        comm_op = OperatorInstance(name="x", problem=paper_problem_4090)
        other = OperatorInstance(name="y", other_latency=1e-3)
        assert comm_op.pattern() == "GEMM+AR"
        assert other.pattern() == "others"
        assert comm_op.is_overlap_target and not other.is_overlap_target

    def test_validation(self, paper_problem_4090):
        with pytest.raises(ValueError):
            OperatorInstance(name="empty")
        with pytest.raises(ValueError):
            OperatorInstance(name="bad", problem=paper_problem_4090, count=0)
        with pytest.raises(ValueError):
            OperatorInstance(name="bad", other_latency=-1.0)


class TestEndToEndWorkload:
    def test_breakdown_sums_to_one(self, inference):
        shares = inference.breakdown()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["GEMM+AR"] > 0.2  # Fig. 4: GEMM+AR is a large share

    def test_overlap_target_fraction_in_paper_band(self, inference):
        # Sec. 2.3.1: GEMM+AR occupies roughly 30-45% of TP inference time.
        assert 0.25 < inference.overlap_target_fraction() < 0.55

    def test_flashoverlap_speedup_above_one(self, inference):
        speedup = inference.speedup()
        assert 1.02 < speedup < 1.35

    def test_e2e_speedup_below_operator_speedups(self, inference):
        # Amdahl: the end-to-end gain cannot exceed the per-operator gains.
        operator_speedups = inference.operator_speedups()
        assert operator_speedups
        assert inference.speedup() < max(operator_speedups.values())

    def test_baseline_method_evaluation(self, inference):
        vanilla = VanillaDecompositionBaseline()
        assert inference.speedup(vanilla) >= 0.95
        assert inference.speedup(vanilla) <= inference.speedup("flashoverlap") * 1.05

    def test_layers_scale_latency_linearly(self, settings):
        one = llama3_inference_workload(layers=1, settings=settings)
        four = llama3_inference_workload(layers=4, settings=settings)
        assert four.total_latency() == pytest.approx(4 * one.total_latency(), rel=1e-6)

    def test_unknown_method_rejected(self, inference):
        with pytest.raises(ValueError):
            inference.total_latency("magic")

    def test_invalid_layers(self, paper_problem_4090):
        with pytest.raises(ValueError):
            EndToEndWorkload(name="x", operators=[OperatorInstance("a", paper_problem_4090)], layers=0)


class TestPaperWorkloads:
    def test_all_four_applications_build(self, settings):
        workloads = paper_workloads(settings)
        assert len(workloads) == 4
        names = " ".join(w.name for w in workloads)
        assert "Llama3-70B" in names and "Mixtral" in names and "Step-Video" in names

    def test_mixtral_has_a2a_share(self, settings):
        workload = mixtral_training_workload(layers=1, settings=settings)
        shares = workload.breakdown()
        assert shares.get("GEMM+A2A", 0.0) > 0.05

    def test_step_video_has_largest_ar_share(self, settings):
        t2v = step_video_workload(layers=1, settings=settings).breakdown()["GEMM+AR"]
        moe = mixtral_training_workload(layers=1, settings=settings).breakdown().get("GEMM+AR", 0.0)
        assert t2v > moe

    def test_every_paper_workload_speeds_up(self, settings):
        for workload in paper_workloads(settings):
            assert workload.speedup() > 1.0, workload.name

    def test_llama2_training_workload(self, settings):
        from repro.workloads.e2e import llama2_training_workload

        workload = llama2_training_workload(layers=1, settings=settings)
        shares = workload.breakdown()
        assert shares.get("GEMM+RS", 0.0) > 0.15
        assert workload.speedup() > 1.0
