"""Tests for the model-level workloads (LLM, MoE, T2V layer builders)."""

import pytest

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import a800_nvlink
from repro.gpu.device import A800
from repro.workloads.llm import LLAMA2_7B, LLAMA3_70B, llm_inference_layer, llm_training_layer
from repro.workloads.moe import MIXTRAL_8X7B, moe_training_layer, route_tokens
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.t2v import STEP_VIDEO_T2V, t2v_inference_layer


class TestModelConfigs:
    def test_llama3_dimensions(self):
        assert LLAMA3_70B.hidden_size == 8192
        assert LLAMA3_70B.intermediate_size == 28672
        assert LLAMA3_70B.head_dim == 128
        assert LLAMA3_70B.kv_hidden == 1024

    def test_llama2_dimensions(self):
        assert LLAMA2_7B.hidden_size == 4096
        assert LLAMA2_7B.num_kv_heads == LLAMA2_7B.num_heads

    def test_mixtral_dense_view(self):
        dense = MIXTRAL_8X7B.dense
        assert dense.hidden_size == 4096
        assert dense.intermediate_size == 14336


class TestLLMLayers:
    @pytest.fixture
    def layer(self):
        return llm_inference_layer(
            LLAMA3_70B, tokens=16384, parallelism=ParallelismConfig(tp=8),
            device=A800, topology=a800_nvlink(8),
        )

    def test_inference_layer_has_two_allreduce_targets(self, layer):
        targets = [op for op in layer if op.is_overlap_target]
        assert len(targets) == 2
        assert all(op.problem.collective is CollectiveKind.ALL_REDUCE for op in targets)

    def test_inference_gemm_shapes_are_tp_sharded(self, layer):
        targets = {op.name: op.problem for op in layer if op.is_overlap_target}
        attn = targets["attn-out-proj+AR"]
        mlp = targets["mlp-down+AR"]
        assert attn.shape.k == LLAMA3_70B.hidden_size // 8
        assert mlp.shape.k == LLAMA3_70B.intermediate_size // 8
        assert attn.shape.m == mlp.shape.m == 16384

    def test_other_operators_have_positive_latency(self, layer):
        for op in layer:
            if not op.is_overlap_target:
                assert op.other_latency > 0

    def test_training_layer_uses_reduce_scatter(self):
        layer = llm_training_layer(
            LLAMA3_70B, tokens=16384, parallelism=ParallelismConfig(tp=8),
            device=A800, topology=a800_nvlink(8),
        )
        targets = [op for op in layer if op.is_overlap_target]
        assert len(targets) >= 4
        assert all(op.problem.collective is CollectiveKind.REDUCE_SCATTER for op in targets)

    def test_training_layer_costs_more_than_inference(self):
        parallelism = ParallelismConfig(tp=8)
        topo = a800_nvlink(8)
        inference = llm_inference_layer(LLAMA3_70B, 16384, parallelism, A800, topo)
        training = llm_training_layer(LLAMA3_70B, 16384, parallelism, A800, topo)
        inference_other = sum(op.other_latency for op in inference)
        training_other = sum(op.other_latency for op in training)
        assert training_other > inference_other


class TestMoE:
    def test_routing_is_imbalanced_but_conserves_tokens(self):
        report = route_tokens(32768, MIXTRAL_8X7B, ep=4, seed=0)
        assert report.tokens_per_expert.sum() == 32768 * MIXTRAL_8X7B.top_k
        assert report.tokens_per_gpu.sum() == 32768 * MIXTRAL_8X7B.top_k
        assert report.imbalance_factor > 1.0

    def test_routing_deterministic_per_seed(self):
        a = route_tokens(1024, MIXTRAL_8X7B, ep=4, seed=7)
        b = route_tokens(1024, MIXTRAL_8X7B, ep=4, seed=7)
        c = route_tokens(1024, MIXTRAL_8X7B, ep=4, seed=8)
        assert (a.tokens_per_expert == b.tokens_per_expert).all()
        assert not (a.tokens_per_expert == c.tokens_per_expert).all()

    def test_lower_concentration_means_more_skew(self):
        skewed = route_tokens(32768, MIXTRAL_8X7B, ep=4, concentration=0.3, seed=1)
        uniform = route_tokens(32768, MIXTRAL_8X7B, ep=4, concentration=50.0, seed=1)
        assert skewed.imbalance_factor > uniform.imbalance_factor

    def test_invalid_ep(self):
        with pytest.raises(ValueError):
            route_tokens(1024, MIXTRAL_8X7B, ep=3)

    def test_moe_layer_has_a2a_targets(self):
        layer = moe_training_layer(
            MIXTRAL_8X7B, tokens=32768, parallelism=ParallelismConfig(tp=2, ep=4),
            device=A800, topology=a800_nvlink(8),
        )
        a2a = [op for op in layer if op.is_overlap_target
               and op.problem.collective is CollectiveKind.ALL_TO_ALL]
        assert len(a2a) == 2
        assert all(op.problem.imbalance > 1.0 for op in a2a)
        # TP=2 also adds an AllReduce target for the attention block.
        ar = [op for op in layer if op.is_overlap_target
              and op.problem.collective is CollectiveKind.ALL_REDUCE]
        assert len(ar) == 1


class TestT2V:
    def test_dit_layer_has_three_allreduce_targets(self):
        layer = t2v_inference_layer(
            STEP_VIDEO_T2V, tokens=33792, parallelism=ParallelismConfig(tp=4),
            device=A800, topology=a800_nvlink(4),
        )
        targets = [op for op in layer if op.is_overlap_target]
        assert len(targets) == 3
        assert all(op.problem.collective is CollectiveKind.ALL_REDUCE for op in targets)

    def test_no_cross_attention_variant(self):
        from dataclasses import replace

        config = replace(STEP_VIDEO_T2V, cross_attention=False)
        layer = t2v_inference_layer(
            config, tokens=1024, parallelism=ParallelismConfig(tp=4),
            device=A800, topology=a800_nvlink(4),
        )
        assert len([op for op in layer if op.is_overlap_target]) == 2
