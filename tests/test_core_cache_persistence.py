"""Tests for shape-cache persistence (repro.core.tuner JSON round trip)."""

import pytest

from repro.core.config import OverlapSettings
from repro.core.tuner import GemmShapeCache, PredictiveTuner, TuningResult
from repro.core.wave_grouping import WavePartition
from repro.gpu.gemm import GemmShape


@pytest.fixture
def settings():
    return OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


@pytest.fixture
def populated_cache(paper_problem_4090, settings):
    cache = GemmShapeCache()
    tuner = PredictiveTuner(settings)
    cache.lookup_or_tune(paper_problem_4090, tuner)
    cache.add(
        GemmShape(1024, 1024, 1024),
        TuningResult(
            partition=WavePartition((2, 3)),
            predicted_latency=1.5e-3,
            candidates_evaluated=7,
            method="predictive",
            use_overlap=False,
        ),
    )
    return cache


class TestJsonRoundTrip:
    def test_round_trip_preserves_entries(self, populated_cache):
        restored = GemmShapeCache.from_json(populated_cache.to_json())
        assert len(restored) == len(populated_cache)
        for original, loaded in zip(populated_cache.entries, restored.entries):
            assert loaded.shape == original.shape
            assert loaded.result.partition == original.result.partition
            assert loaded.result.use_overlap == original.result.use_overlap
            assert loaded.result.method == original.result.method
            assert loaded.result.predicted_latency == pytest.approx(
                original.result.predicted_latency
            )

    def test_json_is_human_readable(self, populated_cache):
        text = populated_cache.to_json()
        assert '"group_sizes"' in text
        assert '"m"' in text

    def test_empty_cache_round_trip(self):
        assert len(GemmShapeCache.from_json(GemmShapeCache().to_json())) == 0


class TestFilePersistence:
    def test_save_and_load(self, populated_cache, tmp_path):
        path = tmp_path / "tuning_cache.json"
        populated_cache.save(path)
        loaded = GemmShapeCache.load(path)
        assert len(loaded) == len(populated_cache)

    def test_loaded_cache_serves_lookups(self, populated_cache, paper_problem_4090, settings, tmp_path):
        path = tmp_path / "cache.json"
        populated_cache.save(path)
        loaded = GemmShapeCache.load(path)
        tuner = PredictiveTuner(settings)
        before = len(loaded)
        result = loaded.lookup_or_tune(paper_problem_4090, tuner)
        # The cached entry is reused; no new entry is added.
        assert len(loaded) == before
        assert result.partition == populated_cache.entries[0].result.partition


class TestErgonomics:
    def test_save_creates_parent_directories(self, populated_cache, tmp_path):
        path = tmp_path / "deep" / "nested" / "dir" / "cache.json"
        populated_cache.save(path)
        assert path.exists()
        assert len(GemmShapeCache.load(path)) == len(populated_cache)

    def test_load_missing_path_raises_clear_error(self, tmp_path):
        missing = tmp_path / "does_not_exist.json"
        with pytest.raises(FileNotFoundError, match="missing_ok"):
            GemmShapeCache.load(missing)

    def test_load_missing_path_with_missing_ok_returns_empty(self, tmp_path):
        cache = GemmShapeCache.load(tmp_path / "does_not_exist.json", missing_ok=True)
        assert len(cache) == 0

    def test_save_load_round_trip_through_new_directory(self, populated_cache, tmp_path, paper_problem_4090, settings):
        path = tmp_path / "warm" / "shapes.json"
        populated_cache.save(path)
        loaded = GemmShapeCache.load(path, missing_ok=True)
        assert loaded.lookup(paper_problem_4090, settings) is not None

    def test_lookup_returns_none_on_miss(self, settings, paper_problem_4090):
        assert GemmShapeCache().lookup(paper_problem_4090, settings) is None

    def test_lookup_respects_max_distance(self, populated_cache, paper_problem_4090, settings):
        hit = populated_cache.lookup(paper_problem_4090, settings, max_distance=1.0)
        assert hit is not None
        # An impossible distance bound turns the same query into a miss.
        assert populated_cache.lookup(paper_problem_4090, settings, max_distance=-1.0) is None
