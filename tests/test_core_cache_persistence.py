"""Tests for shape-cache persistence (repro.core.tuner JSON round trip)."""

import pytest

from repro.core.config import OverlapSettings
from repro.core.tuner import GemmShapeCache, PredictiveTuner, TuningResult
from repro.core.wave_grouping import WavePartition
from repro.gpu.gemm import GemmShape


@pytest.fixture
def settings():
    return OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


@pytest.fixture
def populated_cache(paper_problem_4090, settings):
    cache = GemmShapeCache()
    tuner = PredictiveTuner(settings)
    cache.lookup_or_tune(paper_problem_4090, tuner)
    cache.add(
        GemmShape(1024, 1024, 1024),
        TuningResult(
            partition=WavePartition((2, 3)),
            predicted_latency=1.5e-3,
            candidates_evaluated=7,
            method="predictive",
            use_overlap=False,
        ),
    )
    return cache


class TestJsonRoundTrip:
    def test_round_trip_preserves_entries(self, populated_cache):
        restored = GemmShapeCache.from_json(populated_cache.to_json())
        assert len(restored) == len(populated_cache)
        for original, loaded in zip(populated_cache.entries, restored.entries):
            assert loaded.shape == original.shape
            assert loaded.result.partition == original.result.partition
            assert loaded.result.use_overlap == original.result.use_overlap
            assert loaded.result.method == original.result.method
            assert loaded.result.predicted_latency == pytest.approx(
                original.result.predicted_latency
            )

    def test_json_is_human_readable(self, populated_cache):
        text = populated_cache.to_json()
        assert '"group_sizes"' in text
        assert '"m"' in text

    def test_empty_cache_round_trip(self):
        assert len(GemmShapeCache.from_json(GemmShapeCache().to_json())) == 0


class TestFilePersistence:
    def test_save_and_load(self, populated_cache, tmp_path):
        path = tmp_path / "tuning_cache.json"
        populated_cache.save(path)
        loaded = GemmShapeCache.load(path)
        assert len(loaded) == len(populated_cache)

    def test_loaded_cache_serves_lookups(self, populated_cache, paper_problem_4090, settings, tmp_path):
        path = tmp_path / "cache.json"
        populated_cache.save(path)
        loaded = GemmShapeCache.load(path)
        tuner = PredictiveTuner(settings)
        before = len(loaded)
        result = loaded.lookup_or_tune(paper_problem_4090, tuner)
        # The cached entry is reused; no new entry is added.
        assert len(loaded) == before
        assert result.partition == populated_cache.entries[0].result.partition
