"""Tests for the JSONL result store (repro.sweep.store), esp. crash recovery."""

import json

from repro.sweep.store import ResultStore


def test_truncated_trailing_record_is_quarantined(tmp_path):
    """A run killed mid-write leaves a partial last line; resume must survive it."""
    path = tmp_path / "results.jsonl"
    store = ResultStore(path)
    store.append({"job_id": "job-1", "status": "ok", "speedup": 1.2})
    store.append({"job_id": "job-2", "status": "ok", "speedup": 1.1})

    # Truncate the file mid-way through the second record.
    text = path.read_text(encoding="utf-8")
    first_line_end = text.index("\n") + 1
    path.write_text(text[: first_line_end + len(text[first_line_end:]) // 2], encoding="utf-8")

    reloaded = ResultStore(path)
    records = list(reloaded.records())
    assert [r["job_id"] for r in records] == ["job-1"]
    assert reloaded.quarantined == 1
    # The interrupted job is NOT in the resume skip-set, so it is retried.
    assert reloaded.completed_ids() == {"job-1"}


def test_quarantined_line_mid_file_is_skipped(tmp_path):
    path = tmp_path / "results.jsonl"
    lines = [
        json.dumps({"job_id": "job-1", "status": "ok"}),
        '{"job_id": "job-2", "status"',  # corrupt middle line
        json.dumps({"job_id": "job-3", "status": "ok"}),
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    store = ResultStore(path)
    assert [r["job_id"] for r in store.records()] == ["job-1", "job-3"]
    assert store.quarantined == 1


def test_append_after_quarantine_round_trips(tmp_path):
    path = tmp_path / "results.jsonl"
    path.write_text('{"job_id": "job-1"', encoding="utf-8")  # only a partial record
    store = ResultStore(path)
    assert store.completed_ids() == set()
    store.append({"job_id": "job-2", "status": "ok"})
    assert store.completed_ids() == {"job-2"}


def test_clean_file_has_no_quarantined_lines(tmp_path):
    store = ResultStore(tmp_path / "results.jsonl")
    store.append({"job_id": "job-1"})
    assert len(store) == 1
    assert store.quarantined == 0
