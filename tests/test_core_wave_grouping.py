"""Tests for wave-group partitions and the design space (repro.core.wave_grouping)."""

import pytest

from repro.core.wave_grouping import (
    WavePartition,
    candidate_partitions,
    design_space_size,
    enumerate_partitions,
    heuristic_partitions,
    pruned_partitions,
)


class TestWavePartition:
    def test_basic_properties(self):
        partition = WavePartition((1, 2, 2))
        assert partition.num_waves == 5
        assert partition.num_groups == 3
        assert partition.first_group == 1
        assert partition.last_group == 2
        assert partition.boundaries() == [1, 3, 5]

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            WavePartition(())
        with pytest.raises(ValueError):
            WavePartition((2, 0, 1))

    def test_constructors(self):
        assert WavePartition.single_group(4).group_sizes == (4,)
        assert WavePartition.per_wave(3).group_sizes == (1, 1, 1)
        assert WavePartition.from_sizes([2, 3]).group_sizes == (2, 3)

    def test_equal_groups(self):
        assert WavePartition.equal_groups(10, 4).group_sizes == (4, 4, 2)
        assert WavePartition.equal_groups(8, 4).group_sizes == (4, 4)
        assert WavePartition.equal_groups(3, 10).group_sizes == (3,)
        with pytest.raises(ValueError):
            WavePartition.equal_groups(8, 0)

    def test_decision_round_trip(self):
        # Fig. 9 example: partition (1, 2, 2) communicates after waves 1, 3, 5.
        partition = WavePartition((1, 2, 2))
        decisions = partition.decisions()
        assert decisions == [True, False, True, False, True]
        assert WavePartition.from_decisions(decisions) == partition

    def test_from_decisions_forces_last_wave(self):
        partition = WavePartition.from_decisions([False, True, False, False])
        assert partition.group_sizes == (2, 2)

    def test_group_of_wave(self):
        partition = WavePartition((2, 3))
        assert [partition.group_of_wave(w) for w in range(5)] == [0, 0, 1, 1, 1]
        with pytest.raises(IndexError):
            partition.group_of_wave(5)

    def test_group_waves(self):
        partition = WavePartition((1, 2, 2))
        assert list(partition.group_waves(0)) == [0]
        assert list(partition.group_waves(1)) == [1, 2]
        assert list(partition.group_waves(2)) == [3, 4]
        with pytest.raises(IndexError):
            partition.group_waves(3)

    def test_group_tiles(self):
        partition = WavePartition((1, 2))
        wave_tiles = [[0, 2], [1, 3], [4, 5]]
        assert partition.group_tiles(wave_tiles) == [[0, 2], [1, 3, 4, 5]]

    def test_group_tiles_wave_count_mismatch(self):
        with pytest.raises(ValueError):
            WavePartition((1, 1)).group_tiles([[0], [1], [2]])


class TestDesignSpace:
    @pytest.mark.parametrize("waves,expected", [(1, 1), (2, 2), (5, 16), (8, 128)])
    def test_design_space_size(self, waves, expected):
        assert design_space_size(waves) == expected
        assert len(list(enumerate_partitions(waves))) == expected

    def test_enumeration_is_unique_and_complete(self):
        partitions = list(enumerate_partitions(6))
        assert len(set(p.group_sizes for p in partitions)) == 32
        assert all(p.num_waves == 6 for p in partitions)

    def test_invalid_wave_count(self):
        with pytest.raises(ValueError):
            design_space_size(0)
        with pytest.raises(ValueError):
            list(enumerate_partitions(0))

    def test_pruning_bounds_first_and_last_groups(self):
        pruned = pruned_partitions(8, max_first_group=2, max_last_group=4)
        assert pruned
        assert all(p.first_group <= 2 and p.last_group <= 4 for p in pruned)
        assert len(pruned) < design_space_size(8)

    def test_pruning_shrinks_with_tighter_bounds(self):
        # Sec. 4.1.4: constraining the first/last group sizes prunes the space.
        full = design_space_size(10)
        loose = len(pruned_partitions(10, 2, 4))
        tight = len(pruned_partitions(10, 1, 1))
        assert tight < loose < full


class TestHeuristicCandidates:
    def test_heuristic_covers_extremes(self):
        candidates = heuristic_partitions(30, max_first_group=2, max_last_group=4)
        sizes = {c.group_sizes for c in candidates}
        assert (1,) * 30 in sizes  # per-wave
        assert all(c.num_waves == 30 for c in candidates)
        assert len(candidates) >= 10

    def test_candidate_partitions_switches_family(self):
        small = candidate_partitions(8, 2, 4, max_exhaustive_waves=14)
        large = candidate_partitions(40, 2, 4, max_exhaustive_waves=14)
        assert all(p.first_group <= 2 for p in small)
        assert len(large) < 200
        assert all(p.num_waves == 40 for p in large)

    def test_candidate_partitions_single_wave(self):
        assert [p.group_sizes for p in candidate_partitions(1, 2, 4, 14)] == [(1,)]
