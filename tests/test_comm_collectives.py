"""Tests for the functional NumPy collectives (repro.comm.collectives)."""

import numpy as np
import pytest

from repro.comm.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    all_to_all_rows,
    broadcast,
    reduce_scatter,
    reduce_scatter_flat,
)


@pytest.fixture
def buffers(rng):
    return [rng.standard_normal((8, 6)) for _ in range(4)]


class TestAllReduce:
    def test_every_rank_gets_the_sum(self, buffers):
        results = all_reduce(buffers)
        expected = sum(buffers)
        assert len(results) == 4
        for out in results:
            np.testing.assert_allclose(out, expected)

    def test_results_are_independent_copies(self, buffers):
        results = all_reduce(buffers)
        results[0][0, 0] = 42.0
        assert results[1][0, 0] != 42.0

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            all_reduce([rng.standard_normal((2, 2)), rng.standard_normal((3, 2))])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            all_reduce([])


class TestReduceScatter:
    def test_row_split_semantics(self, buffers):
        results = reduce_scatter(buffers)
        expected = sum(buffers)
        for rank, out in enumerate(results):
            np.testing.assert_allclose(out, expected[rank * 2 : (rank + 1) * 2])

    def test_indivisible_rows_rejected(self, rng):
        bufs = [rng.standard_normal((7, 4)) for _ in range(4)]
        with pytest.raises(ValueError):
            reduce_scatter(bufs)

    def test_flat_semantics(self, rng):
        bufs = [rng.standard_normal(16) for _ in range(4)]
        results = reduce_scatter_flat(bufs)
        expected = sum(bufs)
        for rank, out in enumerate(results):
            np.testing.assert_allclose(out, expected[rank * 4 : (rank + 1) * 4])

    def test_flat_indivisible_rejected(self, rng):
        with pytest.raises(ValueError):
            reduce_scatter_flat([rng.standard_normal(10) for _ in range(4)])

    def test_reduce_scatter_then_all_gather_is_all_reduce(self, buffers):
        shards = reduce_scatter(buffers)
        gathered = all_gather(shards)
        reduced = all_reduce(buffers)
        for a, b in zip(gathered, reduced):
            np.testing.assert_allclose(a, b)


class TestAllGather:
    def test_concatenation(self, rng):
        chunks = [rng.standard_normal((2, 3)) for _ in range(3)]
        results = all_gather(chunks)
        expected = np.concatenate(chunks, axis=0)
        for out in results:
            np.testing.assert_allclose(out, expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            all_gather([])


class TestAllToAll:
    def test_transpose_semantics(self, rng):
        n = 3
        send = [[rng.standard_normal(4) + 10 * src + dst for dst in range(n)] for src in range(n)]
        recv = all_to_all(send)
        for dst in range(n):
            for src in range(n):
                np.testing.assert_allclose(recv[dst][src], send[src][dst])

    def test_uneven_buffer_sizes(self, rng):
        send = [
            [rng.standard_normal(i + j + 1) for j in range(2)] for i in range(2)
        ]
        recv = all_to_all(send)
        assert recv[0][1].size == send[1][0].size

    def test_wrong_row_length_rejected(self, rng):
        with pytest.raises(ValueError):
            all_to_all([[rng.standard_normal(2)], [rng.standard_normal(2), rng.standard_normal(2)]])


class TestAllToAllRows:
    def test_tokens_arrive_at_destination(self, rng):
        n = 3
        buffers = [rng.standard_normal((6, 4)) for _ in range(n)]
        destinations = [np.array([0, 1, 2, 0, 1, 2]) for _ in range(n)]
        received = all_to_all_rows(buffers, destinations)
        # Each destination receives 2 tokens from each source, in source order.
        for dst in range(n):
            assert received[dst].shape == (6, 4)
            expected = np.concatenate(
                [buffers[src][destinations[src] == dst] for src in range(n)], axis=0
            )
            np.testing.assert_allclose(received[dst], expected)

    def test_total_token_count_preserved(self, rng):
        n = 4
        buffers = [rng.standard_normal((10, 2)) for _ in range(n)]
        destinations = [rng.integers(0, n, size=10) for _ in range(n)]
        received = all_to_all_rows(buffers, destinations)
        assert sum(r.shape[0] for r in received) == n * 10

    def test_destination_out_of_range(self, rng):
        with pytest.raises(ValueError):
            all_to_all_rows([rng.standard_normal((2, 2))], [np.array([0, 5])])

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ValueError):
            all_to_all_rows([rng.standard_normal((2, 2))], [np.array([0]), np.array([0])])

    def test_destination_count_mismatch(self, rng):
        with pytest.raises(ValueError):
            all_to_all_rows([rng.standard_normal((3, 2))], [np.array([0, 0])])


class TestBroadcast:
    def test_broadcast_from_root(self, buffers):
        results = broadcast(buffers, root=2)
        for out in results:
            np.testing.assert_allclose(out, buffers[2])

    def test_invalid_root(self, buffers):
        with pytest.raises(IndexError):
            broadcast(buffers, root=9)
