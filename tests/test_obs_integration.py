"""End-to-end observability tests: profiled API runs, CLI flags, flight dumps.

The acceptance properties of the obs layer:

* ``api.plan(..., profile=True)`` produces a phase rollup whose tracked rows
  cover >=95% of the total, with the search counters present;
* a run without ``profile`` stays byte-identical whether or not the obs
  layer exists (the attachment is explicit, never ambient);
* the disabled instrumentation is effectively free (<2% on a workload with
  realistic span density);
* crashes leave flight-recorder JSONL artifacts (CLI crash, sweep
  quarantine);
* every profile JSON validates against the checked-in schema.
"""

import json
import math
import time

import pytest

import repro.api as api
from repro import obs
from repro.cli import main
from repro.obs import FakeClock, validate_profile
from repro.sweep.runner import SweepRunner, _Heartbeat
from repro.sweep.store import ResultStore

SMOKE_WORKLOAD = "llama3-training"


class TestProfiledPlan:
    @pytest.fixture(scope="class")
    def profiled(self):
        return api.plan(SMOKE_WORKLOAD, smoke=True, profile=True)

    def test_report_carries_a_profile(self, profiled):
        assert profiled.profile is not None
        assert profiled.profile.command == "repro plan"
        assert profiled.to_dict()["observability"] == profiled.profile.to_dict()

    def test_phases_sum_to_at_least_95_percent_of_total(self, profiled):
        snapshot = profiled.profile
        tracked = sum(
            phase["total_s"] for phase in snapshot.phases if phase["name"] != "(untracked)"
        )
        assert snapshot.total_s > 0
        assert tracked / snapshot.total_s >= 0.95

    def test_search_counters_present(self, profiled):
        counters = profiled.profile.metrics["counters"]
        for name in (
            "plan.batches_evaluated",
            "plan.batches_pruned",
            "plan.batches_skipped",
            "plan_store.hits",
            "plan_store.misses",
            "plan_store.tuner_invocations",
        ):
            assert name in counters, name
        assert counters["plan.batches_evaluated"] > 0

    def test_snapshot_validates_against_schema(self, profiled):
        validate_profile(profiled.profile.to_dict())

    def test_unprofiled_payload_is_byte_identical(self, profiled):
        plain = api.plan(SMOKE_WORKLOAD, smoke=True)
        assert plain.profile is None
        profiled_payload = dict(profiled.to_dict())
        profiled_payload.pop("observability")
        assert json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
            profiled_payload, sort_keys=True
        )

    def test_unprofiled_run_ignores_an_ambient_session(self):
        # Reports never read ambient state: a surrounding observe() (e.g. a
        # benchmark harness) must not leak into an un-profiled payload.
        with obs.observe():
            inside = api.plan(SMOKE_WORKLOAD, smoke=True)
        outside = api.plan(SMOKE_WORKLOAD, smoke=True)
        assert "observability" not in inside.to_dict()
        assert inside.to_json() == outside.to_json()


class TestNoOpOverhead:
    @staticmethod
    def _work(iterations: int, instrumented: bool, chunk: int = 1024) -> float:
        # Realistic span density: one span + one counter bump per chunk of
        # numeric work, as the subsystem instrumentation does per phase/job.
        total = 0.0
        if instrumented:
            for start in range(0, iterations, chunk):
                with obs.span("chunk"):
                    for i in range(start, start + chunk):
                        total += math.sqrt(i + 1.5)
                obs.counter("chunks").inc()
        else:
            for start in range(0, iterations, chunk):
                for i in range(start, start + chunk):
                    total += math.sqrt(i + 1.5)
        return total

    def test_disabled_instrumentation_under_2_percent(self):
        assert not obs.enabled()
        iterations = 200_000
        self._work(iterations, True)  # warm both paths
        self._work(iterations, False)
        bare = min(
            self._time(lambda: self._work(iterations, False)) for _ in range(5)
        )
        instrumented = min(
            self._time(lambda: self._work(iterations, True)) for _ in range(5)
        )
        # <2% relative overhead, with a tiny absolute floor against timer noise.
        assert instrumented <= bare * 1.02 + 5e-4, (instrumented, bare)

    @staticmethod
    def _time(fn) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start


class TestCliProfile:
    def test_plan_profile_json_validates(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = main(["plan", "--smoke", "--profile", "--profile-json", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "repro plan: phases" in printed
        assert "plan.batches_evaluated" in printed
        payload = json.loads(out.read_text(encoding="utf-8"))
        validate_profile(payload)
        assert payload["command"] == "repro plan"

    def test_profile_json_alone_skips_the_tables(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        code = main(["verify", "--profile-json", str(out)])
        assert code == 0
        assert "phases" not in capsys.readouterr().out.replace(str(out), "")
        validate_profile(json.loads(out.read_text(encoding="utf-8")))

    def test_json_report_carries_observability(self, tmp_path):
        report_path = tmp_path / "report.json"
        code = main(["pp", "--smoke", "--profile", "--json", str(report_path)])
        assert code == 0
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["observability"]["command"] == "repro pp"
        validate_profile(payload["observability"])

    def test_crash_dumps_the_flight_recorder(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)

        def boom(*args, **kwargs):
            raise RuntimeError("forced crash")

        monkeypatch.setattr(api, "plan", boom)
        with pytest.raises(RuntimeError, match="forced crash"):
            main(["plan", "--smoke", "--profile"])
        flight = tmp_path / "repro-plan-flight.jsonl"
        assert flight.exists()
        assert "flight recorder dumped" in capsys.readouterr().err

    def test_no_profile_no_flight_dump_on_crash(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)

        def boom(*args, **kwargs):
            raise RuntimeError("forced crash")

        monkeypatch.setattr(api, "plan", boom)
        with pytest.raises(RuntimeError):
            main(["plan", "--smoke"])
        assert not (tmp_path / "repro-plan-flight.jsonl").exists()


class TestSweepQuarantineFlight:
    def test_quarantine_dumps_flight_jsonl(self, tmp_path, monkeypatch):
        import repro.sweep.runner as runner_module
        from repro.sweep.matrix import ScenarioMatrix

        matrix = ScenarioMatrix.build(
            name="tiny",
            workload="tiny",
            shapes=[(512, 1024, 1024)],
            platforms=[("rtx4090", "rtx4090-pcie", 4)],
            collectives=["allreduce"],
        )

        def crash(payload, cache, baselines):
            raise OSError("worker crashed")

        monkeypatch.setattr(runner_module, "_execute_scenario", crash)
        store = ResultStore(tmp_path / "results.jsonl")
        with obs.observe():
            summary = SweepRunner(store, max_retries=0, retry_backoff_s=0.0).run(matrix)
        assert summary.quarantined == 1
        flight = tmp_path / "results.jsonl.flight.jsonl"
        assert flight.exists()
        entries = [json.loads(line) for line in flight.read_text().splitlines()]
        assert any(
            entry["kind"] == "event" and entry["name"] == "sweep.quarantine"
            for entry in entries
        )

    def test_no_session_no_flight_artifact(self, tmp_path, monkeypatch):
        import repro.sweep.runner as runner_module
        from repro.sweep.matrix import ScenarioMatrix

        matrix = ScenarioMatrix.build(
            name="tiny",
            workload="tiny",
            shapes=[(512, 1024, 1024)],
            platforms=[("rtx4090", "rtx4090-pcie", 4)],
            collectives=["allreduce"],
        )
        monkeypatch.setattr(
            runner_module, "_execute_scenario",
            lambda payload, cache, baselines: (_ for _ in ()).throw(OSError("crash")),
        )
        store = ResultStore(tmp_path / "results.jsonl")
        summary = SweepRunner(store, max_retries=0, retry_backoff_s=0.0).run(matrix)
        assert summary.quarantined == 1
        assert not (tmp_path / "results.jsonl.flight.jsonl").exists()


class TestHeartbeat:
    def test_lines_report_progress_and_final_time(self):
        lines: list[str] = []
        heartbeat = _Heartbeat(total=3, interval_s=60.0, emit=lines.append)
        try:
            heartbeat.job_done({"status": "ok"})
            heartbeat.job_done({"status": "ok", "attempts": 2})
            assert heartbeat.line().startswith("[sweep] 2/3 jobs, 1 retried, 0 quarantined")
            assert "ETA" in heartbeat.line()
            heartbeat.job_done({"status": "failed", "attempts": 3})
        finally:
            heartbeat.stop()
        assert lines  # stop() always emits a final line
        assert lines[-1].startswith("[sweep] 3/3 jobs, 2 retried, 1 quarantined")
        assert "done in" in lines[-1]

    def test_runner_emits_heartbeat_lines(self, tmp_path):
        from repro.sweep.matrix import ScenarioMatrix

        matrix = ScenarioMatrix.build(
            name="tiny",
            workload="tiny",
            shapes=[(512, 1024, 1024)],
            platforms=[("rtx4090", "rtx4090-pcie", 4)],
            collectives=["allreduce"],
        )
        lines: list[str] = []
        store = ResultStore(tmp_path / "results.jsonl")
        summary = SweepRunner(store, heartbeat_s=60.0, heartbeat_emit=lines.append).run(matrix)
        assert summary.executed == 1
        assert lines[-1].startswith("[sweep] 1/1 jobs")

    def test_heartbeat_uses_the_ambient_clock(self):
        lines: list[str] = []
        with obs.observe(clock=FakeClock(start=0.0, step=0.0)):
            heartbeat = _Heartbeat(total=1, interval_s=60.0, emit=lines.append)
            try:
                heartbeat.job_done({"status": "ok"})
            finally:
                heartbeat.stop()
        assert "done in 0.0s" in lines[-1]
