"""Tests for the ground-truth overlap executor (repro.core.executor)."""

import numpy as np
import pytest

from repro.core.executor import COMM_STREAM, COMPUTE_STREAM, OverlapExecutor
from repro.core.wave_grouping import WavePartition
from repro.gpu.kernels import KernelCategory


@pytest.fixture
def executor(paper_problem_4090, fast_settings):
    return OverlapExecutor(paper_problem_4090, fast_settings)


@pytest.fixture
def small_executor(small_problem, fast_settings):
    return OverlapExecutor(small_problem, fast_settings)


class TestBasics:
    def test_wave_count_uses_contended_sms(self, executor, paper_problem_4090):
        gemm = paper_problem_4090.gemm_model()
        assert executor.num_waves() == gemm.num_waves(paper_problem_4090.compute_sm_count())

    def test_wave_tiles_cover_all_tiles(self, small_executor):
        tiles = [t for wave in small_executor.wave_tiles() for t in wave]
        assert sorted(tiles) == list(range(small_executor.gemm_contended.num_tiles))

    def test_group_payload_bytes_sum_to_output(self, executor):
        partition = WavePartition.per_wave(executor.num_waves())
        payloads = executor.group_payload_bytes(executor.assignment(partition))
        assert payloads.sum() == pytest.approx(executor.problem.output_bytes())

    def test_wrong_wave_count_rejected(self, executor):
        with pytest.raises(ValueError):
            executor.simulate(WavePartition((1,)))


class TestSimulation:
    def test_result_structure(self, executor):
        partition = WavePartition.per_wave(executor.num_waves())
        result = executor.simulate(partition)
        assert result.latency > 0
        assert result.num_groups == partition.num_groups
        assert len(result.group_comm_end) == partition.num_groups
        assert result.trace.streams() == [COMPUTE_STREAM, COMM_STREAM]

    def test_comm_never_starts_before_its_group_is_ready(self, executor):
        waves = executor.num_waves()
        for partition in (
            WavePartition.per_wave(waves),
            WavePartition.equal_groups(waves, 2),
            WavePartition.equal_groups(waves, 5),
            WavePartition.single_group(waves),
        ):
            result = executor.simulate(partition)
            assert np.all(result.group_comm_start >= result.group_compute_ready)

    def test_comm_spans_serialized_in_group_order(self, executor):
        partition = WavePartition.equal_groups(executor.num_waves(), 2)
        result = executor.simulate(partition)
        assert np.all(np.diff(result.group_comm_end) > 0)
        result.trace.validate_stream_order()

    def test_latency_is_last_comm_end(self, executor):
        partition = WavePartition.equal_groups(executor.num_waves(), 3)
        result = executor.simulate(partition)
        assert result.latency == pytest.approx(result.group_comm_end[-1])
        assert result.latency == pytest.approx(result.trace.makespan())

    def test_overlap_exists_for_multi_group_partition(self, executor):
        partition = WavePartition.equal_groups(executor.num_waves(), 2)
        result = executor.simulate(partition)
        head, overlapped, tail = result.head_overlap_tail()
        assert overlapped > 0
        assert head > 0

    def test_deterministic_without_jitter(self, executor):
        partition = WavePartition.equal_groups(executor.num_waves(), 2)
        assert executor.simulate(partition).latency == executor.simulate(partition).latency

    def test_jitter_changes_latency_slightly(self, paper_problem_4090, fast_settings):
        from dataclasses import replace

        partition = None
        clean = OverlapExecutor(paper_problem_4090, fast_settings)
        noisy = OverlapExecutor(paper_problem_4090, replace(fast_settings, executor_jitter=0.05))
        partition = WavePartition.equal_groups(clean.num_waves(), 2)
        a = clean.simulate(partition).latency
        b = noisy.simulate(partition).latency
        assert a != b
        assert abs(b - a) / a < 0.1

    def test_small_problem_structure_still_valid(self, small_executor):
        partition = WavePartition.per_wave(small_executor.num_waves())
        result = small_executor.simulate(partition)
        assert np.all(result.group_comm_start >= result.group_compute_ready)
        result.trace.validate_stream_order()


class TestReferenceLatencies:
    def test_non_overlap_exceeds_best_overlap(self, executor):
        partition = WavePartition.equal_groups(executor.num_waves(), 2)
        assert executor.non_overlap_latency() > executor.simulate(partition).latency

    def test_theoretical_bound_is_below_non_overlap(self, executor):
        assert executor.theoretical_latency() < executor.non_overlap_latency()
        assert executor.theoretical_speedup() > 1.0

    def test_overlap_not_much_better_than_theory(self, executor):
        best = min(
            executor.simulate(WavePartition.equal_groups(executor.num_waves(), g)).latency
            for g in (1, 2, 3)
        )
        assert best >= executor.theoretical_latency() * 0.95

    def test_speedup_helper(self, executor):
        partition = WavePartition.equal_groups(executor.num_waves(), 2)
        assert executor.speedup(partition) == pytest.approx(
            executor.non_overlap_latency() / executor.simulate(partition).latency
        )

    def test_imbalance_slows_everything_down(self, paper_problem_4090, fast_settings):
        from dataclasses import replace

        skewed = replace(paper_problem_4090, imbalance=1.3)
        balanced_exec = OverlapExecutor(paper_problem_4090, fast_settings)
        skewed_exec = OverlapExecutor(skewed, fast_settings)
        partition = WavePartition.equal_groups(balanced_exec.num_waves(), 2)
        assert skewed_exec.simulate(partition).latency > balanced_exec.simulate(partition).latency
        assert skewed_exec.non_overlap_latency() > balanced_exec.non_overlap_latency()

    def test_sequential_fallback_close_to_non_overlap(self, executor):
        result = executor.simulate_sequential()
        assert result.metadata["sequential_fallback"] is True
        assert result.latency == pytest.approx(executor.non_overlap_latency(), rel=0.05)
        assert result.trace.by_category(KernelCategory.COMMUNICATION)
