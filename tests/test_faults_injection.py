"""Integration tests: fault injection through the serving simulator.

Three acceptance properties of the fault layer:

* **determinism** -- the same seed and the same :class:`FaultPlan` replay the
  chaos run byte-identically (:func:`verify_fault_replay`);
* **degeneracy** -- a fault-free plan plus a disengaged policy produces a
  result *bit-identical* to a plain (fault-unaware) run, for arbitrary
  seeded traffic (hypothesis);
* **monotonicity** -- injecting a crash never improves the run: makespan
  never shrinks and availability never exceeds one.
"""

import json

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.comm.topology import a800_nvlink
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    ResiliencePolicy,
    RetryPolicy,
    build_fault_preset,
    verify_fault_replay,
)
from repro.serve import (
    PlanCache,
    PoissonArrivals,
    ServeConfig,
    ServingSimulator,
    distribution_by_name,
)


@pytest.fixture(scope="module")
def config():
    return ServeConfig(layers=2, max_batch_tokens=4096, max_batch_size=16,
                       topology=a800_nvlink(4))


def make_requests(seed: int = 0, num_requests: int = 12, rate_rps: float = 64.0):
    return PoissonArrivals(
        rate_rps=rate_rps,
        distribution=distribution_by_name("summarize"),
        seed=seed,
        num_requests=num_requests,
    ).generate()


def run(config, requests, faults=None, resilience=None):
    return ServingSimulator(
        config, plan_cache=PlanCache(), mode="overlap",
        faults=faults, resilience=resilience,
    ).run(list(requests))


def horizon_of(requests) -> float:
    return max(r.arrival_time for r in requests) + 1.0


class TestReplayDeterminism:
    @pytest.mark.parametrize("preset", ["replica-crash", "straggler",
                                        "degraded-link", "chaos"])
    def test_presets_replay_byte_identically(self, config, preset):
        requests = make_requests()
        plan = build_fault_preset(preset, horizon=horizon_of(requests))
        result = verify_fault_replay(config, requests, plan)
        assert result["matches"], result["checks"]

    def test_drop_storm_with_retries_replays(self, config):
        requests = make_requests()
        plan = build_fault_preset("drop-storm", horizon=horizon_of(requests))
        policy = ResiliencePolicy(retry=RetryPolicy(max_retries=2, seed=0),
                                  deadline_s=30.0, admission_limit=64)
        result = verify_fault_replay(config, requests, plan, policy)
        assert result["matches"], result["checks"]
        assert set(result["checks"]) == {"payload_bytes_identical",
                                         "makespan_identical",
                                         "iterations_identical"}


class TestFaultFreeDegeneracy:
    def strip(self, payload: dict) -> dict:
        payload = dict(payload)
        payload.pop("faults", None)
        payload.pop("failures", None)
        return payload

    def test_empty_plan_degenerates_bit_identically(self, config):
        requests = make_requests()
        plain = run(config, requests).to_dict()
        faulted = run(config, requests, faults=FaultInjector(FaultPlan())).to_dict()
        assert json.dumps(self.strip(faulted), sort_keys=True) == \
            json.dumps(plain, sort_keys=True)

    @hyp_settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           num_requests=st.integers(min_value=1, max_value=10))
    def test_degeneracy_holds_for_arbitrary_traffic(self, config, seed, num_requests):
        requests = make_requests(seed=seed, num_requests=num_requests)
        plain = run(config, requests).to_dict()
        faulted = run(config, requests, faults=FaultInjector(FaultPlan())).to_dict()
        assert json.dumps(self.strip(faulted), sort_keys=True) == \
            json.dumps(plain, sort_keys=True)


class TestCrashMonotonicity:
    """A crash never improves a *compute-bound* run.

    The qualifier matters: under arrival-bound traffic, continuous batching
    can repack the backlog a downtime window creates into fewer, fuller
    iterations and shave microseconds off the tail, so raw makespan is not
    monotone there.  With every request queued up front the batches are
    already maximally packed and downtime is pure delay.
    """

    @hyp_settings(max_examples=8, deadline=None)
    @given(start_frac=st.floats(min_value=0.0, max_value=0.9),
           duration_frac=st.floats(min_value=0.05, max_value=1.0))
    def test_crash_never_improves_the_run(self, config, start_frac, duration_frac):
        requests = make_requests(rate_rps=2048.0)
        free = run(config, requests)
        plan = FaultPlan(events=(
            FaultEvent(kind="crash",
                       start=start_frac * free.makespan_s,
                       duration=max(1e-3, duration_frac * free.makespan_s)),
        ))
        faulted = run(config, requests, faults=FaultInjector(plan))
        assert faulted.makespan_s >= free.makespan_s
        assert faulted.fault_stats["availability"] <= 1.0
        # No resilience policy in play: every request still completes, so
        # goodput (completions / makespan) cannot improve under a crash.
        assert len(faulted.records) == len(free.records)
        free_goodput = len(free.records) / free.makespan_s
        faulted_goodput = len(faulted.records) / faulted.makespan_s
        assert faulted_goodput <= free_goodput


class TestResilienceMechanics:
    def test_drops_with_retries_recover_requests(self, config):
        requests = make_requests()
        plan = build_fault_preset("drop-storm", horizon=horizon_of(requests))
        policy = ResiliencePolicy(retry=RetryPolicy(max_retries=3, seed=0))
        result = run(config, requests, faults=FaultInjector(plan, policy),
                     resilience=policy)
        stats = result.fault_stats
        assert stats["retries"] > 0
        assert stats["attempts"] == stats["retries"] + len(requests)
        assert stats["retry_amplification"] > 1.0
        assert len(result.records) + len(result.failures) == len(requests)

    def test_drops_without_retries_fail_requests(self, config):
        requests = make_requests()
        plan = build_fault_preset("drop-storm", horizon=horizon_of(requests))
        policy = ResiliencePolicy(retry=RetryPolicy(max_retries=0))
        result = run(config, requests, faults=FaultInjector(plan, policy),
                     resilience=policy)
        assert result.fault_stats["dropped"] > 0
        assert all(f.outcome == "dropped" for f in result.failures)

    def test_tight_deadline_times_requests_out(self, config):
        requests = make_requests()
        policy = ResiliencePolicy(deadline_s=1e-3)
        result = run(config, requests, resilience=policy)
        assert result.fault_stats["timed_out"] == len(requests)
        assert not result.records
        ids = sorted(f.request_id for f in result.failures)
        assert ids == sorted(r.request_id for r in requests)

    def test_admission_limit_sheds_load(self, config):
        requests = make_requests()
        policy = ResiliencePolicy(admission_limit=1)
        result = run(config, requests, resilience=policy)
        assert result.fault_stats["shed"] > 0
        assert all(f.outcome == "shed" for f in result.failures)

    def test_warm_spares_shrink_recovery(self, config):
        requests = make_requests()
        horizon = horizon_of(requests)
        plan = build_fault_preset("double-crash", horizon=horizon)
        cold = run(config, requests, faults=FaultInjector(plan))
        policy = ResiliencePolicy(warm_spares=1, failover_delay_s=0.01)
        warm = run(config, requests, faults=FaultInjector(plan, policy),
                   resilience=policy)
        assert warm.fault_stats["failovers"] == 1
        assert cold.fault_stats["failovers"] == 0
        assert warm.fault_stats["recovery_s"]["mean"] < \
            cold.fault_stats["recovery_s"]["mean"]
        assert warm.makespan_s <= cold.makespan_s

    def test_crash_wastes_inflight_work(self, config):
        # Compute-bound traffic keeps the engine busy, so a mid-run crash
        # is guaranteed to abort an inflight iteration.
        requests = make_requests(rate_rps=2048.0)
        free = run(config, requests)
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", start=0.5 * free.makespan_s,
                       duration=0.25 * free.makespan_s),
        ))
        result = run(config, requests, faults=FaultInjector(plan))
        stats = result.fault_stats
        assert stats["crashes"] == 1
        assert stats["wasted_iterations"] >= 1
        assert stats["wasted_tokens"] > 0
        assert 0.0 < stats["availability"] < 1.0


class TestServeFacade:
    def test_fault_preset_report_carries_degraded_axis(self):
        import repro.api as api

        report = api.serve(smoke=True, fault_preset="replica-crash")
        summary = report.fault_summary()
        assert summary is not None
        for key in ("availability", "crashes", "retry_amplification",
                    "goodput_under_failure_rps", "fault_free_goodput_rps",
                    "goodput_ratio_vs_fault_free"):
            assert key in summary
        assert 0.0 < summary["availability"] < 1.0
        assert summary["goodput_ratio_vs_fault_free"] <= 1.0
        payload = report.to_dict()
        assert "faults" in payload and "fault-free" in payload
        text = report.summary_table()
        assert "faults" in text and "degraded" in text

    def test_fault_and_preset_are_mutually_exclusive(self, tmp_path):
        import repro.api as api

        path = FaultPlan().save(tmp_path / "plan.json")
        with pytest.raises(ValueError, match="not both"):
            api.serve(smoke=True, faults=str(path), fault_preset="chaos")
