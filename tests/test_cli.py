"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestReportCommand:
    def test_report_prints_speedup(self, capsys):
        code = main([
            "report", "--m", "2048", "--n", "8192", "--k", "8192",
            "--device", "rtx4090", "--topology", "rtx4090-pcie",
            "--gpus", "4", "--collective", "allreduce",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup" in out and "tuned partition" in out
        assert "RTX 4090" in out

    def test_report_a800_reducescatter(self, capsys):
        code = main([
            "report", "--m", "16384", "--n", "8192", "--k", "2048",
            "--device", "a800", "--topology", "a800-nvlink",
            "--gpus", "8", "--collective", "reducescatter",
        ])
        assert code == 0
        assert "FlashOverlap" in capsys.readouterr().out


class TestTuneCommand:
    def test_tune_prints_partition(self, capsys):
        code = main([
            "tune", "--m", "4096", "--n", "8192", "--k", "7168",
            "--device", "rtx4090", "--topology", "rtx4090-pcie",
            "--gpus", "4", "--collective", "allreduce",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "partition" in out and "candidates" in out

    def test_tune_with_cache_round_trip(self, capsys, tmp_path):
        cache_file = tmp_path / "cache.json"
        args = [
            "tune", "--m", "4096", "--n", "8192", "--k", "7168",
            "--device", "rtx4090", "--topology", "rtx4090-pcie",
            "--gpus", "4", "--collective", "allreduce",
            "--cache", str(cache_file),
        ]
        assert main(args) == 0
        assert cache_file.exists()
        first = capsys.readouterr().out
        # Second invocation reuses the cached entry (same partition printed).
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "1 entries" in second or "1 entr" in second
        partition_line = [l for l in first.splitlines() if l.startswith("partition")][0]
        assert partition_line in second


class TestCompareCommand:
    def test_compare_lists_baselines(self, capsys):
        code = main([
            "compare", "--m", "16384", "--n", "8192", "--k", "4096",
            "--device", "a800", "--topology", "a800-nvlink",
            "--gpus", "4", "--collective", "reducescatter",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "flashoverlap" in out
        assert "vanilla-decomposition" in out
        assert "best method" in out


class TestVerifyCommand:
    @pytest.mark.parametrize("collective", ["allreduce", "reducescatter", "alltoall"])
    def test_verify_all_primitives(self, capsys, collective):
        code = main(["verify", "--collective", collective, "--gpus", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all close" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "--device", "tpu-v9"])
