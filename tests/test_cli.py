"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestReportCommand:
    def test_report_prints_speedup(self, capsys):
        code = main([
            "report", "--m", "2048", "--n", "8192", "--k", "8192",
            "--device", "rtx4090", "--topology", "rtx4090-pcie",
            "--gpus", "4", "--collective", "allreduce",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup" in out and "tuned partition" in out
        assert "RTX 4090" in out

    def test_report_a800_reducescatter(self, capsys):
        code = main([
            "report", "--m", "16384", "--n", "8192", "--k", "2048",
            "--device", "a800", "--topology", "a800-nvlink",
            "--gpus", "8", "--collective", "reducescatter",
        ])
        assert code == 0
        assert "FlashOverlap" in capsys.readouterr().out


class TestTuneCommand:
    def test_tune_prints_partition(self, capsys):
        code = main([
            "tune", "--m", "4096", "--n", "8192", "--k", "7168",
            "--device", "rtx4090", "--topology", "rtx4090-pcie",
            "--gpus", "4", "--collective", "allreduce",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "partition" in out and "candidates" in out

    def test_tune_with_cache_round_trip(self, capsys, tmp_path):
        cache_file = tmp_path / "cache.json"
        args = [
            "tune", "--m", "4096", "--n", "8192", "--k", "7168",
            "--device", "rtx4090", "--topology", "rtx4090-pcie",
            "--gpus", "4", "--collective", "allreduce",
            "--cache", str(cache_file),
        ]
        assert main(args) == 0
        assert cache_file.exists()
        first = capsys.readouterr().out
        # Second invocation reuses the cached entry (same partition printed).
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "1 entries" in second or "1 entr" in second
        partition_line = [l for l in first.splitlines() if l.startswith("partition")][0]
        assert partition_line in second


class TestCompareCommand:
    def test_compare_lists_baselines(self, capsys):
        code = main([
            "compare", "--m", "16384", "--n", "8192", "--k", "4096",
            "--device", "a800", "--topology", "a800-nvlink",
            "--gpus", "4", "--collective", "reducescatter",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "flashoverlap" in out
        assert "vanilla-decomposition" in out
        assert "best method" in out


class TestVerifyCommand:
    @pytest.mark.parametrize("collective", ["allreduce", "reducescatter", "alltoall"])
    def test_verify_all_primitives(self, capsys, collective):
        code = main(["verify", "--collective", collective, "--gpus", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all close" in out
        assert "tiny-pcie" in out  # the default topology preset

    def test_verify_honors_topology(self, capsys):
        code = main(["verify", "--collective", "allreduce", "--gpus", "4",
                     "--topology", "a800-nvlink"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all close" in out and "a800-nvlink" in out

    def test_verify_multinode(self, capsys):
        code = main(["verify", "--collective", "allreduce",
                     "--nodes", "2", "--gpus-per-node", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all close" in out and "4 simulated GPUs" in out and "2node" in out


class TestMultinodeKnobs:
    def test_report_routes_through_multinode_a800(self, capsys):
        code = main([
            "report", "--m", "1024", "--n", "4096", "--k", "4096",
            "--device", "a800", "--nodes", "2", "--gpus-per-node", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "8x A800" in out and "a800-2node-ib" in out

    def test_tune_accepts_nodes(self, capsys):
        code = main([
            "tune", "--m", "1024", "--n", "4096", "--k", "4096",
            "--device", "a800", "--nodes", "2", "--gpus-per-node", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "a800-2node-ib" in out


class TestSweepCommand:
    def test_list_presets(self, capsys):
        assert main(["sweep", "--list-presets"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "llm-inference" in out

    def test_sweep_smoke_preset_happy_path(self, capsys, tmp_path):
        out_path = tmp_path / "results.jsonl"
        cache_path = tmp_path / "shapes.json"
        code = main([
            "sweep", "--preset", "smoke", "--workers", "1",
            "--out", str(out_path), "--cache", str(cache_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out_path.exists()
        assert cache_path.exists()
        assert "per-scenario results" in out
        assert "per-group summary" in out
        assert "12/12 jobs executed" in out

    def test_sweep_resume_executes_nothing(self, capsys, tmp_path):
        out_path = tmp_path / "results.jsonl"
        args = ["sweep", "--preset", "smoke", "--workers", "2", "--out", str(out_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main([*args, "--resume"]) == 0
        assert "0/12 jobs executed (12 resumed" in capsys.readouterr().out

    def test_sweep_from_config_file(self, capsys, tmp_path):
        import json

        config = {
            "name": "from-config",
            "workload": "from-config",
            "shapes": [[512, 1024, 1024]],
            "platforms": [["rtx4090", "rtx4090-pcie", 4]],
            "collectives": ["allreduce"],
        }
        config_path = tmp_path / "matrix.json"
        config_path.write_text(json.dumps(config), encoding="utf-8")
        code = main([
            "sweep", "--config", str(config_path), "--out", str(tmp_path / "r.jsonl"),
        ])
        assert code == 0
        assert "from-config: 1/1 jobs executed" in capsys.readouterr().out

    def test_sweep_requires_a_source(self):
        with pytest.raises(SystemExit):
            main(["sweep"])


class TestServeCommand:
    def test_serve_smoke_reports_and_beats_baseline(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "serve.json"
        code = main(["serve", "--smoke", "--json", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        for marker in ("TTFT", "TPOT", "throughput", "goodput", "plan cache", "baseline"):
            assert marker in out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        overlap, baseline = report["overlap"], report["non-overlap"]
        cache = overlap["plan_cache"]
        assert cache["tuner_invocations"] < overlap["iterations"]
        assert cache["hits"] > cache["misses"]
        assert (overlap["metrics"]["e2e_latency"]["mean"]
                < baseline["metrics"]["e2e_latency"]["mean"])

    def test_serve_smoke_is_deterministic(self, capsys, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["serve", "--smoke", "--json", str(first)]) == 0
        assert main(["serve", "--smoke", "--json", str(second)]) == 0
        capsys.readouterr()
        assert first.read_text(encoding="utf-8") == second.read_text(encoding="utf-8")

    def test_serve_trace_input(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        records = [
            {"arrival_time": 0.0, "prompt_tokens": 64, "output_tokens": 4},
            {"arrival_time": 0.01, "prompt_tokens": 128, "output_tokens": 8},
        ]
        trace.write_text("\n".join(json.dumps(r) for r in records) + "\n", encoding="utf-8")
        code = main(["serve", "--trace", str(trace), "--workload", "llama2-7b",
                     "--layers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 requests" in out

    def test_serve_duration_is_not_capped_by_default_requests(self, capsys):
        # 200 req/s over 0.5s produces ~100 requests: well past the 64-request
        # default, which must not apply when --duration bounds the traffic.
        code = main(["serve", "--duration", "0.5", "--rate", "200",
                     "--workload", "llama2-7b", "--layers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        n_requests = int(out.split("traffic    : ")[1].split(" requests")[0])
        assert n_requests > 64

    def test_serve_smoke_respects_explicit_flags(self, capsys):
        code = main(["serve", "--smoke", "--workload", "llama3-70b", "--requests", "4",
                     "--layers", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Llama3-70B (1 layers" in out  # explicit flags win over the preset
        assert "4 requests" in out
        assert "summarize" in out  # unset flags still take the smoke defaults

    def test_serve_warm_cache_round_trip(self, capsys, tmp_path):
        warm = tmp_path / "warm.json"
        args = ["serve", "--smoke", "--warm-cache", str(warm)]
        assert main(args) == 0
        assert warm.exists()
        first = capsys.readouterr().out
        assert ", 0 tuner invocations)" not in first
        # The second run warm-starts every bucket from the persisted shape
        # cache, so the tuner is never invoked.
        assert main(args) == 0
        assert ", 0 tuner invocations)" in capsys.readouterr().out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "--device", "tpu-v9"])
