"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main


class TestReportCommand:
    def test_report_prints_speedup(self, capsys):
        code = main([
            "report", "--m", "2048", "--n", "8192", "--k", "8192",
            "--device", "rtx4090", "--topology", "rtx4090-pcie",
            "--gpus", "4", "--collective", "allreduce",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "speedup" in out and "tuned partition" in out
        assert "RTX 4090" in out

    def test_report_a800_reducescatter(self, capsys):
        code = main([
            "report", "--m", "16384", "--n", "8192", "--k", "2048",
            "--device", "a800", "--topology", "a800-nvlink",
            "--gpus", "8", "--collective", "reducescatter",
        ])
        assert code == 0
        assert "FlashOverlap" in capsys.readouterr().out


class TestTuneCommand:
    def test_tune_prints_partition(self, capsys):
        code = main([
            "tune", "--m", "4096", "--n", "8192", "--k", "7168",
            "--device", "rtx4090", "--topology", "rtx4090-pcie",
            "--gpus", "4", "--collective", "allreduce",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "partition" in out and "candidates" in out

    def test_tune_with_cache_round_trip(self, capsys, tmp_path):
        cache_file = tmp_path / "cache.json"
        args = [
            "tune", "--m", "4096", "--n", "8192", "--k", "7168",
            "--device", "rtx4090", "--topology", "rtx4090-pcie",
            "--gpus", "4", "--collective", "allreduce",
            "--cache", str(cache_file),
        ]
        assert main(args) == 0
        assert cache_file.exists()
        first = capsys.readouterr().out
        # Second invocation reuses the cached entry (same partition printed).
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "1 entries" in second or "1 entr" in second
        partition_line = [l for l in first.splitlines() if l.startswith("partition")][0]
        assert partition_line in second


class TestCompareCommand:
    def test_compare_lists_baselines(self, capsys):
        code = main([
            "compare", "--m", "16384", "--n", "8192", "--k", "4096",
            "--device", "a800", "--topology", "a800-nvlink",
            "--gpus", "4", "--collective", "reducescatter",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "flashoverlap" in out
        assert "vanilla-decomposition" in out
        assert "best method" in out


class TestVerifyCommand:
    @pytest.mark.parametrize("collective", ["allreduce", "reducescatter", "alltoall"])
    def test_verify_all_primitives(self, capsys, collective):
        code = main(["verify", "--collective", collective, "--gpus", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all close" in out


class TestSweepCommand:
    def test_list_presets(self, capsys):
        assert main(["sweep", "--list-presets"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "llm-inference" in out

    def test_sweep_smoke_preset_happy_path(self, capsys, tmp_path):
        out_path = tmp_path / "results.jsonl"
        cache_path = tmp_path / "shapes.json"
        code = main([
            "sweep", "--preset", "smoke", "--workers", "1",
            "--out", str(out_path), "--cache", str(cache_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert out_path.exists()
        assert cache_path.exists()
        assert "per-scenario results" in out
        assert "per-group summary" in out
        assert "12/12 jobs executed" in out

    def test_sweep_resume_executes_nothing(self, capsys, tmp_path):
        out_path = tmp_path / "results.jsonl"
        args = ["sweep", "--preset", "smoke", "--workers", "2", "--out", str(out_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main([*args, "--resume"]) == 0
        assert "0/12 jobs executed (12 resumed" in capsys.readouterr().out

    def test_sweep_from_config_file(self, capsys, tmp_path):
        import json

        config = {
            "name": "from-config",
            "workload": "from-config",
            "shapes": [[512, 1024, 1024]],
            "platforms": [["rtx4090", "rtx4090-pcie", 4]],
            "collectives": ["allreduce"],
        }
        config_path = tmp_path / "matrix.json"
        config_path.write_text(json.dumps(config), encoding="utf-8")
        code = main([
            "sweep", "--config", str(config_path), "--out", str(tmp_path / "r.jsonl"),
        ])
        assert code == 0
        assert "from-config: 1/1 jobs executed" in capsys.readouterr().out

    def test_sweep_requires_a_source(self):
        with pytest.raises(SystemExit):
            main(["sweep"])


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "--device", "tpu-v9"])
