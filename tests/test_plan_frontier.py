"""Property-based invariants of the planner's Pareto frontier.

For random clouds of (step latency, peak activation memory) points the
frontier must satisfy the defining invariants of Pareto optimality:

* no frontier point dominates another frontier point;
* every dropped point is dominated by (or coordinate-ties with) a kept one;
* the frontier is a subset of the input and free of coordinate duplicates;
* the extreme points (fastest; smallest) always survive;
* the result is deterministic and order-independent.

Plus the unit semantics of the activation-memory model the points carry.
"""

from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.plan import PlanPoint, dominates, pareto_frontier
from repro.plan.memory import peak_activation_bytes, stage_activation_bytes

LATENCY = st.floats(min_value=1e-4, max_value=1.0, allow_nan=False, allow_infinity=False)
MEMORY = st.integers(min_value=1, max_value=1 << 30)


def _point(index: int, latency: float, memory: float) -> PlanPoint:
    return PlanPoint(
        workload="llama3-training",
        tp=2,
        stages=2,
        microbatches=1 + index,
        partition=(1, 1),
        schedule="1f1b",
        method="overlap",
        partitioner="balanced",
        step_latency=latency,
        peak_activation_bytes=float(memory),
        bubble_ratio=0.1,
        speedup=1.0,
    )


POINTS = st.lists(st.tuples(LATENCY, MEMORY), min_size=1, max_size=40).map(
    lambda pairs: [_point(i, lat, mem) for i, (lat, mem) in enumerate(pairs)]
)


@given(POINTS)
@hsettings(max_examples=300, deadline=None)
def test_no_frontier_point_dominates_another(points):
    frontier = pareto_frontier(points)
    assert frontier, "a non-empty cloud always has a frontier"
    for a in frontier:
        for b in frontier:
            assert not dominates(a, b)


@given(POINTS)
@hsettings(max_examples=300, deadline=None)
def test_dropped_points_are_covered(points):
    frontier = pareto_frontier(points)
    kept = {point.config_key for point in frontier}
    for point in points:
        if point.config_key in kept:
            continue
        assert any(
            dominates(keeper, point)
            or (keeper.step_latency == point.step_latency
                and keeper.peak_activation_bytes == point.peak_activation_bytes)
            for keeper in frontier
        )


@given(POINTS)
@hsettings(max_examples=200, deadline=None)
def test_frontier_is_subset_without_duplicate_coordinates(points):
    frontier = pareto_frontier(points)
    keys = {point.config_key for point in points}
    coordinates = [(p.step_latency, p.peak_activation_bytes) for p in frontier]
    assert all(point.config_key in keys for point in frontier)
    assert len(set(coordinates)) == len(coordinates)


@given(POINTS)
@hsettings(max_examples=200, deadline=None)
def test_extremes_survive(points):
    frontier = pareto_frontier(points)
    assert min(p.step_latency for p in frontier) == min(p.step_latency for p in points)
    assert (min(p.peak_activation_bytes for p in frontier)
            == min(p.peak_activation_bytes for p in points))


@given(POINTS)
@hsettings(max_examples=100, deadline=None)
def test_frontier_is_order_independent(points):
    forward = pareto_frontier(points)
    reversed_ = pareto_frontier(list(reversed(points)))
    assert {p.config_key for p in forward} == {p.config_key for p in reversed_}


def test_dominates_is_strict():
    a = _point(0, 0.1, 100)
    b = _point(1, 0.2, 200)
    tie = _point(2, 0.1, 100)
    assert dominates(a, b) and not dominates(b, a)
    assert not dominates(a, tie) and not dominates(tie, a)
    assert not dominates(a, a)


class TestActivationMemory:
    def test_recompute_keeps_boundary_only(self):
        # GPipe recomputation stores one boundary activation per in-flight
        # microbatch, independent of the stage depth.
        per_stage = stage_activation_bytes((3, 1), 100.0, (4, 2), recompute=True)
        assert per_stage == (400.0, 200.0)

    def test_no_recompute_scales_with_stage_depth(self):
        per_stage = stage_activation_bytes((3, 1), 100.0, (4, 2), recompute=False)
        assert per_stage == (1200.0, 200.0)

    def test_peak_is_max_over_stages(self):
        assert peak_activation_bytes((3, 1), 100.0, (4, 2), recompute=False) == 1200.0
