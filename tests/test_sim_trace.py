"""Tests for timeline traces (repro.sim.trace)."""

import pytest

from repro.gpu.kernels import KernelCategory
from repro.sim.trace import Span, Trace


@pytest.fixture
def trace():
    t = Trace()
    t.record("compute", "gemm", 0.0, 10.0, KernelCategory.GEMM)
    t.record("comm", "ar-g1", 4.0, 8.0, KernelCategory.COMMUNICATION)
    t.record("comm", "ar-g2", 10.0, 14.0, KernelCategory.COMMUNICATION)
    return t


class TestSpan:
    def test_duration(self):
        assert Span("s", "x", 1.0, 3.0).duration == 2.0

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            Span("s", "x", 3.0, 1.0)

    def test_overlap(self):
        a = Span("s", "a", 0.0, 5.0)
        b = Span("t", "b", 3.0, 8.0)
        c = Span("t", "c", 6.0, 7.0)
        assert a.overlaps(b) == 2.0
        assert a.overlaps(c) == 0.0


class TestTraceQueries:
    def test_streams_and_spans_on(self, trace):
        assert trace.streams() == ["compute", "comm"]
        assert len(trace.spans_on("comm")) == 2

    def test_makespan(self, trace):
        assert trace.makespan() == 14.0
        assert Trace().makespan() == 0.0

    def test_busy_time(self, trace):
        assert trace.busy_time("compute") == 10.0
        assert trace.busy_time("comm") == 8.0

    def test_overlapped_time(self, trace):
        assert trace.overlapped_time("compute", "comm") == 4.0

    def test_category_time(self, trace):
        assert trace.category_time(KernelCategory.COMMUNICATION) == 8.0
        assert trace.category_time(KernelCategory.SIGNAL) == 0.0

    def test_head_tail_overlap(self, trace):
        head, overlapped, tail = trace.head_tail_overlap("compute", "comm")
        assert head == 4.0
        assert overlapped == 4.0
        assert tail == 4.0

    def test_head_tail_overlap_without_comm(self):
        t = Trace()
        t.record("compute", "gemm", 0.0, 5.0)
        head, overlapped, tail = t.head_tail_overlap("compute", "comm")
        assert (head, overlapped, tail) == (5.0, 0.0, 0.0)


class TestValidationAndRendering:
    def test_validate_stream_order_ok(self, trace):
        trace.validate_stream_order()

    def test_validate_stream_order_detects_overlap(self):
        t = Trace()
        t.record("comm", "a", 0.0, 5.0)
        t.record("comm", "b", 4.0, 6.0)
        with pytest.raises(ValueError):
            t.validate_stream_order()

    def test_render_ascii_contains_streams(self, trace):
        art = trace.render_ascii(width=60)
        assert "compute" in art and "comm" in art
        assert "ms" in art

    def test_render_empty(self):
        assert Trace().render_ascii() == "(empty trace)"
