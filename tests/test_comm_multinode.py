"""Tests for the multi-node (inter-node InfiniBand) topology."""

import pytest

from repro.comm.primitives import CollectiveKind, CollectiveModel
from repro.comm.topology import InterconnectKind, a800_nvlink, known_topologies, multinode_a800
from repro.core.config import OverlapProblem, OverlapSettings
from repro.core.overlap import FlashOverlapOperator
from repro.gpu.device import A800
from repro.gpu.gemm import GemmShape


class TestMultinodeTopology:
    def test_basic_properties(self):
        topo = multinode_a800(n_nodes=2, gpus_per_node=8)
        assert topo.n_gpus == 16
        assert topo.kind is InterconnectKind.INFINIBAND
        assert not topo.intra_node
        assert not topo.supports_p2p

    def test_slower_than_intra_node_nvlink(self):
        inter = multinode_a800(2, 8)
        intra = a800_nvlink(8)
        assert inter.peak_bus_bandwidth_gbps < intra.peak_bus_bandwidth_gbps / 2
        assert inter.base_latency_us > intra.base_latency_us

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            multinode_a800(n_nodes=1)
        with pytest.raises(ValueError):
            multinode_a800(n_nodes=2, gpus_per_node=0)

    def test_registered_in_known_topologies(self):
        assert "a800-2node-ib" in known_topologies()

    def test_collective_latency_scales_with_size(self):
        model = CollectiveModel(CollectiveKind.ALL_REDUCE, multinode_a800(2, 8))
        assert model.latency(256 << 20) > model.latency(16 << 20) > 0

    def test_overlap_still_pays_off_across_nodes(self):
        # Inter-node communication is slow, so hiding it behind the GEMM is
        # even more valuable than inside a node.
        settings = OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)
        problem = OverlapProblem(
            shape=GemmShape(8192, 8192, 8192),
            device=A800,
            topology=multinode_a800(2, 8),
            collective=CollectiveKind.REDUCE_SCATTER,
        )
        report = FlashOverlapOperator(problem, settings).report()
        assert report.speedup > 1.05

    def test_p2p_baselines_unsupported_across_nodes(self):
        from repro.core.baselines import AsyncTPBaseline, FluxFusionBaseline

        problem = OverlapProblem(
            shape=GemmShape(8192, 8192, 8192),
            device=A800,
            topology=multinode_a800(2, 8),
            collective=CollectiveKind.REDUCE_SCATTER,
        )
        assert not AsyncTPBaseline().supports(problem)
        assert not FluxFusionBaseline().supports(problem)
