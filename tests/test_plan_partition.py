"""Property-based invariants of the cost-weighted stage partitioner.

:func:`partition_layers_weighted` is the planner's generalisation of the
balanced contiguous split: it minimises the bottleneck stage cost (the
quantity pipeline step latency is linear in), then minimises the sum of
squared stage costs among bottleneck-optimal splits so the remainder lands
deterministically.  The suite checks:

* shape: ``stages`` contiguous non-empty spans covering every layer;
* optimality: the bottleneck equals the brute-force minimum over all splits
  (small instances, exhaustive);
* reduction: uniform weights reproduce :func:`partition_layers` exactly --
  the planner's "weighted" candidate collapses onto the balanced one;
* determinism and validation errors.
"""

from itertools import combinations

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.workloads.pipeline import partition_layers, partition_layers_weighted

WEIGHTS = st.floats(min_value=1e-3, max_value=10.0, allow_nan=False, allow_infinity=False)


def _brute_force_bottleneck(weights: list[float], stages: int) -> float:
    """Minimal bottleneck over every contiguous split (exponential; small n)."""
    layers = len(weights)
    best = float("inf")
    for breaks in combinations(range(1, layers), stages - 1):
        bounds = (0, *breaks, layers)
        spans = [sum(weights[a:b]) for a, b in zip(bounds, bounds[1:])]
        best = min(best, max(spans))
    return best


def _spans(weights: list[float], partition: tuple[int, ...]) -> list[float]:
    spans, start = [], 0
    for count in partition:
        spans.append(sum(weights[start:start + count]))
        start += count
    return spans


@given(st.lists(WEIGHTS, min_size=1, max_size=12), st.integers(min_value=1, max_value=6))
@hsettings(max_examples=200, deadline=None)
def test_partition_shape(weights, stages):
    if stages > len(weights):
        with pytest.raises(ValueError):
            partition_layers_weighted(weights, stages)
        return
    partition = partition_layers_weighted(weights, stages)
    assert len(partition) == stages
    assert sum(partition) == len(weights)
    assert all(count >= 1 for count in partition)


@given(st.lists(WEIGHTS, min_size=2, max_size=9), st.integers(min_value=2, max_value=4))
@hsettings(max_examples=150, deadline=None)
def test_partition_bottleneck_is_optimal(weights, stages):
    if stages > len(weights):
        return
    partition = partition_layers_weighted(weights, stages)
    bottleneck = max(_spans(weights, partition))
    assert bottleneck == pytest.approx(_brute_force_bottleneck(weights, stages), rel=1e-9)


@given(st.integers(min_value=1, max_value=24), st.integers(min_value=1, max_value=8))
@hsettings(max_examples=200, deadline=None)
def test_uniform_weights_reduce_to_balanced_split(layers, stages):
    if stages > layers:
        return
    assert partition_layers_weighted([1.0] * layers, stages) == partition_layers(layers, stages)


def test_heavy_ends_get_own_stages():
    # Two expensive boundary layers dominate; the cheap middle shares a stage.
    assert partition_layers_weighted([5, 1, 1, 1, 1, 5], 3) == (1, 4, 1)


def test_single_stage_takes_everything():
    assert partition_layers_weighted([3.0, 1.0, 2.0], 1) == (3,)


def test_deterministic():
    weights = [0.4, 1.7, 0.1, 0.9, 2.2, 0.3, 1.1]
    first = partition_layers_weighted(weights, 3)
    assert all(partition_layers_weighted(weights, 3) == first for _ in range(5))


def test_validation_errors():
    with pytest.raises(ValueError):
        partition_layers_weighted([1.0, 2.0], 0)
    with pytest.raises(ValueError):
        partition_layers_weighted([1.0], 2)
    with pytest.raises(ValueError):
        partition_layers_weighted([1.0, -0.5], 2)
