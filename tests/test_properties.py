"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.comm.collectives import all_reduce, reduce_scatter_flat
from repro.comm.primitives import CollectiveKind
from repro.comm.ring import ring_all_reduce
from repro.core.reordering import build_reorder_plan, run_allreduce_pipeline
from repro.core.signaling import GroupAssignment
from repro.core.wave_grouping import WavePartition, enumerate_partitions
from repro.gpu.swizzle import execution_order, wave_partition
from repro.tensor.layout import TileLayout
from repro.tensor.mapping import MappingTable
from repro.tensor.tiles import gather_tiles, scatter_tiles

# Small bounded strategies keep every example fast.
_dims = st.integers(min_value=1, max_value=6)
_tile_dims = st.integers(min_value=1, max_value=5)


@st.composite
def layouts(draw):
    tile_m = draw(_tile_dims)
    tile_n = draw(_tile_dims)
    grid_m = draw(_dims)
    grid_n = draw(_dims)
    ragged_m = draw(st.integers(min_value=0, max_value=max(0, tile_m - 1)))
    ragged_n = draw(st.integers(min_value=0, max_value=max(0, tile_n - 1)))
    m = grid_m * tile_m - ragged_m if grid_m * tile_m - ragged_m > 0 else grid_m * tile_m
    n = grid_n * tile_n - ragged_n if grid_n * tile_n - ragged_n > 0 else grid_n * tile_n
    return TileLayout(m=m, n=n, tile_m=tile_m, tile_n=tile_n)


class TestLayoutProperties:
    @given(layouts())
    def test_tile_elements_sum_to_matrix_size(self, layout):
        total = sum(layout.tile_elements(t) for t in range(layout.num_tiles))
        assert total == layout.m * layout.n

    @given(layouts())
    def test_coords_round_trip(self, layout):
        for t in range(layout.num_tiles):
            r, c = layout.tile_coords(t)
            assert layout.tile_index(r, c) == t

    @given(layouts(), st.integers(min_value=1, max_value=8))
    def test_execution_order_is_permutation(self, layout, swizzle):
        order = execution_order(layout, swizzle)
        assert sorted(order) == list(range(layout.num_tiles))


class TestGatherScatterProperties:
    @given(layouts(), st.randoms(use_true_random=False))
    @hyp_settings(max_examples=40)
    def test_gather_then_scatter_is_identity(self, layout, pyrandom):
        rng = np.random.default_rng(pyrandom.randint(0, 2**31))
        matrix = rng.standard_normal((layout.m, layout.n))
        order = list(range(layout.num_tiles))
        pyrandom.shuffle(order)
        out = np.zeros_like(matrix)
        scatter_tiles(out, layout, order, gather_tiles(matrix, layout, order))
        np.testing.assert_array_equal(out, matrix)


class TestMappingProperties:
    @given(st.permutations(list(range(12))))
    def test_mapping_from_order_is_bijective(self, order):
        table = MappingTable.from_order(order)
        assert table.is_permutation()
        perm = table.as_permutation()
        assert sorted(perm.tolist()) == list(range(12))
        for position, original in enumerate(order):
            assert table.position_of(original) == position


class TestWavePartitionProperties:
    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=6))
    def test_partition_round_trips_through_decisions(self, sizes):
        partition = WavePartition.from_sizes(sizes)
        assert WavePartition.from_decisions(partition.decisions()) == partition
        assert partition.boundaries()[-1] == partition.num_waves

    @given(st.integers(min_value=1, max_value=9))
    def test_enumeration_covers_exactly_the_design_space(self, waves):
        partitions = list(enumerate_partitions(waves))
        assert len(partitions) == len({p.group_sizes for p in partitions}) == 2 ** (waves - 1)
        assert all(p.num_waves == waves for p in partitions)

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=20))
    def test_equal_groups_cover_all_waves(self, waves, group):
        partition = WavePartition.equal_groups(waves, group)
        assert partition.num_waves == waves
        assert all(size <= group for size in partition.group_sizes[:-1]) or partition.num_groups == 1


class TestCollectiveProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=32),
        st.randoms(use_true_random=False),
    )
    @hyp_settings(max_examples=40)
    def test_ring_allreduce_matches_direct(self, n_ranks, elements, pyrandom):
        rng = np.random.default_rng(pyrandom.randint(0, 2**31))
        buffers = [rng.standard_normal(elements) for _ in range(n_ranks)]
        ring, report = ring_all_reduce(buffers)
        direct = all_reduce(buffers)
        for a, b in zip(ring, direct):
            np.testing.assert_allclose(a, b)
        if n_ranks > 1:
            assert report.volume_factor(elements) <= 2.0

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=8),
        st.randoms(use_true_random=False),
    )
    @hyp_settings(max_examples=40)
    def test_reduce_scatter_chunks_reassemble_to_sum(self, n_ranks, chunk, pyrandom):
        rng = np.random.default_rng(pyrandom.randint(0, 2**31))
        buffers = [rng.standard_normal(n_ranks * chunk) for _ in range(n_ranks)]
        chunks = reduce_scatter_flat(buffers)
        np.testing.assert_allclose(np.concatenate(chunks), sum(buffers))


class TestPipelineProperties:
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.randoms(use_true_random=False),
    )
    @hyp_settings(max_examples=25, deadline=None)
    def test_allreduce_pipeline_matches_reference(self, n_gpus, swizzle, wave_size, pyrandom):
        layout = TileLayout(m=12, n=16, tile_m=4, tile_n=4)
        rng = np.random.default_rng(pyrandom.randint(0, 2**31))
        order = execution_order(layout, swizzle)
        waves = wave_partition(order, wave_size * 3)
        # Random partition of the waves.
        sizes = []
        remaining = len(waves)
        while remaining:
            take = min(remaining, pyrandom.randint(1, 3))
            sizes.append(take)
            remaining -= take
        partition = WavePartition.from_sizes(sizes)
        groups = partition.group_tiles(waves)
        plan = build_reorder_plan(CollectiveKind.ALL_REDUCE, layout, groups, n_gpus)
        assignment = GroupAssignment.build(partition, waves)
        matrices = [rng.standard_normal((layout.m, layout.n)) for _ in range(n_gpus)]
        result = run_allreduce_pipeline(matrices, plan, assignment, order)
        assert result.allclose()
