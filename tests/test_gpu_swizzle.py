"""Tests for block swizzling (repro.gpu.swizzle)."""

import pytest

from repro.gpu.swizzle import (
    address_discontiguity,
    default_swizzle_size,
    execution_order,
    is_valid_order,
    swizzled_order,
    tiles_to_waves,
    unswizzled_order,
    wave_partition,
)
from repro.tensor.layout import TileLayout


@pytest.fixture
def layout():
    return TileLayout(m=8 * 4, n=8 * 6, tile_m=8, tile_n=8)  # 4x6 grid, 24 tiles


class TestOrders:
    def test_unswizzled_is_identity(self, layout):
        assert unswizzled_order(layout) == list(range(24))

    def test_swizzled_is_permutation(self, layout):
        for size in (1, 2, 3, 5, 6, 10):
            assert is_valid_order(layout, swizzled_order(layout, size))

    def test_swizzle_one_is_column_major(self, layout):
        order = swizzled_order(layout, 1)
        # First grid column (col_block 0) visited top to bottom.
        assert order[: layout.grid_m] == [layout.tile_index(r, 0) for r in range(layout.grid_m)]

    def test_swizzle_larger_than_grid_is_row_major(self, layout):
        assert swizzled_order(layout, layout.grid_n) == unswizzled_order(layout)
        assert swizzled_order(layout, layout.grid_n + 5) == unswizzled_order(layout)

    def test_swizzle_two_panel_pattern(self):
        # Fig. 2(b): 2x3 grid with swizzle 2 visits the first two columns of
        # both rows before the last column.
        layout = TileLayout(m=16, n=24, tile_m=8, tile_n=8)
        order = swizzled_order(layout, 2)
        assert order == [0, 1, 3, 4, 2, 5]

    def test_execution_order_dispatch(self, layout):
        assert execution_order(layout, None) == unswizzled_order(layout)
        assert execution_order(layout, 0) == unswizzled_order(layout)
        assert execution_order(layout, 2) == swizzled_order(layout, 2)

    def test_invalid_swizzle_size(self, layout):
        with pytest.raises(ValueError):
            swizzled_order(layout, -1)


class TestDiscontiguity:
    def test_row_major_first_wave_is_contiguous(self, layout):
        order = unswizzled_order(layout)
        assert address_discontiguity(layout, order, window=6) == 0.0

    def test_swizzled_first_wave_is_discontiguous(self, layout):
        order = swizzled_order(layout, 2)
        assert address_discontiguity(layout, order, window=8) > 0.0

    def test_small_window(self, layout):
        assert address_discontiguity(layout, unswizzled_order(layout), window=1) == 0.0


class TestWaves:
    def test_wave_partition_sizes(self, layout):
        order = swizzled_order(layout, 2)
        waves = wave_partition(order, wave_size=10)
        assert [len(w) for w in waves] == [10, 10, 4]
        assert sum(waves, []) == order

    def test_wave_partition_invalid_size(self, layout):
        with pytest.raises(ValueError):
            wave_partition(unswizzled_order(layout), 0)

    def test_tiles_to_waves_mapping(self, layout):
        order = swizzled_order(layout, 3)
        wave_of = tiles_to_waves(order, wave_size=10)
        for position, tile in enumerate(order):
            assert wave_of[tile] == position // 10


class TestDefaultSwizzle:
    def test_default_without_k(self, layout):
        assert default_swizzle_size(layout, l2_cache_mb=40.0) == 3

    def test_default_scales_down_with_large_k(self, layout):
        small_k = default_swizzle_size(layout, l2_cache_mb=4.0, k=1024)
        large_k = default_swizzle_size(layout, l2_cache_mb=4.0, k=64 * 1024)
        assert small_k >= large_k
        assert large_k >= 1

    def test_default_clamped_to_grid(self, layout):
        assert default_swizzle_size(layout, l2_cache_mb=10000.0, k=8) <= layout.grid_n
