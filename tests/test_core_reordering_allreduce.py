"""Correctness of the AllReduce reordering pipeline (artifact claim C1)."""

import numpy as np
import pytest

from repro.comm.collectives import all_reduce
from repro.comm.primitives import CollectiveKind
from repro.core.reordering import build_reorder_plan, run_allreduce_pipeline
from repro.core.signaling import GroupAssignment
from repro.core.wave_grouping import WavePartition
from repro.gpu.swizzle import swizzled_order, wave_partition
from repro.tensor.layout import TileLayout


def make_plan(layout, partition, swizzle=2, wave_size=6, n_gpus=4):
    order = swizzled_order(layout, swizzle)
    wave_tiles = wave_partition(order, wave_size)
    groups = partition.group_tiles(wave_tiles)
    plan = build_reorder_plan(CollectiveKind.ALL_REDUCE, layout, groups, n_gpus)
    assignment = GroupAssignment.build(partition, wave_tiles)
    return plan, assignment, order


class TestAllReducePipeline:
    @pytest.mark.parametrize("partition_sizes", [(4,), (1, 1, 1, 1), (1, 2, 1), (2, 2)])
    def test_matches_reference_for_all_partitions(self, rng, small_layout, partition_sizes):
        partition = WavePartition(partition_sizes)
        plan, assignment, order = make_plan(small_layout, partition)
        matrices = [rng.standard_normal((32, 48)) for _ in range(4)]
        result = run_allreduce_pipeline(matrices, plan, assignment, order)
        assert result.allclose()
        assert result.groups_communicated == partition.num_groups

    @pytest.mark.parametrize("n_gpus", [2, 3, 8])
    def test_different_gpu_counts(self, rng, small_layout, n_gpus):
        partition = WavePartition((2, 2))
        plan, assignment, order = make_plan(small_layout, partition, n_gpus=n_gpus)
        matrices = [rng.standard_normal((32, 48)) for _ in range(n_gpus)]
        result = run_allreduce_pipeline(matrices, plan, assignment, order)
        assert result.allclose()

    @pytest.mark.parametrize("swizzle", [1, 2, 3, 6])
    def test_any_swizzle_order(self, rng, small_layout, swizzle):
        partition = WavePartition((1, 3))
        plan, assignment, order = make_plan(small_layout, partition, swizzle=swizzle)
        matrices = [rng.standard_normal((32, 48)) for _ in range(4)]
        assert run_allreduce_pipeline(matrices, plan, assignment, order).allclose()

    def test_ragged_layout(self, rng):
        layout = TileLayout(m=30, n=44, tile_m=8, tile_n=8)  # ragged edges
        order = swizzled_order(layout, 2)
        waves = wave_partition(order, 6)
        partition = WavePartition.per_wave(len(waves))
        groups = partition.group_tiles(waves)
        plan = build_reorder_plan(CollectiveKind.ALL_REDUCE, layout, groups, 4)
        matrices = [rng.standard_normal((30, 44)) for _ in range(4)]
        result = run_allreduce_pipeline(matrices, plan)
        assert result.allclose()

    def test_reference_is_plain_allreduce(self, rng, small_layout):
        partition = WavePartition((4,))
        plan, _, _ = make_plan(small_layout, partition)
        matrices = [rng.standard_normal((32, 48)) for _ in range(4)]
        result = run_allreduce_pipeline(matrices, plan)
        for ref, direct in zip(result.reference, all_reduce(matrices)):
            np.testing.assert_allclose(ref, direct)

    def test_output_is_not_input(self, rng, small_layout):
        # The pipeline writes a fresh output buffer; inputs stay partial sums.
        partition = WavePartition((2, 2))
        plan, _, _ = make_plan(small_layout, partition)
        matrices = [rng.standard_normal((32, 48)) for _ in range(4)]
        originals = [m.copy() for m in matrices]
        run_allreduce_pipeline(matrices, plan)
        for m, o in zip(matrices, originals):
            np.testing.assert_array_equal(m, o)

    def test_shape_mismatch_rejected(self, rng, small_layout):
        partition = WavePartition((4,))
        plan, _, _ = make_plan(small_layout, partition)
        with pytest.raises(ValueError):
            run_allreduce_pipeline([rng.standard_normal((8, 8))] * 4, plan)

    def test_plan_must_cover_all_tiles(self, small_layout):
        with pytest.raises(ValueError):
            build_reorder_plan(CollectiveKind.ALL_REDUCE, small_layout, [[0, 1]], 4)

    def test_mapping_table_is_global_permutation(self, small_layout):
        partition = WavePartition((1, 2, 1))
        plan, _, _ = make_plan(small_layout, partition)
        table = plan.global_mapping()
        assert table.is_permutation()
        assert len(table) == small_layout.num_tiles
