"""Tests for the baseline overlap methods (repro.core.baselines, Table 1)."""

import pytest

from repro.comm.primitives import CollectiveKind
from repro.core.baselines import (
    AsyncTPBaseline,
    CublasMpBaseline,
    FluxFusionBaseline,
    NonOverlapBaseline,
    VanillaDecompositionBaseline,
    default_baselines,
    feature_matrix,
)
from repro.core.config import OverlapProblem
from repro.gpu.device import A800
from repro.comm.topology import a800_nvlink
from repro.gpu.gemm import GemmShape


@pytest.fixture
def problem_a800():
    return OverlapProblem(
        shape=GemmShape(8192, 8192, 4096),
        device=A800,
        topology=a800_nvlink(4),
        collective=CollectiveKind.REDUCE_SCATTER,
    )


class TestFeatureMatrix:
    def test_table1_flags(self):
        matrix = feature_matrix()
        assert matrix["decomposition-based"] == {
            "tile_wise": False,
            "interference_free": False,
            "comm_agnostic": True,
        }
        assert matrix["fusion-based"]["tile_wise"] is True
        assert matrix["fusion-based"]["comm_agnostic"] is False
        assert all(matrix["signaling-based (FlashOverlap)"].values())

    def test_class_flags_match_families(self):
        assert VanillaDecompositionBaseline.comm_agnostic and not VanillaDecompositionBaseline.tile_wise
        assert FluxFusionBaseline.tile_wise and not FluxFusionBaseline.comm_agnostic
        assert NonOverlapBaseline.interference_free


class TestSupport:
    def test_p2p_requirement(self, paper_problem_4090, problem_a800):
        # FLUX and Async-TP need peer-to-peer access, absent on the 4090 box.
        for method in (FluxFusionBaseline(), AsyncTPBaseline(), CublasMpBaseline()):
            assert not method.supports(paper_problem_4090)
            assert method.supports(problem_a800)
        assert VanillaDecompositionBaseline().supports(paper_problem_4090)

    def test_unsupported_evaluation_reports_inf(self, paper_problem_4090):
        result = FluxFusionBaseline().evaluate(paper_problem_4090)
        assert not result.supported
        assert result.latency == float("inf")
        with pytest.raises(ValueError):
            result.speedup_over(1.0)


class TestLatencies:
    def test_non_overlap_is_gemm_plus_comm(self, problem_a800):
        latency = NonOverlapBaseline().latency(problem_a800)
        gemm = problem_a800.gemm_model().duration()
        comm = problem_a800.collective_model().latency(problem_a800.output_bytes())
        assert latency == pytest.approx(gemm + comm, rel=0.01)

    def test_decomposition_beats_non_overlap_on_comm_heavy_case(self, paper_problem_4090):
        # On the PCIe box communication dominates, so even the fragmented
        # pipeline wins; on compute-dominated cases it may not (Fig. 10 min
        # whiskers dip below 1).
        non_overlap = NonOverlapBaseline().latency(paper_problem_4090)
        decomposed = VanillaDecompositionBaseline(num_chunks=4).latency(paper_problem_4090)
        assert decomposed < non_overlap

    def test_decomposition_never_catastrophic(self, problem_a800):
        non_overlap = NonOverlapBaseline().latency(problem_a800)
        decomposed = VanillaDecompositionBaseline(num_chunks=4).latency(problem_a800)
        assert decomposed < non_overlap * 1.05

    def test_excessive_decomposition_backfires(self, paper_problem_4090):
        few = VanillaDecompositionBaseline(num_chunks=4).latency(paper_problem_4090)
        many = VanillaDecompositionBaseline(num_chunks=64).latency(paper_problem_4090)
        assert many > few

    def test_chunk_shapes_cover_m(self, problem_a800):
        baseline = VanillaDecompositionBaseline(num_chunks=3)
        shapes = baseline._chunk_shapes(problem_a800)
        assert sum(s.m for s in shapes) == problem_a800.shape.m
        assert all(s.n == problem_a800.shape.n and s.k == problem_a800.shape.k for s in shapes)

    def test_async_tp_beats_vanilla_on_nvlink(self, problem_a800):
        vanilla = VanillaDecompositionBaseline(num_chunks=4).latency(problem_a800)
        async_tp = AsyncTPBaseline(num_chunks=4).latency(problem_a800)
        assert async_tp < vanilla * 1.05

    def test_fusion_wins_for_small_k(self):
        # Fig. 11: FLUX can win when K=2048 (memory-bound epilogue saving).
        problem = OverlapProblem(
            shape=GemmShape(16384, 8192, 2048),
            device=A800,
            topology=a800_nvlink(4),
            collective=CollectiveKind.REDUCE_SCATTER,
        )
        flux = FluxFusionBaseline().latency(problem)
        vanilla = VanillaDecompositionBaseline().latency(problem)
        assert flux < vanilla

    def test_cublasmp_slower_than_flux(self, problem_a800):
        assert CublasMpBaseline().latency(problem_a800) > FluxFusionBaseline().latency(problem_a800)

    def test_all_overlap_baselines_beat_non_overlap_here(self, problem_a800):
        non_overlap = NonOverlapBaseline().latency(problem_a800)
        for method in default_baselines():
            result = method.evaluate(problem_a800)
            if result.supported and method.name != "non-overlap":
                assert result.latency < non_overlap * 1.02, method.name

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            VanillaDecompositionBaseline(num_chunks=0)
