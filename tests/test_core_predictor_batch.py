"""Equivalence suite: the vectorized predictor fast path vs the scalar reference.

The contract of the fast path is strict: ``predict_batch`` must be
*bit-identical* to calling ``predict`` per candidate (not merely allclose), so
that the tuner's argmin picks exactly the partition the scalar loop would.
"""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import rtx4090_pcie
from repro.core.config import OverlapProblem, OverlapSettings
from repro.core.predictor import (
    LatencyPredictor,
    OfflineProfile,
    clear_profile_caches,
    profile_cache_info,
)
from repro.core.tuner import PredictiveTuner
from repro.core.wave_grouping import (
    WavePartition,
    candidate_partitions,
    candidate_partitions_matrix,
)
from repro.gpu.device import RTX_4090
from repro.gpu.gemm import GemmShape


def _problem(shape: GemmShape, collective=CollectiveKind.ALL_REDUCE, **kwargs) -> OverlapProblem:
    return OverlapProblem(
        shape=shape,
        device=RTX_4090,
        topology=rtx4090_pcie(4),
        collective=collective,
        **kwargs,
    )


def assert_batch_matches_scalar(problem: OverlapProblem, settings: OverlapSettings) -> None:
    profile = OfflineProfile.build(problem, settings)
    predictor = LatencyPredictor(profile, total_bytes=problem.output_bytes())
    candidates = candidate_partitions(
        profile.num_waves,
        max_first_group=settings.max_first_group,
        max_last_group=settings.max_last_group,
        max_exhaustive_waves=settings.max_exhaustive_waves,
    )
    batch = predictor.predict_batch(candidates)
    scalar = np.array([predictor.predict(p) for p in candidates])
    np.testing.assert_array_equal(batch, scalar)


class TestPredictBatchEquivalence:
    def test_matches_scalar_for_every_candidate(self, paper_problem_4090, fast_settings):
        assert_batch_matches_scalar(paper_problem_4090, fast_settings)

    def test_matches_with_profiling_noise_and_imbalance(self):
        problem = _problem(GemmShape(2048, 4096, 4096), imbalance=1.25)
        settings = OverlapSettings(bandwidth_profile_noise=0.05, seed=7)
        assert_batch_matches_scalar(problem, settings)

    def test_matches_for_small_problem(self, small_problem, fast_settings):
        assert_batch_matches_scalar(small_problem, fast_settings)

    @pytest.mark.parametrize("collective", list(CollectiveKind))
    def test_matches_across_collectives(self, collective, fast_settings):
        assert_batch_matches_scalar(_problem(GemmShape(1024, 2048, 1024), collective), fast_settings)

    @hyp_settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=48).map(lambda x: x * 64),
        n=st.integers(min_value=1, max_value=48).map(lambda x: x * 64),
        k=st.sampled_from([256, 1024, 4096]),
        max_first=st.integers(min_value=1, max_value=3),
        max_last=st.integers(min_value=1, max_value=5),
        noise=st.sampled_from([0.0, 0.015, 0.08]),
        imbalance=st.sampled_from([1.0, 1.1, 1.4]),
    )
    def test_matches_over_random_shapes_and_settings(
        self, m, n, k, max_first, max_last, noise, imbalance
    ):
        problem = _problem(GemmShape(m, n, k), imbalance=imbalance)
        settings = OverlapSettings(
            max_first_group=max_first,
            max_last_group=max_last,
            bandwidth_profile_noise=noise,
            executor_jitter=0.0,
        )
        assert_batch_matches_scalar(problem, settings)

    def test_accepts_partition_matrix_input(self, paper_problem_4090, fast_settings):
        profile = OfflineProfile.build(paper_problem_4090, fast_settings)
        predictor = LatencyPredictor(profile, total_bytes=paper_problem_4090.output_bytes())
        candidates = candidate_partitions(profile.num_waves, 2, 4, 14)
        matrix = candidate_partitions_matrix(candidates)
        np.testing.assert_array_equal(
            predictor.predict_batch(matrix), predictor.predict_batch(candidates)
        )

    def test_rejects_wave_count_mismatch(self, paper_problem_4090, fast_settings):
        profile = OfflineProfile.build(paper_problem_4090, fast_settings)
        predictor = LatencyPredictor(profile)
        with pytest.raises(ValueError, match="waves"):
            predictor.predict_batch([WavePartition.single_group(profile.num_waves + 1)])

    def test_empty_batch(self, paper_problem_4090, fast_settings):
        profile = OfflineProfile.build(paper_problem_4090, fast_settings)
        assert LatencyPredictor(profile).predict_batch([]).size == 0


class TestPartitionMatrix:
    def test_round_trip_and_prefix_sums(self):
        partitions = [
            WavePartition((1, 2, 3)),
            WavePartition((6,)),
            WavePartition((2, 2, 1, 1)),
        ]
        matrix = candidate_partitions_matrix(partitions)
        assert matrix.num_candidates == 3
        assert matrix.max_groups == 4
        assert list(matrix.counts) == [3, 1, 4]
        assert list(matrix.total_waves) == [6, 6, 6]
        np.testing.assert_array_equal(matrix.boundaries[0], [1, 3, 6, 6])
        for index, partition in enumerate(partitions):
            assert matrix.partition(index) == partition

    def test_empty(self):
        matrix = candidate_partitions_matrix([])
        assert matrix.num_candidates == 0


class TestTunerFastPath:
    def test_vectorized_tuner_identical_to_scalar(self, paper_problem_4090):
        for settings in (
            OverlapSettings(),
            OverlapSettings(bandwidth_profile_noise=0.0, executor_jitter=0.0),
            OverlapSettings(max_first_group=1, max_last_group=2),
        ):
            fast = PredictiveTuner(settings, vectorized=True).tune(paper_problem_4090)
            reference = PredictiveTuner(settings, vectorized=False).tune(paper_problem_4090)
            assert fast == reference

    def test_sequential_fallback_agrees(self, tiny_device, tiny_topology, small_tile_config):
        # A shape/topology pair where overlap may or may not pay off; both
        # paths must agree on the use_overlap verdict either way.
        problem = OverlapProblem(
            shape=GemmShape(m=32, n=48, k=64),
            device=tiny_device,
            topology=tiny_topology,
            collective=CollectiveKind.ALL_REDUCE,
            gemm_config=small_tile_config,
        )
        settings = OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)
        fast = PredictiveTuner(settings, vectorized=True).tune(problem)
        reference = PredictiveTuner(settings, vectorized=False).tune(problem)
        assert fast.use_overlap == reference.use_overlap


class TestProfileMemoization:
    def test_cached_returns_shared_instance(self, paper_problem_4090, fast_settings):
        clear_profile_caches()
        first = OfflineProfile.cached(paper_problem_4090, fast_settings)
        second = OfflineProfile.cached(paper_problem_4090, fast_settings)
        assert first is second
        info = profile_cache_info()
        assert info["profile_hits"] >= 1 and info["profile_misses"] >= 1

    def test_cached_equals_build(self, paper_problem_4090, fast_settings):
        clear_profile_caches()
        cached = OfflineProfile.cached(paper_problem_4090, fast_settings)
        built = OfflineProfile.build(paper_problem_4090, fast_settings)
        assert cached.num_waves == built.num_waves
        assert cached.wave_time == built.wave_time
        assert cached.wave_bytes == built.wave_bytes
        assert cached.sequential_compute_time == built.sequential_compute_time
        np.testing.assert_array_equal(
            cached.comm_model.curve.bandwidths_bytes, built.comm_model.curve.bandwidths_bytes
        )

    def test_curve_shared_across_shapes(self, fast_settings):
        clear_profile_caches()
        a = OfflineProfile.cached(_problem(GemmShape(1024, 2048, 1024)), fast_settings)
        b = OfflineProfile.cached(_problem(GemmShape(2048, 2048, 1024)), fast_settings)
        assert a is not b
        assert a.comm_model.curve is b.comm_model.curve

    def test_settings_distinguish_entries(self, paper_problem_4090):
        clear_profile_caches()
        quiet = OfflineProfile.cached(paper_problem_4090, OverlapSettings(bandwidth_profile_noise=0.0))
        noisy = OfflineProfile.cached(paper_problem_4090, OverlapSettings(bandwidth_profile_noise=0.1))
        assert quiet is not noisy
