"""Differential suite: vectorized replay fast path vs the event-by-event reference.

``replay_tasks(fast=True)`` resolves the greedy list-scheduling recurrence
with a lowered topological sweep -- a fused scalar Kahn pass for narrow
replays, a numpy frontier sweep for wide ones.  Both must be **bit-identical**
to the reference path (``fast=False``): same spans, same makespan, same busy
and work folds, same error messages on malformed inputs.  Hypothesis drives
random DAGs (random resources, durations, dependency fan-in, transfer
delays) and random straggler :class:`SpeedProfile` assignments through every
branch; the vector sweep is forced by shrinking the width thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

import repro.sim.replay as replay_module
from repro.sim.replay import ReplayTask, replay_tasks

DURATIONS = st.floats(min_value=0.0, max_value=1e-2, allow_nan=False, allow_infinity=False)
DELAYS = st.floats(min_value=0.0, max_value=1e-3, allow_nan=False, allow_infinity=False)
FACTORS = st.floats(min_value=1.0, max_value=4.0, allow_nan=False, allow_infinity=False)


@dataclass(frozen=True)
class KneeProfile:
    """Start-dependent straggler: slow before the knee, nominal after.

    The start-dependence matters -- it makes ``finish_time`` a genuine
    function of the realized schedule, so any ordering divergence between the
    two paths surfaces as a bitwise span difference.
    """

    factor: float
    knee: float

    def finish_time(self, start: float, work: float) -> float:
        stretch = self.factor if start < self.knee else 1.0
        return start + work * stretch


@st.composite
def task_lists(draw, min_tasks: int = 0, max_tasks: int = 24):
    """Random dependency-acyclic task lists over a handful of resources.

    Dependencies only point at earlier list positions, which (together with
    the FIFO queue order) guarantees the replay can always make progress.
    """
    n_resources = draw(st.integers(min_value=1, max_value=6))
    resources = [f"r{i}" for i in range(n_resources)]
    n = draw(st.integers(min_value=min_tasks, max_value=max_tasks))
    tasks = []
    for i in range(n):
        deps = ()
        if i:
            dep_ids = draw(
                st.lists(st.integers(0, i - 1), min_size=0, max_size=3, unique=True)
            )
            deps = tuple((f"t{j}", draw(DELAYS)) for j in dep_ids)
        tasks.append(
            ReplayTask(
                name=f"t{i}",
                resource=draw(st.sampled_from(resources)),
                duration=draw(DURATIONS),
                deps=deps,
            )
        )
    return tasks


@st.composite
def profiled_task_lists(draw):
    """A task list plus straggler profiles on a random subset of resources."""
    tasks = draw(task_lists(min_tasks=1))
    resources = sorted({task.resource for task in tasks})
    profiled = draw(
        st.lists(st.sampled_from(resources), min_size=0, max_size=len(resources), unique=True)
    )
    profiles = {
        resource: KneeProfile(factor=draw(FACTORS), knee=draw(DURATIONS))
        for resource in profiled
    }
    return tasks, profiles


def assert_bit_identical(tasks, profiles=None, force_vector=False):
    reference = replay_tasks(tasks, fast=False, resource_profiles=profiles)
    if force_vector:
        saved = replay_module._VECTOR_MIN_RESOURCES, replay_module._VECTOR_MIN_TASKS
        replay_module._VECTOR_MIN_RESOURCES = 1
        replay_module._VECTOR_MIN_TASKS = 1
        try:
            fast = replay_tasks(tasks, fast=True, resource_profiles=profiles)
        finally:
            replay_module._VECTOR_MIN_RESOURCES, replay_module._VECTOR_MIN_TASKS = saved
    else:
        fast = replay_tasks(tasks, fast=True, resource_profiles=profiles)
    assert fast.spans == reference.spans
    assert fast.makespan == reference.makespan
    assert fast.busy == reference.busy
    assert fast.work == reference.work
    assert fast.resources == reference.resources
    # The aggregates are plain python floats on both paths (JSON stability).
    assert all(type(value) is float for value in fast.busy.values())
    assert all(
        type(start) is float and type(end) is float
        for start, end in fast.spans.values()
    )


class TestScalarSweepMatchesReference:
    @hsettings(max_examples=200, deadline=None)
    @given(tasks=task_lists())
    def test_random_dags(self, tasks):
        assert_bit_identical(tasks)

    @hsettings(max_examples=150, deadline=None)
    @given(drawn=profiled_task_lists())
    def test_random_dags_with_speed_profiles(self, drawn):
        tasks, profiles = drawn
        assert_bit_identical(tasks, profiles)


class TestVectorSweepMatchesReference:
    @hsettings(max_examples=200, deadline=None)
    @given(tasks=task_lists())
    def test_random_dags(self, tasks):
        assert_bit_identical(tasks, force_vector=True)

    @hsettings(max_examples=150, deadline=None)
    @given(drawn=profiled_task_lists())
    def test_random_dags_with_speed_profiles(self, drawn):
        tasks, profiles = drawn
        assert_bit_identical(tasks, profiles, force_vector=True)

    def test_wide_replay_crosses_the_vector_threshold_unforced(self):
        """A genuinely wide replay takes the numpy sweep at default thresholds."""
        resources = replay_module._VECTOR_MIN_RESOURCES
        layers = max(1, replay_module._VECTOR_MIN_TASKS // resources + 1)
        tasks = []
        for layer in range(layers):
            for r in range(resources):
                deps = ()
                if layer:
                    deps = ((f"t{layer - 1}-{r}", 0.0), (f"t{layer - 1}-{(r + 1) % resources}", 1e-4))
                tasks.append(
                    ReplayTask(
                        name=f"t{layer}-{r}",
                        resource=f"r{r}",
                        duration=1e-3 * ((layer + r) % 5 + 1),
                        deps=deps,
                    )
                )
        assert_bit_identical(tasks)


class TestFastPathErrorParity:
    def test_empty_task_list(self):
        assert_bit_identical([])

    @pytest.mark.parametrize("force_vector", [False, True])
    def test_duplicate_names_raise_the_reference_error(self, force_vector):
        tasks = [
            ReplayTask(name="t0", resource="r0", duration=1.0),
            ReplayTask(name="t0", resource="r1", duration=1.0),
        ]
        with pytest.raises(ValueError, match="duplicate task name 't0'"):
            replay_tasks(tasks, fast=False)
        with pytest.raises(ValueError, match="duplicate task name 't0'"):
            assert_bit_identical(tasks, force_vector=force_vector)

    @pytest.mark.parametrize("force_vector", [False, True])
    def test_unknown_dependency_raises_the_reference_error(self, force_vector):
        tasks = [ReplayTask(name="t0", resource="r0", duration=1.0, deps=(("ghost", 0.0),))]
        with pytest.raises(ValueError, match="depends on unknown task 'ghost'"):
            replay_tasks(tasks, fast=False)
        with pytest.raises(ValueError, match="depends on unknown task 'ghost'"):
            assert_bit_identical(tasks, force_vector=force_vector)

    @pytest.mark.parametrize("force_vector", [False, True])
    def test_deadlock_raises_with_the_same_stuck_tasks(self, force_vector):
        # t0 waits on t1, but t1 sits behind t0 in the same queue: a cycle
        # through the resource order.
        tasks = [
            ReplayTask(name="t0", resource="r0", duration=1.0, deps=(("t1", 0.0),)),
            ReplayTask(name="t1", resource="r0", duration=1.0),
        ]
        with pytest.raises(RuntimeError, match=r"deadlocked: tasks \['t0'\]"):
            replay_tasks(tasks, fast=False)
        with pytest.raises(RuntimeError, match=r"deadlocked: tasks \['t0'\]"):
            assert_bit_identical(tasks, force_vector=force_vector)
