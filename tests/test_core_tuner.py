"""Tests for the predictive / exhaustive tuners and the shape cache."""

import pytest

from repro.core.config import OverlapSettings
from repro.core.executor import OverlapExecutor
from repro.core.tuner import (
    ExhaustiveTuner,
    GemmShapeCache,
    PredictiveTuner,
    search_quality,
)
from repro.gpu.gemm import GemmShape


@pytest.fixture
def settings():
    return OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


class TestPredictiveTuner:
    def test_tuned_partition_is_valid(self, paper_problem_4090, settings):
        tuner = PredictiveTuner(settings)
        result = tuner.tune(paper_problem_4090)
        executor = OverlapExecutor(paper_problem_4090, settings)
        assert result.partition.num_waves == executor.num_waves()
        assert result.candidates_evaluated > 1
        assert result.predicted_latency > 0
        assert result.method == "predictive"

    def test_tuned_beats_naive_partitions(self, paper_problem_4090, settings):
        from repro.core.wave_grouping import WavePartition

        tuner = PredictiveTuner(settings)
        result = tuner.tune(paper_problem_4090)
        executor = OverlapExecutor(paper_problem_4090, settings)
        tuned = executor.simulate(result.partition).latency
        single = executor.simulate(WavePartition.single_group(executor.num_waves())).latency
        assert tuned <= single * 1.001

    def test_overlap_enabled_on_comm_heavy_problem(self, paper_problem_4090, settings):
        assert PredictiveTuner(settings).tune(paper_problem_4090).use_overlap

    def test_candidates_respect_bounds_for_small_waves(self, settings):
        candidates = PredictiveTuner(settings).candidates(10)
        assert all(p.first_group <= settings.max_first_group for p in candidates)
        assert all(p.last_group <= settings.max_last_group for p in candidates)


class TestExhaustiveTuner:
    def test_exhaustive_not_worse_than_predictive(self, paper_problem_4090, settings):
        executor = OverlapExecutor(paper_problem_4090, settings)
        predictive = PredictiveTuner(settings).tune(paper_problem_4090)
        exhaustive = ExhaustiveTuner(settings).tune(paper_problem_4090, executor)
        predictive_actual = executor.simulate(predictive.partition).latency
        assert exhaustive.predicted_latency <= predictive_actual + 1e-12
        assert exhaustive.method == "exhaustive"

    def test_search_quality_claim_c2(self, paper_problem_4090, settings):
        # Claim C2: the predictive search reaches >99% of the exhaustive
        # search's performance.
        quality = search_quality(paper_problem_4090, settings)
        assert quality["performance_ratio"] > 0.97
        assert quality["predictive_latency"] >= quality["exhaustive_latency"]


class TestShapeCache:
    def test_cache_reuses_nearby_shape(self, paper_problem_4090, settings):
        cache = GemmShapeCache()
        tuner = PredictiveTuner(settings)
        first = cache.lookup_or_tune(paper_problem_4090, tuner)
        assert len(cache) == 1
        # A shape within the distance threshold and with the same wave count
        # reuses the cached partition without re-tuning.
        similar = paper_problem_4090.with_shape(GemmShape(2048, 8192, 7680))
        second = cache.lookup_or_tune(similar, tuner)
        assert second is first
        assert len(cache) == 1

    def test_cache_retunes_distant_shape(self, paper_problem_4090, settings):
        cache = GemmShapeCache()
        tuner = PredictiveTuner(settings)
        cache.lookup_or_tune(paper_problem_4090, tuner)
        far = paper_problem_4090.with_shape(GemmShape(16384, 8192, 2048))
        cache.lookup_or_tune(far, tuner)
        assert len(cache) == 2

    def test_nearest_respects_wave_count(self, paper_problem_4090, settings):
        cache = GemmShapeCache()
        tuner = PredictiveTuner(settings)
        result = tuner.tune(paper_problem_4090)
        cache.add(paper_problem_4090.shape, result)
        assert cache.nearest(paper_problem_4090.shape, required_waves=result.partition.num_waves)
        assert cache.nearest(paper_problem_4090.shape, required_waves=3) is None

    def test_empty_cache(self, paper_problem_4090):
        assert GemmShapeCache().nearest(paper_problem_4090.shape) is None
