"""Crash recovery in the sweep runner: retries, quarantine, resumability.

Worker crashes are simulated by monkeypatching the module-level
``_execute_scenario`` (the single execution entry point both the in-process
path and the pool-crash fallback go through), so the tests exercise the real
retry/quarantine machinery without real tuning work.
"""

import pytest

import repro.sweep.runner as runner_module
from repro.sweep.matrix import Scenario, ScenarioMatrix
from repro.sweep.runner import SweepRunner
from repro.sweep.store import ResultStore


@pytest.fixture
def scenarios():
    return ScenarioMatrix.build(
        name="tiny",
        workload="tiny",
        shapes=[(512, 1024, 1024)],
        platforms=[("rtx4090", "rtx4090-pcie", 4)],
        collectives=["allreduce", "reducescatter"],
    ).expand()


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "results.jsonl")


def job_id_of(payload: dict) -> str:
    return Scenario.from_dict(payload).job_id


def ok_record(payload: dict) -> dict:
    return {"job_id": job_id_of(payload), "scenario": payload, "status": "ok",
            "tuned": False, "cache_hit": True}


class TestFlakyJobsRetry:
    def test_crashes_are_retried_until_success(self, scenarios, store):
        calls: dict[str, int] = {}

        def flaky(payload, cache, baselines):
            job_id = job_id_of(payload)
            calls[job_id] = calls.get(job_id, 0) + 1
            if calls[job_id] <= 2:
                raise OSError("worker died")
            return ok_record(payload)

        runner_module._execute_scenario, original = flaky, runner_module._execute_scenario
        try:
            runner = SweepRunner(store, max_retries=2, retry_backoff_s=0.0)
            summary = runner.run(scenarios)
        finally:
            runner_module._execute_scenario = original

        assert summary.failed == 0
        assert summary.quarantined == 0
        assert summary.retried == len(scenarios)
        assert all(r["status"] == "ok" for r in summary.records)
        assert all(r["attempts"] == 3 for r in summary.records)
        # Successful jobs land in the store as completed.
        assert store.completed_ids() == {s.job_id for s in scenarios}


class TestQuarantine:
    def test_exhausted_retries_quarantine_the_job(self, scenarios, store, monkeypatch):
        def always_crash(payload, cache, baselines):
            raise OSError("dead")

        monkeypatch.setattr(runner_module, "_execute_scenario", always_crash)
        runner = SweepRunner(store, max_retries=1, retry_backoff_s=0.0)
        summary = runner.run(scenarios)

        assert summary.quarantined == len(scenarios)
        assert summary.failed == len(scenarios)
        for record in summary.records:
            assert record["status"] == "failed"
            assert record["error"] == "OSError: dead"
            assert "OSError" in record["traceback"]
            assert record["attempts"] == 2
        assert "quarantined" in summary.describe()

    def test_quarantined_jobs_are_retried_on_resume(self, scenarios, store, monkeypatch):
        monkeypatch.setattr(
            runner_module, "_execute_scenario",
            lambda payload, cache, baselines: (_ for _ in ()).throw(OSError("dead")),
        )
        SweepRunner(store, max_retries=0, retry_backoff_s=0.0).run(scenarios)
        # Quarantined records never count as completed ...
        assert store.completed_ids() == set()

        # ... so a resumed run re-attempts every one of them.
        monkeypatch.setattr(
            runner_module, "_execute_scenario",
            lambda payload, cache, baselines: ok_record(payload),
        )
        summary = SweepRunner(store, resume=True, retry_backoff_s=0.0).run(scenarios)
        assert summary.executed == len(scenarios)
        assert summary.skipped == 0
        assert summary.failed == 0
        assert store.completed_ids() == {s.job_id for s in scenarios}


class TestDeterministicErrorsNotRetried:
    def test_in_job_errors_run_exactly_once(self, scenarios, store, monkeypatch):
        calls: dict[str, int] = {}

        def in_job_error(payload, cache, baselines):
            job_id = job_id_of(payload)
            calls[job_id] = calls.get(job_id, 0) + 1
            return {"job_id": job_id, "scenario": payload,
                    "status": "error", "error": "ValueError: bad shape"}

        monkeypatch.setattr(runner_module, "_execute_scenario", in_job_error)
        summary = SweepRunner(store, max_retries=3, retry_backoff_s=0.0).run(scenarios)

        # Errors caught inside the job are deterministic: no retries.
        assert all(count == 1 for count in calls.values())
        assert summary.retried == 0
        assert summary.quarantined == 0
        assert summary.failed == len(scenarios)


class TestRetryConfigValidation:
    def test_negative_budgets_rejected(self, store):
        with pytest.raises(ValueError, match="max_retries"):
            SweepRunner(store, max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff_s"):
            SweepRunner(store, retry_backoff_s=-0.1)
