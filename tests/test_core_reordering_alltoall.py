"""Correctness of the All-to-All reordering pipeline (sub-token unit)."""

import numpy as np
import pytest

from repro.comm.primitives import CollectiveKind
from repro.core.reordering import build_reorder_plan, run_all_to_all_pipeline
from repro.core.signaling import GroupAssignment
from repro.core.wave_grouping import WavePartition
from repro.gpu.swizzle import swizzled_order, wave_partition
from repro.tensor.layout import TileLayout


def make_plan(layout, partition, n_gpus, swizzle=2, wave_size=6):
    order = swizzled_order(layout, swizzle)
    waves = wave_partition(order, wave_size)
    groups = partition.group_tiles(waves)
    plan = build_reorder_plan(CollectiveKind.ALL_TO_ALL, layout, groups, n_gpus)
    assignment = GroupAssignment.build(partition, waves)
    return plan, assignment, order


class TestAllToAllPipeline:
    @pytest.mark.parametrize("partition_sizes", [(4,), (1, 1, 1, 1), (1, 3), (2, 2)])
    def test_matches_reference_routing(self, rng, small_layout, partition_sizes):
        n = 4
        partition = WavePartition(partition_sizes)
        plan, assignment, order = make_plan(small_layout, partition, n)
        matrices = [rng.standard_normal((32, 48)) for _ in range(n)]
        destinations = [rng.integers(0, n, size=32) for _ in range(n)]
        result = run_all_to_all_pipeline(
            matrices,
            destinations,
            plans=[plan] * n,
            assignments=[assignment] * n,
            execution_orders=[order] * n,
        )
        assert result.allclose()

    @pytest.mark.parametrize("n_gpus", [2, 3])
    def test_small_gpu_counts(self, rng, small_layout, n_gpus):
        partition = WavePartition((2, 2))
        plan, assignment, order = make_plan(small_layout, partition, n_gpus)
        matrices = [rng.standard_normal((32, 48)) for _ in range(n_gpus)]
        destinations = [rng.integers(0, n_gpus, size=32) for _ in range(n_gpus)]
        result = run_all_to_all_pipeline(
            matrices, destinations, plans=[plan] * n_gpus,
            assignments=[assignment] * n_gpus, execution_orders=[order] * n_gpus,
        )
        assert result.allclose()

    def test_skewed_routing(self, rng, small_layout):
        # All tokens of every source routed to GPU 0 (extreme MoE imbalance).
        n = 4
        partition = WavePartition((1, 3))
        plan, assignment, order = make_plan(small_layout, partition, n)
        matrices = [rng.standard_normal((32, 48)) for _ in range(n)]
        destinations = [np.zeros(32, dtype=int) for _ in range(n)]
        result = run_all_to_all_pipeline(
            matrices, destinations, plans=[plan] * n,
            assignments=[assignment] * n, execution_orders=[order] * n,
        )
        assert result.allclose()
        assert result.outputs[0].shape == (4 * 32, 48)
        assert result.outputs[1].shape[0] == 0

    def test_heterogeneous_source_layouts(self, rng):
        # Different token counts (and hence tile grids / wave counts) per GPU.
        n = 2
        layouts = [TileLayout(24, 32, 8, 8), TileLayout(40, 32, 8, 8)]
        plans, assignments, orders, matrices, destinations = [], [], [], [], []
        for layout in layouts:
            order = swizzled_order(layout, 2)
            waves = wave_partition(order, 4)
            partition = WavePartition.per_wave(len(waves))
            groups = partition.group_tiles(waves)
            plans.append(build_reorder_plan(CollectiveKind.ALL_TO_ALL, layout, groups, n))
            assignments.append(GroupAssignment.build(partition, waves))
            orders.append(order)
            matrices.append(rng.standard_normal((layout.m, layout.n)))
            destinations.append(rng.integers(0, n, size=layout.m))
        result = run_all_to_all_pipeline(matrices, destinations, plans, assignments, orders)
        assert result.allclose()

    def test_token_rows_are_reassembled_across_column_tiles(self, rng, small_layout):
        # A token spans 6 column tiles of width 8; the received row must be
        # the original 48-wide row, not a permutation of its sub-tokens.
        n = 2
        partition = WavePartition((2, 2))
        plan, assignment, order = make_plan(small_layout, partition, n)
        matrices = [rng.standard_normal((32, 48)) for _ in range(n)]
        destinations = [np.full(32, 1 - src, dtype=int) for src in range(n)]
        result = run_all_to_all_pipeline(
            matrices, destinations, plans=[plan] * n,
            assignments=[assignment] * n, execution_orders=[order] * n,
        )
        # GPU 1 receives all of GPU 0's tokens in row order.
        np.testing.assert_allclose(result.outputs[1], matrices[0])
        np.testing.assert_allclose(result.outputs[0], matrices[1])

    def test_length_mismatch_rejected(self, rng, small_layout):
        partition = WavePartition((4,))
        plan, _, _ = make_plan(small_layout, partition, 2)
        with pytest.raises(ValueError):
            run_all_to_all_pipeline(
                [rng.standard_normal((32, 48))], [np.zeros(32, dtype=int)] * 2, [plan] * 2
            )
