"""Tests for the metrics registry: label keys, percentiles, snapshots."""

import json

from repro import obs
from repro.obs import MetricsRegistry, metric_key


class TestMetricKey:
    def test_no_labels_is_the_bare_name(self):
        assert metric_key("plan_store.hits", {}) == "plan_store.hits"

    def test_labels_are_sorted_into_the_key(self):
        assert (
            metric_key("serve.iterations", {"mode": "overlap", "arm": "a"})
            == "serve.iterations{arm=a,mode=overlap}"
        )


class TestLabelMerging:
    def test_same_labels_any_keyword_order_is_the_same_series(self):
        registry = MetricsRegistry()
        first = registry.counter("x", a=1, b=2)
        second = registry.counter("x", b=2, a=1)
        assert first is second
        first.inc()
        second.inc(2)
        assert registry.snapshot()["counters"] == {"x{a=1,b=2}": 3}

    def test_different_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("x", mode="overlap").inc()
        registry.counter("x", mode="non-overlap").inc(5)
        registry.counter("x").inc(7)
        assert registry.snapshot()["counters"] == {
            "x": 7,
            "x{mode=non-overlap}": 5,
            "x{mode=overlap}": 1,
        }

    def test_counter_gauge_histogram_namespaces_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("m").inc()
        registry.gauge("m").set(2.5)
        registry.histogram("m").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"]["m"] == 1
        assert snap["gauges"]["m"] == 2.5
        assert snap["histograms"]["m"]["count"] == 1


class TestHistogramPercentiles:
    def test_nearest_rank_on_1_to_100(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(100, 0, -1):  # insertion order must not matter
            histogram.observe(float(value))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(90) == 90.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0

    def test_single_value_dominates_every_percentile(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(0.25)
        summary = histogram.summary()
        assert summary["p50"] == summary["p99"] == 0.25
        assert summary["count"] == 1 and summary["mean"] == 0.25

    def test_empty_histogram_summary(self):
        assert MetricsRegistry().histogram("h").summary() == {"count": 0}

    def test_p0_p50_p100_edge_ranks(self):
        # p0 clamps to the smallest observation (rank floor of 1), p100 to
        # the largest; a two-value histogram exercises both clamp branches.
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(2.0)
        histogram.observe(1.0)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(50) == 1.0
        assert histogram.percentile(100) == 2.0

    def test_summary_matches_per_call_percentiles(self):
        # summary() sorts once; its percentile fields must equal the
        # sort-per-call percentile() results on the same data.
        histogram = MetricsRegistry().histogram("h")
        for value in (5.0, 1.0, 4.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["p50"] == histogram.percentile(50)
        assert summary["p90"] == histogram.percentile(90)
        assert summary["p99"] == histogram.percentile(99)
        assert summary["min"] == 1.0 and summary["max"] == 5.0
        assert summary["sum"] == sum((5.0, 1.0, 4.0, 2.0, 3.0))
        assert histogram.values[0] == 5.0  # observation order preserved

    def test_single_value_summary_unchanged_by_single_sort(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(0.125)
        summary = histogram.summary()
        assert summary == {
            "count": 1, "sum": 0.125, "min": 0.125, "max": 0.125,
            "mean": 0.125, "p50": 0.125, "p90": 0.125, "p99": 0.125,
        }


class TestSnapshotRoundTrip:
    def test_snapshot_survives_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("jobs", kind="sweep").inc(12)
        registry.gauge("cache.size").set(34.0)
        for value in (0.1, 0.2, 0.3):
            registry.histogram("latency_s", mode="overlap").observe(value)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_snapshot_key_order_is_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.counter("c", z=1).inc()
        assert list(registry.snapshot()["counters"]) == ["a", "b", "c{z=1}"]


class TestNullMetrics:
    def test_disabled_accessors_share_null_objects(self):
        assert not obs.enabled()
        assert obs.counter("x") is obs.counter("y", any_label=1)
        assert obs.gauge("x") is obs.gauge("y")
        assert obs.histogram("x") is obs.histogram("y")

    def test_null_metrics_swallow_writes(self):
        obs.counter("x").inc(100)
        obs.gauge("x").set(5.0)
        obs.histogram("x").observe(1.0)
        with obs.observe() as session:
            pass  # nothing recorded before the session opened
        assert session.metrics.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
