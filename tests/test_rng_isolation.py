"""Regression tests for the suite-wide numpy RNG isolation.

The autouse ``_numpy_rng_isolation`` fixture in ``conftest.py`` must (a) hand
every test the same seeded global-RNG state and (b) restore the pre-test
state afterwards, so property-based suites that burn global randomness cannot
perturb golden or serving tests that run after them.  The two ``test_order_*``
tests rely on pytest's in-file execution order: the first deliberately
pollutes the global RNG, the second asserts it still sees the pristine seeded
state.
"""

import numpy as np

#: First draw from the fixture-seeded global RNG (np.random.seed(0xF1A54)).
_SEEDED_FIRST_DRAW = None


def _first_draw() -> float:
    state = np.random.get_state()
    try:
        np.random.seed(0xF1A54)
        return float(np.random.random())
    finally:
        np.random.set_state(state)


def test_order_a_pollutes_global_rng():
    global _SEEDED_FIRST_DRAW
    _SEEDED_FIRST_DRAW = _first_draw()
    # The fixture seeds before the test body: the first draw is the seeded one.
    assert float(np.random.random()) == _SEEDED_FIRST_DRAW
    # Now wreck the global state (what a hypothesis-heavy test might do).
    np.random.seed(999)
    np.random.random(1000)


def test_order_b_sees_pristine_seeded_state():
    # Runs after test_order_a in file order: the pollution must not leak.
    assert _SEEDED_FIRST_DRAW is not None, "test_order_a must run first"
    assert float(np.random.random()) == _SEEDED_FIRST_DRAW


def test_state_is_restored_after_each_test():
    # The fixture restored the state test_order_b saved/perturbed; drawing
    # here still starts from the seeded baseline, independent of history.
    assert float(np.random.random()) == _first_draw()
