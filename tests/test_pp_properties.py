"""Property-based invariants of the pipeline schedules.

For randomly generated cost models -- stage partitions from the real
partitioner over random layer counts, random per-layer forward/dgrad/wgrad
durations and random inter-stage transfer delays -- every generated schedule
must satisfy:

* no two cells overlap on a stage (stages are serial resources);
* the F -> B -> W dependency order of every microbatch holds across stages,
  including the transfer delay between neighbouring stages;
* the bubble ratio is ordered GPipe >= 1F1B >= zero-bubble (useful work is
  identical across schedules, so this is equivalent to the step ordering);
* the replayed step time equals the critical path recomputed independently
  from the cell DAG (bit-equal: both are max/+ folds over the same values);
* generation is deterministic and conserves cells (M forwards, M backwards
  and -- for the split schedule -- M weight-gradient cells per stage).

The suite is pure scheduling (no tuner, no plan store), so hypothesis can
afford many examples.
"""

import pytest
from hypothesis import given, settings as hsettings
from hypothesis import strategies as st

from repro.pp.schedule import (
    KNOWN_SCHEDULES,
    StageCostVector,
    critical_path,
    generate_schedule,
)
from repro.workloads.pipeline import partition_layers

DURATIONS = st.floats(min_value=1e-4, max_value=1e-2, allow_nan=False, allow_infinity=False)
#: Backward-to-forward cost ratios of realistic training stacks: dgrad and
#: wgrad are each on the order of one forward pass (backward ~ 2x forward).
#: This realism constraint matters -- the GPipe >= 1F1B half of the bubble
#: ordering is a property of balanced pipelines, not a theorem: with, say,
#: dgrad = 80x forward and transfers larger than a forward cell, strict
#: 1F1B's interleaving delays late forwards behind backwards and loses to
#: GPipe's all-forwards-first order (hypothesis finds such cases if the
#: ratios are left unconstrained).
RATIOS = st.floats(min_value=0.5, max_value=4.0, allow_nan=False, allow_infinity=False)
#: Transfer delay as a fraction of one layer's forward: the stage-boundary
#: P2P transfer of one microbatch is far cheaper than a stage's compute on
#: any realistic link.
DELAY_FRACTIONS = st.floats(min_value=0.0, max_value=0.5, allow_nan=False, allow_infinity=False)


@st.composite
def cost_models(draw):
    """A stage-cost tuple built the way the real system builds one.

    Per-layer costs are uniform across the stack (a transformer repeats one
    layer); stages differ only through the balanced layer partition, exactly
    like :func:`repro.workloads.pipeline.partition_layers` output.
    """
    stages = draw(st.integers(min_value=1, max_value=4))
    layers = draw(st.integers(min_value=stages, max_value=3 * stages))
    forward = draw(DURATIONS)
    dgrad = forward * draw(RATIOS)
    wgrad = forward * draw(RATIOS)
    costs = tuple(
        StageCostVector(forward * count, dgrad * count, wgrad * count)
        for count in partition_layers(layers, stages)
    )
    microbatches = draw(st.integers(min_value=1, max_value=6))
    fwd_delay = forward * draw(DELAY_FRACTIONS)
    bwd_delay = forward * draw(DELAY_FRACTIONS)
    return costs, microbatches, fwd_delay, bwd_delay


def _spans(schedule):
    return schedule.replay(record_trace=True)


@hsettings(max_examples=60, deadline=None)
@given(model=cost_models())
def test_no_two_cells_overlap_on_a_stage(model):
    costs, microbatches, fwd_delay, bwd_delay = model
    for name in KNOWN_SCHEDULES:
        schedule = generate_schedule(name, costs, microbatches, fwd_delay, bwd_delay)
        result = _spans(schedule)
        result.trace.validate_stream_order()
        # Explicit pairwise check, independent of the trace helper.
        for order in schedule.stage_orders:
            ends = [result.spans[cell.name] for cell in order]
            for (_, earlier_end), (later_start, _) in zip(ends, ends[1:]):
                assert later_start >= earlier_end


@hsettings(max_examples=60, deadline=None)
@given(model=cost_models())
def test_dependency_order_holds_across_stages(model):
    costs, microbatches, fwd_delay, bwd_delay = model
    num_stages = len(costs)
    for name in KNOWN_SCHEDULES:
        schedule = generate_schedule(name, costs, microbatches, fwd_delay, bwd_delay)
        spans = _spans(schedule).spans
        for m in range(microbatches):
            for s in range(num_stages):
                f_start, f_end = spans[f"F{m}@s{s}"]
                b_start, b_end = spans[f"B{m}@s{s}"]
                # Forward flows down the pipeline (plus the transfer delay)...
                if s + 1 < num_stages:
                    assert spans[f"F{m}@s{s + 1}"][0] >= f_end + fwd_delay
                    # ... and the backward flows back up.
                    assert b_start >= spans[f"B{m}@s{s + 1}"][1] + bwd_delay
                # No backward before the stage's own forward.
                assert b_start >= f_end
                if schedule.split_backward:
                    assert spans[f"W{m}@s{s}"][0] >= b_end


@hsettings(max_examples=60, deadline=None)
@given(model=cost_models())
def test_bubble_ratio_ordering_gpipe_1f1b_zero_bubble(model):
    costs, microbatches, fwd_delay, bwd_delay = model
    steps = {}
    useful = {}
    for name in KNOWN_SCHEDULES:
        schedule = generate_schedule(name, costs, microbatches, fwd_delay, bwd_delay)
        steps[name] = schedule.replay().makespan
        useful[name] = schedule.useful_work()
    # All three schedules do the same useful work; only the step differs.
    assert useful["gpipe"] == pytest.approx(useful["1f1b"], rel=1e-12)
    assert useful["1f1b"] == pytest.approx(useful["zero-bubble"], rel=1e-12)
    slack = 1 + 1e-9
    assert steps["gpipe"] * slack >= steps["1f1b"] >= steps["zero-bubble"] / slack


@hsettings(max_examples=60, deadline=None)
@given(model=cost_models())
def test_step_time_equals_independent_critical_path(model):
    costs, microbatches, fwd_delay, bwd_delay = model
    for name in KNOWN_SCHEDULES:
        schedule = generate_schedule(name, costs, microbatches, fwd_delay, bwd_delay)
        assert schedule.replay().makespan == critical_path(schedule)


@hsettings(max_examples=60, deadline=None)
@given(model=cost_models())
def test_generation_is_deterministic_and_conserves_cells(model):
    costs, microbatches, fwd_delay, bwd_delay = model
    for name in KNOWN_SCHEDULES:
        first = generate_schedule(name, costs, microbatches, fwd_delay, bwd_delay)
        second = generate_schedule(name, costs, microbatches, fwd_delay, bwd_delay)
        assert first == second
        assert _spans(first).spans == _spans(second).spans
        for stage, order in enumerate(first.stage_orders):
            kinds = [cell.kind for cell in order]
            assert kinds.count("F") == microbatches
            assert kinds.count("B") == microbatches
            assert kinds.count("W") == (microbatches if first.split_backward else 0)
            assert all(cell.stage == stage for cell in order)
