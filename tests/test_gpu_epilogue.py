"""Tests for element-wise kernels and the reorder overhead model."""

import numpy as np
import pytest

from repro.gpu.device import A800, RTX_4090
from repro.gpu.epilogue import (
    ElementwiseKernelModel,
    ReorderOverheadModel,
    bias_add,
    relu,
    rmsnorm,
    silu,
)
from repro.gpu.gemm import GemmShape, GemmTileConfig


class TestFunctionalOperators:
    def test_rmsnorm_unit_rms(self, rng):
        x = rng.standard_normal((16, 64))
        out = rmsnorm(x)
        rms = np.sqrt(np.mean(out * out, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-6)

    def test_rmsnorm_weight(self, rng):
        x = rng.standard_normal((4, 8))
        w = rng.standard_normal(8)
        np.testing.assert_allclose(rmsnorm(x, w), rmsnorm(x) * w)

    def test_rmsnorm_rowwise_property(self, rng):
        # Row-wise operators commute with row sharding -- the property the
        # ReduceScatter reordering relies on.
        x = rng.standard_normal((10, 32))
        full = rmsnorm(x)
        sharded = np.concatenate([rmsnorm(x[:5]), rmsnorm(x[5:])], axis=0)
        np.testing.assert_allclose(full, sharded)

    def test_bias_add(self, rng):
        x = rng.standard_normal((3, 5))
        b = rng.standard_normal(5)
        np.testing.assert_allclose(bias_add(x, b), x + b)

    def test_relu_and_silu(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 3.0])
        out = silu(x)
        assert out[0] < 0 and out[1] == 0 and out[2] == pytest.approx(3.0 / (1 + np.exp(-3.0)))


class TestElementwiseModel:
    def test_duration_scales_linearly(self):
        model = ElementwiseKernelModel(A800)
        small = model.duration(1 << 20, include_launch=False)
        large = model.duration(1 << 22, include_launch=False)
        assert large == pytest.approx(4 * small)

    def test_launch_overhead_added(self):
        model = ElementwiseKernelModel(A800)
        assert model.duration(0) == pytest.approx(A800.kernel_launch_seconds)

    def test_negative_elements_rejected(self):
        with pytest.raises(ValueError):
            ElementwiseKernelModel(A800).duration(-1)


class TestReorderOverhead:
    @pytest.fixture
    def config(self):
        return GemmTileConfig(tile_m=128, tile_n=128)

    @pytest.fixture
    def shape(self):
        return GemmShape(4096, 8192, 8192)

    def test_elementwise_overhead_within_paper_range(self, config, shape):
        # Table 5: post-communication reorder adds ~7-10% to RMSNorm.
        for device in (A800, RTX_4090):
            model = ReorderOverheadModel(device)
            for unit in ("tile", "subtile", "subtoken"):
                overhead = model.elementwise_overhead(unit, config, n_gpus=4, shape=shape)
                assert 0.04 < overhead < 0.13

    def test_finer_units_cost_more(self, config, shape):
        model = ReorderOverheadModel(A800)
        tile = model.elementwise_overhead("tile", config, 4, shape)
        subtile = model.elementwise_overhead("subtile", config, 4, shape)
        subtoken = model.elementwise_overhead("subtoken", config, 4, shape)
        assert tile <= subtile <= subtoken

    def test_a800_cheaper_than_4090(self, config, shape):
        # Higher HBM bandwidth mitigates the irregular-access penalty.
        a800 = ReorderOverheadModel(A800).elementwise_overhead("subtoken", config, 4, shape)
        rtx = ReorderOverheadModel(RTX_4090).elementwise_overhead("subtoken", config, 4, shape)
        assert a800 < rtx

    def test_gemm_epilogue_overhead_under_one_percent(self, config, shape):
        # Table 5: pre-communication reorder adds <1% to the GEMM.
        for device in (A800, RTX_4090):
            model = ReorderOverheadModel(device)
            for unit in ("tile", "subtile", "subtoken"):
                overhead = model.gemm_epilogue_overhead(unit, config, 4, shape)
                assert 0.0 < overhead < 0.01

    def test_gemm_overhead_shrinks_with_k(self, config):
        model = ReorderOverheadModel(A800)
        small_k = model.gemm_epilogue_overhead("tile", config, 4, GemmShape(4096, 8192, 1024))
        large_k = model.gemm_epilogue_overhead("tile", config, 4, GemmShape(4096, 8192, 16384))
        assert large_k < small_k

    def test_small_matrices_cost_more(self, config):
        model = ReorderOverheadModel(A800)
        small = model.elementwise_overhead("tile", config, 4, GemmShape(128, 1024, 1024))
        large = model.elementwise_overhead("tile", config, 4, GemmShape(32768, 8192, 1024))
        assert small > large

    def test_unknown_unit_rejected(self, config, shape):
        model = ReorderOverheadModel(A800)
        with pytest.raises(ValueError):
            model.elementwise_overhead("block", config, 4, shape)
