"""Tests for tile gather/scatter helpers (repro.tensor.tiles)."""

import numpy as np
import pytest

from repro.tensor.layout import TileLayout
from repro.tensor.tiles import (
    extract_tile,
    gather_tiles,
    scatter_tile,
    scatter_tiles,
    split_tile_rows,
)


@pytest.fixture
def layout():
    return TileLayout(m=12, n=18, tile_m=4, tile_n=6)


@pytest.fixture
def matrix(layout, rng):
    return rng.standard_normal((layout.m, layout.n))


class TestExtractScatter:
    def test_extract_matches_slice(self, layout, matrix):
        rs, cs = layout.tile_slices(5)
        np.testing.assert_array_equal(extract_tile(matrix, layout, 5), matrix[rs, cs])

    def test_extract_returns_copy(self, layout, matrix):
        tile = extract_tile(matrix, layout, 0)
        tile[0, 0] = 1e9
        assert matrix[0, 0] != 1e9

    def test_scatter_round_trip(self, layout, matrix):
        out = np.zeros_like(matrix)
        for t in range(layout.num_tiles):
            scatter_tile(out, layout, t, extract_tile(matrix, layout, t))
        np.testing.assert_array_equal(out, matrix)

    def test_scatter_wrong_shape_raises(self, layout, matrix):
        with pytest.raises(ValueError):
            scatter_tile(matrix, layout, 0, np.zeros((2, 2)))

    def test_shape_mismatch_raises(self, layout):
        with pytest.raises(ValueError):
            extract_tile(np.zeros((3, 3)), layout, 0)


class TestGatherScatterBuffers:
    def test_gather_concatenates_in_order(self, layout, matrix):
        order = [3, 0, 7]
        buffer = gather_tiles(matrix, layout, order)
        expected = np.concatenate([extract_tile(matrix, layout, t).ravel() for t in order])
        np.testing.assert_array_equal(buffer, expected)

    def test_gather_empty(self, layout, matrix):
        assert gather_tiles(matrix, layout, []).size == 0

    def test_scatter_inverts_gather(self, layout, matrix):
        order = list(reversed(range(layout.num_tiles)))
        buffer = gather_tiles(matrix, layout, order)
        out = np.zeros_like(matrix)
        scatter_tiles(out, layout, order, buffer)
        np.testing.assert_array_equal(out, matrix)

    def test_scatter_buffer_too_short(self, layout, matrix):
        buffer = gather_tiles(matrix, layout, [0])
        with pytest.raises(ValueError):
            scatter_tiles(np.zeros_like(matrix), layout, [0, 1], buffer)

    def test_scatter_buffer_too_long(self, layout, matrix):
        buffer = gather_tiles(matrix, layout, [0, 1])
        with pytest.raises(ValueError):
            scatter_tiles(np.zeros_like(matrix), layout, [0], buffer)

    def test_ragged_layout_round_trip(self, rng):
        layout = TileLayout(m=10, n=13, tile_m=4, tile_n=5)
        matrix = rng.standard_normal((10, 13))
        order = list(range(layout.num_tiles))
        out = np.zeros_like(matrix)
        scatter_tiles(out, layout, order, gather_tiles(matrix, layout, order))
        np.testing.assert_array_equal(out, matrix)


class TestSplitTileRows:
    def test_split_even(self, rng):
        tile = rng.standard_normal((8, 6))
        parts = split_tile_rows(tile, 4)
        assert len(parts) == 4
        np.testing.assert_array_equal(np.concatenate(parts, axis=0), tile)

    def test_split_uneven_raises(self, rng):
        with pytest.raises(ValueError):
            split_tile_rows(rng.standard_normal((6, 4)), 4)

    def test_split_invalid_parts(self, rng):
        with pytest.raises(ValueError):
            split_tile_rows(rng.standard_normal((6, 4)), 0)
