"""Tests for parallelism configurations (repro.workloads.parallelism)."""

import pytest

from repro.workloads.parallelism import ParallelismConfig


class TestParallelismConfig:
    def test_world_size(self):
        assert ParallelismConfig(tp=8).world_size == 8
        assert ParallelismConfig(tp=4, pp=2).world_size == 8
        assert ParallelismConfig(tp=2, ep=4).world_size == 8
        assert ParallelismConfig().world_size == 1

    def test_collective_flags(self):
        assert ParallelismConfig(tp=2).uses_tensor_parallel_collectives
        assert not ParallelismConfig().uses_tensor_parallel_collectives
        assert ParallelismConfig(ep=8).uses_expert_parallel_collectives

    def test_sharding(self):
        config = ParallelismConfig(tp=4)
        assert config.shard_columns(28672) == 7168
        assert config.shard_rows(8192) == 2048

    def test_sharding_indivisible_rejected(self):
        with pytest.raises(ValueError):
            ParallelismConfig(tp=3).shard_columns(8192)

    def test_invalid_degrees(self):
        with pytest.raises(ValueError):
            ParallelismConfig(tp=0)
        with pytest.raises(ValueError):
            ParallelismConfig(ep=-1)

    def test_describe(self):
        assert ParallelismConfig(tp=8).describe() == "TP=8"
        assert "EP=4" in ParallelismConfig(tp=2, ep=4).describe()
        assert ParallelismConfig().describe() == "single GPU"
