"""Tests for the end-to-end estimator (repro.e2e.estimator / report)."""

import json

import pytest

from repro.core.config import OverlapSettings
from repro.e2e import EndToEndEstimator, estimate_models, make_plan_store
from repro.plans import PlanCache
from repro.sim.trace_export import export_chrome_trace, load_chrome_trace
from repro.workloads.e2e import build_workload, workload_builders

#: Small-but-real workload parameters shared by the suite (cheap to tune).
TOKENS = 2048
LAYERS = 3


@pytest.fixture
def settings():
    return OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


@pytest.fixture
def workload(settings):
    return build_workload("llama2-training", tokens=TOKENS, layers=LAYERS, settings=settings)


@pytest.fixture
def estimator(settings):
    return EndToEndEstimator(settings)


class TestEstimator:
    def test_totals_ordered_and_positive(self, estimator, workload):
        estimate = estimator.estimate(workload)
        assert 0 < estimate.theoretical_total <= estimate.non_overlap_total
        assert estimate.overlap_total < estimate.non_overlap_total
        assert estimate.speedup > 1.0
        assert estimate.bound_speedup >= estimate.speedup

    def test_repeated_layers_hit_plan_store(self, estimator, workload):
        estimate = estimator.estimate(workload)
        targets = sum(1 for op in workload.operators if op.is_overlap_target)
        stats = estimate.plan_stats
        assert stats["lookups"] == targets * LAYERS
        # Layers 2..N are pure hits; layer 1 may miss once per distinct shape.
        assert stats["hits"] >= targets * (LAYERS - 1)
        assert stats["hit_rate"] > 0
        assert stats["tuner_invocations"] == stats["misses"]

    def test_reuse_is_bit_identical(self, settings, workload):
        reused = EndToEndEstimator(settings).estimate(workload)
        unreused = EndToEndEstimator(settings, reuse=False).estimate(workload)
        assert reused.overlap_total == unreused.overlap_total
        assert reused.non_overlap_total == unreused.non_overlap_total
        assert reused.theoretical_total == unreused.theoretical_total
        assert unreused.plan_stats["hits"] == 0
        assert unreused.plan_stats["tuner_invocations"] == unreused.plan_stats["lookups"]

    def test_cross_workload_reuse(self, estimator, workload):
        first = estimator.estimate(workload)
        second = estimator.estimate(workload)
        assert second.plan_stats["misses"] == 0
        assert second.plan_stats["hit_rate"] == 1.0
        assert second.overlap_total == first.overlap_total

    def test_layer_totals_scale(self, settings):
        one = EndToEndEstimator(settings).estimate(
            build_workload("llama2-training", tokens=TOKENS, layers=1, settings=settings)
        )
        three = EndToEndEstimator(settings).estimate(
            build_workload("llama2-training", tokens=TOKENS, layers=3, settings=settings)
        )
        assert three.overlap_total == pytest.approx(3 * one.overlap_total, rel=1e-9)
        assert three.layer_overlap_latency == pytest.approx(one.overlap_total, rel=1e-9)

    def test_pattern_shares_sum_to_one(self, estimator, workload):
        shares = estimator.estimate(workload).pattern_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares.get("GEMM+RS", 0.0) > 0

    def test_settings_mismatch_rejected(self, estimator, settings):
        other = build_workload("llama2-training", tokens=TOKENS, layers=1,
                               settings=OverlapSettings(seed=42))
        with pytest.raises(ValueError, match="OverlapSettings"):
            estimator.estimate(other)

    def test_bucketed_store_rejected(self, settings):
        with pytest.raises(ValueError, match="exact-shape"):
            EndToEndEstimator(settings, plan_store=PlanCache(settings, bucketing=True))

    def test_make_plan_store_modes(self, settings):
        assert make_plan_store(settings).capacity > 0
        assert make_plan_store(settings, reuse=False).capacity == 0
        assert not make_plan_store(settings).bucketing


class TestTrace:
    def test_trace_matches_stream(self, estimator, workload, tmp_path):
        estimate = estimator.estimate(workload, record_trace=True)
        trace = estimate.trace
        assert trace is not None
        occurrences = LAYERS * sum(op.count for op in workload.operators)
        assert len(trace.spans) == occurrences
        trace.validate_stream_order()
        assert trace.makespan() == estimate.overlap_total
        payload = load_chrome_trace(export_chrome_trace(trace, tmp_path / "e2e.json"))
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == occurrences

    def test_trace_off_by_default(self, estimator, workload):
        assert estimator.estimate(workload).trace is None


class TestReport:
    def test_estimate_models_runs_all_five(self, settings):
        report = estimate_models(tokens=TOKENS, layers=2, settings=settings)
        assert len(report.estimates) == len(workload_builders()) == 5
        assert report.plan_stats["hit_rate"] > 0
        table = report.table()
        for estimate in report.estimates:
            assert estimate.name in table
        assert "plan hits" in table

    def test_report_tables_and_dict_are_stable(self, settings):
        kwargs = dict(names=["llama2-training"], tokens=TOKENS, layers=2, settings=settings)
        a = estimate_models(**kwargs)
        b = estimate_models(**kwargs)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(b.to_dict(), sort_keys=True)
        assert a.operator_table(a.estimates[0]) == b.operator_table(b.estimates[0])
        assert a.breakdown_table() == b.breakdown_table()

    def test_shared_estimator_across_models(self, settings):
        estimator = EndToEndEstimator(settings)
        estimate_models(names=["llama3-inference"], layers=1, settings=settings,
                        estimator=estimator)
        # Chunked-prefill serving shapes reappear in the second model's layers.
        again = estimate_models(names=["llama3-inference"], layers=1, settings=settings,
                                estimator=estimator)
        assert again.estimates[0].plan_stats["hit_rate"] == 1.0
