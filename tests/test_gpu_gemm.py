"""Tests for the GEMM kernel model (repro.gpu.gemm)."""

import numpy as np
import pytest

from repro.gpu.device import A800, RTX_4090
from repro.gpu.gemm import DTYPE_BYTES, GemmKernelModel, GemmShape, GemmTileConfig


class TestGemmShape:
    def test_flops_and_bytes(self):
        shape = GemmShape(m=128, n=256, k=64)
        assert shape.flops == 2 * 128 * 256 * 64
        assert shape.output_elements == 128 * 256
        assert shape.output_bytes() == 128 * 256 * DTYPE_BYTES
        assert shape.input_bytes() == (128 * 64 + 64 * 256) * DTYPE_BYTES
        assert shape.total_bytes() == shape.input_bytes() + shape.output_bytes()

    def test_arithmetic_intensity_grows_with_k(self):
        low = GemmShape(1024, 1024, 128).arithmetic_intensity()
        high = GemmShape(1024, 1024, 8192).arithmetic_intensity()
        assert high > low

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            GemmShape(0, 1, 1)


class TestTileConfig:
    def test_default_for_large_shape_uses_128x128(self):
        config = GemmTileConfig.default_for(GemmShape(8192, 8192, 4096), RTX_4090)
        assert (config.tile_m, config.tile_n) == (128, 128)

    def test_default_for_small_shape_shrinks_tiles(self):
        config = GemmTileConfig.default_for(GemmShape(256, 1024, 4096), RTX_4090)
        assert config.tile_m * config.tile_n < 128 * 128
        grid = -(-256 // config.tile_m) * (-(-1024 // config.tile_n))
        assert grid >= RTX_4090.sm_count or (config.tile_m, config.tile_n) == (32, 32)

    def test_tile_bytes(self):
        config = GemmTileConfig(tile_m=128, tile_n=128)
        assert config.tile_bytes() == 128 * 128 * 2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GemmTileConfig(tile_m=0)
        with pytest.raises(ValueError):
            GemmTileConfig(swizzle_size=-1)


class TestWaves:
    @pytest.fixture
    def model(self):
        # Paper Fig. 3 case: M=2048, N=K=8192 on an RTX 4090 with 128x256
        # tiles -> 512 tiles, 4 waves on 128 SMs.
        shape = GemmShape(m=2048, n=8192, k=8192)
        return GemmKernelModel(shape, RTX_4090, GemmTileConfig(tile_m=128, tile_n=256))

    def test_paper_wave_count_example(self, model):
        assert model.num_tiles == 512
        assert model.num_waves() == 4

    def test_wave_count_with_fewer_sms(self, model):
        assert model.num_waves(100) == -(-512 // 100)
        assert model.num_waves(sm_count=512) == 1

    def test_wave_tiles_cover_all_tiles(self, model):
        waves = model.wave_tiles()
        flattened = [t for wave in waves for t in wave]
        assert sorted(flattened) == list(range(model.num_tiles))
        assert [len(w) for w in waves] == model.wave_sizes()

    def test_execution_order_is_permutation(self, model):
        assert sorted(model.execution_order()) == list(range(model.num_tiles))

    def test_invalid_sm_count(self, model):
        with pytest.raises(ValueError):
            model.num_waves(0)


class TestDurations:
    def test_duration_increases_with_k(self):
        short = GemmKernelModel(GemmShape(4096, 8192, 1024), A800).duration()
        long = GemmKernelModel(GemmShape(4096, 8192, 8192), A800).duration()
        assert long > short

    def test_duration_increases_with_fewer_sms(self):
        model = GemmKernelModel(GemmShape(4096, 8192, 4096), A800)
        assert model.duration(sm_count=54) > model.duration(sm_count=108)

    def test_compute_bound_for_large_k(self):
        model = GemmKernelModel(GemmShape(4096, 8192, 8192), A800)
        assert model.compute_time() > model.memory_time()

    def test_tiny_k_collapses_efficiency(self):
        # Very small accumulation depth cannot amortise the tile prologue:
        # the model charges this as a large efficiency loss, so the time per
        # FLOP is far higher than for a deep GEMM.
        shallow = GemmKernelModel(GemmShape(8192, 8192, 64), A800)
        deep = GemmKernelModel(GemmShape(8192, 8192, 8192), A800)
        assert shallow.efficiency() < 0.3
        assert (shallow.duration() / shallow.shape.flops) > 3 * (
            deep.duration() / deep.shape.flops
        )

    def test_duration_is_roofline_plus_launch(self):
        model = GemmKernelModel(GemmShape(4096, 4096, 4096), A800)
        body = max(model.compute_time(), model.memory_time())
        assert model.duration(include_launch=False) == pytest.approx(body)
        assert model.duration() == pytest.approx(body + A800.kernel_launch_seconds)

    def test_efficiency_below_device_peak(self):
        model = GemmKernelModel(GemmShape(4096, 4096, 4096), A800)
        assert 0 < model.efficiency() < A800.compute_efficiency

    def test_realistic_magnitude(self):
        # 2*4096*8192*8192 = 0.55 TFLOP at ~250 TFLOPS -> a few milliseconds.
        model = GemmKernelModel(GemmShape(4096, 8192, 8192), A800)
        assert 1e-3 < model.duration() < 10e-3


class TestCompletionTimes:
    @pytest.fixture
    def model(self):
        return GemmKernelModel(GemmShape(2048, 8192, 8192), RTX_4090)

    def test_wave_completion_monotonic(self, model):
        times = model.wave_completion_times()
        assert np.all(np.diff(times) > 0)
        assert times[-1] == pytest.approx(model.duration(include_launch=False))

    def test_tile_times_form_waves(self, model):
        times = model.tile_completion_times(jitter=0.05, seed=0)
        waves = model.wave_tiles()
        wave_end = model.wave_completion_times()
        wave_len = model.wave_duration()
        for index, tiles in enumerate(waves):
            spread = times[tiles]
            assert np.all(spread <= wave_end[index] + 1e-12)
            assert np.all(spread >= wave_end[index] - 0.06 * wave_len)

    def test_tile_times_deterministic_per_seed(self, model):
        a = model.tile_completion_times(seed=3)
        b = model.tile_completion_times(seed=3)
        c = model.tile_completion_times(seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_group_bytes(self, model):
        tiles = model.wave_tiles()[0]
        assert model.group_bytes(tiles) == len(tiles) * 128 * 128 * 2
