"""Tests for the tile-grid geometry (repro.tensor.layout)."""

import pytest

from repro.tensor.layout import TileLayout


class TestGridGeometry:
    def test_uniform_grid_counts(self):
        layout = TileLayout(m=256, n=512, tile_m=64, tile_n=128)
        assert layout.grid_m == 4
        assert layout.grid_n == 4
        assert layout.num_tiles == 16
        assert layout.is_uniform()

    def test_ragged_grid_rounds_up(self):
        layout = TileLayout(m=100, n=130, tile_m=64, tile_n=64)
        assert layout.grid_m == 2
        assert layout.grid_n == 3
        assert layout.num_tiles == 6
        assert not layout.is_uniform()

    def test_single_tile_grid(self):
        layout = TileLayout(m=16, n=16, tile_m=64, tile_n=64)
        assert layout.num_tiles == 1
        assert layout.tile_shape(0) == (16, 16)

    @pytest.mark.parametrize("m,n,tile_m,tile_n", [(0, 4, 2, 2), (4, 0, 2, 2), (4, 4, 0, 2), (4, 4, 2, -1)])
    def test_invalid_dimensions_rejected(self, m, n, tile_m, tile_n):
        with pytest.raises(ValueError):
            TileLayout(m=m, n=n, tile_m=tile_m, tile_n=tile_n)


class TestIndexConversions:
    def test_coords_round_trip(self):
        layout = TileLayout(m=96, n=96, tile_m=32, tile_n=32)
        for index in range(layout.num_tiles):
            row, col = layout.tile_coords(index)
            assert layout.tile_index(row, col) == index

    def test_tile_index_is_row_major(self):
        layout = TileLayout(m=64, n=96, tile_m=32, tile_n=32)
        assert layout.tile_index(0, 0) == 0
        assert layout.tile_index(0, 2) == 2
        assert layout.tile_index(1, 0) == 3

    def test_out_of_range_index_raises(self):
        layout = TileLayout(m=64, n=64, tile_m=32, tile_n=32)
        with pytest.raises(IndexError):
            layout.tile_coords(4)
        with pytest.raises(IndexError):
            layout.tile_index(2, 0)

    def test_slices_cover_matrix_exactly_once(self):
        layout = TileLayout(m=100, n=70, tile_m=32, tile_n=32)
        covered = [[0] * layout.n for _ in range(layout.m)]
        for t in range(layout.num_tiles):
            rs, cs = layout.tile_slices(t)
            for r in range(rs.start, rs.stop):
                for c in range(cs.start, cs.stop):
                    covered[r][c] += 1
        assert all(all(v == 1 for v in row) for row in covered)

    def test_edge_tile_shape_is_clipped(self):
        layout = TileLayout(m=100, n=70, tile_m=32, tile_n=32)
        last = layout.num_tiles - 1
        rows, cols = layout.tile_shape(last)
        assert rows == 100 - 3 * 32
        assert cols == 70 - 2 * 32
        assert layout.tile_elements(last) == rows * cols


class TestRowHelpers:
    def test_tiles_in_row_block(self):
        layout = TileLayout(m=64, n=128, tile_m=32, tile_n=32)
        assert layout.tiles_in_row_block(1) == [4, 5, 6, 7]
        with pytest.raises(IndexError):
            layout.tiles_in_row_block(2)

    def test_row_block_of_row(self):
        layout = TileLayout(m=64, n=128, tile_m=32, tile_n=32)
        assert layout.row_block_of_row(0) == 0
        assert layout.row_block_of_row(31) == 0
        assert layout.row_block_of_row(32) == 1
        with pytest.raises(IndexError):
            layout.row_block_of_row(64)

    def test_tile_row_range_matches_slices(self):
        layout = TileLayout(m=80, n=64, tile_m=32, tile_n=32)
        for t in range(layout.num_tiles):
            rs, _ = layout.tile_slices(t)
            assert list(layout.tile_row_range(t)) == list(range(rs.start, rs.stop))

    def test_all_tile_indices(self):
        layout = TileLayout(m=64, n=64, tile_m=32, tile_n=32)
        assert layout.all_tile_indices() == [0, 1, 2, 3]
