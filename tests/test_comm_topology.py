"""Tests for interconnect topologies (repro.comm.topology)."""

import pytest

from repro.comm.topology import (
    InterconnectKind,
    Topology,
    a800_nvlink,
    ascend_hccs,
    known_topologies,
    rtx4090_pcie,
)


class TestTopology:
    def test_unit_conversions(self):
        topo = rtx4090_pcie(2)
        assert topo.peak_bus_bandwidth_bytes == pytest.approx(topo.peak_bus_bandwidth_gbps * 1e9)
        assert topo.base_latency_s == pytest.approx(topo.base_latency_us * 1e-6)
        assert topo.half_saturation_bytes == pytest.approx(topo.half_saturation_mb * 1024 * 1024)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Topology("x", 1, InterconnectKind.PCIE, 10.0, 1.0, 1.0, 2, False)
        with pytest.raises(ValueError):
            Topology("x", 2, InterconnectKind.PCIE, 0.0, 1.0, 1.0, 2, False)
        with pytest.raises(ValueError):
            Topology("x", 2, InterconnectKind.PCIE, 10.0, -1.0, 1.0, 2, False)
        with pytest.raises(ValueError):
            Topology("x", 2, InterconnectKind.PCIE, 10.0, 1.0, 1.0, -2, False)

    def test_scaling_to_more_gpus_reduces_bandwidth(self):
        two = rtx4090_pcie(2)
        eight = rtx4090_pcie(8)
        assert eight.n_gpus == 8
        assert eight.peak_bus_bandwidth_gbps < two.peak_bus_bandwidth_gbps
        assert eight.base_latency_us >= two.base_latency_us

    def test_scaling_preserves_p2p_and_kind(self):
        topo = a800_nvlink(8)
        assert topo.supports_p2p
        assert topo.kind is InterconnectKind.NVLINK_PAIRWISE

    def test_with_n_gpus_invalid(self):
        with pytest.raises(ValueError):
            rtx4090_pcie(2).with_n_gpus(1)


class TestPresets:
    def test_pcie_has_no_p2p(self):
        assert not rtx4090_pcie(4).supports_p2p

    def test_nvlink_much_faster_than_pcie(self):
        assert a800_nvlink(4).peak_bus_bandwidth_gbps > 5 * rtx4090_pcie(4).peak_bus_bandwidth_gbps

    def test_ascend_preset(self):
        topo = ascend_hccs(4)
        assert topo.kind is InterconnectKind.HCCS
        assert topo.n_gpus == 4

    def test_known_topologies(self):
        names = set(known_topologies())
        assert {"rtx4090-pcie", "a800-nvlink", "ascend910b-hccs", "a800-2node-ib",
                "tiny-pcie"} <= names

    def test_with_n_gpus_is_idempotent(self):
        # Presets are already scaled via with_n_gpus; re-applying the same GPU
        # count must be the identity (CLI/sweep paths go through the registry).
        for name, topo in known_topologies().items():
            assert topo.with_n_gpus(topo.n_gpus) == topo, name
            assert topo.with_n_gpus(8).with_n_gpus(8) == topo.with_n_gpus(8), name

    def test_with_n_gpus_is_path_independent(self):
        direct = a800_nvlink(2).with_n_gpus(8)
        via_four = a800_nvlink(2).with_n_gpus(4).with_n_gpus(8)
        assert via_four.peak_bus_bandwidth_gbps == pytest.approx(
            direct.peak_bus_bandwidth_gbps
        )
        assert via_four.base_latency_us == pytest.approx(direct.base_latency_us)

    def test_registry_matches_preset_builders(self):
        assert known_topologies()["a800-nvlink"].with_n_gpus(4) == a800_nvlink(4)
        assert known_topologies()["rtx4090-pcie"].with_n_gpus(4) == rtx4090_pcie(4)

    def test_scaling_down_never_beats_the_base_parameters(self):
        # A directly-built topology's numbers are taken at face value: scaling
        # the 16-GPU IB cluster down must not exceed its NIC-derived
        # bandwidth, nor undercut its InfiniBand base latency.
        from repro.comm.topology import multinode_a800

        cluster = multinode_a800(2, 8)
        smaller = cluster.with_n_gpus(8)
        assert smaller.peak_bus_bandwidth_gbps <= cluster.peak_bus_bandwidth_gbps
        assert smaller.base_latency_us >= cluster.base_latency_us
        bigger = cluster.with_n_gpus(32)
        assert bigger.peak_bus_bandwidth_gbps < cluster.peak_bus_bandwidth_gbps
        assert bigger.base_latency_us > cluster.base_latency_us

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_all_paper_gpu_counts_supported(self, n):
        for builder in (rtx4090_pcie, a800_nvlink, ascend_hccs):
            assert builder(n).n_gpus == n
