"""Unit tests of the pipeline schedule generators and the replay substrate.

The uniform-cost cases are hand-computed: with S=2 stages, M=4 microbatches
and f = b = w = 1, no transfer delay, the step times are 20 (GPipe with
recomputation), 15 (1F1B) and 13 (zero-bubble).
"""

import pytest

from repro.pp.schedule import (
    Cell,
    StageCostVector,
    critical_path,
    generate_schedule,
    gpipe_schedule,
    one_f_one_b_schedule,
    zero_bubble_schedule,
)
from repro.sim.replay import ReplayTask, replay_tasks

UNIFORM = (StageCostVector(1.0, 1.0, 1.0),) * 2


class TestReplay:
    def test_serial_resource_with_dependency_delay(self):
        tasks = [
            ReplayTask(name="a", resource="r0", duration=2.0),
            ReplayTask(name="b", resource="r1", duration=3.0, deps=(("a", 0.5),)),
            ReplayTask(name="c", resource="r1", duration=1.0),
        ]
        result = replay_tasks(tasks, record_trace=True)
        assert result.spans["a"] == (0.0, 2.0)
        assert result.spans["b"] == (2.5, 5.5)  # waits for a + 0.5 transfer
        assert result.spans["c"] == (5.5, 6.5)  # FIFO behind b on r1
        assert result.makespan == 6.5
        assert result.busy == {"r0": 2.0, "r1": 4.0}
        assert result.idle("r1") == pytest.approx(2.5)
        result.trace.validate_stream_order()

    def test_duplicate_and_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            replay_tasks([ReplayTask("a", "r", 1.0), ReplayTask("a", "r", 1.0)])
        with pytest.raises(ValueError, match="unknown task"):
            replay_tasks([ReplayTask("a", "r", 1.0, deps=(("ghost", 0.0),))])

    def test_cyclic_order_deadlocks_loudly(self):
        tasks = [
            ReplayTask(name="a", resource="r0", duration=1.0, deps=(("b", 0.0),)),
            ReplayTask(name="b", resource="r1", duration=1.0, deps=(("a", 0.0),)),
        ]
        with pytest.raises(RuntimeError, match="deadlocked"):
            replay_tasks(tasks)

    def test_empty_replay(self):
        assert replay_tasks([]).makespan == 0.0


class TestGeneratorStructure:
    @pytest.mark.parametrize("name", ["gpipe", "1f1b", "zero-bubble"])
    def test_cell_conservation(self, name):
        schedule = generate_schedule(name, UNIFORM, 4)
        for stage, order in enumerate(schedule.stage_orders):
            kinds = [cell.kind for cell in order]
            assert kinds.count("F") == 4
            assert kinds.count("B") == 4
            assert kinds.count("W") == (4 if name == "zero-bubble" else 0)
            assert all(cell.stage == stage for cell in order)
            assert sorted(c.microbatch for c in order if c.kind == "F") == [0, 1, 2, 3]

    def test_gpipe_orders_and_recompute(self):
        schedule = gpipe_schedule(UNIFORM, 2)
        assert [(c.kind, c.microbatch) for c in schedule.stage_orders[0]] == [
            ("F", 0), ("F", 1), ("B", 0), ("B", 1),
        ]
        # Backward cells carry the recomputed forward: duration f + b + w = 3.
        assert [c.duration for c in schedule.stage_orders[0]] == [1.0, 1.0, 3.0, 3.0]
        assert schedule.recompute == (1.0, 1.0)
        assert schedule.useful_work() == pytest.approx(2 * 2 * 3.0)

    def test_1f1b_warmup_depth_per_stage(self):
        schedule = one_f_one_b_schedule((StageCostVector(1.0, 1.0, 1.0),) * 3, 4)
        # Stage s warms up with min(M, S - s - 1) forwards.
        for stage, warmup in enumerate((2, 1, 0)):
            kinds = [c.kind for c in schedule.stage_orders[stage]]
            assert kinds[:warmup] == ["F"] * warmup
            assert kinds[warmup] == "F" and kinds[warmup + 1] == "B"

    def test_zero_bubble_splits_backward(self):
        schedule = zero_bubble_schedule(UNIFORM, 4)
        assert schedule.split_backward
        durations = {c.kind: c.duration for c in schedule.stage_orders[0]}
        assert durations == {"F": 1.0, "B": 1.0, "W": 1.0}

    def test_unknown_schedule_name(self):
        with pytest.raises(KeyError, match="unknown schedule"):
            generate_schedule("dualpipe", UNIFORM, 2)

    def test_degenerate_single_stage_single_microbatch(self):
        stages = (StageCostVector(2.0, 1.0, 0.5),)
        assert one_f_one_b_schedule(stages, 1).replay().makespan == 3.5
        assert zero_bubble_schedule(stages, 1).replay().makespan == 3.5
        # GPipe still pays the recomputation even on one stage.
        assert gpipe_schedule(stages, 1).replay().makespan == 5.5


class TestHandComputedSteps:
    def test_uniform_two_stage_steps(self):
        for name, expected in (("gpipe", 20.0), ("1f1b", 15.0), ("zero-bubble", 13.0)):
            schedule = generate_schedule(name, UNIFORM, 4)
            result = schedule.replay()
            assert result.makespan == expected, name
            assert critical_path(schedule) == expected, name

    def test_transfer_delays_stretch_the_pipeline(self):
        without = one_f_one_b_schedule(UNIFORM, 4).replay().makespan
        with_delay = one_f_one_b_schedule(UNIFORM, 4, fwd_delay=0.25, bwd_delay=0.25)
        assert with_delay.replay().makespan == pytest.approx(without + 4 * 0.25)

    def test_dependencies_of_cells(self):
        schedule = one_f_one_b_schedule(UNIFORM, 2, fwd_delay=0.1, bwd_delay=0.2)
        assert schedule.dependencies(Cell(1, 0, "F", 1.0)) == [("F0@s0", 0.1)]
        assert schedule.dependencies(Cell(0, 1, "B", 2.0)) == [
            ("F1@s0", 0.0), ("B1@s1", 0.2),
        ]
        assert schedule.dependencies(Cell(0, 1, "W", 1.0)) == [("B1@s0", 0.0)]

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="at least one stage"):
            gpipe_schedule((), 2)
        with pytest.raises(ValueError, match="microbatches"):
            one_f_one_b_schedule(UNIFORM, 0)
        with pytest.raises(ValueError, match="non-negative"):
            StageCostVector(-1.0, 1.0, 1.0)
