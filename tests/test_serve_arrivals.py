"""Tests for the request-traffic generators (repro.serve.arrivals)."""

import json

import numpy as np
import pytest

from repro.serve.arrivals import (
    PoissonArrivals,
    Request,
    TraceArrivals,
    distribution_by_name,
    length_distributions,
)


class TestRequest:
    def test_total_tokens(self):
        r = Request(request_id=0, arrival_time=0.5, prompt_tokens=100, output_tokens=20)
        assert r.total_tokens == 120

    def test_rejects_invalid_lengths(self):
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_time=0.0, prompt_tokens=0, output_tokens=1)
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_time=-1.0, prompt_tokens=1, output_tokens=1)


class TestLengthDistributions:
    def test_known_names(self):
        assert {"chat", "summarize", "code", "fixed"} <= set(length_distributions())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown length distribution"):
            distribution_by_name("does-not-exist")

    @pytest.mark.parametrize("name", sorted(length_distributions()))
    def test_samples_within_declared_ranges(self, name):
        dist = distribution_by_name(name)
        rng = np.random.default_rng(7)
        for _ in range(200):
            prompt, output = dist.sample(rng)
            assert dist.prompt_range[0] <= prompt <= dist.prompt_range[1]
            assert dist.output_range[0] <= output <= dist.output_range[1]

    def test_fixed_distribution_has_no_variance(self):
        dist = distribution_by_name("fixed")
        rng = np.random.default_rng(0)
        samples = {dist.sample(rng) for _ in range(32)}
        assert len(samples) == 1


class TestPoissonArrivals:
    def _gen(self, **kwargs):
        defaults = dict(
            rate_rps=20.0,
            distribution=distribution_by_name("chat"),
            seed=0,
            num_requests=40,
        )
        defaults.update(kwargs)
        return PoissonArrivals(**defaults)

    def test_same_seed_same_requests(self):
        assert self._gen().generate() == self._gen().generate()

    def test_different_seed_different_requests(self):
        assert self._gen().generate() != self._gen(seed=1).generate()

    def test_request_count_and_ordering(self):
        requests = self._gen(num_requests=25).generate()
        assert len(requests) == 25
        assert [r.request_id for r in requests] == list(range(25))
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)

    def test_rate_sets_mean_gap(self):
        requests = self._gen(rate_rps=100.0, num_requests=500).generate()
        gaps = np.diff([0.0] + [r.arrival_time for r in requests])
        assert np.mean(gaps) == pytest.approx(1 / 100.0, rel=0.2)

    def test_duration_bounds_the_window(self):
        requests = self._gen(num_requests=None, duration_s=2.0).generate()
        assert requests
        assert all(r.arrival_time <= 2.0 for r in requests)

    def test_requires_some_bound(self):
        with pytest.raises(ValueError, match="bound the traffic"):
            self._gen(num_requests=None, duration_s=None)


class TestTraceArrivals:
    def test_records_sorted_and_reindexed(self):
        trace = TraceArrivals.from_records(
            [
                {"arrival_time": 2.0, "prompt_tokens": 10, "output_tokens": 5},
                {"arrival_time": 1.0, "prompt_tokens": 20, "output_tokens": 8},
            ]
        )
        requests = trace.generate()
        assert [r.arrival_time for r in requests] == [1.0, 2.0]
        assert [r.request_id for r in requests] == [0, 1]
        assert requests[0].prompt_tokens == 20

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [
            {"arrival_time": 0.1, "prompt_tokens": 64, "output_tokens": 16},
            {"arrival_time": 0.3, "prompt_tokens": 128, "output_tokens": 32},
        ]
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n", encoding="utf-8"
        )
        requests = TraceArrivals.from_jsonl(path).generate()
        assert len(requests) == 2
        assert requests[1].prompt_tokens == 128
        assert requests[1].arrival_time == pytest.approx(0.3)
