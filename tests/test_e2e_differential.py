"""Property-based differential tests of the e2e and pipeline estimators.

For random small workloads the estimator must be a pure aggregator:

* the whole-model total equals the in-order sum of *independently* simulated
  operators when plan reuse is disabled (no hidden coupling between
  operators), and
* enabling plan reuse changes wall-clock cost only -- every reported latency
  is bit-identical to the no-reuse run.

The pipeline estimator (:mod:`repro.pp`) must degenerate to the e2e
estimator: with one stage and one microbatch its embedded e2e totals are
bit-identical to a plain e2e estimate of the same workload (same code path,
same plan store), the non-recomputing schedules' step time collapses to the
whole-model total, and plan-store reuse stays a pure optimisation for
pipeline runs too.

Shapes are tiny (8x8 tiles on an 8-SM device) so each tuner invocation costs
milliseconds; the process-level offline-profile memoization keeps repeated
examples cheap.
"""

import pytest
from hypothesis import HealthCheck, given, settings as hsettings
from hypothesis import strategies as st

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import InterconnectKind, Topology
from repro.core.config import OverlapProblem, OverlapSettings
from repro.e2e import EndToEndEstimator, make_plan_store
from repro.gpu.device import GPUSpec
from repro.gpu.gemm import GemmShape, GemmTileConfig
from repro.pp import PipelineEstimator
from repro.workloads.operators import EndToEndWorkload, OperatorInstance
from repro.workloads.pipeline import PipelineWorkload, partition_layers

TINY_DEVICE = GPUSpec(
    name="tiny-gpu",
    sm_count=8,
    fp16_tflops=4.0,
    hbm_bandwidth_gbps=200.0,
    compute_efficiency=0.8,
    kernel_launch_us=5.0,
)
TINY_TOPOLOGY = Topology(
    name="tiny-pcie",
    n_gpus=4,
    kind=InterconnectKind.PCIE,
    peak_bus_bandwidth_gbps=10.0,
    base_latency_us=20.0,
    half_saturation_mb=0.5,
    comm_sm_count=2,
    supports_p2p=False,
)
TINY_TILES = GemmTileConfig(tile_m=8, tile_n=8, tile_k=8, swizzle_size=2)
FAST = OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


@st.composite
def overlap_problems(draw) -> OverlapProblem:
    m = draw(st.sampled_from([16, 32, 48, 64]))
    n = draw(st.sampled_from([16, 32, 64]))
    k = draw(st.sampled_from([32, 64]))
    collective = draw(
        st.sampled_from(
            [CollectiveKind.ALL_REDUCE, CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALL_TO_ALL]
        )
    )
    imbalance = draw(st.sampled_from([1.0, 1.2]))
    return OverlapProblem(
        shape=GemmShape(m=m, n=n, k=k),
        device=TINY_DEVICE,
        topology=TINY_TOPOLOGY,
        collective=collective,
        gemm_config=TINY_TILES,
        imbalance=imbalance,
    )


@st.composite
def operators(draw, index: int = 0) -> OperatorInstance:
    count = draw(st.integers(min_value=1, max_value=2))
    # Mix forward, input-gradient and weight-gradient operators (the naming
    # convention repro.pp.pricing classifies cells by).
    name = draw(
        st.sampled_from([f"op{index}", f"bwd-op{index}", f"bwd-wgrad-op{index}"])
    )
    if draw(st.booleans()):
        return OperatorInstance(
            name=name, problem=draw(overlap_problems()), count=count
        )
    latency = draw(
        st.floats(min_value=1e-6, max_value=1e-3, allow_nan=False, allow_infinity=False)
    )
    return OperatorInstance(name=name, other_latency=latency, count=count)


@st.composite
def workloads(draw) -> EndToEndWorkload:
    n_ops = draw(st.integers(min_value=1, max_value=5))
    ops = [draw(operators(index=i)) for i in range(n_ops)]
    layers = draw(st.integers(min_value=1, max_value=3))
    return EndToEndWorkload(name="random", operators=ops, layers=layers, settings=FAST)


@hsettings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workloads())
def test_total_is_sum_of_independent_operators(workload):
    """No reuse: the total is the chained sum of per-operator simulations."""
    estimate = EndToEndEstimator(FAST, reuse=False).estimate(workload)

    expected_overlap = 0.0
    expected_non_overlap = 0.0
    for _ in range(workload.layers):
        for op in workload.operators:
            if op.problem is not None:
                # A fresh, reuse-free store per operator: fully independent.
                plan = make_plan_store(FAST, reuse=False).lookup(op.problem)
                overlap, non_overlap = plan.overlap_latency, plan.non_overlap_latency
            else:
                overlap = non_overlap = op.other_latency
            for _ in range(op.count):
                expected_overlap += overlap
                expected_non_overlap += non_overlap

    assert estimate.overlap_total == expected_overlap
    assert estimate.non_overlap_total == expected_non_overlap


@hsettings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workloads())
def test_reuse_is_bit_identical_to_no_reuse(workload):
    """Plan reuse is a pure optimisation: every reported number is unchanged."""
    reused = EndToEndEstimator(FAST, reuse=True).estimate(workload)
    unreused = EndToEndEstimator(FAST, reuse=False).estimate(workload)

    assert reused.overlap_total == unreused.overlap_total
    assert reused.non_overlap_total == unreused.non_overlap_total
    assert reused.theoretical_total == unreused.theoretical_total
    for a, b in zip(reused.operators, unreused.operators):
        assert a.overlap_latency == b.overlap_latency
        assert a.non_overlap_latency == b.non_overlap_latency
        assert a.theoretical_latency == b.theoretical_latency
        assert a.use_overlap == b.use_overlap


# -- pipeline estimator differentials -----------------------------------------------


@st.composite
def pipeline_workloads(draw) -> PipelineWorkload:
    workload = draw(workloads())
    stages = draw(st.integers(min_value=1, max_value=min(2, workload.layers)))
    microbatches = draw(st.integers(min_value=1, max_value=3))
    return PipelineWorkload(
        name="random-pipeline",
        microbatch=workload,
        stage_layers=partition_layers(workload.layers, stages),
        microbatches=microbatches,
        activation_bytes=draw(st.sampled_from([0.0, 64 * 16 * 2.0])),
        topology=TINY_TOPOLOGY,
    )


@hsettings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workloads())
def test_pipeline_s1m1_degenerates_to_e2e(workload):
    """One stage, one microbatch: the pipeline run IS the e2e estimate."""
    pipeline = PipelineWorkload(
        name="degenerate",
        microbatch=workload,
        stage_layers=(workload.layers,),
        microbatches=1,
    )
    estimate = PipelineEstimator(FAST).estimate(pipeline)
    reference = EndToEndEstimator(FAST).estimate(workload)

    # The embedded e2e totals are bit-identical (same code path, same plan
    # store latencies) -- including the per-operator table and the hit/miss
    # stats of a fresh store.
    assert estimate.microbatch_estimate.to_dict() == reference.to_dict()

    # Without pipelining there are no bubbles: the non-recomputing schedules
    # collapse to the straight-through model total (the float sums group
    # per-cell rather than per-occurrence, hence approx, not ==).  A
    # forward-only stream gets its backward synthesized as ~2x forward, so
    # its step is three model totals.
    factor = 3.0 if estimate.synthesized_backward else 1.0
    for name in ("1f1b", "zero-bubble"):
        schedule = estimate.schedules[name]
        expected = factor * reference.overlap_total
        assert schedule.step_latency == pytest.approx(expected, rel=1e-9)
        assert schedule.bubble_ratio == pytest.approx(0.0, abs=1e-9)
        non_overlap = schedule.methods["non-overlap"].step_latency
        assert non_overlap == pytest.approx(factor * reference.non_overlap_total, rel=1e-9)
        bound = schedule.methods["theoretical"].step_latency
        assert bound == pytest.approx(factor * reference.theoretical_total, rel=1e-9)
    # GPipe still pays its activation recomputation even on one stage
    # (equality only when the stream has no forward work to recompute).
    assert (
        estimate.schedules["gpipe"].step_latency
        >= estimate.schedules["1f1b"].step_latency
    )


@hsettings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(pipeline=pipeline_workloads())
def test_pipeline_reuse_is_bit_identical(pipeline):
    """Plan-store reuse never changes a pipeline schedule estimate."""
    reused = PipelineEstimator(FAST, reuse=True).estimate(pipeline)
    unreused = PipelineEstimator(FAST, reuse=False).estimate(pipeline)

    assert reused.microbatch_estimate.overlap_total == unreused.microbatch_estimate.overlap_total
    for name, schedule in reused.schedules.items():
        other = unreused.schedules[name]
        for method, result in schedule.methods.items():
            assert result.step_latency == other.methods[method].step_latency
            assert result.bubble_ratio == other.methods[method].bubble_ratio
            assert result.stage_busy == other.methods[method].stage_busy
            assert result.useful_work == other.methods[method].useful_work
