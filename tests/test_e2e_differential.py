"""Property-based differential tests of the e2e estimator.

For random small workloads the estimator must be a pure aggregator:

* the whole-model total equals the in-order sum of *independently* simulated
  operators when plan reuse is disabled (no hidden coupling between
  operators), and
* enabling plan reuse changes wall-clock cost only -- every reported latency
  is bit-identical to the no-reuse run.

Shapes are tiny (8x8 tiles on an 8-SM device) so each tuner invocation costs
milliseconds; the process-level offline-profile memoization keeps repeated
examples cheap.
"""

from hypothesis import HealthCheck, given, settings as hsettings
from hypothesis import strategies as st

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import InterconnectKind, Topology
from repro.core.config import OverlapProblem, OverlapSettings
from repro.e2e import EndToEndEstimator, make_plan_store
from repro.gpu.device import GPUSpec
from repro.gpu.gemm import GemmShape, GemmTileConfig
from repro.workloads.operators import EndToEndWorkload, OperatorInstance

TINY_DEVICE = GPUSpec(
    name="tiny-gpu",
    sm_count=8,
    fp16_tflops=4.0,
    hbm_bandwidth_gbps=200.0,
    compute_efficiency=0.8,
    kernel_launch_us=5.0,
)
TINY_TOPOLOGY = Topology(
    name="tiny-pcie",
    n_gpus=4,
    kind=InterconnectKind.PCIE,
    peak_bus_bandwidth_gbps=10.0,
    base_latency_us=20.0,
    half_saturation_mb=0.5,
    comm_sm_count=2,
    supports_p2p=False,
)
TINY_TILES = GemmTileConfig(tile_m=8, tile_n=8, tile_k=8, swizzle_size=2)
FAST = OverlapSettings(executor_jitter=0.0, bandwidth_profile_noise=0.0)


@st.composite
def overlap_problems(draw) -> OverlapProblem:
    m = draw(st.sampled_from([16, 32, 48, 64]))
    n = draw(st.sampled_from([16, 32, 64]))
    k = draw(st.sampled_from([32, 64]))
    collective = draw(
        st.sampled_from(
            [CollectiveKind.ALL_REDUCE, CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALL_TO_ALL]
        )
    )
    imbalance = draw(st.sampled_from([1.0, 1.2]))
    return OverlapProblem(
        shape=GemmShape(m=m, n=n, k=k),
        device=TINY_DEVICE,
        topology=TINY_TOPOLOGY,
        collective=collective,
        gemm_config=TINY_TILES,
        imbalance=imbalance,
    )


@st.composite
def operators(draw, index: int = 0) -> OperatorInstance:
    count = draw(st.integers(min_value=1, max_value=2))
    if draw(st.booleans()):
        return OperatorInstance(
            name=f"op{index}", problem=draw(overlap_problems()), count=count
        )
    latency = draw(
        st.floats(min_value=1e-6, max_value=1e-3, allow_nan=False, allow_infinity=False)
    )
    return OperatorInstance(name=f"op{index}", other_latency=latency, count=count)


@st.composite
def workloads(draw) -> EndToEndWorkload:
    n_ops = draw(st.integers(min_value=1, max_value=5))
    ops = [draw(operators(index=i)) for i in range(n_ops)]
    layers = draw(st.integers(min_value=1, max_value=3))
    return EndToEndWorkload(name="random", operators=ops, layers=layers, settings=FAST)


@hsettings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workloads())
def test_total_is_sum_of_independent_operators(workload):
    """No reuse: the total is the chained sum of per-operator simulations."""
    estimate = EndToEndEstimator(FAST, reuse=False).estimate(workload)

    expected_overlap = 0.0
    expected_non_overlap = 0.0
    for _ in range(workload.layers):
        for op in workload.operators:
            if op.problem is not None:
                # A fresh, reuse-free store per operator: fully independent.
                plan = make_plan_store(FAST, reuse=False).lookup(op.problem)
                overlap, non_overlap = plan.overlap_latency, plan.non_overlap_latency
            else:
                overlap = non_overlap = op.other_latency
            for _ in range(op.count):
                expected_overlap += overlap
                expected_non_overlap += non_overlap

    assert estimate.overlap_total == expected_overlap
    assert estimate.non_overlap_total == expected_non_overlap


@hsettings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(workload=workloads())
def test_reuse_is_bit_identical_to_no_reuse(workload):
    """Plan reuse is a pure optimisation: every reported number is unchanged."""
    reused = EndToEndEstimator(FAST, reuse=True).estimate(workload)
    unreused = EndToEndEstimator(FAST, reuse=False).estimate(workload)

    assert reused.overlap_total == unreused.overlap_total
    assert reused.non_overlap_total == unreused.non_overlap_total
    assert reused.theoretical_total == unreused.theoretical_total
    for a, b in zip(reused.operators, unreused.operators):
        assert a.overlap_latency == b.overlap_latency
        assert a.non_overlap_latency == b.non_overlap_latency
        assert a.theoretical_latency == b.theoretical_latency
        assert a.use_overlap == b.use_overlap
