"""Tests for the high-level FlashOverlapOperator (repro.core.overlap)."""

import pytest

from repro.comm.primitives import CollectiveKind
from repro.core.config import OverlapProblem
from repro.core.overlap import FlashOverlapOperator
from repro.core.wave_grouping import WavePartition
from repro.gpu.gemm import GemmShape


@pytest.fixture
def operator(small_problem, fast_settings):
    return FlashOverlapOperator(small_problem, fast_settings)


@pytest.fixture
def paper_operator(paper_problem_4090, fast_settings):
    return FlashOverlapOperator(paper_problem_4090, fast_settings)


class TestPlanning:
    def test_plan_covers_all_tiles(self, operator):
        plan = operator.plan()
        plan.reorder_plan.validate()
        assert plan.partition.num_waves == operator.executor.num_waves()
        assert plan.num_groups == plan.partition.num_groups

    def test_plan_is_cached_for_tuned_partition(self, operator):
        assert operator.plan() is operator.plan()

    def test_explicit_partition_not_cached(self, operator):
        explicit = operator.plan(WavePartition.single_group(operator.executor.num_waves()))
        assert explicit.tuning is None
        assert explicit is not operator.plan()

    def test_plan_describe(self, paper_operator):
        text = paper_operator.plan().describe()
        assert "waves" in text

    def test_tuned_plan_records_tuning(self, paper_operator):
        plan = paper_operator.plan()
        assert plan.tuning is not None
        assert plan.tuning.partition == plan.partition


class TestPerformance:
    def test_report_fields_consistent(self, paper_operator):
        report = paper_operator.report()
        assert report.overlap_latency < report.non_overlap_latency
        assert report.theoretical_latency <= report.non_overlap_latency
        assert report.speedup > 1.0
        assert report.speedup == pytest.approx(
            report.non_overlap_latency / report.overlap_latency
        )
        assert 0 < report.ratio_of_theoretical <= 1.1

    def test_speedup_in_paper_range(self, paper_operator):
        # Operator-level speedups in the paper stay within (1.0, 1.65].
        assert 1.0 < paper_operator.speedup() < 1.75

    def test_misconfigured_partition_is_slower(self, paper_operator):
        tuned = paper_operator.simulate().latency
        waves = paper_operator.executor.num_waves()
        misconfigured = paper_operator.simulate(
            paper_operator.plan(WavePartition.single_group(waves))
        ).latency
        assert tuned <= misconfigured

    def test_sequential_fallback_used_when_overlap_hurts(self, fast_settings):
        # Tiny communication + heavy SM contention: the tuner should fall back.
        from repro.comm.topology import a800_nvlink
        from repro.gpu.device import A800

        problem = OverlapProblem(
            shape=GemmShape(4096, 4096, 16384),
            device=A800,
            topology=a800_nvlink(2),
            collective=CollectiveKind.REDUCE_SCATTER,
        )
        operator = FlashOverlapOperator(problem, fast_settings)
        report = operator.report()
        # Whether or not the fallback triggers, FlashOverlap never loses more
        # than the modeling noise against the sequential execution.
        assert report.speedup > 0.97

    def test_simulate_accepts_explicit_plan(self, paper_operator):
        plan = paper_operator.plan(WavePartition.equal_groups(paper_operator.executor.num_waves(), 2))
        result = paper_operator.simulate(plan)
        assert result.partition == plan.partition


class TestNumericCorrectness:
    def test_allreduce_numeric(self, operator):
        result = operator.run_numeric()
        assert result.allclose()

    def test_allreduce_numeric_with_real_gemm(self, operator):
        result = operator.run_numeric(compute_gemm=True)
        assert result.allclose()

    def test_reduce_scatter_numeric(self, small_problem, fast_settings):
        problem = small_problem.with_collective(CollectiveKind.REDUCE_SCATTER)
        operator = FlashOverlapOperator(problem, fast_settings)
        assert operator.run_numeric().allclose()

    def test_all_to_all_numeric(self, small_problem, fast_settings):
        problem = small_problem.with_collective(CollectiveKind.ALL_TO_ALL)
        operator = FlashOverlapOperator(problem, fast_settings)
        assert operator.run_numeric().allclose()

    def test_numeric_deterministic_with_seed(self, operator):
        a = operator.run_numeric()
        b = operator.run_numeric()
        assert a.max_abs_error() == b.max_abs_error()
