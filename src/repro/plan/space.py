"""Search-space enumeration of the auto-parallelism planner.

The joint space is TP degree x pipeline stages x microbatch count x schedule
x overlap on/off.  TP and stages are coupled through the cluster: every GPU
belongs to exactly one (tensor-parallel group, pipeline stage) pair, so
``tp * stages == cluster.total_gpus`` -- enumerating valid TP degrees fixes
the stage count.  Infeasible combinations are not errors: each one is
recorded as a :class:`SkippedCandidate` with its reason, so a search report
always accounts for the whole requested space (nothing is silently
dropped).  Constraints that need the workload builder (token divisibility,
layers vs. stages, per-model parallelism rules) are discovered by the
planner when it attempts the build; this module checks only the cluster
arithmetic.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.cluster import ClusterSpec

__all__ = [
    "CandidateShell",
    "SkippedCandidate",
    "default_tp_degrees",
    "enumerate_shells",
]

#: Microbatch counts searched when the caller does not restrict the axis.
DEFAULT_MICROBATCH_COUNTS = (1, 2, 4, 8)


@dataclass(frozen=True)
class CandidateShell:
    """One (tp, stages, microbatches) cell before partition expansion."""

    tp: int
    stages: int
    microbatches: int


@dataclass(frozen=True)
class SkippedCandidate:
    """One infeasible or unevaluated cell and why it was left out."""

    tp: int
    stages: int | None
    microbatches: int | None
    reason: str

    def to_dict(self) -> dict:
        return {
            "tp": self.tp,
            "stages": self.stages,
            "microbatches": self.microbatches,
            "reason": self.reason,
        }


def default_tp_degrees(total_gpus: int) -> tuple[int, ...]:
    """Every TP degree the cluster supports: divisors of the GPU count >= 2.

    Degree 1 is excluded -- the overlap substrate models GEMM + *collective*
    pairs, and a collective needs at least two ranks (``Topology`` enforces
    the same floor).
    """
    return tuple(d for d in range(2, total_gpus + 1) if total_gpus % d == 0)


def enumerate_shells(
    cluster: ClusterSpec,
    tp_degrees: Sequence[int] | None = None,
    microbatch_counts: Sequence[int] | None = None,
) -> tuple[list[CandidateShell], list[SkippedCandidate]]:
    """Expand the requested axes into feasible shells plus skip records."""
    total = cluster.total_gpus
    degrees = tuple(tp_degrees) if tp_degrees else default_tp_degrees(total)
    counts = tuple(microbatch_counts) if microbatch_counts else DEFAULT_MICROBATCH_COUNTS

    shells: list[CandidateShell] = []
    skipped: list[SkippedCandidate] = []
    for tp in sorted(set(degrees)):
        if tp < 2:
            skipped.append(
                SkippedCandidate(tp, None, None, "a tensor-parallel group needs >= 2 GPUs")
            )
            continue
        if total % tp != 0:
            skipped.append(
                SkippedCandidate(
                    tp, None, None, f"TP={tp} does not divide the {total}-GPU cluster"
                )
            )
            continue
        stages = total // tp
        for microbatches in sorted(set(counts)):
            if microbatches < 1:
                skipped.append(
                    SkippedCandidate(tp, stages, microbatches, "microbatches must be >= 1")
                )
                continue
            shells.append(CandidateShell(tp=tp, stages=stages, microbatches=microbatches))
    return shells, skipped
