"""Pareto frontier of plan candidates: step latency vs. peak activation memory.

Every candidate the planner prices becomes a :class:`PlanPoint` -- one
(parallelism config, schedule, execution method) combination with its two
objective coordinates.  The frontier keeps the non-dominated subset under
*strict* dominance (better-or-equal on both axes, strictly better on at
least one); exact coordinate ties are collapsed to the deterministically
first config so the reported frontier never contains two points that
dominate -- or duplicate -- each other (the hypothesis suite asserts both).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

__all__ = ["PlanPoint", "dominates", "pareto_frontier"]


@dataclass(frozen=True)
class PlanPoint:
    """One priced candidate configuration and its objective coordinates."""

    workload: str
    tp: int
    stages: int
    microbatches: int
    partition: tuple[int, ...]
    schedule: str
    method: str  # "overlap" | "non-overlap" -- the on/off axis of the search
    partitioner: str
    step_latency: float
    peak_activation_bytes: float
    bubble_ratio: float
    speedup: float

    @property
    def config_key(self) -> tuple:
        """Deterministic identity/tie-break key of the configuration."""
        return (
            self.workload,
            self.tp,
            self.stages,
            self.microbatches,
            self.partition,
            self.schedule,
            self.method,
        )

    def describe(self) -> str:
        return (
            f"TP={self.tp} PP={self.stages} mb={self.microbatches} "
            f"{self.schedule}/{self.method} partition={self.partition}"
        )

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "tp": self.tp,
            "stages": self.stages,
            "microbatches": self.microbatches,
            "partition": list(self.partition),
            "schedule": self.schedule,
            "method": self.method,
            "partitioner": self.partitioner,
            "step_latency": self.step_latency,
            "peak_activation_bytes": self.peak_activation_bytes,
            "bubble_ratio": self.bubble_ratio,
            "speedup": self.speedup,
        }


def dominates(a: PlanPoint, b: PlanPoint) -> bool:
    """True when ``a`` strictly dominates ``b`` (<= both axes, < in one)."""
    if a.step_latency > b.step_latency or a.peak_activation_bytes > b.peak_activation_bytes:
        return False
    return (
        a.step_latency < b.step_latency
        or a.peak_activation_bytes < b.peak_activation_bytes
    )


def pareto_frontier(points: Iterable[PlanPoint]) -> list[PlanPoint]:
    """The non-dominated subset, sorted by step latency ascending.

    One sweep over the latency-sorted points keeps a candidate exactly when
    it improves the running memory minimum: equal-latency/higher-memory
    points are dominated by the first of their latency class, and exact
    coordinate ties collapse to the config-key-first point.  The result
    contains no dominated and no duplicate coordinates by construction.
    """
    ordered: Sequence[PlanPoint] = sorted(
        points,
        key=lambda p: (p.step_latency, p.peak_activation_bytes, p.config_key),
    )
    frontier: list[PlanPoint] = []
    best_memory = float("inf")
    for point in ordered:
        if point.peak_activation_bytes < best_memory:
            frontier.append(point)
            best_memory = point.peak_activation_bytes
    return frontier
