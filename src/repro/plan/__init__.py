"""Auto-parallelism planner: joint search over TP x PP x microbatches x
schedule x overlap, priced through the shared plan store (``repro plan``)."""

from repro.plan.frontier import PlanPoint, dominates, pareto_frontier
from repro.plan.memory import peak_activation_bytes, stage_activation_bytes
from repro.plan.planner import (
    PLAN_METHODS,
    ParallelismPlan,
    estimate_plan,
    replay_plan,
    search_plan,
    verify_replay,
)
from repro.plan.report import PlanSearchReport
from repro.plan.space import (
    CandidateShell,
    SkippedCandidate,
    default_tp_degrees,
    enumerate_shells,
)

__all__ = [
    "PLAN_METHODS",
    "CandidateShell",
    "ParallelismPlan",
    "PlanPoint",
    "PlanSearchReport",
    "SkippedCandidate",
    "default_tp_degrees",
    "dominates",
    "enumerate_shells",
    "estimate_plan",
    "pareto_frontier",
    "peak_activation_bytes",
    "replay_plan",
    "search_plan",
    "stage_activation_bytes",
    "verify_replay",
]
