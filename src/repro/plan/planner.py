"""The joint auto-parallelism planner: search, prune, pick, emit, replay.

``search_plan`` answers ROADMAP open item 1 -- "given this workload and
cluster, what configuration should I run?" -- by sweeping TP degree x
pipeline stages x microbatch count x schedule x overlap on/off and pricing
every candidate through one shared plan store, so an operator shape tuned
for one configuration is reused by every other configuration that produces
it (the reported hit rate is the measure of that sharing).

The search works in *batches*: one :class:`~repro.pp.PipelineEstimator`
run prices a (tp, stages, microbatches, partition) cell under every
schedule and every execution method at once, because the estimator already
generates and replays all of them from the same priced stream -- the
schedule and overlap axes are free riders on one batch.  Each batch
contributes ``len(schedules) x len(methods)`` candidate points; the
frontier and the winner are chosen over the points.

Dominated batches are pruned *before* being priced: a batch's step latency
is bounded below by ``microbatches x bottleneck stage useful work`` (the
bottleneck stage is a serial resource that must execute every cell, and
the perfect-overlap method under-estimates every realizable one) and its
memory by the cheapest schedule's exact in-flight accounting, so when an
already-priced point beats both bounds, no point of the batch can reach
the frontier (ties collapse to the earlier config).  ``prune=False``
disables this; the property suite asserts the frontier is identical either
way.

The winning point is emitted as a :class:`ParallelismPlan` -- a versioned
JSON document that replays *bit-identically* through the existing
``repro pp`` / ``repro e2e`` estimation paths (:func:`verify_replay`
asserts exact float equality, not tolerance).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.cluster import ClusterSpec
from repro.core.config import DEFAULT_SETTINGS, OverlapSettings
from repro.e2e import estimate_models
from repro.plan.frontier import PlanPoint, pareto_frontier
from repro.plan.memory import peak_activation_bytes
from repro.plan.report import PlanSearchReport
from repro.plan.space import SkippedCandidate, enumerate_shells
from repro.pp import PipelineEstimator, estimate_pipelines
from repro.pp.estimator import PipelineEstimate
from repro.pp.pricing import price_pipeline
from repro.pp.schedule import KNOWN_SCHEDULES
from repro.workloads.pipeline import (
    PipelineWorkload,
    build_pipeline_workload,
    partition_layers_weighted,
)

__all__ = [
    "ParallelismPlan",
    "search_plan",
    "estimate_plan",
    "verify_replay",
]

#: Execution methods a plan can select (the overlap on/off axis).  The
#: perfect-overlap bound is priced anyway (it rides along in every batch)
#: but is not a runnable configuration, so it never becomes a point.
PLAN_METHODS = ("non-overlap", "overlap")

PLAN_VERSION = 1


@dataclass(frozen=True)
class ParallelismPlan:
    """One winning configuration, serialisable and bit-identically replayable."""

    workload: str
    tokens: int
    layers: int | None
    cluster: ClusterSpec
    tp: int
    stages: int
    microbatches: int
    partition: tuple[int, ...]
    schedule: str
    method: str
    seed: int
    predicted: dict = field(default_factory=dict)
    version: int = PLAN_VERSION

    def describe(self) -> str:
        return (
            f"{self.workload}: TP={self.tp} x PP={self.stages} "
            f"(partition {self.partition}), {self.microbatches} microbatches, "
            f"{self.schedule} schedule, {self.method} execution"
        )

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "workload": self.workload,
            "tokens": self.tokens,
            "layers": self.layers,
            "cluster": self.cluster.to_dict(),
            "tp": self.tp,
            "stages": self.stages,
            "microbatches": self.microbatches,
            "partition": list(self.partition),
            "schedule": self.schedule,
            "method": self.method,
            "seed": self.seed,
            "predicted": self.predicted,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ParallelismPlan":
        version = payload.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ValueError(f"unsupported plan version {version} (expected {PLAN_VERSION})")
        return cls(
            workload=payload["workload"],
            tokens=payload["tokens"],
            layers=payload.get("layers"),
            cluster=ClusterSpec.from_dict(payload.get("cluster", {})),
            tp=payload["tp"],
            stages=payload["stages"],
            microbatches=payload["microbatches"],
            partition=tuple(payload["partition"]),
            schedule=payload["schedule"],
            method=payload["method"],
            seed=payload.get("seed", 0),
            predicted=payload.get("predicted", {}),
        )

    def save(self, path: str | Path) -> Path:
        from repro.atomic import atomic_write_text

        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "ParallelismPlan":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


@dataclass
class _Batch:
    """One (tp, stages, microbatches, partition) cell ready to price."""

    tp: int
    stages: int
    microbatches: int
    partition: tuple[int, ...]
    partitioner: str
    workload: PipelineWorkload
    lb_latency: float
    lb_memory: float

    @property
    def sort_key(self) -> tuple:
        return (self.lb_latency, self.tp, self.microbatches, self.partition)

    def skip_dict(self, reason: str) -> dict:
        return {
            "tp": self.tp,
            "stages": self.stages,
            "microbatches": self.microbatches,
            "partition": list(self.partition),
            "reason": reason,
            "lb_step_latency": self.lb_latency,
            "lb_peak_activation_bytes": self.lb_memory,
        }


def _memory_lower_bound(
    schedules: Sequence[str], stage_layers: tuple[int, ...], microbatches: int, act: float
) -> float:
    """Min over schedules of each schedule's activation-memory floor.

    GPipe's peak is exactly ``M`` boundary tensors; 1F1B's per-stage peak is
    exactly ``min(M, S - s)`` full stage states (its cell order depends only
    on the shape, not the durations); zero-bubble frees activations at the
    *deferred* W cell, so its peak is never below 1F1B's.
    """
    num_stages = len(stage_layers)
    bounds = []
    for name in schedules:
        if name == "gpipe":
            bounds.append(microbatches * act)
        else:
            bounds.append(
                max(
                    min(microbatches, num_stages - s) * act * layers
                    for s, layers in enumerate(stage_layers)
                )
            )
    return min(bounds)


def _batch_points(
    batch: _Batch,
    estimate: PipelineEstimate,
    schedules: Sequence[str],
    methods: Sequence[str],
) -> list[PlanPoint]:
    points = []
    for name in schedules:
        schedule_estimate = estimate.schedules[name]
        non_overlap = schedule_estimate.methods["non-overlap"].step_latency
        for method in methods:
            result = schedule_estimate.methods[method]
            memory = peak_activation_bytes(
                estimate.stage_layers,
                estimate.activation_bytes,
                result.stage_peak_microbatches,
                recompute=(name == "gpipe"),
            )
            points.append(
                PlanPoint(
                    workload=batch.workload.name,
                    tp=batch.tp,
                    stages=batch.stages,
                    microbatches=batch.microbatches,
                    partition=batch.partition,
                    schedule=name,
                    method=method,
                    partitioner=batch.partitioner,
                    step_latency=result.step_latency,
                    peak_activation_bytes=memory,
                    bubble_ratio=result.bubble_ratio,
                    speedup=non_overlap / result.step_latency,
                )
            )
    return points


def search_plan(
    workload: str = "llama3-training",
    cluster: ClusterSpec | None = None,
    tokens: int | None = None,
    layers: int | None = None,
    tp_degrees: Sequence[int] | None = None,
    microbatch_counts: Sequence[int] | None = None,
    schedules: Sequence[str] = tuple(KNOWN_SCHEDULES),
    methods: Sequence[str] = PLAN_METHODS,
    settings: OverlapSettings = DEFAULT_SETTINGS,
    layer_weights: Sequence[float] | None = None,
    max_configs: int | None = None,
    prune: bool = True,
    deadline_s: float | None = None,
    clock: Callable[[], float] | None = None,
    estimator: PipelineEstimator | None = None,
) -> PlanSearchReport:
    """Search the joint parallelism space of one workload on one cluster.

    ``layer_weights`` overrides the per-layer costs the weighted partitioner
    splits on (the registry's transformer stacks repeat one layer, so the
    derived weights are uniform and the weighted split coincides with the
    balanced one; heterogeneous stacks make them diverge).  ``max_configs``
    bounds the number of priced batches (skipped ones are reported, never
    silently dropped); ``prune=False`` disables dominated-batch pruning.

    ``deadline_s`` bounds the *wall clock* of the pricing loop: batches are
    priced best-bound-first, so when the budget runs out the report holds the
    best-so-far frontier, the remaining batches land in ``space["pruned"]``
    and ``space["truncated"]`` is set.  ``clock`` (default
    :func:`repro.obs.now`, so an active observability session's fake clock
    drives the deadline too) exists so tests can drive the deadline with a
    fake clock.
    """
    cluster = cluster or ClusterSpec()
    estimator = estimator or PipelineEstimator(settings)
    schedules = tuple(name for name in KNOWN_SCHEDULES if name in set(schedules))
    if not schedules:
        raise ValueError(f"no known schedules requested; known: {sorted(KNOWN_SCHEDULES)}")
    for method in methods:
        if method not in PLAN_METHODS:
            raise ValueError(f"unknown plan method {method!r}; known: {PLAN_METHODS}")

    # Search accounting is registered up front so the counters appear in every
    # profile snapshot, even for searches that never prune or skip a batch.
    evaluated_counter = obs.counter("plan.batches_evaluated")
    pruned_counter = obs.counter("plan.batches_pruned")
    skipped_counter = obs.counter("plan.batches_skipped")

    # -- expand shells into priced-workload batches (balanced + weighted) --------
    with obs.span("plan.enumerate", workload=workload) as enumerate_span:
        shells, skipped = enumerate_shells(cluster, tp_degrees, microbatch_counts)
        hits_before, misses_before = estimator.plan_store.hits, estimator.plan_store.misses
        batches: list[_Batch] = []
        topologies: dict[int, object] = {}
        for shell in shells:
            if shell.tp not in topologies:
                try:
                    topologies[shell.tp] = cluster.topology_for_tp(shell.tp)
                except ValueError as error:
                    topologies[shell.tp] = error
            topology = topologies[shell.tp]
            if isinstance(topology, Exception):
                skipped.append(
                    SkippedCandidate(shell.tp, shell.stages, shell.microbatches, str(topology))
                )
                continue
            try:
                balanced = build_pipeline_workload(
                    workload,
                    stages=shell.stages,
                    microbatches=shell.microbatches,
                    tokens=tokens,
                    device=cluster.device_spec,
                    topology=topology,
                    layers=layers,
                    settings=settings,
                )
            except (KeyError, ValueError) as error:
                skipped.append(
                    SkippedCandidate(shell.tp, shell.stages, shell.microbatches, str(error))
                )
                continue
            # Per-layer costs through the shared plan store (cheap: the stream's
            # shapes are cached after the first shell that produces them).  The
            # registry stacks repeat one layer, so the derived weights are
            # uniform unless the caller supplies heterogeneous ones.
            costs = price_pipeline(balanced, estimator.e2e)
            stage0 = costs.stages[0]
            overlap0 = stage0.vector("overlap")
            bound0 = stage0.vector("theoretical")
            per_layer_overlap = (overlap0.forward + overlap0.dgrad + overlap0.wgrad) / stage0.layers
            per_layer_bound = (bound0.forward + bound0.dgrad + bound0.wgrad) / stage0.layers
            total_layers = balanced.microbatch.layers
            weights = list(layer_weights) if layer_weights else [per_layer_overlap] * total_layers
            if len(weights) != total_layers:
                raise ValueError(
                    f"layer_weights has {len(weights)} entries for a "
                    f"{total_layers}-layer stack"
                )
            weighted = partition_layers_weighted(weights, shell.stages)

            partitions = [(balanced.stage_layers, "balanced")]
            if weighted != balanced.stage_layers:
                partitions.append((weighted, "weighted"))
            elif shell.stages > 1:
                partitions = [(balanced.stage_layers, "balanced=weighted")]
            for stage_layers, partitioner in partitions:
                if stage_layers == balanced.stage_layers:
                    pipeline_workload = balanced
                else:
                    pipeline_workload = build_pipeline_workload(
                        workload,
                        stages=shell.stages,
                        microbatches=shell.microbatches,
                        tokens=tokens,
                        device=cluster.device_spec,
                        topology=topology,
                        layers=layers,
                        settings=settings,
                        partition=stage_layers,
                    )
                batches.append(
                    _Batch(
                        tp=shell.tp,
                        stages=shell.stages,
                        microbatches=shell.microbatches,
                        partition=stage_layers,
                        partitioner=partitioner,
                        workload=pipeline_workload,
                        lb_latency=(
                            shell.microbatches * per_layer_bound * max(stage_layers)
                        ),
                        lb_memory=_memory_lower_bound(
                            schedules,
                            stage_layers,
                            shell.microbatches,
                            pipeline_workload.activation_bytes,
                        ),
                    )
                )
        skipped_counter.inc(len(skipped))
        enumerate_span.note(shells=len(shells), batches=len(batches), skipped=len(skipped))

    # -- price batches best-bound-first, pruning dominated ones ------------------
    points: list[PlanPoint] = []
    estimates: dict[tuple, PipelineEstimate] = {}
    pruned: list[dict] = []
    evaluated = 0
    truncated = False
    clock = clock or obs.now
    with obs.span("plan.price") as price_span:
        search_start = clock()
        for batch in sorted(batches, key=lambda b: b.sort_key):
            if deadline_s is not None and clock() - search_start >= deadline_s:
                truncated = True
                pruned.append(batch.skip_dict("wall-clock deadline exceeded"))
                pruned_counter.inc()
                continue
            if max_configs is not None and evaluated >= max_configs:
                pruned.append(batch.skip_dict("search budget exhausted (max_configs)"))
                pruned_counter.inc()
                continue
            if prune and any(
                p.step_latency <= batch.lb_latency and p.peak_activation_bytes <= batch.lb_memory
                for p in points
            ):
                pruned.append(batch.skip_dict("dominated by a priced point (lower bounds)"))
                pruned_counter.inc()
                continue
            with obs.span(
                "plan.price_batch",
                tp=batch.tp,
                stages=batch.stages,
                microbatches=batch.microbatches,
            ):
                estimate = estimator.estimate(batch.workload, schedules=schedules)
            estimates[(batch.tp, batch.stages, batch.microbatches, batch.partition)] = estimate
            points.extend(_batch_points(batch, estimate, schedules, methods))
            evaluated += 1
            evaluated_counter.inc()
        price_span.note(evaluated=evaluated, pruned=len(pruned), truncated=truncated)

    with obs.span("plan.frontier"):
        frontier = pareto_frontier(points)
        winner_plan = None
        if frontier:
            winner = min(
                points, key=lambda p: (p.step_latency, p.peak_activation_bytes, p.config_key)
            )
            estimate = estimates[(winner.tp, winner.stages, winner.microbatches, winner.partition)]
            e2e = estimate.microbatch_estimate
            winner_plan = ParallelismPlan(
                workload=workload,
                tokens=estimate.microbatch_tokens * winner.microbatches,
                layers=layers,
                cluster=cluster,
                tp=winner.tp,
                stages=winner.stages,
                microbatches=winner.microbatches,
                partition=winner.partition,
                schedule=winner.schedule,
                method=winner.method,
                seed=settings.seed,
                predicted={
                    "step_latency": winner.step_latency,
                    "peak_activation_bytes": winner.peak_activation_bytes,
                    "bubble_ratio": winner.bubble_ratio,
                    "speedup": winner.speedup,
                    "microbatch_tokens": estimate.microbatch_tokens,
                    "e2e": {
                        "overlap_total": e2e.overlap_total,
                        "non_overlap_total": e2e.non_overlap_total,
                        "theoretical_total": e2e.theoretical_total,
                    },
                },
            )

    lookups = (estimator.plan_store.hits - hits_before) + (
        estimator.plan_store.misses - misses_before
    )
    search_hits = estimator.plan_store.hits - hits_before
    plan_stats = dict(estimator.plan_store.stats())
    plan_stats["search_lookups"] = lookups
    plan_stats["search_hit_rate"] = search_hits / lookups if lookups else 0.0
    return PlanSearchReport(
        meta={
            "workload": workload,
            "tokens": tokens,
            "layers": layers,
            "cluster": cluster.to_dict(),
            "tp_degrees": sorted({shell.tp for shell in shells}),
            "microbatch_counts": sorted({shell.microbatches for shell in shells}),
            "schedules": list(schedules),
            "methods": list(methods),
            "seed": settings.seed,
            "prune": prune,
            "max_configs": max_configs,
            "deadline_s": deadline_s,
        },
        points=points,
        frontier=frontier,
        winner=winner_plan,
        space={
            "total_gpus": cluster.total_gpus,
            "shells": len(shells),
            "batches": len(batches),
            "evaluated": evaluated,
            "points": len(points),
            "skipped": [skip.to_dict() for skip in skipped],
            "pruned": pruned,
            "truncated": truncated,
        },
        plan_stats=plan_stats,
    )


def _plan_settings(plan: ParallelismPlan, settings: OverlapSettings | None) -> OverlapSettings:
    return settings or OverlapSettings(seed=plan.seed)


def replay_plan(
    plan: ParallelismPlan,
    settings: OverlapSettings | None = None,
    record_trace: bool = False,
):
    """Replay one plan through the ``repro pp`` estimation path (fresh store).

    Returns the full :class:`~repro.pp.report.PipelineReport` (one workload,
    the plan's schedule only) -- what ``repro pp --plan`` renders.
    """
    return estimate_pipelines(
        names=[plan.workload],
        stages=plan.stages,
        microbatches=plan.microbatches,
        schedules=(plan.schedule,),
        tokens=plan.tokens,
        device=plan.cluster.device_spec,
        topology=plan.cluster.topology_for_tp(plan.tp),
        layers=plan.layers,
        settings=_plan_settings(plan, settings),
        record_trace=record_trace,
        partition=plan.partition,
    )


def estimate_plan(
    plan: ParallelismPlan,
    settings: OverlapSettings | None = None,
    record_trace: bool = False,
) -> PipelineEstimate:
    """The single workload estimate of :func:`replay_plan`."""
    return replay_plan(plan, settings, record_trace).estimates[0]


def verify_replay(plan: ParallelismPlan, settings: OverlapSettings | None = None) -> dict:
    """Replay a plan through ``repro pp`` and ``repro e2e``; compare bit-exactly.

    Returns per-quantity ``{"predicted", "replayed", "matches"}`` entries and
    an overall ``"matches"`` flag.  Matching means Python float equality --
    the planner's numbers are reproducible, not merely approximable.
    """
    settings = _plan_settings(plan, settings)
    estimate = estimate_plan(plan, settings)
    result = estimate.schedules[plan.schedule].methods[plan.method]
    memory = peak_activation_bytes(
        estimate.stage_layers,
        estimate.activation_bytes,
        result.stage_peak_microbatches,
        recompute=(plan.schedule == "gpipe"),
    )
    e2e_report = estimate_models(
        names=[plan.workload],
        tokens=plan.predicted["microbatch_tokens"],
        device=plan.cluster.device_spec,
        topology=plan.cluster.topology_for_tp(plan.tp),
        layers=plan.layers,
        settings=settings,
    )
    e2e = e2e_report.estimates[0]
    predicted_e2e = plan.predicted.get("e2e", {})
    pairs = {
        "step_latency": (plan.predicted["step_latency"], result.step_latency),
        "peak_activation_bytes": (plan.predicted["peak_activation_bytes"], memory),
        "bubble_ratio": (plan.predicted["bubble_ratio"], result.bubble_ratio),
        "e2e_overlap_total": (predicted_e2e.get("overlap_total"), e2e.overlap_total),
        "e2e_non_overlap_total": (
            predicted_e2e.get("non_overlap_total"), e2e.non_overlap_total
        ),
        "e2e_theoretical_total": (
            predicted_e2e.get("theoretical_total"), e2e.theoretical_total
        ),
    }
    checks = {
        name: {"predicted": predicted, "replayed": replayed, "matches": predicted == replayed}
        for name, (predicted, replayed) in pairs.items()
    }
    return {"checks": checks, "matches": all(entry["matches"] for entry in checks.values())}
