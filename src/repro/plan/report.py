"""The planner's report: frontier, winner, search accounting, store stats.

``to_dict()`` is JSON-stable and deterministic (no wall-clock anywhere), so
``repro plan --json`` output can be diffed, replayed and asserted against
the :func:`repro.api.plan` facade byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.reporting import ReportMixin, format_table
from repro.plan.frontier import PlanPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner imports us)
    from repro.plan.planner import ParallelismPlan

__all__ = ["PlanSearchReport"]


@dataclass
class PlanSearchReport(ReportMixin):
    """One search's priced points, Pareto frontier and winning plan."""

    meta: dict = field(default_factory=dict)
    points: list[PlanPoint] = field(default_factory=list)
    frontier: list[PlanPoint] = field(default_factory=list)
    winner: "ParallelismPlan | None" = None
    space: dict = field(default_factory=dict)
    plan_stats: dict = field(default_factory=dict)

    # -- rendering -------------------------------------------------------------------

    def _point_rows(self, points: list[PlanPoint]) -> list[list]:
        rows = []
        for point in points:
            rows.append(
                [
                    point.tp,
                    point.stages,
                    point.microbatches,
                    str(point.partition),
                    point.schedule,
                    point.method,
                    f"{point.step_latency * 1e3:.3f}",
                    f"{point.peak_activation_bytes / 2**20:.1f}",
                    f"{point.bubble_ratio * 100:.1f}%",
                    f"{point.speedup:.3f}x",
                ]
            )
        return rows

    _POINT_HEADERS = (
        "tp", "pp", "mb", "partition", "schedule", "method",
        "step (ms)", "peak act (MiB)", "bubble", "speedup",
    )

    def frontier_table(self) -> str:
        """The Pareto frontier, fastest first."""
        return format_table(
            list(self._POINT_HEADERS),
            self._point_rows(self.frontier),
            title=(
                f"Pareto frontier: {len(self.frontier)} non-dominated of "
                f"{len(self.points)} priced configurations"
            ),
        )

    def summary_table(self) -> str:
        lines = [self.frontier_table()]
        if self.winner is not None:
            predicted = self.winner.predicted
            lines.append("")
            lines.append(f"winner : {self.winner.describe()}")
            lines.append(
                f"         step {predicted['step_latency'] * 1e3:.3f} ms, "
                f"peak activations {predicted['peak_activation_bytes'] / 2**20:.1f} MiB, "
                f"bubble {predicted['bubble_ratio'] * 100:.1f}%, "
                f"speedup {predicted['speedup']:.3f}x"
            )
        space = self.space
        if space:
            line = (
                f"search : {space['evaluated']}/{space['batches']} batches priced "
                f"({len(space['pruned'])} pruned/budgeted, "
                f"{len(space['skipped'])} infeasible), {space['points']} points"
            )
            if space.get("truncated"):
                line += " [TRUNCATED: wall-clock deadline hit, frontier is best-so-far]"
            lines.append(line)
        stats = self.plan_stats
        if stats:
            lines.append(
                f"store  : {stats['size']} plans, {stats['search_lookups']} lookups, "
                f"{stats['search_hit_rate'] * 100:.1f}% hits, "
                f"{stats['tuner_invocations']} tuner invocations"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return self._with_observability({
            "meta": self.meta,
            "space": self.space,
            "points": [point.to_dict() for point in self.points],
            "frontier": [point.to_dict() for point in self.frontier],
            "winner": self.winner.to_dict() if self.winner is not None else None,
            "plan_store": self.plan_stats,
        })
