"""Peak activation memory of one scheduled pipeline configuration.

The second objective axis of the planner.  The schedule walk
(:func:`repro.pp.schedule.stage_peak_inflight`) already counted how many
microbatches' activations each stage holds at its high-water mark; this
module converts that count into bytes:

* under GPipe the backward *recomputes* the stage's forward from the
  stage-boundary activation, so only that boundary tensor
  (``activation_bytes``: one microbatch's ``tokens x hidden`` slab) is held
  per in-flight microbatch;
* 1F1B and zero-bubble keep the full forward state, modelled as one
  hidden-sized tensor per layer of the stage -- a deliberate simplification
  (real stacks also store attention/MLP intermediates, a constant factor
  that cancels when *comparing* configurations).

The configuration's reported memory is the busiest stage's bytes: stages
are separate GPUs, so the per-device peak -- not the sum -- is what must
fit in HBM.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["stage_activation_bytes", "peak_activation_bytes"]


def stage_activation_bytes(
    stage_layers: Sequence[int],
    activation_bytes: float,
    stage_peak_microbatches: Sequence[int],
    recompute: bool,
) -> tuple[float, ...]:
    """Per-stage activation high-water mark in bytes."""
    if len(stage_layers) != len(stage_peak_microbatches):
        raise ValueError(
            f"stage partition {tuple(stage_layers)} and peak counts "
            f"{tuple(stage_peak_microbatches)} disagree on the stage count"
        )
    return tuple(
        peak * (activation_bytes if recompute else activation_bytes * layers)
        for layers, peak in zip(stage_layers, stage_peak_microbatches)
    )


def peak_activation_bytes(
    stage_layers: Sequence[int],
    activation_bytes: float,
    stage_peak_microbatches: Sequence[int],
    recompute: bool,
) -> float:
    """The busiest stage's activation bytes (the per-GPU peak)."""
    return max(
        stage_activation_bytes(
            stage_layers, activation_bytes, stage_peak_microbatches, recompute
        )
    )
