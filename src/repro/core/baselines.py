"""Baseline overlap methods the paper compares against (Table 1, Fig. 10/11).

Each baseline is a latency model over the same substrate (GEMM kernel model +
collective latency model) so that comparisons isolate the *method*, not the
modeling assumptions:

* **Non-overlap** -- sequential cuBLAS GEMM followed by one NCCL call.
* **Vanilla decomposition** -- the GEMM is split along ``M`` into chunks; each
  chunk's GEMM and collective form a software pipeline (cuBLAS + NCCL calls).
  Fragmentation hurts twice: small GEMMs waste SMs (wave quantisation) and
  small messages waste bandwidth (Fig. 8).
* **Async-TP** -- PyTorch's decomposition over P2P copy engines; needs NVLink.
* **FLUX** -- fusion-based tile-wise overlap; interferes with the GEMM but
  avoids a separate epilogue round-trip, which wins for small ``K``.
* **cuBLASMp** -- NVIDIA's fused distributed GEMM, modeled like FLUX with
  slightly more conservative constants.

The class attributes ``tile_wise`` / ``interference_free`` / ``comm_agnostic``
encode Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.gpu.gemm import GemmShape


@dataclass(frozen=True)
class BaselineResult:
    """Latency of one baseline on one problem."""

    method: str
    latency: float
    supported: bool = True

    def speedup_over(self, reference_latency: float) -> float:
        if not self.supported:
            raise ValueError(f"{self.method} is not supported on this problem")
        return reference_latency / self.latency


class BaselineMethod:
    """Interface shared by all baseline latency models."""

    name: str = "baseline"
    #: Table 1 feature flags.
    tile_wise: bool = False
    interference_free: bool = False
    comm_agnostic: bool = False
    requires_p2p: bool = False

    def __init__(self, settings: OverlapSettings = DEFAULT_SETTINGS) -> None:
        self.settings = settings

    def supports(self, problem: OverlapProblem) -> bool:
        """Whether the method can run on the problem's topology."""
        if self.requires_p2p and not problem.topology.supports_p2p:
            return False
        return True

    def latency(self, problem: OverlapProblem) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def evaluate(self, problem: OverlapProblem) -> BaselineResult:
        if not self.supports(problem):
            return BaselineResult(method=self.name, latency=float("inf"), supported=False)
        return BaselineResult(method=self.name, latency=self.latency(problem))


class NonOverlapBaseline(BaselineMethod):
    """Sequential execution: the normalisation reference of every figure."""

    name = "non-overlap"
    interference_free = True
    comm_agnostic = True

    def latency(self, problem: OverlapProblem) -> float:
        gemm = problem.gemm_model().duration(include_launch=True) * problem.imbalance
        comm_model = problem.collective_model()
        comm = comm_model.latency(problem.output_bytes() * problem.imbalance)
        return gemm + comm + self.settings.comm_launch_s


class VanillaDecompositionBaseline(BaselineMethod):
    """Decomposition over cuBLAS + NCCL calls along the ``M`` dimension."""

    name = "vanilla-decomposition"
    comm_agnostic = True

    #: Slow-down of each fragmented GEMM chunk relative to the monolithic
    #: kernel (lost tail-wave utilisation and L2 reuse) -- decomposition is
    #: not interference-free (Table 1).
    fragmentation_penalty = 0.05

    def __init__(self, num_chunks: int = 4, settings: OverlapSettings = DEFAULT_SETTINGS) -> None:
        super().__init__(settings)
        if num_chunks < 1:
            raise ValueError("num_chunks must be >= 1")
        self.num_chunks = num_chunks

    def _chunk_shapes(self, problem: OverlapProblem) -> list[GemmShape]:
        shape = problem.shape
        chunks = min(self.num_chunks, shape.m)
        base = shape.m // chunks
        remainder = shape.m - base * chunks
        rows = [base + (1 if i < remainder else 0) for i in range(chunks)]
        return [GemmShape(m=r, n=shape.n, k=shape.k) for r in rows if r > 0]

    def latency(self, problem: OverlapProblem) -> float:
        comm_model = problem.collective_model()
        shapes = self._chunk_shapes(problem)
        # The chunked GEMMs run concurrently with the NCCL kernels of earlier
        # chunks, so they also pay the SM contention.
        compute_sms = problem.compute_sm_count()
        compute_end = 0.0
        comm_end = 0.0
        for index, chunk in enumerate(shapes):
            chunk_problem = problem.with_shape(chunk)
            sm_budget = None if index == 0 else compute_sms
            gemm = chunk_problem.gemm_model().duration(sm_budget, include_launch=True)
            gemm *= problem.imbalance * (1.0 + self.fragmentation_penalty)
            compute_end += gemm
            payload = chunk.output_bytes(problem.dtype_bytes) * problem.imbalance
            comm = comm_model.latency(payload) + self.settings.comm_launch_s
            comm_end = max(comm_end, compute_end) + comm
        return comm_end


class AsyncTPBaseline(VanillaDecompositionBaseline):
    """PyTorch Async-TP: decomposition over peer-to-peer copies (NVLink only).

    The copy-engine transfers skip the NCCL launch overhead and achieve close
    to peak link bandwidth, but the decomposition still fragments the GEMM.
    """

    name = "async-tp"
    comm_agnostic = False
    requires_p2p = True

    def __init__(self, num_chunks: int | None = None, settings: OverlapSettings = DEFAULT_SETTINGS) -> None:
        super().__init__(num_chunks=num_chunks or 4, settings=settings)

    def latency(self, problem: OverlapProblem) -> float:
        comm_model = problem.collective_model()
        shapes = self._chunk_shapes(problem)
        peak = problem.topology.peak_bus_bandwidth_bytes
        compute_end = 0.0
        comm_end = 0.0
        for chunk in shapes:
            chunk_problem = problem.with_shape(chunk)
            gemm = chunk_problem.gemm_model().duration(include_launch=True)
            gemm *= problem.imbalance * (1.0 + self.fragmentation_penalty)
            compute_end += gemm
            payload = chunk.output_bytes(problem.dtype_bytes) * problem.imbalance
            wire = comm_model.wire_bytes(payload)
            # P2P copies: near-peak bandwidth, small fixed cost per chunk
            # (symmetric-memory barrier + copy launch).
            comm = wire / (peak * 0.92) + 15e-6
            comm_end = max(comm_end, compute_end) + comm
        return comm_end


class FluxFusionBaseline(BaselineMethod):
    """FLUX-style kernel fusion of the GEMM and the collective."""

    name = "flux"
    tile_wise = True
    requires_p2p = True

    #: Main-loop slow-down caused by communication instructions in the kernel.
    interference = 0.12
    #: Fraction of peak link bandwidth the hand-written transfers reach.
    transfer_efficiency = 0.78
    #: Fraction of the output write-back traffic the fusion saves (the result
    #: is pushed to the remote GPU instead of being re-read by NCCL).
    epilogue_saving = 0.6
    #: Fraction of the shorter phase left exposed by the fused schedule.
    exposed_fraction = 0.12

    def latency(self, problem: OverlapProblem) -> float:
        gemm = problem.gemm_model()
        comm_model = problem.collective_model()
        compute = gemm.compute_time() * (1.0 + self.interference)
        memory = gemm.memory_time()
        saved = (
            problem.output_bytes()
            / problem.device.memory_bytes_per_second
            * self.epilogue_saving
        )
        memory = max(0.0, memory - saved)
        gemm_part = max(compute, memory) + problem.device.kernel_launch_seconds
        gemm_part *= problem.imbalance
        wire = comm_model.wire_bytes(problem.output_bytes() * problem.imbalance)
        comm_part = wire / (problem.topology.peak_bus_bandwidth_bytes * self.transfer_efficiency)
        comm_part += problem.topology.base_latency_s
        # Tile-wise fusion overlaps almost everything; the longer phase
        # dominates and part of the shorter phase stays exposed (warm-up,
        # drain and per-tile synchronisation).
        exposed = min(gemm_part, comm_part) * self.exposed_fraction
        return max(gemm_part, comm_part) + exposed


class CublasMpBaseline(FluxFusionBaseline):
    """cuBLASMp-style fused distributed GEMM (slightly more conservative)."""

    name = "cublasmp"
    interference = 0.15
    transfer_efficiency = 0.72
    epilogue_saving = 0.4
    exposed_fraction = 0.15


def default_baselines(settings: OverlapSettings = DEFAULT_SETTINGS) -> list[BaselineMethod]:
    """The baseline set used in the paper's operator-level comparison."""
    return [
        NonOverlapBaseline(settings),
        VanillaDecompositionBaseline(settings=settings),
        AsyncTPBaseline(settings=settings),
        FluxFusionBaseline(settings),
        CublasMpBaseline(settings),
    ]


def feature_matrix() -> dict[str, dict[str, bool]]:
    """Table 1: which design feature each method family provides."""
    return {
        "decomposition-based": {
            "tile_wise": False,
            "interference_free": False,
            "comm_agnostic": True,
        },
        "fusion-based": {
            "tile_wise": True,
            "interference_free": False,
            "comm_agnostic": False,
        },
        "signaling-based (FlashOverlap)": {
            "tile_wise": True,
            "interference_free": True,
            "comm_agnostic": True,
        },
    }
