"""Ground-truth overlap executor (the simulated "real run").

Where :class:`~repro.core.predictor.LatencyPredictor` is the cheap analytical
model used by the tuner, :class:`OverlapExecutor` is the reproduction's
stand-in for actually running the kernels: it derives wave completion times
from the GEMM model under SM contention, replays the signaling mechanism,
serializes the per-group collectives on a second stream with their launch and
polling overheads, and adds a small deterministic jitter standing in for
measurement noise.  The executor is what every benchmark measures and what the
exhaustive search ranks candidates with.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.comm.primitives import CollectiveModel
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.core.signaling import GroupAssignment, SignalSchedule
from repro.core.wave_grouping import WavePartition
from repro.gpu.kernels import KernelCategory, KernelLaunch
from repro.sim.timeline import StreamTimeline
from repro.sim.trace import Trace

COMPUTE_STREAM = "compute"
COMM_STREAM = "comm"


@dataclass(frozen=True)
class OverlapResult:
    """Outcome of one simulated overlapped execution."""

    latency: float
    partition: WavePartition
    trace: Trace
    group_compute_ready: np.ndarray
    group_comm_start: np.ndarray
    group_comm_end: np.ndarray
    metadata: dict = field(default_factory=dict)

    @property
    def num_groups(self) -> int:
        return len(self.partition.group_sizes)

    def head_overlap_tail(self) -> tuple[float, float, float]:
        """Head / overlapped / tail decomposition of the timeline (Fig. 8)."""
        return self.trace.head_tail_overlap(COMPUTE_STREAM, COMM_STREAM)

    def speedup_over(self, baseline_latency: float) -> float:
        if self.latency <= 0:
            raise ValueError("result has non-positive latency")
        return baseline_latency / self.latency


class OverlapExecutor:
    """Simulate FlashOverlap (and its sequential counterpart) for one problem."""

    def __init__(
        self, problem: OverlapProblem, settings: OverlapSettings = DEFAULT_SETTINGS
    ) -> None:
        self.problem = problem
        self.settings = settings
        self.compute_sms = problem.compute_sm_count()
        self.gemm_contended = problem.gemm_model()
        self.comm_model: CollectiveModel = problem.collective_model()
        self._wave_tiles: list[list[int]] | None = None

    # -- basic quantities -----------------------------------------------------

    def num_waves(self) -> int:
        """Wave count of the GEMM under SM contention."""
        return self.gemm_contended.num_waves(self.compute_sms)

    def wave_tiles(self) -> list[list[int]]:
        """Per-wave tile lists (memoized: the swizzled execution order is
        identical for every candidate an exhaustive search simulates)."""
        if self._wave_tiles is None:
            self._wave_tiles = self.gemm_contended.wave_tiles(self.compute_sms)
        return self._wave_tiles

    def assignment(self, partition: WavePartition) -> GroupAssignment:
        return GroupAssignment.build(partition, self.wave_tiles())

    def group_payload_bytes(self, assignment: GroupAssignment) -> np.ndarray:
        """Exact bytes communicated per group (edge tiles included)."""
        layout = self.gemm_contended.layout
        return np.array(
            [
                sum(layout.tile_elements(t) for t in tiles) * self.problem.dtype_bytes
                for tiles in assignment.group_tiles
            ],
            dtype=np.float64,
        )

    def _jitter(self, partition: WavePartition, count: int) -> np.ndarray:
        """Deterministic per-group noise multipliers for this partition."""
        if self.settings.executor_jitter <= 0:
            return np.ones(count)
        key = f"{self.problem.describe()}|{partition.group_sizes}|{self.settings.seed}"
        seed = zlib.crc32(key.encode("utf-8"))
        rng = np.random.default_rng(seed)
        return 1.0 + rng.uniform(0.0, self.settings.executor_jitter, size=count)

    # -- sequential baseline ----------------------------------------------------

    def non_overlap_latency(self) -> float:
        """GEMM on all SMs followed by one collective call on the full output."""
        gemm = self.problem.gemm_model()
        compute = gemm.duration(include_launch=True) * self.problem.imbalance
        comm = (
            self.comm_model.latency(self.problem.output_bytes() * self.problem.imbalance)
            + self.settings.comm_launch_s
        )
        return compute + comm

    def theoretical_latency(self) -> float:
        """Perfect-overlap lower bound (Sec. 6.4).

        If the GEMM dominates, only the communication of the final wave is
        exposed; if communication dominates, only the first wave of compute is
        exposed.
        """
        gemm = self.problem.gemm_model()
        compute = gemm.duration(include_launch=True) * self.problem.imbalance
        total_bytes = self.problem.output_bytes() * self.problem.imbalance
        comm = self.comm_model.latency(total_bytes)
        waves = max(1, self.num_waves())
        wave_bytes = total_bytes / waves
        contended = self.gemm_contended.duration(self.compute_sms, include_launch=True)
        contended *= self.problem.imbalance
        wave_compute = contended / waves
        if compute >= comm:
            return contended + self.comm_model.latency(wave_bytes)
        return wave_compute + comm

    def theoretical_speedup(self) -> float:
        return self.non_overlap_latency() / self.theoretical_latency()

    # -- overlapped execution ------------------------------------------------------

    def simulate(self, partition: WavePartition) -> OverlapResult:
        """Simulate the overlapped execution under a wave-group partition."""
        if partition.num_waves != self.num_waves():
            raise ValueError(
                f"partition covers {partition.num_waves} waves, executor expects "
                f"{self.num_waves()}"
            )
        assignment = self.assignment(partition)
        payloads = self.group_payload_bytes(assignment) * self.problem.imbalance

        # Wave completion times of the contended GEMM, shifted by the launch.
        launch = self.problem.device.kernel_launch_seconds
        wave_end = (
            self.gemm_contended.wave_completion_times(self.compute_sms)
            * self.problem.imbalance
            + launch
        )
        tile_times = np.empty(self.gemm_contended.num_tiles)
        for wave_index, tiles in enumerate(self.wave_tiles()):
            tile_times[tiles] = wave_end[wave_index]
        signals = SignalSchedule.from_tile_times(
            assignment, tile_times, signal_latency=self.settings.signal_poll_s
        )

        jitter = self._jitter(partition, partition.num_groups)
        timeline = StreamTimeline(launch_overhead=0.0)
        gemm_body = wave_end[-1] - launch
        timeline.enqueue(
            COMPUTE_STREAM,
            KernelLaunch(
                name=f"gemm[{self.problem.shape.m}x{self.problem.shape.n}x{self.problem.shape.k}]",
                duration=gemm_body + launch,
                category=KernelCategory.GEMM,
                sm_count=self.compute_sms,
            ),
        )

        comm_start = np.zeros(partition.num_groups)
        comm_end = np.zeros(partition.num_groups)
        ready = np.zeros(partition.num_groups)
        for group_index in range(partition.num_groups):
            ready[group_index] = signals.ready_time(group_index)
            duration = self.comm_model.latency(payloads[group_index]) * jitter[group_index]
            span = timeline.enqueue(
                COMM_STREAM,
                KernelLaunch(
                    name=f"{self.comm_model.kind.short_name}-G{group_index + 1}",
                    duration=duration,
                    category=KernelCategory.COMMUNICATION,
                    sm_count=self.comm_model.sm_cost,
                ),
                not_before=ready[group_index] + self.settings.comm_launch_s,
            )
            comm_start[group_index] = span.start
            comm_end[group_index] = span.end

        timeline.trace.validate_stream_order()
        return OverlapResult(
            latency=float(comm_end[-1]),
            partition=partition,
            trace=timeline.trace,
            group_compute_ready=ready,
            group_comm_start=comm_start,
            group_comm_end=comm_end,
            metadata={
                "payload_bytes": payloads,
                "num_waves": self.num_waves(),
                "compute_sms": self.compute_sms,
            },
        )

    def simulate_sequential(self) -> OverlapResult:
        """Simulate the sequential fallback (GEMM, then one collective call).

        Used when the tuner concludes that overlapping would slow this shape
        down (e.g. tiny communication under heavy SM contention); FlashOverlap
        then simply does not reserve SMs and issues a single NCCL call.
        """
        partition = WavePartition.single_group(max(1, self.problem.gemm_model().num_waves()))
        gemm = self.problem.gemm_model()
        launch = self.problem.device.kernel_launch_seconds
        gemm_duration = gemm.duration(include_launch=True) * self.problem.imbalance
        payload = self.problem.output_bytes() * self.problem.imbalance
        comm_duration = self.comm_model.latency(payload)
        timeline = StreamTimeline(launch_overhead=0.0)
        timeline.enqueue(
            COMPUTE_STREAM,
            KernelLaunch(
                name="gemm[sequential]",
                duration=gemm_duration,
                category=KernelCategory.GEMM,
                sm_count=self.problem.device.sm_count,
            ),
        )
        span = timeline.enqueue(
            COMM_STREAM,
            KernelLaunch(
                name=f"{self.comm_model.kind.short_name}-full",
                duration=comm_duration,
                category=KernelCategory.COMMUNICATION,
                sm_count=self.comm_model.sm_cost,
            ),
            not_before=gemm_duration + self.settings.comm_launch_s,
        )
        return OverlapResult(
            latency=float(span.end),
            partition=partition,
            trace=timeline.trace,
            group_compute_ready=np.array([gemm_duration]),
            group_comm_start=np.array([span.start]),
            group_comm_end=np.array([span.end]),
            metadata={"sequential_fallback": True, "launch": launch},
        )

    def speedup(self, partition: WavePartition) -> float:
        """Speedup of the overlapped execution over the sequential baseline."""
        return self.non_overlap_latency() / self.simulate(partition).latency
