"""Wave-grouping tuners: predictive search, exhaustive search, shape cache.

The online stage of the paper's Alg. 1: enumerate the pruned candidate
partitions, rank them with the latency predictor, and return the best.  The
exhaustive tuner ranks the same candidates with the ground-truth executor and
is what the predictive search is measured against (Fig. 15 / claim C2).  The
shape cache implements the nearest-neighbour reuse of tuned configurations for
dynamic workloads (LLM inference) described in Sec. 4.2.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.core.executor import OverlapExecutor
from repro.core.predictor import LatencyPredictor, OfflineProfile
from repro.core.wave_grouping import WavePartition, candidate_partitions, candidate_partitions_matrix
from repro.gpu.gemm import GemmShape


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one tuning run.

    ``use_overlap`` is False when even the best partition is predicted to be
    slower than the plain sequential execution (typically tiny communication
    under SM contention); the operator then falls back to the sequential path,
    which is how FlashOverlap "effectively avoids performance deterioration".
    """

    partition: WavePartition
    predicted_latency: float
    candidates_evaluated: int
    method: str
    use_overlap: bool = True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mode = "overlap" if self.use_overlap else "sequential fallback"
        return (
            f"{self.method} ({mode}): partition {self.partition} "
            f"({self.predicted_latency * 1e3:.3f} ms predicted, "
            f"{self.candidates_evaluated} candidates)"
        )


class PredictiveTuner:
    """Pick the wave-group partition with the lowest *predicted* latency.

    By default the tuner ranks all candidates with the vectorized
    :meth:`~repro.core.predictor.LatencyPredictor.predict_batch` fast path and
    reuses the memoized :meth:`OfflineProfile.cached` offline stage.  Pass
    ``vectorized=False`` to run the scalar per-candidate reference loop; both
    paths produce bit-identical tuning decisions (asserted by the equivalence
    tests), so the scalar path exists purely as the cross-checked reference.
    """

    def __init__(self, settings: OverlapSettings = DEFAULT_SETTINGS, vectorized: bool = True) -> None:
        self.settings = settings
        self.vectorized = vectorized

    def candidates(self, num_waves: int) -> list[WavePartition]:
        return candidate_partitions(
            num_waves,
            max_first_group=self.settings.max_first_group,
            max_last_group=self.settings.max_last_group,
            max_exhaustive_waves=self.settings.max_exhaustive_waves,
        )

    def tune(self, problem: OverlapProblem, profile: OfflineProfile | None = None) -> TuningResult:
        with obs.span("tuner.tune", method="predictive"):
            return self._tune(problem, profile)

    def _tune(self, problem: OverlapProblem, profile: OfflineProfile | None) -> TuningResult:
        profile = profile or OfflineProfile.cached(problem, self.settings)
        predictor = LatencyPredictor(profile, total_bytes=problem.output_bytes())
        candidates = self.candidates(profile.num_waves)
        obs.counter("tuner.invocations", method="predictive").inc()
        obs.counter("tuner.candidates", method="predictive").inc(len(candidates))
        if self.vectorized:
            latencies = predictor.predict_batch(candidate_partitions_matrix(candidates))
            index = int(np.argmin(latencies))
            best, best_latency = candidates[index], float(latencies[index])
        else:
            best, best_latency = None, math.inf
            for partition in candidates:
                latency = predictor.predict(partition)
                if latency < best_latency:
                    best, best_latency = partition, latency
        if best is None:  # pragma: no cover - defensive
            raise RuntimeError("no candidate partitions were generated")
        use_overlap = best_latency <= predictor.predict_non_overlap()
        return TuningResult(
            partition=best,
            predicted_latency=best_latency,
            candidates_evaluated=len(candidates),
            method="predictive",
            use_overlap=use_overlap,
        )


class ExhaustiveTuner:
    """Pick the partition with the lowest *simulated* (ground-truth) latency.

    This is the paper's exhaustive online-profiling search: accurate but far
    too slow to run per shape in production, so it serves as the quality
    reference for the predictive search.

    The default ``incremental=True`` path precomputes the per-wave state every
    candidate shares (wave completion times, per-wave payload prefix sums,
    signal-ready times), replays only each candidate's group sequence on top
    of it, reuses the simulation state of the group prefix shared with the
    previous candidate, and abandons a candidate as soon as its partial
    timeline already exceeds the incumbent best.  It selects the same
    partition at the same latency as running :meth:`OverlapExecutor.simulate`
    per candidate (``incremental=False``, the cross-checked reference).
    """

    def __init__(self, settings: OverlapSettings = DEFAULT_SETTINGS, incremental: bool = True) -> None:
        self.settings = settings
        self.incremental = incremental

    def tune(self, problem: OverlapProblem, executor: OverlapExecutor | None = None) -> TuningResult:
        with obs.span("tuner.tune", method="exhaustive"):
            return self._tune(problem, executor)

    def _tune(self, problem: OverlapProblem, executor: OverlapExecutor | None) -> TuningResult:
        executor = executor or OverlapExecutor(problem, self.settings)
        num_waves = executor.num_waves()
        candidates = candidate_partitions(
            num_waves,
            max_first_group=self.settings.max_first_group,
            max_last_group=self.settings.max_last_group,
            max_exhaustive_waves=self.settings.max_exhaustive_waves,
        )
        obs.counter("tuner.invocations", method="exhaustive").inc()
        obs.counter("tuner.candidates", method="exhaustive").inc(len(candidates))
        if self.incremental:
            best, best_latency = self._tune_incremental(executor, candidates)
        else:
            best, best_latency = None, math.inf
            for partition in candidates:
                latency = executor.simulate(partition).latency
                if latency < best_latency:
                    best, best_latency = partition, latency
        if best is None:  # pragma: no cover - defensive
            raise RuntimeError("no candidate partitions were generated")
        # Like the predictive tuner, fall back to the sequential execution when
        # even the best overlapped candidate is slower than not overlapping.
        use_overlap = best_latency <= executor.simulate_sequential().latency
        return TuningResult(
            partition=best,
            predicted_latency=best_latency,
            candidates_evaluated=len(candidates),
            method="exhaustive",
            use_overlap=use_overlap,
        )

    def _tune_incremental(
        self, executor: OverlapExecutor, candidates: list[WavePartition]
    ) -> tuple[WavePartition | None, float]:
        """Rank candidates on shared per-wave state with early abandoning.

        Replicates the latency arithmetic of :meth:`OverlapExecutor.simulate`
        operation for operation (same wave-end times, same signal-ready times,
        same payload bytes, same jitter draw), so the selected partition and
        latency are identical to the reference loop.  Per-group payloads come
        from an integer prefix sum over waves, which is exact.
        """
        problem, settings = executor.problem, executor.settings
        launch = problem.device.kernel_launch_seconds
        wave_end = (
            executor.gemm_contended.wave_completion_times(executor.compute_sms)
            * problem.imbalance
            + launch
        )
        layout = executor.gemm_contended.layout
        wave_bytes = np.array(
            [
                sum(layout.tile_elements(t) for t in tiles) * problem.dtype_bytes
                for tiles in executor.wave_tiles()
            ],
            dtype=np.int64,
        )
        byte_prefix = np.concatenate([[0], np.cumsum(wave_bytes)])
        ready = wave_end + settings.signal_poll_s
        deterministic = settings.executor_jitter <= 0

        best: WavePartition | None = None
        best_latency = math.inf
        # Simulation state of the previous candidate: comm-stream drain time
        # after each of its groups, reusable for a shared boundary prefix when
        # the executor is deterministic (jitter depends on the full partition).
        prev_boundaries: tuple[int, ...] = ()
        prev_state: list[float] = []
        for partition in candidates:
            boundaries = partition.boundaries()
            jitter = executor._jitter(partition, partition.num_groups)
            start_group = 0
            if deterministic:
                while (
                    start_group < len(prev_state)
                    and start_group < len(boundaries)
                    and prev_boundaries[start_group] == boundaries[start_group]
                ):
                    start_group += 1
            previous_end = prev_state[start_group - 1] if start_group else 0.0
            state = list(prev_state[:start_group])
            abandoned = False
            for group in range(start_group, partition.num_groups):
                end_wave = boundaries[group]
                payload = float(byte_prefix[end_wave] - byte_prefix[boundaries[group - 1] if group else 0])
                payload *= problem.imbalance
                not_before = ready[end_wave - 1] + settings.comm_launch_s
                start = max(previous_end, not_before)
                previous_end = start + executor.comm_model.latency(payload) * jitter[group]
                state.append(previous_end)
                if previous_end >= best_latency:
                    abandoned = True
                    break
            prev_boundaries, prev_state = tuple(boundaries[: len(state)]), state
            if abandoned:
                continue
            if previous_end < best_latency:
                best, best_latency = partition, previous_end
        return best, best_latency


def _tuning_result_to_dict(result: TuningResult) -> dict:
    return {
        "group_sizes": list(result.partition.group_sizes),
        "predicted_latency": result.predicted_latency,
        "candidates_evaluated": result.candidates_evaluated,
        "method": result.method,
        "use_overlap": result.use_overlap,
    }


def _tuning_result_from_dict(payload: dict) -> TuningResult:
    return TuningResult(
        partition=WavePartition.from_sizes(payload["group_sizes"]),
        predicted_latency=float(payload["predicted_latency"]),
        candidates_evaluated=int(payload["candidates_evaluated"]),
        method=str(payload["method"]),
        use_overlap=bool(payload.get("use_overlap", True)),
    )


@dataclass
class ShapeCacheEntry:
    shape: GemmShape
    result: TuningResult


@dataclass
class GemmShapeCache:
    """Nearest-neighbour reuse of tuned partitions for unseen GEMM shapes.

    Distance is measured in log-space over (M, N, K) so that "twice as many
    rows" counts the same at every scale.  Entries whose wave count differs
    from the query problem cannot be reused directly and are skipped.
    """

    entries: list[ShapeCacheEntry] = field(default_factory=list)

    def add(self, shape: GemmShape, result: TuningResult) -> None:
        self.entries.append(ShapeCacheEntry(shape=shape, result=result))

    def __len__(self) -> int:
        return len(self.entries)

    @staticmethod
    def _distance(a: GemmShape, b: GemmShape) -> float:
        return (
            abs(math.log2(a.m / b.m))
            + abs(math.log2(a.n / b.n))
            + abs(math.log2(a.k / b.k))
        )

    def nearest(self, shape: GemmShape, required_waves: int | None = None) -> ShapeCacheEntry | None:
        """Closest cached shape, optionally restricted to a wave count."""
        best: ShapeCacheEntry | None = None
        best_distance = math.inf
        for entry in self.entries:
            if required_waves is not None and entry.result.partition.num_waves != required_waves:
                continue
            distance = self._distance(shape, entry.shape)
            if distance < best_distance:
                best, best_distance = entry, distance
        return best

    # -- persistence -------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the cache (shapes + tuned partitions) to a JSON string.

        This is how a deployment persists its offline/online tuning results
        across process restarts (the paper's offline stage is run once per
        deployment setup).
        """
        import json

        payload = [
            {
                "shape": {"m": entry.shape.m, "n": entry.shape.n, "k": entry.shape.k},
                "result": _tuning_result_to_dict(entry.result),
            }
            for entry in self.entries
        ]
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "GemmShapeCache":
        """Rebuild a cache from :meth:`to_json` output."""
        import json

        cache = cls()
        for item in json.loads(text):
            shape = GemmShape(m=item["shape"]["m"], n=item["shape"]["n"], k=item["shape"]["k"])
            cache.add(shape, _tuning_result_from_dict(item["result"]))
        return cache

    def save(self, path) -> None:
        """Write the cache to a JSON file, creating parent directories.

        The write is atomic (temp file + rename), so a run interrupted
        mid-save never corrupts an existing warm-start cache.
        """
        from repro.atomic import atomic_write_text

        atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path, missing_ok: bool = False) -> "GemmShapeCache":
        """Load a cache previously written with :meth:`save`.

        A missing file raises :class:`FileNotFoundError` unless ``missing_ok``
        is set, in which case an empty cache is returned (the warm-start idiom:
        ``GemmShapeCache.load(path, missing_ok=True)`` on first run).
        """
        from pathlib import Path

        target = Path(path)
        if not target.exists():
            if missing_ok:
                return cls()
            raise FileNotFoundError(
                f"no shape cache at {target}; pass missing_ok=True to start from an empty cache"
            )
        return cls.from_json(target.read_text(encoding="utf-8"))

    def lookup(
        self,
        problem: OverlapProblem,
        settings: OverlapSettings = DEFAULT_SETTINGS,
        max_distance: float = 1.0,
    ) -> TuningResult | None:
        """Nearest cached result reusable for ``problem``, or None.

        A cached partition is reusable when its wave count matches the
        problem's and the log-space shape distance is within ``max_distance``.
        """
        executor_waves = OverlapExecutor(problem, settings).num_waves()
        entry = self.nearest(problem.shape, required_waves=executor_waves)
        if entry is not None and self._distance(problem.shape, entry.shape) <= max_distance:
            return entry.result
        return None

    def lookup_or_tune(
        self,
        problem: OverlapProblem,
        tuner: PredictiveTuner,
        max_distance: float = 1.0,
    ) -> TuningResult:
        """Reuse the nearest cached partition when close enough, else tune."""
        cached = self.lookup(problem, tuner.settings, max_distance)
        if cached is not None:
            return cached
        result = tuner.tune(problem)
        self.add(problem.shape, result)
        return result


def search_quality(
    problem: OverlapProblem, settings: OverlapSettings = DEFAULT_SETTINGS
) -> dict[str, float]:
    """Compare the predictive search against the exhaustive search.

    Returns the actual latencies of both picks and the performance ratio
    (exhaustive / predictive, so 1.0 means the predictive pick is optimal).
    """
    executor = OverlapExecutor(problem, settings)
    predictive = PredictiveTuner(settings).tune(problem)
    exhaustive = ExhaustiveTuner(settings).tune(problem, executor)
    predictive_actual = executor.simulate(predictive.partition).latency
    exhaustive_actual = executor.simulate(exhaustive.partition).latency
    return {
        "predictive_latency": predictive_actual,
        "exhaustive_latency": exhaustive_actual,
        "performance_ratio": exhaustive_actual / predictive_actual,
        "predicted_latency": predictive.predicted_latency,
    }
