"""Pre/post-communication reordering plans and their functional execution.

This module is the correctness heart of the reproduction.  For each collective
primitive it builds the reordering plan described in Sec. 3.3 / Fig. 7 --
which unit (tile, sub-tile, sub-token) is packed where in the per-group
communication buffer -- and executes the whole pipeline on NumPy data:

    GEMM outputs (one partial matrix per GPU)
      -> pre-communication reorder into contiguous per-group buffers
      -> NCCL-style collective of each group (functional NumPy collectives)
      -> post-communication reorder restoring the logical order

The result must match the plain, non-overlapped execution of the same
collective -- this is what the paper's artifact experiment E1 checks with
``torch.allclose`` and what the test-suite checks here.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.comm.collectives import all_reduce, all_to_all, reduce_scatter_flat
from repro.comm.primitives import CollectiveKind
from repro.core.signaling import CountingTable, GroupAssignment
from repro.tensor.layout import TileLayout
from repro.tensor.mapping import MappingTable
from repro.tensor.tiles import (
    gather_tiles,
    gather_tiles_indexed,
    scatter_tiles,
    scatter_tiles_indexed,
    tile_flat_indices,
)


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupReorderPlan:
    """Packing order of one wave group's communication buffer."""

    group_index: int
    tile_order: tuple[int, ...]
    mapping: MappingTable

    @property
    def num_tiles(self) -> int:
        return len(self.tile_order)


@dataclass(frozen=True)
class SubtokenIndex:
    """Precomputed sub-token routing index of one wave group (All-to-All).

    One "sub-token" is the segment of one matrix row inside one tile.  Arrays
    are ordered tile-major then row-major, matching the pack order of the
    per-row reference loop:

    * ``rows[t]`` / ``col_blocks[t]`` / ``lengths[t]`` -- source row, tile
      column block and element count of sub-token ``t``,
    * ``flat_indices`` -- flat matrix index of every sub-token element,
      concatenated in sub-token order,
    * ``token_of_elem`` -- sub-token id of every entry of ``flat_indices``
      (``np.repeat`` expansion used to mask elements by destination GPU).
    """

    rows: np.ndarray
    col_blocks: np.ndarray
    lengths: np.ndarray
    flat_indices: np.ndarray
    token_of_elem: np.ndarray


@dataclass(frozen=True)
class ReorderPlan:
    """Full reordering plan of one overlapped operator.

    Beyond the per-group packing orders, the plan lazily precomputes (and
    caches) the flat index permutations that turn every pre/post-communication
    reorder into a single ``np.take`` / fancy-index assignment -- the
    per-tile/per-row loops in :mod:`repro.tensor.tiles` remain as the
    reference implementation the cached indices are validated against.
    """

    collective: CollectiveKind
    layout: TileLayout
    n_gpus: int
    groups: tuple[GroupReorderPlan, ...]

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    # -- cached index permutations (the reorder fast path) ---------------------

    def _index_cache(self) -> dict:
        cache = self.__dict__.get("_cached_indices")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_cached_indices", cache)
        return cache

    def group_flat_indices(self, group_index: int) -> np.ndarray:
        """Flat matrix indices of one group's tile-level packing order.

        ``matrix.flat[result]`` equals ``gather_tiles(matrix, layout,
        tile_order)``; computed once per (plan, group) and reused by every
        pipeline execution.
        """
        cache = self._index_cache()
        key = ("tile", group_index)
        if key not in cache:
            cache[key] = tile_flat_indices(self.layout, self.groups[group_index].tile_order)
        return cache[key]

    def group_subtile_indices(self, group_index: int) -> np.ndarray:
        """Flat matrix indices of one group's ReduceScatter packing order.

        The NCCL ReduceScatter buffer holds, for each destination GPU ``k``,
        the ``k``-th row block of every tile in the group; the returned
        permutation is ordered ``k``-major so that slicing it into ``n_gpus``
        equal chunks yields each GPU's sub-tile indices.
        """
        cache = self._index_cache()
        key = ("subtile", group_index)
        if key not in cache:
            sub_rows = self.layout.tile_m // self.n_gpus
            order = self.groups[group_index].tile_order
            cache[key] = np.concatenate(
                [
                    tile_flat_indices(self.layout, order, row_limit=(k * sub_rows, (k + 1) * sub_rows))
                    for k in range(self.n_gpus)
                ]
            )
        return cache[key]

    def group_subtile_rows(self, group_index: int) -> list[list[int]]:
        """Matrix rows GPU ``k`` owns after ReduceScatter of one group."""
        cache = self._index_cache()
        key = ("subtile_rows", group_index)
        if key not in cache:
            sub_rows = self.layout.tile_m // self.n_gpus
            rows_per_gpu = []
            for k in range(self.n_gpus):
                rows: list[int] = []
                for tile in self.groups[group_index].tile_order:
                    rs, _ = self.layout.tile_slices(tile)
                    rows.extend(range(rs.start + k * sub_rows, rs.start + (k + 1) * sub_rows))
                rows_per_gpu.append(rows)
            cache[key] = rows_per_gpu
        return cache[key]

    def group_subtoken_index(self, group_index: int) -> SubtokenIndex:
        """Precomputed sub-token index of one group (All-to-All fast path)."""
        cache = self._index_cache()
        key = ("subtoken", group_index)
        if key not in cache:
            order = self.groups[group_index].tile_order
            rows_parts, cb_parts, len_parts = [], [], []
            for tile in order:
                rs, cs = self.layout.tile_slices(tile)
                _, col_block = self.layout.tile_coords(tile)
                tile_rows = np.arange(rs.start, rs.stop, dtype=np.int64)
                rows_parts.append(tile_rows)
                cb_parts.append(np.full(tile_rows.size, col_block, dtype=np.int64))
                len_parts.append(np.full(tile_rows.size, cs.stop - cs.start, dtype=np.int64))
            rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, dtype=np.int64)
            lengths = np.concatenate(len_parts) if len_parts else np.empty(0, dtype=np.int64)
            cache[key] = SubtokenIndex(
                rows=rows,
                col_blocks=np.concatenate(cb_parts) if cb_parts else np.empty(0, dtype=np.int64),
                lengths=lengths,
                # Row-major within each tile, tiles in pack order: the same
                # permutation gather_tiles would realize, element for element.
                flat_indices=tile_flat_indices(self.layout, order),
                token_of_elem=np.repeat(np.arange(rows.size, dtype=np.int64), lengths),
            )
        return cache[key]

    def global_mapping(self) -> MappingTable:
        """Tile-level mapping table across all groups (Fig. 5's table)."""
        table = MappingTable()
        for group in self.groups:
            for tile in group.tile_order:
                table.append(tile)
        return table

    def all_tiles(self) -> list[int]:
        tiles: list[int] = []
        for group in self.groups:
            tiles.extend(group.tile_order)
        return tiles

    def validate(self) -> None:
        """Check that the plan covers every tile exactly once."""
        tiles = self.all_tiles()
        if sorted(tiles) != list(range(self.layout.num_tiles)):
            raise ValueError("reorder plan does not cover every tile exactly once")


def build_reorder_plan(
    collective: CollectiveKind,
    layout: TileLayout,
    group_tiles: Sequence[Sequence[int]],
    n_gpus: int,
) -> ReorderPlan:
    """Build the reordering plan for a wave-group assignment.

    ``group_tiles`` lists the tiles of each group in execution order (as
    produced by :meth:`WavePartition.group_tiles`); the packing order within a
    group is simply the execution order, as the paper notes the relative order
    inside a wave is irrelevant.
    """
    if n_gpus < 1:
        raise ValueError("n_gpus must be >= 1")
    groups = []
    position = 0
    for group_index, tiles in enumerate(group_tiles):
        mapping = MappingTable()
        for tile in tiles:
            mapping.append(int(tile), position)
            position += 1
        groups.append(
            GroupReorderPlan(group_index=group_index, tile_order=tuple(int(t) for t in tiles), mapping=mapping)
        )
    plan = ReorderPlan(collective=collective, layout=layout, n_gpus=n_gpus, groups=tuple(groups))
    plan.validate()
    return plan


# ---------------------------------------------------------------------------
# Functional execution -- AllReduce
# ---------------------------------------------------------------------------


@dataclass
class PipelineResult:
    """Output of a functional overlap execution."""

    outputs: list[np.ndarray]
    reference: list[np.ndarray]
    groups_communicated: int = 0
    extras: dict = field(default_factory=dict)

    def max_abs_error(self) -> float:
        return float(
            max(
                np.max(np.abs(out - ref)) if out.size else 0.0
                for out, ref in zip(self.outputs, self.reference)
            )
        )

    def allclose(self, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        return all(
            np.allclose(out, ref, rtol=rtol, atol=atol)
            for out, ref in zip(self.outputs, self.reference)
        )


def _replay_signals(assignment: GroupAssignment, execution_order: Sequence[int]) -> CountingTable:
    """Replay the counting table over the execution order and return it.

    Ensures every group the pipeline communicates has actually been signalled,
    i.e. the data dependency is respected.
    """
    table = assignment.counting_table()
    for tile in execution_order:
        if tile in assignment.group_of_tile:
            table.record_tile(assignment.group_of_tile[tile])
    return table


def run_allreduce_pipeline(
    matrices: Sequence[np.ndarray],
    plan: ReorderPlan,
    assignment: GroupAssignment | None = None,
    execution_order: Sequence[int] | None = None,
    fast: bool = True,
) -> PipelineResult:
    """AllReduce with tile-level reordering (Fig. 7(d)).

    Every GPU contributes a partial GEMM output of identical shape; the result
    on every GPU is the element-wise sum, in the original layout.  With
    ``fast=True`` (default) both reorders use the plan's cached flat index
    permutation (one ``np.take`` / fancy-index assignment per group);
    ``fast=False`` runs the per-tile reference loops the fast path is
    validated against.
    """
    layout = plan.layout
    for matrix in matrices:
        if matrix.shape != (layout.m, layout.n):
            raise ValueError("matrix shape does not match plan layout")
    reference = all_reduce(matrices)

    table = None
    if assignment is not None and execution_order is not None:
        table = _replay_signals(assignment, execution_order)

    inputs = [np.asarray(m, dtype=np.float64) for m in matrices]
    outputs = [np.zeros((layout.m, layout.n), dtype=np.float64) for _ in matrices]
    for group in plan.groups:
        if table is not None:
            table.assert_ready(group.group_index)
        # Pre-communication reorder: pack the group's tiles contiguously.
        if fast:
            indices = plan.group_flat_indices(group.group_index)
            buffers = [gather_tiles_indexed(m, indices) for m in inputs]
        else:
            buffers = [gather_tiles(m, layout, group.tile_order) for m in inputs]
        # Communication-agnostic NCCL call on the contiguous buffers.
        reduced = all_reduce(buffers)
        # Post-communication reorder: scatter tiles back to their addresses.
        for gpu, out in enumerate(outputs):
            if fast:
                scatter_tiles_indexed(out, indices, reduced[gpu])
            else:
                scatter_tiles(out, layout, group.tile_order, reduced[gpu])
    return PipelineResult(outputs=outputs, reference=reference, groups_communicated=plan.num_groups)


# ---------------------------------------------------------------------------
# Functional execution -- ReduceScatter (+ element-wise + AllGather)
# ---------------------------------------------------------------------------


def _check_reduce_scatter_layout(layout: TileLayout, n_gpus: int) -> None:
    if not layout.is_uniform():
        raise ValueError("ReduceScatter reordering requires uniform tiles (no ragged edge)")
    if layout.tile_m % n_gpus != 0:
        raise ValueError(
            f"tile_m={layout.tile_m} must be divisible by the GPU count {n_gpus} "
            "to split tiles into per-GPU sub-tiles"
        )
    if layout.m % n_gpus != 0:
        raise ValueError("M must be divisible by the GPU count for ReduceScatter")


def run_reduce_scatter_pipeline(
    matrices: Sequence[np.ndarray],
    plan: ReorderPlan,
    elementwise: Callable[[np.ndarray], np.ndarray] | None = None,
    assignment: GroupAssignment | None = None,
    execution_order: Sequence[int] | None = None,
    fast: bool = True,
) -> PipelineResult:
    """ReduceScatter with sub-tile reordering, followed by the element-wise
    operator and the AllGather + row exchange that restore the layout
    (Fig. 7(e)).

    The returned ``outputs`` are the per-GPU results *after* AllGather and the
    local row exchange; the reference is the plain (non-overlapped)
    ReduceScatter -> element-wise -> AllGather pipeline.  ``extras`` carries
    the per-GPU rows owned between RS and AG, so tests can verify that every
    owned row is complete on a single GPU (the property the element-wise
    operator needs).  ``fast=True`` (default) packs and unpacks the sub-tile
    buffers through the plan's cached index permutation; ``fast=False`` runs
    the per-tile reference loops.
    """
    layout = plan.layout
    n = plan.n_gpus
    _check_reduce_scatter_layout(layout, n)
    if len(matrices) != n:
        raise ValueError(f"expected {n} per-GPU matrices, got {len(matrices)}")
    op = elementwise if elementwise is not None else (lambda x: x)

    # Reference: standard RS along rows, element-wise on each shard, AllGather.
    inputs = [np.asarray(m, dtype=np.float64) for m in matrices]
    total = np.sum(np.stack(inputs), axis=0)
    reference_full = op(total)
    reference = [reference_full.copy() for _ in range(n)]

    table = None
    if assignment is not None and execution_order is not None:
        table = _replay_signals(assignment, execution_order)

    sub_rows = layout.tile_m // n
    owned_values = [np.zeros((layout.m, layout.n), dtype=np.float64) for _ in range(n)]
    owned_rows: list[set[int]] = [set() for _ in range(n)]

    for group in plan.groups:
        if table is not None:
            table.assert_ready(group.group_index)
        # Pre-communication reorder: for NCCL ReduceScatter the buffer is laid
        # out so that the k-th contiguous chunk holds the k-th sub-tile of
        # every tile in the group.
        if fast:
            indices = plan.group_subtile_indices(group.group_index)
            buffers = [gather_tiles_indexed(matrix, indices) for matrix in inputs]
            received = reduce_scatter_flat(buffers)
            # Unpack: GPU k received the reduced k-th sub-tile of every tile.
            chunk_size = indices.size // n
            group_rows = plan.group_subtile_rows(group.group_index)
            for k in range(n):
                scatter_tiles_indexed(
                    owned_values[k], indices[k * chunk_size : (k + 1) * chunk_size], received[k]
                )
                owned_rows[k].update(group_rows[k])
            continue
        buffers = []
        for matrix in inputs:
            chunks = []
            for k in range(n):
                for tile in group.tile_order:
                    rs, cs = layout.tile_slices(tile)
                    sub = matrix[rs.start + k * sub_rows : rs.start + (k + 1) * sub_rows, cs]
                    chunks.append(sub.ravel())
            buffers.append(np.concatenate(chunks))
        received = reduce_scatter_flat(buffers)
        # Unpack: GPU k received the reduced k-th sub-tile of every group tile.
        for k in range(n):
            chunk = received[k]
            offset = 0
            for tile in group.tile_order:
                rs, cs = layout.tile_slices(tile)
                block = chunk[offset : offset + sub_rows * layout.tile_n].reshape(sub_rows, layout.tile_n)
                row_start = rs.start + k * sub_rows
                owned_values[k][row_start : row_start + sub_rows, cs] = block
                owned_rows[k].update(range(row_start, row_start + sub_rows))
                offset += sub_rows * layout.tile_n

    # Element-wise operator on complete rows, then AllGather + row exchange.
    shard_rows = [sorted(rows) for rows in owned_rows]
    shards = [op(owned_values[k][rows, :]) if rows else np.empty((0, layout.n)) for k, rows in enumerate(shard_rows)]
    gathered = np.concatenate(shards, axis=0)
    row_order = [r for rows in shard_rows for r in rows]
    outputs = []
    for _ in range(n):
        restored = np.empty_like(gathered)
        restored[row_order, :] = gathered
        outputs.append(restored)
    extras = {"owned_rows": shard_rows, "pre_allgather_shards": shards}
    return PipelineResult(
        outputs=outputs, reference=reference, groups_communicated=plan.num_groups, extras=extras
    )


# ---------------------------------------------------------------------------
# Functional execution -- All-to-All
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Subtoken:
    """One row segment of one tile, routed to a destination GPU."""

    source_row: int
    col_block: int
    data: np.ndarray


def run_all_to_all_pipeline(
    matrices: Sequence[np.ndarray],
    destinations: Sequence[np.ndarray],
    plans: Sequence[ReorderPlan],
    assignments: Sequence[GroupAssignment] | None = None,
    execution_orders: Sequence[Sequence[int]] | None = None,
    fast: bool = True,
) -> PipelineResult:
    """All-to-All with sub-token reordering (Fig. 7(f)).

    Every source GPU owns a token matrix (its local GEMM output) plus a
    destination GPU per token; tokens must arrive at their destination as
    complete rows, ordered by (source GPU, source row).  Each source GPU may
    have its own tile layout and wave grouping (``plans[src]``).  ``fast=True``
    (default) packs each round's memory pools through the plans' cached
    sub-token indices (one masked gather per destination); ``fast=False`` runs
    the per-row reference loop.
    """
    n = len(matrices)
    if len(destinations) != n or len(plans) != n:
        raise ValueError("matrices, destinations and plans must have equal length")
    from repro.comm.collectives import all_to_all_rows

    reference = all_to_all_rows(matrices, destinations)

    tables = [None] * n
    if assignments is not None and execution_orders is not None:
        tables = [
            _replay_signals(assignment, order)
            for assignment, order in zip(assignments, execution_orders)
        ]

    inputs = [np.asarray(m, dtype=np.float64) for m in matrices]
    dest_arrays = [np.asarray(d) for d in destinations]

    max_groups = max(plan.num_groups for plan in plans)
    if fast:
        outputs = _all_to_all_fast(inputs, dest_arrays, plans, tables, max_groups)
    else:
        outputs = _all_to_all_reference(inputs, dest_arrays, plans, tables, max_groups)
    return PipelineResult(outputs=outputs, reference=reference, groups_communicated=max_groups)


def _all_to_all_fast(
    inputs: list[np.ndarray],
    dest_arrays: list[np.ndarray],
    plans: Sequence[ReorderPlan],
    tables: Sequence[CountingTable | None],
    max_groups: int,
) -> list[np.ndarray]:
    """Index-based All-to-All execution.

    Per round and source, sub-tokens are selected by destination with one
    mask over the plan's precomputed :class:`SubtokenIndex` and gathered with
    one ``np.take``.  The receive side exploits that the flat indices are
    shared knowledge: each destination scatters the incoming buffer straight
    into a per-source landing matrix at the *source* coordinates, so tokens
    reassemble with no per-token Python work.  Element counts per source row
    track completeness (a complete token has received ``layout.n`` elements).
    """
    n = len(inputs)
    land = [[np.zeros(plans[src].layout.m * plans[src].layout.n) for src in range(n)] for _ in range(n)]
    received_elems = [[np.zeros(plans[src].layout.m, dtype=np.int64) for src in range(n)] for _ in range(n)]

    for group_round in range(max_groups):
        payload: list[list[np.ndarray]] = [[np.empty(0) for _ in range(n)] for _ in range(n)]
        # (rows, lengths, flat indices) per packed pool; the indices travel as
        # shared knowledge, like the mapping tables on the real system.
        meta: list[list[tuple | None]] = [[None for _ in range(n)] for _ in range(n)]
        for src in range(n):
            plan = plans[src]
            if group_round >= plan.num_groups:
                continue
            group = plan.groups[group_round]
            if tables[src] is not None:
                tables[src].assert_ready(group.group_index)
            index = plan.group_subtoken_index(group.group_index)
            token_dst = dest_arrays[src][index.rows]
            for dst in range(n):
                token_mask = token_dst == dst
                if not token_mask.any():
                    continue
                elem_mask = token_mask[index.token_of_elem]
                selected = index.flat_indices[elem_mask]
                payload[src][dst] = gather_tiles_indexed(inputs[src], selected)
                meta[src][dst] = (index.rows[token_mask], index.lengths[token_mask], selected)
        received = all_to_all(payload)
        for dst in range(n):
            for src in range(n):
                if meta[src][dst] is None:
                    continue
                rows, lengths, selected = meta[src][dst]
                scatter_tiles_indexed(land[dst][src], selected, received[dst][src])
                np.add.at(received_elems[dst][src], rows, lengths)

    outputs = []
    for dst in range(n):
        parts = []
        for src in range(n):
            layout = plans[src].layout
            counts = received_elems[dst][src]
            partial = np.flatnonzero((counts > 0) & (counts != layout.n))
            if partial.size:
                raise ValueError(
                    f"token (src={src}, row={int(partial[0])}) arrived incomplete at GPU {dst}"
                )
            complete = np.flatnonzero(counts == layout.n)
            if complete.size:
                parts.append(land[dst][src].reshape(layout.m, layout.n)[complete])
        width = plans[0].layout.n
        outputs.append(np.concatenate(parts) if parts else np.empty((0, width)))
    return outputs


def _all_to_all_reference(
    inputs: list[np.ndarray],
    dest_arrays: list[np.ndarray],
    plans: Sequence[ReorderPlan],
    tables: Sequence[CountingTable | None],
    max_groups: int,
) -> list[np.ndarray]:
    """Per-row reference execution the index fast path is validated against."""
    n = len(inputs)
    # recv[dst][src] maps source row -> {col_block -> data}
    recv: list[list[dict[int, dict[int, np.ndarray]]]] = [
        [dict() for _ in range(n)] for _ in range(n)
    ]

    for group_round in range(max_groups):
        # Each source packs one memory pool per destination for this round.
        send: list[list[list[_Subtoken]]] = [[[] for _ in range(n)] for _ in range(n)]
        for src in range(n):
            plan = plans[src]
            if group_round >= plan.num_groups:
                continue
            group = plan.groups[group_round]
            if tables[src] is not None:
                tables[src].assert_ready(group.group_index)
            matrix = inputs[src]
            dests = dest_arrays[src]
            layout = plan.layout
            for tile in group.tile_order:
                rs, cs = layout.tile_slices(tile)
                _, col_block = layout.tile_coords(tile)
                for row in range(rs.start, rs.stop):
                    dst = int(dests[row])
                    send[src][dst].append(
                        _Subtoken(source_row=row, col_block=col_block, data=matrix[row, cs].copy())
                    )
        # One All-to-All call moves every pool to its destination.  The payload
        # is the concatenated sub-token data; the metadata (source row, column
        # block) travels with it, as the mapping tables are shared knowledge.
        payload = [
            [
                np.concatenate([s.data for s in send[src][dst]])
                if send[src][dst]
                else np.empty(0)
                for dst in range(n)
            ]
            for src in range(n)
        ]
        received = all_to_all(payload)
        for dst in range(n):
            for src in range(n):
                buffer = received[dst][src]
                offset = 0
                for token in send[src][dst]:
                    size = token.data.size
                    chunk = buffer[offset : offset + size]
                    recv[dst][src].setdefault(token.source_row, {})[token.col_block] = chunk
                    offset += size

    # Post-communication reorder: assemble complete tokens ordered by
    # (source GPU, source row index).
    outputs = []
    for dst in range(n):
        rows = []
        for src in range(n):
            layout = plans[src].layout
            for source_row in sorted(recv[dst][src]):
                blocks = recv[dst][src][source_row]
                expected_blocks = layout.grid_n
                if sorted(blocks) != list(range(expected_blocks)):
                    raise ValueError(
                        f"token (src={src}, row={source_row}) arrived incomplete at GPU {dst}"
                    )
                rows.append(np.concatenate([blocks[cb] for cb in range(expected_blocks)]))
        width = plans[0].layout.n
        outputs.append(np.stack(rows) if rows else np.empty((0, width)))
    return outputs


# ---------------------------------------------------------------------------
# Dispatch helper
# ---------------------------------------------------------------------------


def run_pipeline(
    collective: CollectiveKind,
    matrices: Sequence[np.ndarray],
    plan: ReorderPlan,
    **kwargs,
) -> PipelineResult:
    """Dispatch to the primitive-specific functional pipeline."""
    if collective == CollectiveKind.ALL_REDUCE:
        return run_allreduce_pipeline(matrices, plan, **kwargs)
    if collective == CollectiveKind.REDUCE_SCATTER:
        return run_reduce_scatter_pipeline(matrices, plan, **kwargs)
    if collective == CollectiveKind.ALL_TO_ALL:
        raise ValueError(
            "All-to-All needs per-source plans and destinations; "
            "call run_all_to_all_pipeline directly"
        )
    raise ValueError(f"no functional pipeline for {collective}")
