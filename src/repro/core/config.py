"""Problem and settings definitions shared across the FlashOverlap core.

An :class:`OverlapProblem` bundles everything that defines one "GEMM + X"
instance: the per-GPU GEMM shape, the device, the multi-GPU topology and the
collective primitive.  :class:`OverlapSettings` carries the tunables of the
design itself (search pruning bounds, signal polling cost, ...), with defaults
matching the values used in the paper's evaluation (``S1 = 2``, ``SP = 4``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.comm.primitives import CollectiveKind, CollectiveModel
from repro.comm.topology import Topology
from repro.gpu.device import GPUSpec
from repro.gpu.gemm import DTYPE_BYTES, GemmKernelModel, GemmShape, GemmTileConfig


@dataclass(frozen=True)
class OverlapProblem:
    """One data-dependent "GEMM followed by collective" instance.

    The GEMM shape is the *per-GPU* shape (as in Table 3: sizes are reported
    per GPU).  ``imbalance`` models the per-GPU workload skew of expert
    parallelism: a value of 1.0 means perfectly balanced, 1.3 means the most
    loaded GPU computes 30% more tiles (and communicates 30% more data) than
    the average, which stretches both phases for the lagging rank (Sec. 4.2.2).
    """

    shape: GemmShape
    device: GPUSpec
    topology: Topology
    collective: CollectiveKind
    gemm_config: GemmTileConfig | None = None
    dtype_bytes: int = DTYPE_BYTES
    imbalance: float = 1.0

    def __post_init__(self) -> None:
        if self.imbalance < 1.0:
            raise ValueError("imbalance must be >= 1.0")

    # -- derived models ---------------------------------------------------------

    @property
    def n_gpus(self) -> int:
        return self.topology.n_gpus

    def tile_config(self) -> GemmTileConfig:
        return self.gemm_config or GemmTileConfig.default_for(self.shape, self.device)

    def gemm_model(self, sm_count: int | None = None) -> GemmKernelModel:
        """GEMM kernel model, optionally on a restricted SM budget."""
        device = self.device if sm_count is None else self.device.with_sm_count(sm_count)
        return GemmKernelModel(self.shape, device, self.tile_config(), self.dtype_bytes)

    def collective_model(self) -> CollectiveModel:
        return CollectiveModel(kind=self.collective, topology=self.topology)

    def compute_sm_count(self) -> int:
        """SMs left for the GEMM when the communication kernels are resident."""
        return max(1, self.device.sm_count - self.topology.comm_sm_count)

    def output_bytes(self) -> int:
        """Bytes of GEMM output communicated by the collective (per GPU)."""
        return self.shape.output_bytes(self.dtype_bytes)

    def with_collective(self, collective: CollectiveKind) -> "OverlapProblem":
        return replace(self, collective=collective)

    def with_shape(self, shape: GemmShape) -> "OverlapProblem":
        return replace(self, shape=shape)

    def describe(self) -> str:
        return (
            f"{self.shape} + {self.collective.short_name} on "
            f"{self.topology.n_gpus}x {self.device.name} ({self.topology.name})"
        )


@dataclass(frozen=True)
class OverlapSettings:
    """Tunables of the FlashOverlap design and its search procedure."""

    #: Maximum size (in waves) of the first wave group considered by the
    #: pruned search (paper uses 2).
    max_first_group: int = 2
    #: Maximum size (in waves) of the last wave group (paper uses 4).
    max_last_group: int = 4
    #: Largest wave count for which the pruned design space is enumerated
    #: exhaustively; beyond this a heuristic candidate family is used.
    max_exhaustive_waves: int = 14
    #: Latency of the signal round-trip: the polling kernel noticing that the
    #: counting table reached the group size and releasing the collective.
    signal_poll_us: float = 3.0
    #: Extra per-group launch overhead on the communication stream (stream
    #: wait + NCCL (re)launch), in microseconds.
    comm_launch_us: float = 8.0
    #: Relative jitter applied by the ground-truth executor to model
    #: measurement noise and non-ideal implementation effects.
    executor_jitter: float = 0.02
    #: Number of bandwidth-curve sample points per decade used by the offline
    #: profiling stage feeding the predictor.
    bandwidth_samples_per_decade: int = 4
    #: Relative measurement noise of the offline bandwidth profiling.
    bandwidth_profile_noise: float = 0.015
    #: Random seed used by every stochastic component (jitter, profiling noise).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_first_group < 1 or self.max_last_group < 1:
            raise ValueError("group-size bounds must be >= 1")
        if self.max_exhaustive_waves < 1:
            raise ValueError("max_exhaustive_waves must be >= 1")
        if self.signal_poll_us < 0 or self.comm_launch_us < 0:
            raise ValueError("overheads must be non-negative")

    @property
    def signal_poll_s(self) -> float:
        return self.signal_poll_us * 1e-6

    @property
    def comm_launch_s(self) -> float:
        return self.comm_launch_us * 1e-6


DEFAULT_SETTINGS = OverlapSettings()
