"""The public FlashOverlap operator.

:class:`FlashOverlapOperator` ties the pieces together for one
"GEMM + collective" instance:

1. :meth:`plan` runs the offline + online tuning stages and produces an
   :class:`OverlapPlan` -- the wave-group partition, the tile-to-group
   assignment and the reordering plan;
2. :meth:`simulate` executes the plan on the simulated device and returns the
   latency/trace (what every performance benchmark measures);
3. :meth:`run_numeric` executes the plan on NumPy data and checks it against
   the plain collective (what the correctness tests assert);
4. :meth:`report` compares against the sequential baseline and the perfect
   -overlap bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.primitives import CollectiveKind
from repro.core.baselines import NonOverlapBaseline
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.core.executor import OverlapExecutor, OverlapResult
from repro.core.predictor import OfflineProfile
from repro.core.reordering import (
    PipelineResult,
    ReorderPlan,
    build_reorder_plan,
    run_all_to_all_pipeline,
    run_allreduce_pipeline,
    run_reduce_scatter_pipeline,
)
from repro.core.signaling import GroupAssignment
from repro.core.tuner import PredictiveTuner, TuningResult
from repro.core.wave_grouping import WavePartition
from repro.gpu.epilogue import rmsnorm


@dataclass(frozen=True)
class OverlapPlan:
    """A fully resolved overlap configuration for one problem."""

    problem: OverlapProblem
    partition: WavePartition
    assignment: GroupAssignment
    reorder_plan: ReorderPlan
    tuning: TuningResult | None = None

    @property
    def num_groups(self) -> int:
        return self.partition.num_groups

    @property
    def use_overlap(self) -> bool:
        """False when the tuner decided the sequential fallback is faster."""
        return self.tuning.use_overlap if self.tuning is not None else True

    def describe(self) -> str:
        mode = "overlap" if self.use_overlap else "sequential fallback"
        return (
            f"{self.problem.describe()}: {self.partition.num_waves} waves "
            f"partitioned as {self.partition} ({mode})"
        )


@dataclass(frozen=True)
class SpeedupReport:
    """Summary of one operator-level comparison."""

    problem_description: str
    overlap_latency: float
    non_overlap_latency: float
    theoretical_latency: float

    @property
    def speedup(self) -> float:
        return self.non_overlap_latency / self.overlap_latency

    @property
    def theoretical_speedup(self) -> float:
        return self.non_overlap_latency / self.theoretical_latency

    @property
    def ratio_of_theoretical(self) -> float:
        """Fraction of the perfect-overlap speedup actually achieved."""
        return self.theoretical_latency / self.overlap_latency


class FlashOverlapOperator:
    """High-level API over one "GEMM followed by collective" instance."""

    def __init__(
        self, problem: OverlapProblem, settings: OverlapSettings = DEFAULT_SETTINGS
    ) -> None:
        self.problem = problem
        self.settings = settings
        self.executor = OverlapExecutor(problem, settings)
        self.tuner = PredictiveTuner(settings)
        self._cached_plan: OverlapPlan | None = None

    # -- planning ----------------------------------------------------------------

    def plan(self, partition: WavePartition | None = None) -> OverlapPlan:
        """Produce (and cache) the overlap plan.

        When ``partition`` is omitted, the predictive tuner picks it; passing
        one explicitly is how the ablation studies evaluate fixed or
        misconfigured groupings.
        """
        tuning = None
        if partition is None:
            if self._cached_plan is not None:
                return self._cached_plan
            profile = OfflineProfile.build(self.problem, self.settings)
            tuning = self.tuner.tune(self.problem, profile)
            partition = tuning.partition
        assignment = self.executor.assignment(partition)
        reorder = build_reorder_plan(
            self.problem.collective,
            self.executor.gemm_contended.layout,
            [list(t) for t in assignment.group_tiles],
            self.problem.n_gpus,
        )
        plan = OverlapPlan(
            problem=self.problem,
            partition=partition,
            assignment=assignment,
            reorder_plan=reorder,
            tuning=tuning,
        )
        if tuning is not None:
            self._cached_plan = plan
        return plan

    # -- performance ---------------------------------------------------------------

    def simulate(self, plan: OverlapPlan | None = None) -> OverlapResult:
        plan = plan or self.plan()
        if not plan.use_overlap:
            return self.executor.simulate_sequential()
        return self.executor.simulate(plan.partition)

    def report(self, plan: OverlapPlan | None = None) -> SpeedupReport:
        """Compare the overlapped execution against the sequential baseline."""
        result = self.simulate(plan)
        non_overlap = NonOverlapBaseline(self.settings).latency(self.problem)
        return SpeedupReport(
            problem_description=self.problem.describe(),
            overlap_latency=result.latency,
            non_overlap_latency=non_overlap,
            theoretical_latency=self.executor.theoretical_latency(),
        )

    def speedup(self, plan: OverlapPlan | None = None) -> float:
        return self.report(plan).speedup

    # -- correctness ---------------------------------------------------------------

    def run_numeric(
        self,
        plan: OverlapPlan | None = None,
        rng: np.random.Generator | None = None,
        compute_gemm: bool = False,
        elementwise=None,
    ) -> PipelineResult:
        """Execute the plan on NumPy data and compare with the plain collective.

        ``compute_gemm=True`` generates actual ``A @ B_g`` partial products
        (tensor-parallel style) instead of random partial outputs; this is
        slower but demonstrates the full GEMM-then-collective data flow.
        """
        plan = plan or self.plan()
        rng = rng or np.random.default_rng(self.settings.seed)
        layout = plan.reorder_plan.layout
        n = self.problem.n_gpus
        execution_order = self.executor.gemm_contended.execution_order()

        if compute_gemm:
            k = self.problem.shape.k
            k_split = max(1, k // n)
            a = rng.standard_normal((layout.m, k))
            matrices = []
            for gpu in range(n):
                lo = gpu * k_split
                hi = k if gpu == n - 1 else (gpu + 1) * k_split
                b = rng.standard_normal((hi - lo, layout.n))
                matrices.append(a[:, lo:hi] @ b)
        else:
            matrices = [rng.standard_normal((layout.m, layout.n)) for _ in range(n)]

        kind = self.problem.collective
        if kind == CollectiveKind.ALL_REDUCE:
            return run_allreduce_pipeline(
                matrices,
                plan.reorder_plan,
                assignment=plan.assignment,
                execution_order=execution_order,
            )
        if kind == CollectiveKind.REDUCE_SCATTER:
            return run_reduce_scatter_pipeline(
                matrices,
                plan.reorder_plan,
                elementwise=elementwise if elementwise is not None else rmsnorm,
                assignment=plan.assignment,
                execution_order=execution_order,
            )
        if kind == CollectiveKind.ALL_TO_ALL:
            destinations = [
                rng.integers(0, n, size=layout.m) for _ in range(n)
            ]
            return run_all_to_all_pipeline(
                matrices,
                destinations,
                plans=[plan.reorder_plan] * n,
                assignments=[plan.assignment] * n,
                execution_orders=[execution_order] * n,
            )
        raise ValueError(f"no numeric pipeline for collective {kind}")
