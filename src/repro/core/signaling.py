"""The signaling mechanism: group-wise tile counting.

On real hardware the GEMM epilogue atomically increments a per-group counter
when a tile finishes; a polling kernel on the communication stream releases
the group's collective once the counter reaches the group size (Fig. 6).
Here the same state machine is implemented explicitly so that

* the functional path can assert that a group is only communicated after all
  of its tiles completed,
* the event-driven executor can derive the exact signal firing times from the
  per-tile completion times of the GEMM model.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.wave_grouping import WavePartition


class SignalOrderError(RuntimeError):
    """Raised when a group is consumed before all of its tiles finished."""


@dataclass
class CountingTable:
    """Per-group completion counters, mirroring the on-device counting table."""

    group_sizes: tuple[int, ...]
    counts: list[int] = field(default_factory=list)
    fired: list[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.group_sizes or any(s <= 0 for s in self.group_sizes):
            raise ValueError("group sizes must be positive")
        if not self.counts:
            self.counts = [0] * len(self.group_sizes)
        if not self.fired:
            self.fired = [False] * len(self.group_sizes)

    @property
    def num_groups(self) -> int:
        return len(self.group_sizes)

    def record_tile(self, group_index: int) -> bool:
        """Atomically count one finished tile; return True when the group's
        counter just reached the group size (the signal fires)."""
        if not 0 <= group_index < self.num_groups:
            raise IndexError(f"group {group_index} outside 0..{self.num_groups - 1}")
        if self.counts[group_index] >= self.group_sizes[group_index]:
            raise SignalOrderError(
                f"group {group_index} received more tiles than its size "
                f"{self.group_sizes[group_index]}"
            )
        self.counts[group_index] += 1
        if self.counts[group_index] == self.group_sizes[group_index]:
            self.fired[group_index] = True
            return True
        return False

    def is_complete(self, group_index: int) -> bool:
        return self.counts[group_index] == self.group_sizes[group_index]

    def all_complete(self) -> bool:
        return all(self.is_complete(g) for g in range(self.num_groups))

    def assert_ready(self, group_index: int) -> None:
        """Raise unless the group's signal has fired (data dependency check)."""
        if not self.is_complete(group_index):
            raise SignalOrderError(
                f"communication of group {group_index} attempted with only "
                f"{self.counts[group_index]}/{self.group_sizes[group_index]} tiles done"
            )


@dataclass(frozen=True)
class GroupAssignment:
    """Static tile-to-group assignment derived from the execution order.

    ``group_of_tile[t]`` gives the wave group of tile index ``t``; the
    per-group tile lists keep execution order, which is also the order in
    which the pre-communication reorder packs them.
    """

    partition: WavePartition
    group_tiles: tuple[tuple[int, ...], ...]
    group_of_tile: dict[int, int]

    @classmethod
    def build(
        cls, partition: WavePartition, wave_tiles: Sequence[Sequence[int]]
    ) -> "GroupAssignment":
        groups = partition.group_tiles(wave_tiles)
        group_of_tile: dict[int, int] = {}
        for group_index, tiles in enumerate(groups):
            for tile in tiles:
                if tile in group_of_tile:
                    raise ValueError(f"tile {tile} assigned to two groups")
                group_of_tile[tile] = group_index
        return cls(
            partition=partition,
            group_tiles=tuple(tuple(t) for t in groups),
            group_of_tile=group_of_tile,
        )

    @property
    def num_groups(self) -> int:
        return len(self.group_tiles)

    def tiles_of(self, group_index: int) -> tuple[int, ...]:
        return self.group_tiles[group_index]

    def group_tile_counts(self) -> tuple[int, ...]:
        return tuple(len(t) for t in self.group_tiles)

    def counting_table(self) -> CountingTable:
        """A fresh counting table sized in tiles (not waves) per group."""
        return CountingTable(group_sizes=self.group_tile_counts())


@dataclass(frozen=True)
class SignalSchedule:
    """Signal firing time of every group, derived from tile completion times."""

    group_ready_times: np.ndarray

    @classmethod
    def from_tile_times(
        cls,
        assignment: GroupAssignment,
        tile_completion_times: np.ndarray,
        signal_latency: float = 0.0,
    ) -> "SignalSchedule":
        """Compute when each group's signal fires.

        A group is ready when its *last* tile completes; the signal adds the
        polling round-trip latency on top.  The construction also replays the
        counting table to assert the mechanism's invariant.
        """
        times = np.asarray(tile_completion_times, dtype=np.float64)
        table = assignment.counting_table()
        completion_order = np.argsort(times, kind="stable")
        fire_time = np.full(assignment.num_groups, np.nan)
        for tile in completion_order:
            tile = int(tile)
            if tile not in assignment.group_of_tile:
                continue
            group = assignment.group_of_tile[tile]
            if table.record_tile(group):
                fire_time[group] = times[tile] + signal_latency
        if np.isnan(fire_time).any():
            missing = [g for g in range(assignment.num_groups) if np.isnan(fire_time[g])]
            raise SignalOrderError(f"groups {missing} never became ready")
        return cls(group_ready_times=fire_time)

    def ready_time(self, group_index: int) -> float:
        return float(self.group_ready_times[group_index])

    def is_monotonic(self) -> bool:
        """Group signals fire in group order when groups follow wave order."""
        return bool(np.all(np.diff(self.group_ready_times) >= -1e-12))
