"""The latency predictor used by the predictive search (paper Alg. 1).

The predictor replaces online profiling: given a wave-group partition it
estimates the overlapped latency from two offline-profiled quantities --
the GEMM duration (turned into a per-wave time under SM contention) and the
sampled communication bandwidth curve.  It deliberately ignores the
second-order effects the ground-truth executor models (per-group launch
overheads, signal polling, jitter), which is what produces the small positive
bias of the actual latency over the prediction reported in Fig. 15.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.comm.bandwidth import (
    AnalyticBandwidthCurve,
    SampledBandwidthCurve,
    default_sample_sizes,
    sample_bandwidth,
)
from repro.comm.primitives import CollectiveModel
from repro.comm.topology import Topology
from repro.core.config import OverlapProblem, OverlapSettings, DEFAULT_SETTINGS
from repro.core.wave_grouping import PartitionMatrix, WavePartition, candidate_partitions_matrix


# ---------------------------------------------------------------------------
# Offline-profile memoization
# ---------------------------------------------------------------------------
#
# The offline stage is deterministic in (problem, settings): the sampled
# bandwidth curve depends only on (topology, sample density, noise, seed) and
# the GEMM-side quantities only on the problem definition.  Both are therefore
# memoized at process level, so repeated tuner calls -- a sweep worker
# executing many jobs, the shape-cache warm-start path re-tuning near misses,
# a benchmark re-ranking candidates -- rebuild neither the curve nor the
# profile.  ``clear_profile_caches`` exists for benchmarks that want to time
# the cold path.


@lru_cache(maxsize=256)
def _cached_sampled_curve(
    topology: Topology, points_per_decade: int, noise: float, seed: int
) -> SampledBandwidthCurve:
    """Sampled bandwidth curve keyed by (topology, sampling settings)."""
    analytic = AnalyticBandwidthCurve.for_topology(topology)
    curve = sample_bandwidth(
        analytic,
        default_sample_sizes(points_per_decade=points_per_decade),
        noise=noise,
        seed=seed,
    )
    # Shared across profiles: guard against accidental in-place edits.
    curve.sizes_bytes.setflags(write=False)
    curve.bandwidths_bytes.setflags(write=False)
    return curve


def profile_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the process-level offline-profile caches."""
    profile = OfflineProfile.cached.cache_info()
    curve = _cached_sampled_curve.cache_info()
    return {
        "profile_hits": profile.hits,
        "profile_misses": profile.misses,
        "profile_size": profile.currsize,
        "curve_hits": curve.hits,
        "curve_misses": curve.misses,
        "curve_size": curve.currsize,
    }


def clear_profile_caches() -> None:
    """Drop memoized offline profiles and sampled curves (cold-path timing)."""
    OfflineProfile.cached.cache_clear()
    _cached_sampled_curve.cache_clear()


@dataclass(frozen=True)
class OfflineProfile:
    """Everything the predictor knows, gathered at deployment time.

    * ``num_waves`` -- wave count of the GEMM under SM contention
      (``tile_num / (sm_num - comm_sm_num)``, Alg. 1 line 3),
    * ``wave_time`` -- duration of one wave of the contended GEMM,
    * ``wave_bytes`` -- output bytes produced by one full wave,
    * ``comm_model`` -- collective latency model backed by the *sampled*
      bandwidth curve (offline profiling of Fig. 8),
    * ``sequential_compute_time`` -- GEMM duration *without* SM contention
      (the non-overlapped execution does not reserve SMs for communication),
    * ``imbalance`` -- workload skew of the slowest rank (1.0 = balanced).
    """

    num_waves: int
    wave_time: float
    wave_bytes: float
    comm_model: CollectiveModel
    sequential_compute_time: float = 0.0
    imbalance: float = 1.0

    @classmethod
    def build(
        cls, problem: OverlapProblem, settings: OverlapSettings = DEFAULT_SETTINGS
    ) -> "OfflineProfile":
        """Run the offline stage for a problem (Alg. 1 lines 1-5)."""
        compute_sms = problem.compute_sm_count()
        gemm = problem.gemm_model()
        num_waves = gemm.num_waves(compute_sms)
        wave_time = gemm.wave_duration(compute_sms)
        wave_bytes = gemm.wave_size(compute_sms) * problem.tile_config().tile_bytes(
            problem.dtype_bytes
        )
        sampled = _cached_sampled_curve(
            problem.topology,
            settings.bandwidth_samples_per_decade,
            settings.bandwidth_profile_noise,
            settings.seed,
        )
        comm_model = problem.collective_model().with_curve(sampled)
        return cls(
            num_waves=num_waves,
            wave_time=wave_time,
            wave_bytes=wave_bytes,
            comm_model=comm_model,
            sequential_compute_time=gemm.duration(include_launch=False),
            imbalance=problem.imbalance,
        )

    @classmethod
    @lru_cache(maxsize=1024)
    def cached(
        cls, problem: OverlapProblem, settings: OverlapSettings = DEFAULT_SETTINGS
    ) -> "OfflineProfile":
        """Memoized :meth:`build`, shared across tuner calls within a process.

        The cache key is the full problem definition (device, topology,
        collective, GEMM shape/config, dtype, imbalance) plus the settings;
        the sampled bandwidth curve underneath is additionally shared across
        *all* shapes of the same (topology, sampling settings) bucket.  The
        profile is frozen and only ever read, so sharing one instance across
        callers -- including sweep jobs running in the same worker process --
        is safe.
        """
        return cls.build(problem, settings)

    def total_output_bytes(self, problem_bytes: float | None = None) -> float:
        """Total bytes the collective must move (defaults to full waves)."""
        if problem_bytes is not None:
            return problem_bytes
        return self.num_waves * self.wave_bytes


@dataclass(frozen=True)
class PredictedTimeline:
    """Per-group predicted schedule (for inspection and tests)."""

    compute_end: np.ndarray
    comm_start: np.ndarray
    comm_end: np.ndarray

    @property
    def latency(self) -> float:
        return float(self.comm_end[-1]) if self.comm_end.size else 0.0


class LatencyPredictor:
    """Analytical latency prediction of an overlapped execution (Alg. 1)."""

    def __init__(self, profile: OfflineProfile, total_bytes: float | None = None) -> None:
        self.profile = profile
        self._total_bytes = profile.total_output_bytes(total_bytes)

    # -- per-group quantities ---------------------------------------------------

    def group_bytes(self, partition: WavePartition) -> np.ndarray:
        """Approximate communication payload of each group.

        The predictor assumes full waves; the final group absorbs whatever is
        left of the true output size (the last wave is usually partial).
        """
        sizes = np.array(partition.group_sizes, dtype=np.float64)
        raw = sizes * self.profile.wave_bytes
        overflow = raw.sum() - self._total_bytes
        if overflow > 0:
            raw[-1] = max(0.0, raw[-1] - overflow)
        return raw

    def group_compute_times(self, partition: WavePartition) -> np.ndarray:
        sizes = np.array(partition.group_sizes, dtype=np.float64)
        return sizes * self.profile.wave_time * self.profile.imbalance

    def group_comm_times(self, partition: WavePartition) -> np.ndarray:
        payloads = self.group_bytes(partition) * self.profile.imbalance
        return np.array([self.profile.comm_model.latency(b) for b in payloads])

    # -- the prediction ----------------------------------------------------------

    def timeline(self, partition: WavePartition) -> PredictedTimeline:
        """Accumulate compute and communication latencies group by group.

        Communication of group ``i`` starts once (a) the GEMM has finished all
        waves up to and including group ``i`` and (b) the previous group's
        communication has drained (the collective calls are serialized on the
        communication stream).
        """
        if partition.num_waves != self.profile.num_waves:
            raise ValueError(
                f"partition covers {partition.num_waves} waves, but the profile "
                f"has {self.profile.num_waves}"
            )
        compute = self.group_compute_times(partition)
        comm = self.group_comm_times(partition)
        compute_end = np.cumsum(compute)
        comm_start = np.empty_like(comm)
        comm_end = np.empty_like(comm)
        previous_end = 0.0
        for i in range(partition.num_groups):
            comm_start[i] = max(compute_end[i], previous_end)
            comm_end[i] = comm_start[i] + comm[i]
            previous_end = comm_end[i]
        return PredictedTimeline(compute_end=compute_end, comm_start=comm_start, comm_end=comm_end)

    def predict(self, partition: WavePartition) -> float:
        """Predicted total latency of the overlapped execution.

        This is the scalar reference implementation; the tuner's fast path is
        :meth:`predict_batch`, which is asserted bit-identical to this one by
        the equivalence test suite.
        """
        return self.timeline(partition).latency

    def predict_batch(
        self, partitions: Sequence[WavePartition] | PartitionMatrix
    ) -> np.ndarray:
        """Predicted latency of every candidate partition in one vectorized pass.

        Candidates are encoded as a padded :class:`PartitionMatrix` (zero-size
        padding groups contribute zero compute and zero payload, so they leave
        each candidate's timeline untouched).  Every arithmetic step mirrors
        the scalar :meth:`predict` element-for-element -- same operation order,
        same interpolation -- so the returned latencies are bit-identical to
        calling :meth:`predict` per candidate, and ``argmin`` picks the same
        winner the scalar loop would.
        """
        matrix = (
            partitions
            if isinstance(partitions, PartitionMatrix)
            else candidate_partitions_matrix(list(partitions))
        )
        if matrix.num_candidates == 0:
            return np.empty(0, dtype=np.float64)
        if not np.all(matrix.total_waves == self.profile.num_waves):
            bad = int(matrix.total_waves[matrix.total_waves != self.profile.num_waves][0])
            raise ValueError(
                f"partition covers {bad} waves, but the profile has {self.profile.num_waves}"
            )
        sizes = matrix.sizes.astype(np.float64)

        # Per-group payloads: full waves, overflow absorbed by the last group.
        # Sizes and wave_bytes are integer-valued, so the row sums are exact in
        # any summation order and the overflow adjustment matches the scalar
        # path bit for bit.
        raw = sizes * self.profile.wave_bytes
        overflow = raw.sum(axis=1) - self._total_bytes
        last = matrix.counts - 1
        clip = np.flatnonzero(overflow > 0)
        if clip.size:
            raw[clip, last[clip]] = np.maximum(0.0, raw[clip, last[clip]] - overflow[clip])
        comm = self.profile.comm_model.latency_array(raw * self.profile.imbalance)

        compute_end = np.cumsum(sizes * self.profile.wave_time * self.profile.imbalance, axis=1)

        # The serialization recurrence of ``timeline`` across all candidates at
        # once: one short loop over group slots, vectorized over candidates.
        previous_end = np.zeros(matrix.num_candidates, dtype=np.float64)
        for group in range(matrix.max_groups):
            start = np.maximum(compute_end[:, group], previous_end)
            previous_end = start + comm[:, group]
        return previous_end

    def predict_non_overlap(self) -> float:
        """Predicted latency of the sequential (non-overlapped) execution.

        The sequential path does not reserve SMs for communication, so its
        compute term is the uncontended GEMM duration (falling back to the
        contended estimate when the profile does not carry one).
        """
        compute = self.profile.sequential_compute_time
        if compute <= 0.0:
            compute = self.profile.num_waves * self.profile.wave_time
        compute *= self.profile.imbalance
        comm = self.profile.comm_model.latency(self._total_bytes * self.profile.imbalance)
        return compute + comm
