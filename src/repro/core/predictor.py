"""The latency predictor used by the predictive search (paper Alg. 1).

The predictor replaces online profiling: given a wave-group partition it
estimates the overlapped latency from two offline-profiled quantities --
the GEMM duration (turned into a per-wave time under SM contention) and the
sampled communication bandwidth curve.  It deliberately ignores the
second-order effects the ground-truth executor models (per-group launch
overheads, signal polling, jitter), which is what produces the small positive
bias of the actual latency over the prediction reported in Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.bandwidth import (
    AnalyticBandwidthCurve,
    SampledBandwidthCurve,
    default_sample_sizes,
    sample_bandwidth,
)
from repro.comm.primitives import CollectiveModel
from repro.core.config import OverlapProblem, OverlapSettings, DEFAULT_SETTINGS
from repro.core.wave_grouping import WavePartition


@dataclass(frozen=True)
class OfflineProfile:
    """Everything the predictor knows, gathered at deployment time.

    * ``num_waves`` -- wave count of the GEMM under SM contention
      (``tile_num / (sm_num - comm_sm_num)``, Alg. 1 line 3),
    * ``wave_time`` -- duration of one wave of the contended GEMM,
    * ``wave_bytes`` -- output bytes produced by one full wave,
    * ``comm_model`` -- collective latency model backed by the *sampled*
      bandwidth curve (offline profiling of Fig. 8),
    * ``sequential_compute_time`` -- GEMM duration *without* SM contention
      (the non-overlapped execution does not reserve SMs for communication),
    * ``imbalance`` -- workload skew of the slowest rank (1.0 = balanced).
    """

    num_waves: int
    wave_time: float
    wave_bytes: float
    comm_model: CollectiveModel
    sequential_compute_time: float = 0.0
    imbalance: float = 1.0

    @classmethod
    def build(
        cls, problem: OverlapProblem, settings: OverlapSettings = DEFAULT_SETTINGS
    ) -> "OfflineProfile":
        """Run the offline stage for a problem (Alg. 1 lines 1-5)."""
        compute_sms = problem.compute_sm_count()
        gemm = problem.gemm_model()
        num_waves = gemm.num_waves(compute_sms)
        wave_time = gemm.wave_duration(compute_sms)
        wave_bytes = gemm.wave_size(compute_sms) * problem.tile_config().tile_bytes(
            problem.dtype_bytes
        )
        analytic = AnalyticBandwidthCurve.for_topology(problem.topology)
        sampled = sample_bandwidth(
            analytic,
            default_sample_sizes(points_per_decade=settings.bandwidth_samples_per_decade),
            noise=settings.bandwidth_profile_noise,
            seed=settings.seed,
        )
        comm_model = problem.collective_model().with_curve(sampled)
        return cls(
            num_waves=num_waves,
            wave_time=wave_time,
            wave_bytes=wave_bytes,
            comm_model=comm_model,
            sequential_compute_time=gemm.duration(include_launch=False),
            imbalance=problem.imbalance,
        )

    def total_output_bytes(self, problem_bytes: float | None = None) -> float:
        """Total bytes the collective must move (defaults to full waves)."""
        if problem_bytes is not None:
            return problem_bytes
        return self.num_waves * self.wave_bytes


@dataclass(frozen=True)
class PredictedTimeline:
    """Per-group predicted schedule (for inspection and tests)."""

    compute_end: np.ndarray
    comm_start: np.ndarray
    comm_end: np.ndarray

    @property
    def latency(self) -> float:
        return float(self.comm_end[-1]) if self.comm_end.size else 0.0


class LatencyPredictor:
    """Analytical latency prediction of an overlapped execution (Alg. 1)."""

    def __init__(self, profile: OfflineProfile, total_bytes: float | None = None) -> None:
        self.profile = profile
        self._total_bytes = profile.total_output_bytes(total_bytes)

    # -- per-group quantities ---------------------------------------------------

    def group_bytes(self, partition: WavePartition) -> np.ndarray:
        """Approximate communication payload of each group.

        The predictor assumes full waves; the final group absorbs whatever is
        left of the true output size (the last wave is usually partial).
        """
        sizes = np.array(partition.group_sizes, dtype=np.float64)
        raw = sizes * self.profile.wave_bytes
        overflow = raw.sum() - self._total_bytes
        if overflow > 0:
            raw[-1] = max(0.0, raw[-1] - overflow)
        return raw

    def group_compute_times(self, partition: WavePartition) -> np.ndarray:
        sizes = np.array(partition.group_sizes, dtype=np.float64)
        return sizes * self.profile.wave_time * self.profile.imbalance

    def group_comm_times(self, partition: WavePartition) -> np.ndarray:
        payloads = self.group_bytes(partition) * self.profile.imbalance
        return np.array([self.profile.comm_model.latency(b) for b in payloads])

    # -- the prediction ----------------------------------------------------------

    def timeline(self, partition: WavePartition) -> PredictedTimeline:
        """Accumulate compute and communication latencies group by group.

        Communication of group ``i`` starts once (a) the GEMM has finished all
        waves up to and including group ``i`` and (b) the previous group's
        communication has drained (the collective calls are serialized on the
        communication stream).
        """
        if partition.num_waves != self.profile.num_waves:
            raise ValueError(
                f"partition covers {partition.num_waves} waves, but the profile "
                f"has {self.profile.num_waves}"
            )
        compute = self.group_compute_times(partition)
        comm = self.group_comm_times(partition)
        compute_end = np.cumsum(compute)
        comm_start = np.empty_like(comm)
        comm_end = np.empty_like(comm)
        previous_end = 0.0
        for i in range(partition.num_groups):
            comm_start[i] = max(compute_end[i], previous_end)
            comm_end[i] = comm_start[i] + comm[i]
            previous_end = comm_end[i]
        return PredictedTimeline(compute_end=compute_end, comm_start=comm_start, comm_end=comm_end)

    def predict(self, partition: WavePartition) -> float:
        """Predicted total latency of the overlapped execution."""
        return self.timeline(partition).latency

    def predict_non_overlap(self) -> float:
        """Predicted latency of the sequential (non-overlapped) execution.

        The sequential path does not reserve SMs for communication, so its
        compute term is the uncontended GEMM duration (falling back to the
        contended estimate when the profile does not carry one).
        """
        compute = self.profile.sequential_compute_time
        if compute <= 0.0:
            compute = self.profile.num_waves * self.profile.wave_time
        compute *= self.profile.imbalance
        comm = self.profile.comm_model.latency(self._total_bytes * self.profile.imbalance)
        return compute + comm
