"""Wave-group partitions: the tunable design space of FlashOverlap.

A GEMM executes in ``T`` waves.  After each wave the design may either trigger
the communication of everything accumulated since the previous trigger, or
keep accumulating; the last wave always triggers.  A choice is therefore a
*composition* of ``T`` -- an ordered tuple of positive group sizes summing to
``T`` -- and the raw design space has ``2^(T-1)`` elements (Fig. 9).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WavePartition:
    """An ordered partition of ``T`` waves into contiguous groups."""

    group_sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.group_sizes:
            raise ValueError("a partition needs at least one group")
        if any(size <= 0 for size in self.group_sizes):
            raise ValueError(f"group sizes must be positive, got {self.group_sizes}")

    @classmethod
    def from_sizes(cls, sizes: Iterable[int]) -> "WavePartition":
        return cls(tuple(int(s) for s in sizes))

    @classmethod
    def single_group(cls, num_waves: int) -> "WavePartition":
        """All waves in one group: communication entirely after the GEMM."""
        return cls((num_waves,))

    @classmethod
    def per_wave(cls, num_waves: int) -> "WavePartition":
        """One group per wave: the most fine-grained signaling."""
        return cls((1,) * num_waves)

    @classmethod
    def equal_groups(cls, num_waves: int, group_size: int) -> "WavePartition":
        """Equally sized groups of ``group_size`` waves (last group absorbs the
        remainder), the ablation baseline of Fig. 14."""
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        if group_size >= num_waves:
            return cls.single_group(num_waves)
        full = num_waves // group_size
        sizes = [group_size] * full
        remainder = num_waves - full * group_size
        if remainder:
            sizes.append(remainder)
        return cls(tuple(sizes))

    @classmethod
    def from_decisions(cls, decisions: Sequence[bool]) -> "WavePartition":
        """Build a partition from the binary "communicate after wave i" vector.

        ``decisions`` has one entry per wave; the last wave's decision is
        forced to True (all remaining data must be communicated).
        """
        if not decisions:
            raise ValueError("need at least one wave")
        sizes = []
        current = 0
        for index, flag in enumerate(decisions):
            current += 1
            last = index == len(decisions) - 1
            if flag or last:
                sizes.append(current)
                current = 0
        return cls(tuple(sizes))

    # -- properties -------------------------------------------------------------

    @property
    def num_waves(self) -> int:
        return sum(self.group_sizes)

    @property
    def num_groups(self) -> int:
        return len(self.group_sizes)

    @property
    def first_group(self) -> int:
        return self.group_sizes[0]

    @property
    def last_group(self) -> int:
        return self.group_sizes[-1]

    def boundaries(self) -> list[int]:
        """Cumulative wave counts at the end of each group (1-based waves)."""
        total = 0
        result = []
        for size in self.group_sizes:
            total += size
            result.append(total)
        return result

    def decisions(self) -> list[bool]:
        """The binary "communicate after wave i" vector of this partition."""
        flags = [False] * self.num_waves
        for boundary in self.boundaries():
            flags[boundary - 1] = True
        return flags

    def group_of_wave(self, wave_index: int) -> int:
        """Group index containing wave ``wave_index`` (0-based)."""
        if not 0 <= wave_index < self.num_waves:
            raise IndexError(f"wave {wave_index} outside 0..{self.num_waves - 1}")
        for group_index, boundary in enumerate(self.boundaries()):
            if wave_index < boundary:
                return group_index
        raise AssertionError("unreachable")  # pragma: no cover

    def group_waves(self, group_index: int) -> range:
        """Wave indices (0-based) belonging to one group."""
        if not 0 <= group_index < self.num_groups:
            raise IndexError(f"group {group_index} outside 0..{self.num_groups - 1}")
        boundaries = [0] + self.boundaries()
        return range(boundaries[group_index], boundaries[group_index + 1])

    def group_tiles(self, wave_tiles: Sequence[Sequence[int]]) -> list[list[int]]:
        """Tile indices of each group given the per-wave tile lists."""
        if len(wave_tiles) != self.num_waves:
            raise ValueError(
                f"partition covers {self.num_waves} waves but {len(wave_tiles)} "
                "wave tile lists were provided"
            )
        groups = []
        for group_index in range(self.num_groups):
            tiles: list[int] = []
            for wave_index in self.group_waves(group_index):
                tiles.extend(wave_tiles[wave_index])
            groups.append(tiles)
        return groups

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + ", ".join(str(s) for s in self.group_sizes) + ")"


# -- design-space enumeration -------------------------------------------------


def enumerate_partitions(num_waves: int) -> Iterator[WavePartition]:
    """Enumerate the full design space: all ``2^(T-1)`` compositions of ``T``."""
    if num_waves <= 0:
        raise ValueError("num_waves must be positive")
    if num_waves == 1:
        yield WavePartition((1,))
        return
    for mask in range(1 << (num_waves - 1)):
        decisions = [bool(mask >> i & 1) for i in range(num_waves - 1)] + [True]
        yield WavePartition.from_decisions(decisions)


def design_space_size(num_waves: int) -> int:
    """Size of the unpruned design space."""
    if num_waves <= 0:
        raise ValueError("num_waves must be positive")
    return 1 << (num_waves - 1)


def pruned_partitions(
    num_waves: int, max_first_group: int, max_last_group: int
) -> list[WavePartition]:
    """The pruned design space: bounded first and last group sizes.

    The first group controls the head latency (cold start) and the last group
    controls the tail, so both are preferred small (Sec. 4.1.3/4.1.4).
    """
    return [
        p
        for p in enumerate_partitions(num_waves)
        if p.first_group <= max_first_group and p.last_group <= max_last_group
    ]


def heuristic_partitions(
    num_waves: int, max_first_group: int, max_last_group: int
) -> list[WavePartition]:
    """A compact candidate family for large ``T`` where enumeration explodes.

    Combines (a) equal-size groupings for every group size, (b) geometric
    "small head, growing body, bounded tail" partitions, and (c) the per-wave
    and single-group extremes.  All candidates respect the first/last bounds
    where possible.
    """
    candidates: dict[tuple[int, ...], WavePartition] = {}

    def add(partition: WavePartition) -> None:
        candidates.setdefault(partition.group_sizes, partition)

    add(WavePartition.per_wave(num_waves))
    if num_waves <= max_last_group:
        add(WavePartition.single_group(num_waves))
    for group_size in range(1, num_waves + 1):
        partition = WavePartition.equal_groups(num_waves, group_size)
        add(partition)
    for first in range(1, min(max_first_group, num_waves) + 1):
        for growth in (1.0, 1.5, 2.0, 3.0):
            sizes = [first]
            current = float(first)
            while sum(sizes) < num_waves:
                current = max(current * growth, current + 1) if growth > 1 else current
                remaining = num_waves - sum(sizes)
                size = min(int(round(current)), remaining)
                # Keep the tail bounded: split an oversized final group.
                if remaining - size == 0 and size > max_last_group:
                    size = max_last_group
                sizes.append(max(1, size))
            add(WavePartition.from_sizes(sizes))
    return list(candidates.values())


# -- batch encoding -----------------------------------------------------------


@dataclass(frozen=True)
class PartitionMatrix:
    """Padded NumPy encoding of a family of candidate partitions.

    Row ``c`` describes candidate ``c``: ``sizes[c, g]`` is the wave count of
    its ``g``-th group (zero-padded past ``counts[c]`` groups) and
    ``boundaries[c, g]`` is the prefix sum of those sizes (the 1-based wave
    index at which group ``g`` ends; past the last real group the boundary
    stays at the total wave count).  This is the input format of the
    vectorized latency predictor and the incremental exhaustive tuner: one
    encoding is built per search and reused by every evaluation pass.
    """

    sizes: np.ndarray  # (num_candidates, max_groups) int64, zero padded
    counts: np.ndarray  # (num_candidates,) int64, number of real groups
    boundaries: np.ndarray  # (num_candidates, max_groups) int64 prefix sums

    @property
    def num_candidates(self) -> int:
        return int(self.sizes.shape[0])

    @property
    def max_groups(self) -> int:
        return int(self.sizes.shape[1])

    @property
    def total_waves(self) -> np.ndarray:
        """Wave count covered by each candidate."""
        return self.boundaries[:, -1] if self.max_groups else np.zeros(0, dtype=np.int64)

    def partition(self, index: int) -> WavePartition:
        """Decode one row back into a :class:`WavePartition`."""
        count = int(self.counts[index])
        return WavePartition(tuple(int(s) for s in self.sizes[index, :count]))


def candidate_partitions_matrix(partitions: Sequence[WavePartition]) -> PartitionMatrix:
    """Encode candidate partitions as padded prefix-sum arrays.

    The padding is chosen so that downstream vectorized evaluation is exact:
    a padded group has size zero, contributes zero compute time and zero
    communication payload, and therefore leaves the candidate's timeline
    unchanged.
    """
    if not partitions:
        empty = np.zeros((0, 0), dtype=np.int64)
        return PartitionMatrix(sizes=empty, counts=np.zeros(0, dtype=np.int64), boundaries=empty)
    counts = np.array([p.num_groups for p in partitions], dtype=np.int64)
    max_groups = int(counts.max())
    sizes = np.zeros((len(partitions), max_groups), dtype=np.int64)
    for row, partition in enumerate(partitions):
        sizes[row, : counts[row]] = partition.group_sizes
    return PartitionMatrix(sizes=sizes, counts=counts, boundaries=np.cumsum(sizes, axis=1))


def candidate_partitions(
    num_waves: int,
    max_first_group: int,
    max_last_group: int,
    max_exhaustive_waves: int,
) -> list[WavePartition]:
    """Candidates used by the tuner: pruned enumeration when tractable,
    heuristic family otherwise."""
    if num_waves <= max_exhaustive_waves:
        pruned = pruned_partitions(num_waves, max_first_group, max_last_group)
        if pruned:
            return pruned
        return list(enumerate_partitions(num_waves))
    return heuristic_partitions(num_waves, max_first_group, max_last_group)
