"""Event-driven overlap executor.

:class:`EventDrivenExecutor` replays the overlapped execution at *tile*
granularity on the discrete-event engine: every tile completion is an event
that increments the counting table; when a wave group completes, its signal
event releases the group's collective on the communication stream, which
serializes behind any collective still in flight.

It models the same semantics as the analytic
:class:`~repro.core.executor.OverlapExecutor` (which accumulates the schedule
with closed-form max/plus arithmetic), so the two must agree to within the
signalling granularity -- the cross-check is part of the test suite.  The
event-driven path additionally produces a per-tile/per-signal trace that can
be exported for visualisation (see :mod:`repro.sim.trace_export`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.core.executor import COMM_STREAM, COMPUTE_STREAM, OverlapExecutor, OverlapResult
from repro.core.signaling import CountingTable, GroupAssignment
from repro.core.wave_grouping import WavePartition
from repro.gpu.kernels import KernelCategory
from repro.sim.engine import EventEngine
from repro.sim.trace import Trace


@dataclass
class _GroupState:
    """Mutable bookkeeping of one wave group during the event simulation."""

    ready_time: float = float("nan")
    comm_start: float = float("nan")
    comm_end: float = float("nan")


class EventDrivenExecutor:
    """Tile-level event-driven simulation of one overlapped execution."""

    def __init__(
        self, problem: OverlapProblem, settings: OverlapSettings = DEFAULT_SETTINGS
    ) -> None:
        self.problem = problem
        self.settings = settings
        # Reuse the analytic executor for the static quantities (wave tiles,
        # payload bytes, jitter) so the two paths share their inputs.
        self.analytic = OverlapExecutor(problem, settings)

    def num_waves(self) -> int:
        return self.analytic.num_waves()

    def simulate(self, partition: WavePartition, record_tiles: bool = False) -> OverlapResult:
        """Run the event-driven simulation for one wave-group partition.

        ``record_tiles=True`` adds one zero-duration span per tile completion
        to the trace (useful for visualisation, costly for large GEMMs).
        """
        if partition.num_waves != self.num_waves():
            raise ValueError(
                f"partition covers {partition.num_waves} waves, executor expects "
                f"{self.num_waves()}"
            )
        assignment = self.analytic.assignment(partition)
        payloads = self.analytic.group_payload_bytes(assignment) * self.problem.imbalance
        jitter = self.analytic._jitter(partition, partition.num_groups)
        comm_model = self.analytic.comm_model

        launch = self.problem.device.kernel_launch_seconds
        wave_end = (
            self.analytic.gemm_contended.wave_completion_times(self.analytic.compute_sms)
            * self.problem.imbalance
            + launch
        )
        wave_tiles = self.analytic.wave_tiles()

        engine = EventEngine()
        trace = Trace()
        table: CountingTable = assignment.counting_table()
        groups = [_GroupState() for _ in range(partition.num_groups)]
        comm_stream_free = [0.0]

        def start_group_comm(group_index: int) -> None:
            state = groups[group_index]
            start = max(
                comm_stream_free[0],
                state.ready_time + self.settings.comm_launch_s,
            )
            duration = comm_model.latency(payloads[group_index]) * jitter[group_index]
            end = start + duration
            state.comm_start, state.comm_end = start, end
            comm_stream_free[0] = end
            trace.record(
                COMM_STREAM,
                f"{comm_model.kind.short_name}-G{group_index + 1}",
                start,
                end,
                KernelCategory.COMMUNICATION,
            )

        def finish_tile(tile: int, group_index: int, time: float) -> None:
            if record_tiles:
                trace.record(COMPUTE_STREAM, f"tile-{tile}", time, time, KernelCategory.GEMM)
            if table.record_tile(group_index):
                ready = time + self.settings.signal_poll_s
                groups[group_index].ready_time = ready
                trace.record(COMM_STREAM, f"signal-G{group_index + 1}", ready, ready, KernelCategory.SIGNAL)
                engine.schedule(ready, start_group_comm, group_index)

        for wave_index, tiles in enumerate(wave_tiles):
            for tile in tiles:
                group_index = assignment.group_of_tile[tile]
                engine.schedule(wave_end[wave_index], finish_tile, tile, group_index, wave_end[wave_index])
        engine.run()

        trace.record(
            COMPUTE_STREAM,
            f"gemm[{self.problem.shape.m}x{self.problem.shape.n}x{self.problem.shape.k}]",
            0.0,
            float(wave_end[-1]),
            KernelCategory.GEMM,
        )
        ready = np.array([g.ready_time for g in groups])
        comm_start = np.array([g.comm_start for g in groups])
        comm_end = np.array([g.comm_end for g in groups])
        if np.isnan(comm_end).any():  # pragma: no cover - defensive
            raise RuntimeError("some wave groups never communicated")
        return OverlapResult(
            latency=float(comm_end[-1]),
            partition=partition,
            trace=trace,
            group_compute_ready=ready,
            group_comm_start=comm_start,
            group_comm_end=comm_end,
            metadata={
                "payload_bytes": payloads,
                "num_waves": self.num_waves(),
                "compute_sms": self.analytic.compute_sms,
                "events_processed": engine.processed_events,
                "event_driven": True,
            },
        )

    def cross_check(self, partition: WavePartition, rel_tol: float = 1e-6) -> dict[str, float]:
        """Compare the event-driven and analytic schedules for one partition."""
        event = self.simulate(partition)
        analytic = self.analytic.simulate(partition)
        latency_gap = abs(event.latency - analytic.latency) / analytic.latency
        start_gap = float(
            np.max(np.abs(event.group_comm_start - analytic.group_comm_start))
        )
        return {
            "event_latency": event.latency,
            "analytic_latency": analytic.latency,
            "relative_latency_gap": latency_gap,
            "max_comm_start_gap": start_gap,
            "within_tolerance": float(latency_gap <= rel_tol),
        }
