"""FlashOverlap core: signaling, reordering, wave grouping, tuning, operator."""

from repro.core.baselines import (
    AsyncTPBaseline,
    BaselineMethod,
    BaselineResult,
    CublasMpBaseline,
    FluxFusionBaseline,
    NonOverlapBaseline,
    VanillaDecompositionBaseline,
    default_baselines,
    feature_matrix,
)
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.core.executor import COMM_STREAM, COMPUTE_STREAM, OverlapExecutor, OverlapResult
from repro.core.overlap import FlashOverlapOperator, OverlapPlan, SpeedupReport
from repro.core.predictor import LatencyPredictor, OfflineProfile, PredictedTimeline
from repro.core.reordering import (
    PipelineResult,
    ReorderPlan,
    build_reorder_plan,
    run_all_to_all_pipeline,
    run_allreduce_pipeline,
    run_reduce_scatter_pipeline,
)
from repro.core.signaling import CountingTable, GroupAssignment, SignalOrderError, SignalSchedule
from repro.core.tuner import (
    ExhaustiveTuner,
    GemmShapeCache,
    PredictiveTuner,
    TuningResult,
    search_quality,
)
from repro.core.wave_grouping import (
    WavePartition,
    candidate_partitions,
    design_space_size,
    enumerate_partitions,
    pruned_partitions,
)

__all__ = [
    "OverlapProblem",
    "OverlapSettings",
    "DEFAULT_SETTINGS",
    "FlashOverlapOperator",
    "OverlapPlan",
    "SpeedupReport",
    "OverlapExecutor",
    "OverlapResult",
    "COMPUTE_STREAM",
    "COMM_STREAM",
    "LatencyPredictor",
    "OfflineProfile",
    "PredictedTimeline",
    "PredictiveTuner",
    "ExhaustiveTuner",
    "GemmShapeCache",
    "TuningResult",
    "search_quality",
    "WavePartition",
    "enumerate_partitions",
    "pruned_partitions",
    "candidate_partitions",
    "design_space_size",
    "CountingTable",
    "GroupAssignment",
    "SignalSchedule",
    "SignalOrderError",
    "ReorderPlan",
    "build_reorder_plan",
    "PipelineResult",
    "run_allreduce_pipeline",
    "run_reduce_scatter_pipeline",
    "run_all_to_all_pipeline",
    "BaselineMethod",
    "BaselineResult",
    "NonOverlapBaseline",
    "VanillaDecompositionBaseline",
    "AsyncTPBaseline",
    "FluxFusionBaseline",
    "CublasMpBaseline",
    "default_baselines",
    "feature_matrix",
]
