"""Shared store of tuned, pre-simulated overlap plans.

Both online serving and the end-to-end estimator face the same problem: many
"GEMM + collective" instances, few *distinct* ones.  Continuous batching
produces a new GEMM ``M`` every iteration but the values cluster; a
transformer stack repeats the same layer (and therefore the exact same
operator shapes) dozens of times.  Re-running the predictive tuner per
instance would put a milliseconds-scale search on the critical path, so a
:class:`PlanCache` tunes each distinct problem once and serves every repeat
from the cache -- the paper's shape-cache reuse argument (Sec. 4.2.2) applied
at system granularity.

Two keying modes cover the two consumers:

* **bucketed** (``bucketing=True``, the serving default): ``M`` is rounded up
  to a power-of-two bucket edge, so decode iterations whose token counts
  cluster share one plan per bucket;
* **exact** (``bucketing=False``, the end-to-end estimator): the key is the
  exact problem, so repeated layers reuse their plans while the simulated
  latency stays that of the true shape (no rounding error enters the model
  estimate).

The cache is LRU with hit/miss/evict counters, can warm-start from a
persisted :class:`~repro.core.tuner.GemmShapeCache` (the offline tuning
artifact the sweep subsystem already writes), and pre-simulates the overlap
latency, the non-overlap baseline and the perfect-overlap bound of each plan
so a consumer's per-instance cost is a dictionary lookup.

Because the one-time cost of building a cache entry is amortized over every
instance that reuses it, the cache also *validates* the tuner's
overlap-vs-fallback decision against the ground-truth executor: when the
simulated overlap latency loses to the sequential execution (typical for the
tiny decode-dominated GEMMs, where the predictor's non-overlap estimate is
least accurate), the entry is demoted to the sequential fallback.  A cached
plan is therefore never slower than the non-overlap baseline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace

from repro import obs
from repro.core.baselines import NonOverlapBaseline
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.core.executor import OverlapExecutor
from repro.core.tuner import GemmShapeCache, PredictiveTuner, TuningResult


def bucket_tokens(tokens: int, min_bucket: int = 16) -> int:
    """Round a token count up to the next power-of-two bucket edge."""
    if tokens < 1:
        raise ValueError("tokens must be >= 1")
    bucket = max(1, min_bucket)
    while bucket < tokens:
        bucket *= 2
    return bucket


@dataclass(frozen=True)
class CachedPlan:
    """One tuned, pre-simulated plan for a cached problem."""

    problem: OverlapProblem  # the (possibly bucketed) problem the plan was tuned for
    tuning: TuningResult
    overlap_latency: float  # simulated latency of the tuned execution
    non_overlap_latency: float  # sequential GEMM-then-collective baseline
    theoretical_latency: float  # perfect-overlap lower bound

    @property
    def speedup(self) -> float:
        return self.non_overlap_latency / self.overlap_latency

    @property
    def bound_speedup(self) -> float:
        """Speedup of the perfect-overlap bound over the sequential baseline."""
        return self.non_overlap_latency / self.theoretical_latency


class PlanCache:
    """LRU cache mapping problems to tuned overlap plans.

    ``capacity=0`` disables caching entirely (every lookup tunes afresh),
    which is the "no plan cache" / "no reuse" arm of the serving and e2e
    benchmarks.  A ``warm_start`` :class:`GemmShapeCache` short-circuits tuner
    invocations for shapes close to an already-tuned entry.  ``bucketing``
    selects the keying mode (see the module docstring).
    """

    def __init__(
        self,
        settings: OverlapSettings = DEFAULT_SETTINGS,
        capacity: int = 64,
        warm_start: GemmShapeCache | None = None,
        min_bucket: int = 16,
        bucketing: bool = True,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if min_bucket < 1:
            raise ValueError("min_bucket must be >= 1")
        self.settings = settings
        self.capacity = capacity
        self.warm_start = warm_start
        self.min_bucket = min_bucket
        self.bucketing = bucketing
        self._tuner = PredictiveTuner(settings)
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.tuner_invocations = 0
        self.warm_start_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- keys --------------------------------------------------------------------

    def bucketed_problem(self, problem: OverlapProblem) -> OverlapProblem:
        """The problem with ``M`` rounded up to its bucket edge (exact mode: as is)."""
        if not self.bucketing:
            return problem
        shape = problem.shape
        bucketed_m = bucket_tokens(shape.m, self.min_bucket)
        if bucketed_m == shape.m:
            return problem
        return problem.with_shape(replace(shape, m=bucketed_m))

    def key(self, problem: OverlapProblem) -> tuple:
        """Cache key of the bucketed problem (everything latency depends on)."""
        bucketed = self.bucketed_problem(problem)
        return (
            bucketed.shape.m,
            bucketed.shape.n,
            bucketed.shape.k,
            bucketed.device.name,
            bucketed.topology.name,
            bucketed.n_gpus,
            bucketed.collective.name,
            bucketed.dtype_bytes,
            bucketed.imbalance,
        )

    # -- lookup ------------------------------------------------------------------

    def lookup(self, problem: OverlapProblem) -> CachedPlan:
        """The cached plan for ``problem``'s key, tuning on a miss."""
        key = self.key(problem)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            obs.counter("plan_store.hits").inc()
            self._entries.move_to_end(key)
            return entry

        self.misses += 1
        obs.counter("plan_store.misses").inc()
        entry = self._build_plan(self.bucketed_problem(problem))
        if self.capacity > 0:
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                obs.counter("plan_store.evictions").inc()
        return entry

    def count_repeat_hits(self, lookups: int) -> None:
        """Account ``lookups`` repeats of lookups that just hit.

        The serving fast path collapses runs of identical iterations; each
        skipped iteration would have re-issued the same (warm) lookups, so
        their hit counters are bumped in bulk.  The LRU order is already
        correct: repeating a ``move_to_end`` of the same keys is a no-op.
        """
        if lookups <= 0:
            return
        self.hits += lookups
        obs.counter("plan_store.hits").inc(lookups)

    def _build_plan(self, bucketed: OverlapProblem) -> CachedPlan:
        shape = bucketed.shape
        with obs.span("plan_store.build", m=shape.m, n=shape.n, k=shape.k):
            return self._build_plan_inner(bucketed)

    def _build_plan_inner(self, bucketed: OverlapProblem) -> CachedPlan:
        tuning = None
        if self.warm_start is not None:
            tuning = self.warm_start.lookup(bucketed, self.settings)
            if tuning is not None:
                self.warm_start_hits += 1
                obs.counter("plan_store.warm_start_hits").inc()
        if tuning is None:
            self.tuner_invocations += 1
            obs.counter("plan_store.tuner_invocations").inc()
            tuning = self._tuner.tune(bucketed)
            if self.warm_start is not None:
                self.warm_start.add(bucketed.shape, tuning)
        executor = OverlapExecutor(bucketed, self.settings)
        sequential_latency = executor.simulate_sequential().latency
        # Ground-truth validation of the overlap-vs-fallback decision: the
        # tuner's (or a warm-start entry's) ``use_overlap`` flag is a
        # prediction -- and a warm-start entry may even have been tuned on a
        # different platform -- so always simulate the candidate partition on
        # *this* problem and take whichever execution is faster.
        candidate_latency = executor.simulate(tuning.partition).latency
        use_overlap = candidate_latency <= sequential_latency
        if use_overlap != tuning.use_overlap:
            tuning = replace(tuning, use_overlap=use_overlap)
        overlap_latency = candidate_latency if use_overlap else sequential_latency
        return CachedPlan(
            problem=bucketed,
            tuning=tuning,
            overlap_latency=overlap_latency,
            non_overlap_latency=NonOverlapBaseline(self.settings).latency(bucketed),
            theoretical_latency=executor.theoretical_latency(),
        )

    # -- stats -------------------------------------------------------------------

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def cached_keys(self) -> list[tuple]:
        """Keys in LRU order (least recently used first)."""
        return list(self._entries)

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "tuner_invocations": self.tuner_invocations,
            "warm_start_hits": self.warm_start_hits,
        }
