"""Cross-layer plan store: tuned overlap plans shared by serving and e2e.

:class:`~repro.plans.cache.PlanCache` started life inside the serving layer
(``repro.serve.plan_cache``); it now lives here so the end-to-end estimator
(:mod:`repro.e2e`) can reuse the same shape-keyed store -- identical layers
and repeated layers of a model are tuned exactly once, with hit/miss stats.
``repro.serve.plan_cache`` re-exports these names for compatibility.
"""

from repro.plans.cache import CachedPlan, PlanCache, bucket_tokens
from repro.plans.store import PricedCellStore, plan_key

__all__ = ["CachedPlan", "PlanCache", "PricedCellStore", "bucket_tokens", "plan_key"]
