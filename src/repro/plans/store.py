"""Content-addressed store of priced sweep cells.

A sweep job prices one *cell*: tune (or warm-start) a partition for an
overlap problem, then simulate the overlap execution, the sequential
baseline and the perfect-overlap bound.  All of that is a deterministic
function of the scenario content -- shape, platform, collective, imbalance,
seed and settings overrides -- so a sweep point whose content is unchanged
since a previous run does not need to be re-priced at all.  The
:class:`PricedCellStore` keys the priced outputs by a content hash of the
scenario (:func:`plan_key`, the same canonical-JSON digest idiom as
``Scenario.job_id``) and replays them on a hit; only the cells whose content
actually changed are re-simulated.  That is the incremental-re-simulation
half of ROADMAP item 3: editing one axis of a big matrix re-prices the
touched cells and replays the rest from the store.

Determinism across worker counts follows the shape-cache discipline of
:class:`~repro.sweep.runner.SweepRunner`: workers only ever read the
*initial* snapshot of the store (handed to the pool once, as JSON, at
worker-init time -- not re-warmed per job), and freshly priced cells ride
back on the job record for the parent to merge after the run.  Replayed
values are bit-identical to recomputed ones because the pricing pipeline is
seeded and deterministic, which the differential tests assert.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from pathlib import Path

from repro import obs

__all__ = ["plan_key", "PricedCellStore"]


def plan_key(payload: Mapping) -> str:
    """Content hash of a JSON-serialisable payload (canonical form).

    The digest is stable across runs, hosts and dict insertion orders --
    the same construction as ``Scenario.job_id``, reusable for any cell
    whose pricing is a pure function of its content.
    """
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return digest[:24]


class PricedCellStore:
    """Mapping of content keys to priced cell payloads, with hit/miss stats.

    Cells are plain JSON dicts (latencies, partition, speedups) so the store
    round-trips through worker initargs and disk without bespoke codecs.
    """

    def __init__(self) -> None:
        self._cells: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def lookup(self, key: str) -> dict | None:
        """The stored cell for ``key``, or None (counted as hit/miss)."""
        cell = self._cells.get(key)
        if cell is None:
            self.misses += 1
            obs.counter("priced_cells.misses").inc()
            return None
        self.hits += 1
        obs.counter("priced_cells.hits").inc()
        return dict(cell)

    def add(self, key: str, cell: Mapping) -> None:
        """Store (or overwrite) the priced cell for ``key``."""
        self._cells[key] = dict(cell)

    def stats(self) -> dict:
        return {
            "size": len(self._cells),
            "hits": self.hits,
            "misses": self.misses,
        }

    # -- serialisation -----------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the cells (stats are run-local and not persisted)."""
        return json.dumps(self._cells, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PricedCellStore":
        store = cls()
        for key, cell in json.loads(text).items():
            store._cells[str(key)] = dict(cell)
        return store

    def save(self, path: str | Path) -> None:
        """Atomically persist the store (temp file + rename)."""
        from repro.atomic import atomic_write_text

        atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path: str | Path, missing_ok: bool = False) -> "PricedCellStore":
        """Load a store written by :meth:`save`.

        ``missing_ok`` returns an empty store for a missing file (the
        warm-start idiom on a first run).
        """
        target = Path(path)
        if not target.exists():
            if missing_ok:
                return cls()
            raise FileNotFoundError(f"no priced-cell store at {target}")
        return cls.from_json(target.read_text(encoding="utf-8"))
