"""Crash-safe file writes: write a temp file, then ``os.replace`` it.

Every JSON artifact the toolkit persists -- tuned shape caches, emitted
parallelism plans, ``--json`` reports, benchmark ``BENCH_*.json`` files --
goes through :func:`atomic_write_text`.  A run interrupted mid-write (the
exact failure mode the sweep store already quarantines for its JSONL lines)
can therefore never leave a truncated or half-written file behind: either the
old content survives untouched, or the complete new content is in place.

``os.replace`` is atomic on POSIX and Windows when source and destination
live on the same filesystem, which the same-directory temp file guarantees.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> Path:
    """Atomically write ``text`` to ``path``, creating parent directories.

    The content is written to a temporary file in the destination directory
    and renamed over the target in one step.  On any failure the temporary
    file is removed and the previous content of ``path`` (if any) is left
    intact.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return target
