"""LRU, shape-bucketed cache of tuned overlap plans for online serving.

Continuous batching produces a new GEMM ``M`` every iteration, but the values
cluster: decode-heavy iterations sit near the batch size, saturated iterations
at the token budget.  Re-running the predictive tuner per iteration would put
a milliseconds-scale search on the critical path, so the serving layer rounds
``M`` up to a power-of-two bucket and caches one tuned plan per bucketed
problem.  Repeated shapes then skip the tuner entirely -- the paper's
shape-cache reuse argument (Sec. 4.2.2) applied at serving granularity.

The cache is LRU with hit/miss/evict counters, can warm-start from a
persisted :class:`~repro.core.tuner.GemmShapeCache` (the offline tuning
artifact the sweep subsystem already writes), and pre-simulates both the
overlap and the non-overlap latency of each plan so the serving simulator's
per-iteration cost is a dictionary lookup.

Because the one-time cost of building a cache entry is amortized over every
iteration that reuses the bucket, the cache also *validates* the tuner's
overlap-vs-fallback decision against the ground-truth executor: when the
simulated overlap latency loses to the sequential execution (typical for the
tiny decode-dominated GEMMs, where the predictor's non-overlap estimate is
least accurate), the entry is demoted to the sequential fallback.  A cached
plan is therefore never slower than the non-overlap baseline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.core.baselines import NonOverlapBaseline
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.core.executor import OverlapExecutor
from repro.core.tuner import GemmShapeCache, PredictiveTuner, TuningResult


def bucket_tokens(tokens: int, min_bucket: int = 16) -> int:
    """Round a token count up to the next power-of-two bucket edge."""
    if tokens < 1:
        raise ValueError("tokens must be >= 1")
    bucket = max(1, min_bucket)
    while bucket < tokens:
        bucket *= 2
    return bucket


@dataclass(frozen=True)
class CachedPlan:
    """One tuned, pre-simulated plan for a bucketed problem."""

    problem: OverlapProblem  # the bucketed problem the plan was tuned for
    tuning: TuningResult
    overlap_latency: float  # simulated latency of the tuned execution
    non_overlap_latency: float  # sequential GEMM-then-collective baseline

    @property
    def speedup(self) -> float:
        return self.non_overlap_latency / self.overlap_latency


class PlanCache:
    """Shape-bucketed LRU cache mapping problems to tuned overlap plans.

    ``capacity=0`` disables caching entirely (every lookup tunes afresh),
    which is the "no plan cache" arm of the serving benchmark.  A
    ``warm_start`` :class:`GemmShapeCache` short-circuits tuner invocations
    for bucketed shapes close to an already-tuned entry.
    """

    def __init__(
        self,
        settings: OverlapSettings = DEFAULT_SETTINGS,
        capacity: int = 64,
        warm_start: GemmShapeCache | None = None,
        min_bucket: int = 16,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if min_bucket < 1:
            raise ValueError("min_bucket must be >= 1")
        self.settings = settings
        self.capacity = capacity
        self.warm_start = warm_start
        self.min_bucket = min_bucket
        self._tuner = PredictiveTuner(settings)
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.tuner_invocations = 0
        self.warm_start_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- keys --------------------------------------------------------------------

    def bucketed_problem(self, problem: OverlapProblem) -> OverlapProblem:
        """The problem with ``M`` rounded up to its bucket edge."""
        shape = problem.shape
        bucketed_m = bucket_tokens(shape.m, self.min_bucket)
        if bucketed_m == shape.m:
            return problem
        return problem.with_shape(replace(shape, m=bucketed_m))

    def key(self, problem: OverlapProblem) -> tuple:
        """Cache key of the bucketed problem (everything latency depends on)."""
        bucketed = self.bucketed_problem(problem)
        return (
            bucketed.shape.m,
            bucketed.shape.n,
            bucketed.shape.k,
            bucketed.device.name,
            bucketed.topology.name,
            bucketed.n_gpus,
            bucketed.collective.name,
            bucketed.dtype_bytes,
            bucketed.imbalance,
        )

    # -- lookup ------------------------------------------------------------------

    def lookup(self, problem: OverlapProblem) -> CachedPlan:
        """The cached plan for ``problem``'s bucket, tuning on a miss."""
        key = self.key(problem)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry

        self.misses += 1
        entry = self._build_plan(self.bucketed_problem(problem))
        if self.capacity > 0:
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return entry

    def _build_plan(self, bucketed: OverlapProblem) -> CachedPlan:
        tuning = None
        if self.warm_start is not None:
            tuning = self.warm_start.lookup(bucketed, self.settings)
            if tuning is not None:
                self.warm_start_hits += 1
        if tuning is None:
            self.tuner_invocations += 1
            tuning = self._tuner.tune(bucketed)
            if self.warm_start is not None:
                self.warm_start.add(bucketed.shape, tuning)
        executor = OverlapExecutor(bucketed, self.settings)
        sequential_latency = executor.simulate_sequential().latency
        # Ground-truth validation of the overlap-vs-fallback decision: the
        # tuner's (or a warm-start entry's) ``use_overlap`` flag is a
        # prediction -- and a warm-start entry may even have been tuned on a
        # different platform -- so always simulate the candidate partition on
        # *this* problem and take whichever execution is faster.
        candidate_latency = executor.simulate(tuning.partition).latency
        use_overlap = candidate_latency <= sequential_latency
        if use_overlap != tuning.use_overlap:
            tuning = replace(tuning, use_overlap=use_overlap)
        overlap_latency = candidate_latency if use_overlap else sequential_latency
        return CachedPlan(
            problem=bucketed,
            tuning=tuning,
            overlap_latency=overlap_latency,
            non_overlap_latency=NonOverlapBaseline(self.settings).latency(bucketed),
        )

    # -- stats -------------------------------------------------------------------

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def cached_keys(self) -> list[tuple]:
        """Keys in LRU order (least recently used first)."""
        return list(self._entries)

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "tuner_invocations": self.tuner_invocations,
            "warm_start_hits": self.warm_start_hits,
        }
