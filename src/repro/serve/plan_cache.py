"""Serving-layer view of the shared plan store (compatibility re-export).

The LRU, shape-bucketed cache of tuned overlap plans originally lived here;
it was generalized into :mod:`repro.plans.cache` when the end-to-end
estimator started sharing it (exact-shape keying, cross-layer reuse).  The
serving layer keeps using the bucketed mode: continuous batching produces a
new GEMM ``M`` every iteration, but the values cluster, so rounding ``M`` up
to a power-of-two bucket lets repeated shapes skip the tuner entirely.
"""

from repro.plans.cache import CachedPlan, PlanCache, bucket_tokens

__all__ = ["CachedPlan", "PlanCache", "bucket_tokens"]
