"""Report object of one serving simulation (``repro serve`` / ``api.serve``).

Wraps the overlap run (and the optional non-overlap baseline run of the same
traffic) behind the shared report protocol: ``to_dict()`` is the exact JSON
payload ``repro serve --json`` writes, and ``summary_table()`` is the CLI's
human-readable output -- both produced from one object so the CLI and the
Python facade can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import ReportMixin
from repro.serve.metrics import SLO
from repro.serve.simulator import ServeConfig, ServingResult

__all__ = ["ServeReport"]


@dataclass
class ServeReport(ReportMixin):
    """One serving simulation: overlap arm, optional baseline, SLO, traffic.

    Fault-injected runs additionally carry the fault-free reference arm (the
    same traffic and config without the fault plan) so the report can state
    goodput-under-failure against the fault-free baseline.
    """

    config: ServeConfig
    slo: SLO
    overlap: ServingResult
    baseline: ServingResult | None = None
    traffic: str = ""
    num_requests: int = 0
    fault_free: ServingResult | None = None
    meta: dict = field(default_factory=dict)

    def fault_summary(self) -> dict | None:
        """The degraded-mode axis; None for a fault-free, policy-free run."""
        stats = self.overlap.fault_stats
        if stats is None:
            return None
        metrics = self.overlap.metrics(self.slo)
        block = {
            "plan": stats["plan"],
            "availability": stats["availability"],
            "crashes": stats["crashes"],
            "failovers": stats["failovers"],
            "recovery_s": stats["recovery_s"],
            "retry_amplification": stats["retry_amplification"],
            "dropped": stats["dropped"],
            "shed": stats["shed"],
            "timed_out": stats["timed_out"],
            "wasted_iterations": stats["wasted_iterations"],
            "goodput_under_failure_rps": metrics.goodput_requests_per_s,
        }
        if self.fault_free is not None:
            reference = self.fault_free.metrics(self.slo)
            block["fault_free_goodput_rps"] = reference.goodput_requests_per_s
            block["goodput_ratio_vs_fault_free"] = (
                metrics.goodput_requests_per_s / reference.goodput_requests_per_s
                if reference.goodput_requests_per_s > 0
                else 0.0
            )
        return block

    def summary_table(self) -> str:
        metrics = self.overlap.metrics(self.slo)
        cache_stats = self.overlap.plan_cache_stats or {}
        lines = [
            f"config     : {self.config.describe()}",
            f"traffic    : {self.num_requests} requests, {self.traffic}",
            f"iterations : {self.overlap.iterations} "
            f"({self.overlap.total_batched_tokens} batched tokens, "
            f"{cache_stats.get('tuner_invocations', 0)} tuner invocations)",
        ]
        for name, stats in (("TTFT", metrics.ttft), ("TPOT", metrics.tpot),
                            ("e2e", metrics.e2e_latency)):
            lines.append(
                f"{name:<11}: p50 {stats.p50 * 1e3:8.2f} ms   "
                f"p95 {stats.p95 * 1e3:8.2f} ms   p99 {stats.p99 * 1e3:8.2f} ms"
            )
        lines.append(
            f"throughput : {metrics.output_tokens_per_s:.0f} output tokens/s, "
            f"{metrics.requests_per_s:.1f} requests/s"
        )
        lines.append(
            f"goodput    : {metrics.goodput_requests_per_s:.1f} requests/s within SLO "
            f"(TTFT <= {self.slo.ttft_s:g}s, TPOT <= {self.slo.tpot_s:g}s; "
            f"{metrics.slo_attainment * 100:.1f}% attainment)"
        )
        if cache_stats:
            lines.append(
                f"plan cache : {cache_stats['size']}/{cache_stats['capacity']} plans, "
                f"{cache_stats['lookups']} lookups, "
                f"{cache_stats['hit_rate'] * 100:.1f}% hits, "
                f"{cache_stats['evictions']} evictions"
            )
        if self.baseline is not None:
            base = self.baseline.metrics(self.slo)
            lines.append(
                f"baseline   : e2e mean {base.e2e_latency.mean * 1e3:.2f} ms "
                f"vs {metrics.e2e_latency.mean * 1e3:.2f} ms overlapped "
                f"({base.e2e_latency.mean / metrics.e2e_latency.mean:.3f}x), "
                f"TTFT p99 {base.ttft.p99 / metrics.ttft.p99:.3f}x, "
                f"makespan {self.baseline.makespan_s / self.overlap.makespan_s:.3f}x"
            )
        faults = self.fault_summary()
        if faults is not None:
            recovery = faults["recovery_s"]
            lines.append(
                f"faults     : {faults['plan'] or 'policy-only'} -- "
                f"availability {faults['availability'] * 100:.1f}%, "
                f"{faults['crashes']} crashes ({faults['failovers']} failovers), "
                f"mean recovery {recovery['mean'] * 1e3:.0f} ms"
            )
            lines.append(
                f"resilience : retry amplification {faults['retry_amplification']:.2f}x, "
                f"{faults['dropped']} dropped / {faults['shed']} shed / "
                f"{faults['timed_out']} timed out, "
                f"{faults['wasted_iterations']} iterations wasted"
            )
            if "fault_free_goodput_rps" in faults:
                lines.append(
                    f"degraded   : goodput {faults['goodput_under_failure_rps']:.1f} req/s "
                    f"vs {faults['fault_free_goodput_rps']:.1f} fault-free "
                    f"({faults['goodput_ratio_vs_fault_free']:.3f}x)"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        payload = {"meta": self.meta, "overlap": self.overlap.to_dict(self.slo)}
        if self.baseline is not None:
            payload["non-overlap"] = self.baseline.to_dict(self.slo)
        faults = self.fault_summary()
        if faults is not None:
            payload["faults"] = faults
        if self.fault_free is not None:
            payload["fault-free"] = self.fault_free.to_dict(self.slo)
        return self._with_observability(payload)
