"""Report object of one serving simulation (``repro serve`` / ``api.serve``).

Wraps the overlap run (and the optional non-overlap baseline run of the same
traffic) behind the shared report protocol: ``to_dict()`` is the exact JSON
payload ``repro serve --json`` writes, and ``summary_table()`` is the CLI's
human-readable output -- both produced from one object so the CLI and the
Python facade can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import ReportMixin
from repro.serve.metrics import SLO
from repro.serve.simulator import ServeConfig, ServingResult

__all__ = ["ServeReport"]


@dataclass
class ServeReport(ReportMixin):
    """One serving simulation: overlap arm, optional baseline, SLO, traffic."""

    config: ServeConfig
    slo: SLO
    overlap: ServingResult
    baseline: ServingResult | None = None
    traffic: str = ""
    num_requests: int = 0
    meta: dict = field(default_factory=dict)

    def summary_table(self) -> str:
        metrics = self.overlap.metrics(self.slo)
        cache_stats = self.overlap.plan_cache_stats or {}
        lines = [
            f"config     : {self.config.describe()}",
            f"traffic    : {self.num_requests} requests, {self.traffic}",
            f"iterations : {self.overlap.iterations} "
            f"({self.overlap.total_batched_tokens} batched tokens, "
            f"{cache_stats.get('tuner_invocations', 0)} tuner invocations)",
        ]
        for name, stats in (("TTFT", metrics.ttft), ("TPOT", metrics.tpot),
                            ("e2e", metrics.e2e_latency)):
            lines.append(
                f"{name:<11}: p50 {stats.p50 * 1e3:8.2f} ms   "
                f"p95 {stats.p95 * 1e3:8.2f} ms   p99 {stats.p99 * 1e3:8.2f} ms"
            )
        lines.append(
            f"throughput : {metrics.output_tokens_per_s:.0f} output tokens/s, "
            f"{metrics.requests_per_s:.1f} requests/s"
        )
        lines.append(
            f"goodput    : {metrics.goodput_requests_per_s:.1f} requests/s within SLO "
            f"(TTFT <= {self.slo.ttft_s:g}s, TPOT <= {self.slo.tpot_s:g}s; "
            f"{metrics.slo_attainment * 100:.1f}% attainment)"
        )
        if cache_stats:
            lines.append(
                f"plan cache : {cache_stats['size']}/{cache_stats['capacity']} plans, "
                f"{cache_stats['lookups']} lookups, "
                f"{cache_stats['hit_rate'] * 100:.1f}% hits, "
                f"{cache_stats['evictions']} evictions"
            )
        if self.baseline is not None:
            base = self.baseline.metrics(self.slo)
            lines.append(
                f"baseline   : e2e mean {base.e2e_latency.mean * 1e3:.2f} ms "
                f"vs {metrics.e2e_latency.mean * 1e3:.2f} ms overlapped "
                f"({base.e2e_latency.mean / metrics.e2e_latency.mean:.3f}x), "
                f"TTFT p99 {base.ttft.p99 / metrics.ttft.p99:.3f}x, "
                f"makespan {self.baseline.makespan_s / self.overlap.makespan_s:.3f}x"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        payload = {"meta": self.meta, "overlap": self.overlap.to_dict(self.slo)}
        if self.baseline is not None:
            payload["non-overlap"] = self.baseline.to_dict(self.slo)
        return payload
