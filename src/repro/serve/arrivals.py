"""Deterministic request-traffic generators for the serving simulator.

Online serving exercises the overlap operator under *dynamic* shapes: requests
arrive over time, each with its own prompt and output length, and the
continuous-batching scheduler turns whatever is active into per-iteration GEMM
shapes.  This module produces that traffic reproducibly:

* :class:`PoissonArrivals` draws exponential inter-arrival gaps at a target
  request rate, with prompt/output lengths sampled from a named
  :class:`LengthDistribution` (log-normal, clamped to the distribution's
  range) -- the classic open-loop serving benchmark setup;
* :class:`TraceArrivals` replays an explicit request trace (records or a JSONL
  file), for workloads measured on a real frontend.

Everything is seeded: the same generator parameters and seed produce the same
request list on every run, which is what makes end-to-end serving metrics
reproducible down to the last digit.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from pathlib import Path

import numpy as np


@dataclass(frozen=True)
class Request:
    """One inference request as seen by the serving frontend."""

    request_id: int
    arrival_time: float
    prompt_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if self.prompt_tokens < 1 or self.output_tokens < 1:
            raise ValueError("prompt_tokens and output_tokens must be >= 1")

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens


@dataclass(frozen=True)
class LengthDistribution:
    """Log-normal prompt/output length model, clamped to a named range.

    ``prompt_median`` / ``output_median`` are the medians of the log-normal
    draws (the exp of the underlying normal's mean); ``sigma`` is the shared
    log-space spread.  Samples are rounded to integers and clamped, so the
    extremes of the range stay reachable but rare.
    """

    name: str
    prompt_median: int
    prompt_range: tuple[int, int]
    output_median: int
    output_range: tuple[int, int]
    sigma: float = 0.6

    def __post_init__(self) -> None:
        for low, high in (self.prompt_range, self.output_range):
            if not 1 <= low <= high:
                raise ValueError("length ranges must satisfy 1 <= low <= high")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def _draw(self, rng: np.random.Generator, median: int, bounds: tuple[int, int]) -> int:
        value = rng.lognormal(mean=float(np.log(median)), sigma=self.sigma)
        return int(np.clip(round(value), bounds[0], bounds[1]))

    def sample(self, rng: np.random.Generator) -> tuple[int, int]:
        """One (prompt_tokens, output_tokens) draw."""
        prompt = self._draw(rng, self.prompt_median, self.prompt_range)
        output = self._draw(rng, self.output_median, self.output_range)
        return prompt, output


#: Named traffic mixes.  Medians/ranges loosely follow the public serving
#: benchmarks: chat is short-prompt/medium-output, summarization is
#: long-prompt/short-output, code completion sits in between, and ``fixed``
#: removes length variance entirely (useful for tests and ablations).
_DISTRIBUTIONS: dict[str, LengthDistribution] = {
    dist.name: dist
    for dist in (
        LengthDistribution(
            name="chat",
            prompt_median=128, prompt_range=(16, 1024),
            output_median=128, output_range=(16, 512),
        ),
        LengthDistribution(
            name="summarize",
            prompt_median=1024, prompt_range=(256, 8192),
            output_median=64, output_range=(16, 256),
        ),
        LengthDistribution(
            name="code",
            prompt_median=512, prompt_range=(64, 4096),
            output_median=192, output_range=(32, 1024),
        ),
        LengthDistribution(
            name="fixed",
            prompt_median=256, prompt_range=(256, 256),
            output_median=64, output_range=(64, 64),
            sigma=0.0,
        ),
    )
}


def length_distributions() -> dict[str, LengthDistribution]:
    """The named length-distribution registry."""
    return dict(_DISTRIBUTIONS)


def distribution_by_name(name: str) -> LengthDistribution:
    try:
        return _DISTRIBUTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown length distribution {name!r}; known: {sorted(_DISTRIBUTIONS)}"
        ) from None


@dataclass(frozen=True)
class PoissonArrivals:
    """Open-loop Poisson traffic at a target request rate.

    Inter-arrival gaps are exponential with mean ``1 / rate_rps``.  Generation
    stops after ``num_requests`` requests, or when the next arrival would fall
    past ``duration_s`` -- whichever limit is hit first (at least one limit
    must be set).
    """

    rate_rps: float
    distribution: LengthDistribution
    seed: int = 0
    num_requests: int | None = None
    duration_s: float | None = None

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if self.num_requests is None and self.duration_s is None:
            raise ValueError("set num_requests and/or duration_s to bound the traffic")
        if self.num_requests is not None and self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("duration_s must be positive")

    def generate(self) -> list[Request]:
        """The deterministic request list for this seed."""
        rng = np.random.default_rng(self.seed)
        requests: list[Request] = []
        now = 0.0
        while self.num_requests is None or len(requests) < self.num_requests:
            now += float(rng.exponential(1.0 / self.rate_rps))
            if self.duration_s is not None and now > self.duration_s:
                break
            prompt, output = self.distribution.sample(rng)
            requests.append(
                Request(
                    request_id=len(requests),
                    arrival_time=now,
                    prompt_tokens=prompt,
                    output_tokens=output,
                )
            )
        return requests


@dataclass(frozen=True)
class TraceArrivals:
    """Replay of an explicit request trace.

    Each record needs ``arrival_time``, ``prompt_tokens`` and
    ``output_tokens``; request IDs are reassigned in arrival order so traces
    do not have to carry them.
    """

    records: tuple[tuple[float, int, int], ...]

    def generate(self) -> list[Request]:
        ordered = sorted(self.records, key=lambda r: r[0])
        return [
            Request(
                request_id=index,
                arrival_time=float(arrival),
                prompt_tokens=int(prompt),
                output_tokens=int(output),
            )
            for index, (arrival, prompt, output) in enumerate(ordered)
        ]

    @classmethod
    def from_records(cls, records: Iterable[Mapping]) -> "TraceArrivals":
        return cls(
            records=tuple(
                (float(r["arrival_time"]), int(r["prompt_tokens"]), int(r["output_tokens"]))
                for r in records
            )
        )

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "TraceArrivals":
        """Load a trace from a JSONL file (one request object per line)."""
        records = []
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        return cls.from_records(records)
