"""Serving-level metrics: latency percentiles, throughput, goodput.

The quantities the serving community reports:

* **TTFT** (time to first token): arrival to first output token -- dominated
  by queueing plus the prefill iterations;
* **TPOT** (time per output token): average gap between subsequent output
  tokens of one request -- dominated by the decode iteration latency;
* **throughput**: output tokens/s and requests/s over the makespan;
* **goodput**: the rate of requests that met the SLO (a TTFT bound and a TPOT
  bound), the metric that actually prices serving capacity.

Percentiles use the linear-interpolation definition of ``numpy.percentile``,
computed over the completed requests only; everything is a pure function of
the request records, so two simulations with identical records report
identical metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RequestRecord:
    """Timing of one completed request."""

    request_id: int
    arrival_time: float
    first_token_time: float
    finish_time: float
    prompt_tokens: int
    output_tokens: int

    @property
    def ttft(self) -> float:
        return self.first_token_time - self.arrival_time

    @property
    def e2e_latency(self) -> float:
        return self.finish_time - self.arrival_time

    @property
    def tpot(self) -> float:
        """Mean inter-token gap after the first token (0 for 1-token outputs)."""
        if self.output_tokens <= 1:
            return 0.0
        return (self.finish_time - self.first_token_time) / (self.output_tokens - 1)

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "arrival_time": self.arrival_time,
            "first_token_time": self.first_token_time,
            "finish_time": self.finish_time,
            "prompt_tokens": self.prompt_tokens,
            "output_tokens": self.output_tokens,
        }


#: Ways a request can leave the system without completing.
FAILURE_OUTCOMES = ("dropped", "shed", "timed-out")


@dataclass(frozen=True)
class FailureRecord:
    """One request that left the system without completing.

    ``time`` is when the terminal decision was made: the arrival attempt that
    exhausted its retries (``dropped``), the shed arrival (``shed``), or the
    deadline expiry (``timed-out``).  ``attempts`` counts arrival attempts
    including the original one.
    """

    request_id: int
    arrival_time: float
    outcome: str
    time: float
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.outcome not in FAILURE_OUTCOMES:
            raise ValueError(
                f"outcome must be one of {FAILURE_OUTCOMES}, got {self.outcome!r}"
            )

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "arrival_time": self.arrival_time,
            "outcome": self.outcome,
            "time": self.time,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class LatencyStats:
    """Distribution summary of one latency series."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_values(cls, values: list[float]) -> "LatencyStats":
        if not values:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)
        array = np.asarray(values, dtype=np.float64)
        return cls(
            count=len(values),
            mean=float(array.mean()),
            p50=float(np.percentile(array, 50)),
            p95=float(np.percentile(array, 95)),
            p99=float(np.percentile(array, 99)),
            max=float(array.max()),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@dataclass(frozen=True)
class SLO:
    """Per-request service-level objective (seconds)."""

    ttft_s: float = 1.0
    tpot_s: float = 0.1

    def __post_init__(self) -> None:
        if self.ttft_s <= 0 or self.tpot_s <= 0:
            raise ValueError("SLO bounds must be positive")

    def met_by(self, record: RequestRecord) -> bool:
        return record.ttft <= self.ttft_s and record.tpot <= self.tpot_s


@dataclass(frozen=True)
class ServingMetrics:
    """Aggregate report of one serving run."""

    requests_completed: int
    makespan_s: float
    ttft: LatencyStats
    tpot: LatencyStats
    e2e_latency: LatencyStats
    output_tokens_per_s: float
    total_tokens_per_s: float
    requests_per_s: float
    slo_attainment: float
    goodput_requests_per_s: float

    def to_dict(self) -> dict:
        return {
            "requests_completed": self.requests_completed,
            "makespan_s": self.makespan_s,
            "ttft": self.ttft.to_dict(),
            "tpot": self.tpot.to_dict(),
            "e2e_latency": self.e2e_latency.to_dict(),
            "output_tokens_per_s": self.output_tokens_per_s,
            "total_tokens_per_s": self.total_tokens_per_s,
            "requests_per_s": self.requests_per_s,
            "slo_attainment": self.slo_attainment,
            "goodput_requests_per_s": self.goodput_requests_per_s,
        }


def compute_metrics(
    records: list[RequestRecord], makespan_s: float, slo: SLO | None = None
) -> ServingMetrics:
    """Aggregate request records into the serving report."""
    slo = slo or SLO()
    completed = len(records)
    span = max(makespan_s, 1e-12)
    output_tokens = sum(r.output_tokens for r in records)
    total_tokens = sum(r.prompt_tokens + r.output_tokens for r in records)
    attained = sum(1 for r in records if slo.met_by(r))
    return ServingMetrics(
        requests_completed=completed,
        makespan_s=makespan_s,
        ttft=LatencyStats.from_values([r.ttft for r in records]),
        tpot=LatencyStats.from_values([r.tpot for r in records if r.output_tokens > 1]),
        e2e_latency=LatencyStats.from_values([r.e2e_latency for r in records]),
        output_tokens_per_s=output_tokens / span,
        total_tokens_per_s=total_tokens / span,
        requests_per_s=completed / span,
        slo_attainment=attained / completed if completed else 0.0,
        goodput_requests_per_s=attained / span,
    )
