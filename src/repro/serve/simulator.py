"""Event-driven serving simulator over the overlap operator.

One :class:`ServingSimulator` run is an online serving experiment: requests
arrive on the :class:`~repro.sim.engine.EventEngine` clock, the
continuous-batching scheduler packs them into iterations, and every iteration
executes one stack of decoder layers whose row-parallel "GEMM + AllReduce"
pairs run either as tuned FlashOverlap plans (``mode="overlap"``, plans served
by the shape-bucketed :class:`~repro.serve.plan_cache.PlanCache`) or as the
sequential non-overlap baseline (``mode="non-overlap"``).  Per-request TTFT /
TPOT / end-to-end latencies fall out of the event timeline.

The iteration latency model reuses the workload substrate: operator streams
come from :func:`repro.workloads.llm.llm_inference_layer` at the *bucketed*
token count, so the simulator prices exactly the layer the end-to-end
benchmarks price, and every overlap-target latency is pre-simulated once per
bucket by the plan cache.  Everything is deterministic: the same config,
traffic and seed produce a bit-identical metrics report.

Fault injection threads through the same loop: a
:class:`~repro.faults.injector.FaultInjector` makes the replica crash (the
in-flight iteration is aborted and its work wasted), straggle (iteration
finish times stretch along the compute speed timeline), lose interconnect
bandwidth (iterations are priced against a degraded topology) or drop
arrivals, while the :class:`~repro.faults.policy.ResiliencePolicy` drives
retries with backoff, per-request deadlines, admission control and warm-spare
failover.  Fault timelines are seeded, so chaos runs replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.comm.topology import Topology, a800_nvlink
from repro.core.baselines import NonOverlapBaseline
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.faults.injector import FaultInjector
from repro.faults.metrics import build_fault_stats
from repro.faults.policy import ResiliencePolicy
from repro.gpu.device import A800, GPUSpec
from repro.serve.arrivals import Request
from repro.serve.metrics import (
    SLO,
    FailureRecord,
    RequestRecord,
    ServingMetrics,
    compute_metrics,
)
from repro.serve.plan_cache import PlanCache, bucket_tokens
from repro.serve.scheduler import ContinuousBatchingScheduler, IterationBatch
from repro.sim.engine import EventEngine
from repro.workloads.llm import LLAMA2_7B, LLAMA3_70B, ModelConfig, llm_inference_layer
from repro.workloads.operators import OperatorInstance
from repro.workloads.parallelism import ParallelismConfig

SERVE_MODES = ("overlap", "non-overlap")

#: Models the serving CLI can instantiate by name.
SERVE_MODELS: dict[str, ModelConfig] = {
    "llama2-7b": LLAMA2_7B,
    "llama3-70b": LLAMA3_70B,
}

#: The CI-sized smoke scenario -- a short summarization burst on the small
#: model -- shared by ``repro serve --smoke``, the serving benchmark and the
#: committed ``BENCH_serving_baseline.json``, so the three cannot drift apart.
SMOKE_SCENARIO: dict = {
    "rate": 64.0,
    "requests": 24,
    "distribution": "summarize",
    "workload": "llama2-7b",
    "layers": 2,
    "max_batch_tokens": 4096,
    "max_batch_size": 16,
}


@dataclass(frozen=True)
class ServeConfig:
    """Static configuration of one serving engine instance."""

    model: ModelConfig = LLAMA2_7B
    device: GPUSpec = A800
    topology: Topology = a800_nvlink(4)
    layers: int = 4
    max_batch_tokens: int = 2048
    max_batch_size: int = 32
    #: Fixed per-iteration overhead (scheduling, sampling, detokenization).
    iteration_overhead_us: float = 50.0
    #: Smallest token bucket of the plan cache (powers of two upwards).
    min_bucket: int = 16
    settings: OverlapSettings = DEFAULT_SETTINGS

    def __post_init__(self) -> None:
        if self.layers < 1:
            raise ValueError("layers must be >= 1")
        if self.iteration_overhead_us < 0:
            raise ValueError("iteration_overhead_us must be non-negative")

    @property
    def tp(self) -> int:
        """Tensor-parallel degree (the collective spans the whole topology)."""
        return self.topology.n_gpus

    def describe(self) -> str:
        return (
            f"{self.model.name} ({self.layers} layers, TP={self.tp}) on "
            f"{self.topology.n_gpus}x {self.device.name} ({self.topology.name}), "
            f"batch <= {self.max_batch_tokens} tokens / {self.max_batch_size} requests"
        )


@dataclass
class ServingResult:
    """Everything one simulation run produced."""

    mode: str
    records: list[RequestRecord]
    iterations: int
    total_batched_tokens: int
    makespan_s: float
    #: Bucketed iteration token count -> number of iterations at that bucket.
    token_buckets: dict[int, int] = field(default_factory=dict)
    plan_cache_stats: dict | None = None
    #: Requests that left the system without completing (faulted runs only).
    failures: list[FailureRecord] = field(default_factory=list)
    #: Iterations aborted by a crash, and the batched tokens they carried.
    wasted_iterations: int = 0
    wasted_tokens: int = 0
    #: Degraded-mode summary; None for a plain (fault-free, policy-free) run.
    fault_stats: dict | None = None

    def metrics(self, slo: SLO | None = None) -> ServingMetrics:
        return compute_metrics(self.records, self.makespan_s, slo)

    def to_dict(self, slo: SLO | None = None) -> dict:
        """JSON-stable report (identical for identical runs).

        The ``faults`` / ``failures`` keys appear only when fault injection or
        a resilience policy was active, so plain runs serialize exactly as
        they always did.
        """
        payload = {
            "mode": self.mode,
            "iterations": self.iterations,
            "total_batched_tokens": self.total_batched_tokens,
            "makespan_s": self.makespan_s,
            "token_buckets": {str(k): self.token_buckets[k] for k in sorted(self.token_buckets)},
            "plan_cache": self.plan_cache_stats,
            "metrics": self.metrics(slo).to_dict(),
        }
        if self.fault_stats is not None:
            payload["faults"] = self.fault_stats
            payload["failures"] = [record.to_dict() for record in self.failures]
        return payload


class ServingSimulator:
    """Continuous-batching serving loop on the discrete-event engine."""

    def __init__(
        self,
        config: ServeConfig,
        plan_cache: PlanCache | None = None,
        mode: str = "overlap",
        faults: FaultInjector | None = None,
        resilience: ResiliencePolicy | None = None,
        fast: bool = True,
    ) -> None:
        if mode not in SERVE_MODES:
            raise ValueError(f"mode must be one of {SERVE_MODES}, got {mode!r}")
        self.config = config
        self.mode = mode
        #: Advance pure iteration stretches inline (and collapse silent
        #: steady-decode runs) instead of taking one heap round-trip per
        #: iteration.  Bit-identical to ``fast=False`` including faulted
        #: runs; the event engine still arbitrates every boundary event.
        self.fast = fast
        if plan_cache is None and mode == "overlap":
            plan_cache = PlanCache(config.settings, min_bucket=config.min_bucket)
        self.plan_cache = plan_cache
        self.faults = faults
        # The injector already carries the policy it was compiled under; an
        # explicit `resilience` argument overrides the loop-side knobs only.
        if resilience is None and faults is not None:
            resilience = faults.policy
        self.resilience = resilience
        self._ops_by_bucket: dict[tuple[int, float], list[OperatorInstance]] = {}
        self._baseline_latency_by_bucket: dict[tuple[int, float], float] = {}

    # -- iteration latency model ---------------------------------------------------

    def _layer_ops(self, bucket: int, comm_factor: float = 1.0) -> list[OperatorInstance]:
        key = (bucket, comm_factor)
        ops = self._ops_by_bucket.get(key)
        if ops is None:
            ops = llm_inference_layer(
                self.config.model,
                bucket,
                ParallelismConfig(tp=self.config.tp),
                self.config.device,
                self.config.topology.degraded(comm_factor),
            )
            self._ops_by_bucket[key] = ops
        return ops

    def _overlap_target_latency(self, problem: OverlapProblem) -> float:
        if self.mode == "overlap":
            return self.plan_cache.lookup(problem).overlap_latency
        return NonOverlapBaseline(self.config.settings).latency(problem)

    def iteration_latency(self, total_tokens: int, comm_factor: float = 1.0) -> float:
        """Latency of one engine iteration batching ``total_tokens`` tokens.

        ``comm_factor`` prices the iteration against a topology whose link
        bandwidth is scaled to that fraction (degraded-interconnect faults);
        the plan cache keys on topology name, so degraded and nominal plans
        coexist in one cache.
        """
        bucket = bucket_tokens(total_tokens, self.config.min_bucket)
        key = (bucket, comm_factor)
        if self.mode == "non-overlap" and key in self._baseline_latency_by_bucket:
            return self._baseline_latency_by_bucket[key]
        per_layer = 0.0
        for op in self._layer_ops(bucket, comm_factor):
            if op.problem is not None:
                per_layer += self._overlap_target_latency(op.problem) * op.count
            else:
                per_layer += op.other_latency * op.count
        latency = per_layer * self.config.layers + self.config.iteration_overhead_us * 1e-6
        if self.mode == "non-overlap":
            self._baseline_latency_by_bucket[key] = latency
        return latency

    # -- event loop ------------------------------------------------------------------

    def run(self, requests: list[Request]) -> ServingResult:
        """Simulate the full lifetime of ``requests`` and report the result."""
        with obs.span("serve.simulate", mode=self.mode, requests=len(requests)):
            return self._run(requests)

    def _run(self, requests: list[Request]) -> ServingResult:
        # Registry handles are resolved once per run (no-ops when observability
        # is off) so the event-loop closures never pay a registry lookup.
        iterations_counter = obs.counter("serve.iterations", mode=self.mode)
        tokens_counter = obs.counter("serve.batched_tokens", mode=self.mode)
        retries_counter = obs.counter("serve.retries", mode=self.mode)
        wasted_counter = obs.counter("serve.wasted_iterations", mode=self.mode)
        crash_counter = obs.counter("serve.crashes", mode=self.mode)
        latency_histogram = obs.histogram("serve.iteration_latency_s", mode=self.mode)
        engine = EventEngine()
        scheduler = ContinuousBatchingScheduler(
            max_batch_tokens=self.config.max_batch_tokens,
            max_batch_size=self.config.max_batch_size,
        )
        requests = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        arrivals = {r.request_id: r for r in requests}
        first_token_times: dict[int, float] = {}
        records: list[RequestRecord] = []
        failures: list[FailureRecord] = []
        state = {
            "busy": False,
            "iterations": 0,
            "tokens": 0,
            "wasted_iterations": 0,
            "wasted_tokens": 0,
            "attempts": 0,
            "retries": 0,
        }
        token_buckets: dict[int, int] = {}
        injector = self.faults
        policy = self.resilience
        fast = self.fast
        retry = policy.retry if policy is not None else None
        attempts_of: dict[int, int] = {}
        deadline_events: dict[int, object] = {}
        done: set[int] = set()  # completed or failed request IDs
        inflight = {"event": None, "batch": None, "ids": frozenset()}
        # Requests whose deadline expired while their batch was in flight;
        # evicted right after that batch commits (or after a crash aborts it).
        expired_pending: set[int] = set()

        def clear_inflight() -> None:
            inflight["event"] = None
            inflight["batch"] = None
            inflight["ids"] = frozenset()

        def deadline_of(request: Request) -> float:
            return request.arrival_time + policy.deadline_s

        def record_failure(request: Request, outcome: str, time: float, attempts: int) -> None:
            done.add(request.request_id)
            first_token_times.pop(request.request_id, None)
            event = deadline_events.pop(request.request_id, None)
            if event is not None:
                engine.cancel(event)
            failures.append(
                FailureRecord(
                    request_id=request.request_id,
                    arrival_time=request.arrival_time,
                    outcome=outcome,
                    time=time,
                    attempts=attempts,
                )
            )
            obs.counter("serve.failures", mode=self.mode, outcome=outcome).inc()

        def evict_expired() -> None:
            for request_id in sorted(expired_pending):
                request = arrivals[request_id]
                scheduler.remove(request_id)
                record_failure(request, "timed-out", deadline_of(request),
                               attempts_of.get(request_id, 1))
            expired_pending.clear()

        def commit(batch: IterationBatch) -> None:
            """Account one executed batch (shared by the event and fast paths)."""
            outcome = scheduler.apply(batch)
            now = engine.now
            state["iterations"] += 1
            state["tokens"] += batch.total_tokens
            iterations_counter.inc()
            tokens_counter.inc(batch.total_tokens)
            bucket = bucket_tokens(batch.total_tokens, self.config.min_bucket)
            token_buckets[bucket] = token_buckets.get(bucket, 0) + 1
            for request_id in outcome.first_tokens:
                first_token_times[request_id] = now
            for request_id in outcome.finished:
                request = arrivals[request_id]
                expired_pending.discard(request_id)
                if (
                    policy is not None
                    and policy.deadline_s is not None
                    and now > deadline_of(request)
                ):
                    # The last token landed after the client gave up.
                    record_failure(request, "timed-out", deadline_of(request),
                                   attempts_of.get(request_id, 1))
                    continue
                done.add(request_id)
                event = deadline_events.pop(request_id, None)
                if event is not None:
                    engine.cancel(event)
                records.append(
                    RequestRecord(
                        request_id=request_id,
                        arrival_time=request.arrival_time,
                        first_token_time=first_token_times.pop(request_id),
                        finish_time=now,
                        prompt_tokens=request.prompt_tokens,
                        output_tokens=request.output_tokens,
                    )
                )
            evict_expired()

        def advance_steady_run(batch: IterationBatch, latency: float, lookups: int) -> None:
            """Collapse the silent steady-decode stretch following ``batch``.

            After a committed decode-only iteration that finished nobody, the
            upcoming iterations repeat it exactly -- same requests, tokens,
            bucket and (cache-warm) latency -- until a request runs out of
            output tokens or an engine event intervenes.  Their side effects
            are applied in bulk, bit-identically to executing each one.
            """
            if scheduler.running_count != len(batch.decode):
                return  # somebody finished: the next batch differs
            run = scheduler.steady_decode_run()
            if run <= 0:
                return
            upcoming = engine.next_event_time()
            time = engine.now
            count = 0
            while count < run:
                finish = time + latency
                if upcoming is not None and finish >= upcoming:
                    break
                time = finish
                count += 1
            if count == 0:
                return
            engine.advance_to(time)
            scheduler.advance_decodes(count)
            state["iterations"] += count
            state["tokens"] += batch.total_tokens * count
            iterations_counter.inc(count)
            tokens_counter.inc(batch.total_tokens * count)
            bucket = bucket_tokens(batch.total_tokens, self.config.min_bucket)
            token_buckets[bucket] += count
            for _ in range(count):
                latency_histogram.observe(latency)
            if self.plan_cache is not None:
                # Each skipped iteration would have re-issued the same warm
                # plan lookups as the committed one.
                self.plan_cache.count_repeat_hits(lookups * count)

        def start_next_iteration() -> None:
            while True:
                now = engine.now
                if injector is not None and injector.is_down(now):
                    state["busy"] = False
                    return
                batch = scheduler.next_batch()
                if batch is None:
                    state["busy"] = False
                    return
                state["busy"] = True
                comm_factor = injector.comm_factor_at(now) if injector is not None else 1.0
                cache = self.plan_cache
                lookups_before = cache.lookups if cache is not None else 0
                latency = self.iteration_latency(batch.total_tokens, comm_factor=comm_factor)
                latency_histogram.observe(latency)
                finish = (
                    injector.straggler_finish(now, latency) if injector is not None
                    else now + latency
                )
                if fast:
                    upcoming = engine.next_event_time()
                    if upcoming is None or finish < upcoming:
                        # No boundary event (arrival, deadline, crash or
                        # recovery) fires before this iteration lands, so
                        # commit it inline without a heap round-trip.  Ties go
                        # to the event: it was scheduled first, and the
                        # reference path dispatches it first.
                        engine.advance_to(finish)
                        commit(batch)
                        if injector is None and not batch.prefill:
                            advance_steady_run(
                                batch,
                                latency,
                                cache.lookups - lookups_before if cache is not None else 0,
                            )
                        continue
                inflight["event"] = engine.schedule(finish, finish_iteration, batch)
                inflight["batch"] = batch
                inflight["ids"] = frozenset(
                    {chunk.request_id for chunk in batch.prefill} | set(batch.decode)
                )
                return

        def finish_iteration(batch: IterationBatch) -> None:
            clear_inflight()
            commit(batch)
            start_next_iteration()

        def on_deadline(request_id: int) -> None:
            deadline_events.pop(request_id, None)
            if request_id in done:
                return
            if request_id in inflight["ids"]:
                # Mid-iteration: let the batch commit, then evict.
                expired_pending.add(request_id)
                return
            request = arrivals[request_id]
            scheduler.remove(request_id)
            record_failure(request, "timed-out", engine.now,
                           attempts_of.get(request_id, 1))

        def on_arrival(request: Request, attempt: int = 1) -> None:
            now = engine.now
            state["attempts"] += 1
            if injector is not None and injector.drops(request.request_id, attempt, now):
                if retry is not None and attempt <= retry.max_retries:
                    state["retries"] += 1
                    retries_counter.inc()
                    engine.schedule_after(
                        retry.delay(attempt, request.request_id),
                        on_arrival, request, attempt + 1,
                    )
                else:
                    record_failure(request, "dropped", now, attempt)
                return
            if (
                policy is not None
                and policy.admission_limit is not None
                and scheduler.waiting_count + scheduler.running_count >= policy.admission_limit
            ):
                record_failure(request, "shed", now, attempt)
                return
            attempts_of[request.request_id] = attempt
            scheduler.add(request)
            if policy is not None and policy.deadline_s is not None:
                deadline_events[request.request_id] = engine.schedule(
                    max(now, deadline_of(request)), on_deadline, request.request_id
                )
            if not state["busy"]:
                start_next_iteration()

        def on_crash() -> None:
            crash_counter.inc()
            obs.event("serve.crash", time_s=engine.now, mode=self.mode)
            if inflight["event"] is not None:
                # Abort the in-flight iteration: its work is lost (next_batch
                # mutated queues but apply() never commits the progress).
                engine.cancel(inflight["event"])
                state["wasted_iterations"] += 1
                state["wasted_tokens"] += inflight["batch"].total_tokens
                wasted_counter.inc()
                clear_inflight()
                evict_expired()
            state["busy"] = False

        def on_recover() -> None:
            if not state["busy"] and scheduler.has_work:
                start_next_iteration()

        if injector is not None:
            for window in injector.downtime:
                engine.schedule(window.start, on_crash)
                engine.schedule(window.end, on_recover)
        for request in requests:
            engine.schedule(request.arrival_time, on_arrival, request)
        engine.run()

        if scheduler.has_work:  # pragma: no cover - defensive
            raise RuntimeError("serving simulation drained with unfinished requests")

        records.sort(key=lambda r: r.request_id)
        failures.sort(key=lambda f: f.request_id)
        fault_stats = None
        if injector is not None or (policy is not None and policy.engaged):
            fault_stats = build_fault_stats(
                injector,
                makespan_s=engine.now,
                num_requests=len(requests),
                attempts=state["attempts"],
                retries=state["retries"],
                failures=failures,
                wasted_iterations=state["wasted_iterations"],
                wasted_tokens=state["wasted_tokens"],
            )
        return ServingResult(
            mode=self.mode,
            records=records,
            iterations=state["iterations"],
            total_batched_tokens=state["tokens"],
            makespan_s=engine.now,
            token_buckets=token_buckets,
            plan_cache_stats=self.plan_cache.stats() if self.plan_cache is not None else None,
            failures=failures,
            wasted_iterations=state["wasted_iterations"],
            wasted_tokens=state["wasted_tokens"],
            fault_stats=fault_stats,
        )


def compare_serving(
    config: ServeConfig,
    requests: list[Request],
    plan_cache: PlanCache | None = None,
    faults: FaultInjector | None = None,
    resilience: ResiliencePolicy | None = None,
    fast: bool = True,
) -> dict[str, ServingResult]:
    """Run the same traffic under overlap and non-overlap execution.

    The two runs share nothing but the request list (and the fault timeline,
    when given), so the baseline's slower iterations feed back into its
    queueing delays -- the serving-level effect operator-level speedup numbers
    cannot show.  ``fast=False`` forces the one-event-per-iteration reference
    loop (bit-identical results).
    """
    overlap = ServingSimulator(
        config, plan_cache=plan_cache, mode="overlap", faults=faults,
        resilience=resilience, fast=fast,
    ).run(requests)
    baseline = ServingSimulator(
        config, mode="non-overlap", faults=faults, resilience=resilience, fast=fast
    ).run(requests)
    return {"overlap": overlap, "non-overlap": baseline}
