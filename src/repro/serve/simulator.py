"""Event-driven serving simulator over the overlap operator.

One :class:`ServingSimulator` run is an online serving experiment: requests
arrive on the :class:`~repro.sim.engine.EventEngine` clock, the
continuous-batching scheduler packs them into iterations, and every iteration
executes one stack of decoder layers whose row-parallel "GEMM + AllReduce"
pairs run either as tuned FlashOverlap plans (``mode="overlap"``, plans served
by the shape-bucketed :class:`~repro.serve.plan_cache.PlanCache`) or as the
sequential non-overlap baseline (``mode="non-overlap"``).  Per-request TTFT /
TPOT / end-to-end latencies fall out of the event timeline.

The iteration latency model reuses the workload substrate: operator streams
come from :func:`repro.workloads.llm.llm_inference_layer` at the *bucketed*
token count, so the simulator prices exactly the layer the end-to-end
benchmarks price, and every overlap-target latency is pre-simulated once per
bucket by the plan cache.  Everything is deterministic: the same config,
traffic and seed produce a bit-identical metrics report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.topology import Topology, a800_nvlink
from repro.core.baselines import NonOverlapBaseline
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.gpu.device import A800, GPUSpec
from repro.serve.arrivals import Request
from repro.serve.metrics import SLO, RequestRecord, ServingMetrics, compute_metrics
from repro.serve.plan_cache import PlanCache, bucket_tokens
from repro.serve.scheduler import ContinuousBatchingScheduler, IterationBatch
from repro.sim.engine import EventEngine
from repro.workloads.llm import LLAMA2_7B, LLAMA3_70B, ModelConfig, llm_inference_layer
from repro.workloads.operators import OperatorInstance
from repro.workloads.parallelism import ParallelismConfig

SERVE_MODES = ("overlap", "non-overlap")

#: Models the serving CLI can instantiate by name.
SERVE_MODELS: dict[str, ModelConfig] = {
    "llama2-7b": LLAMA2_7B,
    "llama3-70b": LLAMA3_70B,
}

#: The CI-sized smoke scenario -- a short summarization burst on the small
#: model -- shared by ``repro serve --smoke``, the serving benchmark and the
#: committed ``BENCH_serving_baseline.json``, so the three cannot drift apart.
SMOKE_SCENARIO: dict = {
    "rate": 64.0,
    "requests": 24,
    "distribution": "summarize",
    "workload": "llama2-7b",
    "layers": 2,
    "max_batch_tokens": 4096,
    "max_batch_size": 16,
}


@dataclass(frozen=True)
class ServeConfig:
    """Static configuration of one serving engine instance."""

    model: ModelConfig = LLAMA2_7B
    device: GPUSpec = A800
    topology: Topology = a800_nvlink(4)
    layers: int = 4
    max_batch_tokens: int = 2048
    max_batch_size: int = 32
    #: Fixed per-iteration overhead (scheduling, sampling, detokenization).
    iteration_overhead_us: float = 50.0
    #: Smallest token bucket of the plan cache (powers of two upwards).
    min_bucket: int = 16
    settings: OverlapSettings = DEFAULT_SETTINGS

    def __post_init__(self) -> None:
        if self.layers < 1:
            raise ValueError("layers must be >= 1")
        if self.iteration_overhead_us < 0:
            raise ValueError("iteration_overhead_us must be non-negative")

    @property
    def tp(self) -> int:
        """Tensor-parallel degree (the collective spans the whole topology)."""
        return self.topology.n_gpus

    def describe(self) -> str:
        return (
            f"{self.model.name} ({self.layers} layers, TP={self.tp}) on "
            f"{self.topology.n_gpus}x {self.device.name} ({self.topology.name}), "
            f"batch <= {self.max_batch_tokens} tokens / {self.max_batch_size} requests"
        )


@dataclass
class ServingResult:
    """Everything one simulation run produced."""

    mode: str
    records: list[RequestRecord]
    iterations: int
    total_batched_tokens: int
    makespan_s: float
    #: Bucketed iteration token count -> number of iterations at that bucket.
    token_buckets: dict[int, int] = field(default_factory=dict)
    plan_cache_stats: dict | None = None

    def metrics(self, slo: SLO | None = None) -> ServingMetrics:
        return compute_metrics(self.records, self.makespan_s, slo)

    def to_dict(self, slo: SLO | None = None) -> dict:
        """JSON-stable report (identical for identical runs)."""
        return {
            "mode": self.mode,
            "iterations": self.iterations,
            "total_batched_tokens": self.total_batched_tokens,
            "makespan_s": self.makespan_s,
            "token_buckets": {str(k): self.token_buckets[k] for k in sorted(self.token_buckets)},
            "plan_cache": self.plan_cache_stats,
            "metrics": self.metrics(slo).to_dict(),
        }


class ServingSimulator:
    """Continuous-batching serving loop on the discrete-event engine."""

    def __init__(
        self,
        config: ServeConfig,
        plan_cache: PlanCache | None = None,
        mode: str = "overlap",
    ) -> None:
        if mode not in SERVE_MODES:
            raise ValueError(f"mode must be one of {SERVE_MODES}, got {mode!r}")
        self.config = config
        self.mode = mode
        if plan_cache is None and mode == "overlap":
            plan_cache = PlanCache(config.settings, min_bucket=config.min_bucket)
        self.plan_cache = plan_cache
        self._ops_by_bucket: dict[int, list[OperatorInstance]] = {}
        self._baseline_latency_by_bucket: dict[int, float] = {}

    # -- iteration latency model ---------------------------------------------------

    def _layer_ops(self, bucket: int) -> list[OperatorInstance]:
        ops = self._ops_by_bucket.get(bucket)
        if ops is None:
            ops = llm_inference_layer(
                self.config.model,
                bucket,
                ParallelismConfig(tp=self.config.tp),
                self.config.device,
                self.config.topology,
            )
            self._ops_by_bucket[bucket] = ops
        return ops

    def _overlap_target_latency(self, problem: OverlapProblem) -> float:
        if self.mode == "overlap":
            return self.plan_cache.lookup(problem).overlap_latency
        return NonOverlapBaseline(self.config.settings).latency(problem)

    def iteration_latency(self, total_tokens: int) -> float:
        """Latency of one engine iteration batching ``total_tokens`` tokens."""
        bucket = bucket_tokens(total_tokens, self.config.min_bucket)
        if self.mode == "non-overlap" and bucket in self._baseline_latency_by_bucket:
            return self._baseline_latency_by_bucket[bucket]
        per_layer = 0.0
        for op in self._layer_ops(bucket):
            if op.problem is not None:
                per_layer += self._overlap_target_latency(op.problem) * op.count
            else:
                per_layer += op.other_latency * op.count
        latency = per_layer * self.config.layers + self.config.iteration_overhead_us * 1e-6
        if self.mode == "non-overlap":
            self._baseline_latency_by_bucket[bucket] = latency
        return latency

    # -- event loop ------------------------------------------------------------------

    def run(self, requests: list[Request]) -> ServingResult:
        """Simulate the full lifetime of ``requests`` and report the result."""
        engine = EventEngine()
        scheduler = ContinuousBatchingScheduler(
            max_batch_tokens=self.config.max_batch_tokens,
            max_batch_size=self.config.max_batch_size,
        )
        requests = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
        arrivals = {r.request_id: r for r in requests}
        first_token_times: dict[int, float] = {}
        records: list[RequestRecord] = []
        state = {"busy": False, "iterations": 0, "tokens": 0}
        token_buckets: dict[int, int] = {}

        def start_next_iteration() -> None:
            batch = scheduler.next_batch()
            if batch is None:
                state["busy"] = False
                return
            state["busy"] = True
            engine.schedule_after(self.iteration_latency(batch.total_tokens),
                                  finish_iteration, batch)

        def finish_iteration(batch: IterationBatch) -> None:
            outcome = scheduler.apply(batch)
            now = engine.now
            state["iterations"] += 1
            state["tokens"] += batch.total_tokens
            bucket = bucket_tokens(batch.total_tokens, self.config.min_bucket)
            token_buckets[bucket] = token_buckets.get(bucket, 0) + 1
            for request_id in outcome.first_tokens:
                first_token_times[request_id] = now
            for request_id in outcome.finished:
                request = arrivals[request_id]
                records.append(
                    RequestRecord(
                        request_id=request_id,
                        arrival_time=request.arrival_time,
                        first_token_time=first_token_times.pop(request_id),
                        finish_time=now,
                        prompt_tokens=request.prompt_tokens,
                        output_tokens=request.output_tokens,
                    )
                )
            start_next_iteration()

        def on_arrival(request: Request) -> None:
            scheduler.add(request)
            if not state["busy"]:
                start_next_iteration()

        for request in requests:
            engine.schedule(request.arrival_time, on_arrival, request)
        engine.run()

        if scheduler.has_work:  # pragma: no cover - defensive
            raise RuntimeError("serving simulation drained with unfinished requests")

        records.sort(key=lambda r: r.request_id)
        return ServingResult(
            mode=self.mode,
            records=records,
            iterations=state["iterations"],
            total_batched_tokens=state["tokens"],
            makespan_s=engine.now,
            token_buckets=token_buckets,
            plan_cache_stats=self.plan_cache.stats() if self.plan_cache is not None else None,
        )


def compare_serving(
    config: ServeConfig,
    requests: list[Request],
    plan_cache: PlanCache | None = None,
) -> dict[str, ServingResult]:
    """Run the same traffic under overlap and non-overlap execution.

    The two runs share nothing but the request list, so the baseline's slower
    iterations feed back into its queueing delays -- the serving-level effect
    operator-level speedup numbers cannot show.
    """
    overlap = ServingSimulator(config, plan_cache=plan_cache, mode="overlap").run(requests)
    baseline = ServingSimulator(config, mode="non-overlap").run(requests)
    return {"overlap": overlap, "non-overlap": baseline}
