"""Online serving simulation: request traffic, continuous batching, plan cache.

The serving layer turns the one-shot overlap operator into a traffic-facing
system:

* :mod:`repro.serve.arrivals` -- seeded Poisson and trace-driven request
  generators with named prompt/output length distributions;
* :mod:`repro.serve.scheduler` -- Orca/vLLM-style continuous batching with
  chunked prefill, emitting the per-iteration GEMM shapes;
* :mod:`repro.serve.plan_cache` -- LRU, shape-bucketed cache of tuned
  :class:`~repro.core.tuner.TuningResult` plans (with
  :class:`~repro.core.tuner.GemmShapeCache` warm start) so repeated shapes
  skip the tuner;
* :mod:`repro.serve.simulator` -- the event-driven serving loop on
  :class:`~repro.sim.engine.EventEngine`, executing overlap plans or the
  non-overlap baseline per iteration;
* :mod:`repro.serve.metrics` -- TTFT/TPOT/e2e percentiles, throughput and
  goodput under an SLO.
"""

from repro.serve.arrivals import (
    LengthDistribution,
    PoissonArrivals,
    Request,
    TraceArrivals,
    distribution_by_name,
    length_distributions,
)
from repro.serve.metrics import SLO, LatencyStats, RequestRecord, ServingMetrics, compute_metrics
from repro.serve.plan_cache import CachedPlan, PlanCache, bucket_tokens
from repro.serve.scheduler import (
    ContinuousBatchingScheduler,
    IterationBatch,
    IterationOutcome,
    PrefillChunk,
    iteration_gemm_shapes,
    profile_iteration_tokens,
)
from repro.serve.simulator import (
    SERVE_MODES,
    ServeConfig,
    ServingResult,
    ServingSimulator,
    compare_serving,
)

__all__ = [
    "Request",
    "LengthDistribution",
    "length_distributions",
    "distribution_by_name",
    "PoissonArrivals",
    "TraceArrivals",
    "ContinuousBatchingScheduler",
    "IterationBatch",
    "IterationOutcome",
    "PrefillChunk",
    "iteration_gemm_shapes",
    "profile_iteration_tokens",
    "PlanCache",
    "CachedPlan",
    "bucket_tokens",
    "SLO",
    "LatencyStats",
    "RequestRecord",
    "ServingMetrics",
    "compute_metrics",
    "SERVE_MODES",
    "ServeConfig",
    "ServingSimulator",
    "ServingResult",
    "compare_serving",
]
