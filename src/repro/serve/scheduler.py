"""Continuous-batching scheduler with chunked prefill.

Orca/vLLM-style iteration-level scheduling: every engine iteration packs the
currently active requests into one batch -- each decoding request contributes
one token, and the remaining token budget is filled with prefill chunks in
FCFS admission order (chunked prefill, so a long prompt never blocks decodes).
The scheduler's job here is to turn request traffic into the *per-iteration
GEMM shapes* that the overlap operator sees: the row-parallel projections of
one decoder layer with ``M = total batched tokens``.

Conventions:

* a request is admitted into the running set as soon as a slot is free
  (``max_batch_size`` bounds the set);
* the iteration that consumes the last prefill chunk of a request also emits
  its first output token (prefill produces the first token, as in vLLM);
* each subsequent iteration in which the request is scheduled produces one
  more output token, until ``output_tokens`` are emitted and the request
  leaves the running set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.gpu.gemm import GemmShape
from repro.serve.arrivals import Request
from repro.workloads.llm import ModelConfig


@dataclass
class RequestState:
    """Mutable per-request progress inside the scheduler."""

    request: Request
    prefill_remaining: int
    output_remaining: int

    @property
    def prefill_done(self) -> bool:
        return self.prefill_remaining == 0

    @property
    def finished(self) -> bool:
        return self.prefill_done and self.output_remaining == 0


@dataclass(frozen=True)
class PrefillChunk:
    """One prefill slice scheduled in an iteration."""

    request_id: int
    tokens: int
    finishes_prefill: bool


@dataclass(frozen=True)
class IterationBatch:
    """What one engine iteration executes."""

    prefill: tuple[PrefillChunk, ...]
    decode: tuple[int, ...]  # request IDs, one token each

    @property
    def total_tokens(self) -> int:
        return sum(chunk.tokens for chunk in self.prefill) + len(self.decode)

    @property
    def num_requests(self) -> int:
        return len({chunk.request_id for chunk in self.prefill} | set(self.decode))


@dataclass(frozen=True)
class IterationOutcome:
    """Request-visible events produced by applying one batch."""

    first_tokens: tuple[int, ...]  # request IDs that emitted their first token
    finished: tuple[int, ...]  # request IDs that emitted their last token


class ContinuousBatchingScheduler:
    """Iteration-level batching over a waiting queue and a running set."""

    def __init__(self, max_batch_tokens: int = 2048, max_batch_size: int = 64) -> None:
        if max_batch_tokens < 1 or max_batch_size < 1:
            raise ValueError("max_batch_tokens and max_batch_size must be >= 1")
        self.max_batch_tokens = max_batch_tokens
        self.max_batch_size = max_batch_size
        self._waiting: deque[RequestState] = deque()
        self._running: list[RequestState] = []
        self._states: dict[int, RequestState] = {}

    # -- queue management --------------------------------------------------------

    def add(self, request: Request) -> None:
        """Enqueue an arrived request (FCFS)."""
        if request.request_id in self._states:
            raise ValueError(f"request {request.request_id} already enqueued")
        state = RequestState(
            request=request,
            prefill_remaining=request.prompt_tokens,
            output_remaining=request.output_tokens,
        )
        self._states[request.request_id] = state
        self._waiting.append(state)

    def remove(self, request_id: int) -> bool:
        """Evict a request wherever it is (deadline/abandon path).

        Returns True when the request was tracked.  The serving loop only
        calls this between iterations, so an in-flight batch never references
        an evicted request.
        """
        state = self._states.pop(request_id, None)
        if state is None:
            return False
        if state in self._running:
            self._running.remove(state)
        else:
            self._waiting.remove(state)
        return True

    @property
    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)

    @property
    def running_count(self) -> int:
        return len(self._running)

    # -- iteration planning --------------------------------------------------------

    def next_batch(self) -> IterationBatch | None:
        """Pack the next iteration, or None when nothing is schedulable.

        Decode tokens are placed first (one per decoding request, latency
        priority), then the leftover token budget is filled with prefill
        chunks in admission order.
        """
        while self._waiting and len(self._running) < self.max_batch_size:
            self._running.append(self._waiting.popleft())

        budget = self.max_batch_tokens
        decode: list[int] = []
        for state in self._running:
            if state.prefill_done and budget > 0:
                decode.append(state.request.request_id)
                budget -= 1

        prefill: list[PrefillChunk] = []
        for state in self._running:
            if budget <= 0:
                break
            if not state.prefill_done:
                tokens = min(state.prefill_remaining, budget)
                prefill.append(
                    PrefillChunk(
                        request_id=state.request.request_id,
                        tokens=tokens,
                        finishes_prefill=tokens == state.prefill_remaining,
                    )
                )
                budget -= tokens

        if not decode and not prefill:
            return None
        return IterationBatch(prefill=tuple(prefill), decode=tuple(decode))

    def steady_decode_run(self) -> int:
        """How many upcoming iterations are *silent* steady-decode repeats.

        A silent iteration batches exactly one decode token for every running
        request and changes nothing observable: no admission (the waiting
        queue is empty, or every slot is taken), no prefill, no first token
        and no completion.  The serving fast path advances such runs in one
        step; the return value is ``min(output_remaining) - 1`` so that the
        iteration that emits somebody's last token is always executed
        normally.  Returns 0 when the next iteration is not a silent repeat.
        """
        if not self._running:
            return 0
        if self._waiting and len(self._running) < self.max_batch_size:
            return 0
        if len(self._running) > self.max_batch_tokens:
            return 0
        floor = None
        for state in self._running:
            if not state.prefill_done:
                return 0
            if floor is None or state.output_remaining < floor:
                floor = state.output_remaining
        return floor - 1

    def advance_decodes(self, iterations: int) -> None:
        """Bulk-apply ``iterations`` silent steady-decode batches.

        Only valid for ``iterations <= steady_decode_run()``: every running
        request decodes one token per iteration and none may finish.
        """
        if iterations < 0:
            raise ValueError("iterations must be >= 0")
        for state in self._running:
            if not state.prefill_done or state.output_remaining <= iterations:
                raise ValueError(
                    "advance_decodes past a request boundary: "
                    f"request {state.request.request_id} is not mid-decode "
                    f"for {iterations} more iterations"
                )
            state.output_remaining -= iterations

    def apply(self, batch: IterationBatch) -> IterationOutcome:
        """Account one executed batch; returns first-token/finish events."""
        first_tokens: list[int] = []
        finished: list[int] = []

        for chunk in batch.prefill:
            state = self._states[chunk.request_id]
            state.prefill_remaining -= chunk.tokens
            if state.prefill_remaining < 0:
                raise ValueError(f"request {chunk.request_id} prefilled past its prompt")
            if chunk.finishes_prefill:
                # The prefill-completing iteration emits the first output token.
                state.output_remaining -= 1
                first_tokens.append(chunk.request_id)

        for request_id in batch.decode:
            state = self._states[request_id]
            state.output_remaining -= 1
            if state.output_remaining < 0:
                raise ValueError(f"request {request_id} decoded past its output length")

        for state in list(self._running):
            if state.finished:
                finished.append(state.request.request_id)
                self._running.remove(state)
                del self._states[state.request.request_id]

        return IterationOutcome(first_tokens=tuple(first_tokens), finished=tuple(finished))


def iteration_gemm_shapes(total_tokens: int, model: ModelConfig, tp: int) -> list[GemmShape]:
    """The overlap-target GEMM shapes of one iteration over ``total_tokens``.

    These are the row-parallel projections of one decoder layer under tensor
    parallelism -- attention output and MLP down, each followed by an
    AllReduce -- with ``M`` set by the batched token count, matching
    :func:`repro.workloads.llm.llm_inference_layer`.
    """
    if total_tokens < 1:
        raise ValueError("total_tokens must be >= 1")
    return [
        GemmShape(m=total_tokens, n=model.hidden_size, k=model.hidden_size // tp),
        GemmShape(m=total_tokens, n=model.hidden_size, k=model.intermediate_size // tp),
    ]


def profile_iteration_tokens(
    requests: list[Request],
    max_batch_tokens: int = 2048,
    max_batch_size: int = 64,
    iteration_time: float = 5e-3,
    max_iterations: int = 100_000,
) -> list[int]:
    """Dry-run the scheduler over a trace with a fixed iteration duration.

    Returns the total token count of every iteration.  No latency model is
    involved (each iteration is assumed to take ``iteration_time``), so this
    is a cheap, deterministic way to discover which GEMM ``M`` values a given
    traffic level produces -- the sweep presets use it to grid over arrival
    rates without running the full simulator.
    """
    scheduler = ContinuousBatchingScheduler(
        max_batch_tokens=max_batch_tokens, max_batch_size=max_batch_size
    )
    ordered = sorted(requests, key=lambda r: (r.arrival_time, r.request_id))
    tokens: list[int] = []
    now = 0.0
    index = 0
    while index < len(ordered) or scheduler.has_work:
        while index < len(ordered) and ordered[index].arrival_time <= now:
            scheduler.add(ordered[index])
            index += 1
        batch = scheduler.next_batch()
        if batch is None:
            if index >= len(ordered):
                break
            now = ordered[index].arrival_time
            continue
        tokens.append(batch.total_tokens)
        scheduler.apply(batch)
        now += iteration_time
        if len(tokens) >= max_iterations:
            raise RuntimeError(f"dry run exceeded {max_iterations} iterations")
    return tokens
