"""End-to-end model estimator: whole-model latency from an operator stream.

The operator substrate (:mod:`repro.workloads`) describes a model layer as a
stream of :class:`~repro.workloads.operators.OperatorInstance`; this module
runs that stream end to end:

1. every "GEMM + collective" operator is resolved through a shared
   :class:`~repro.plans.PlanCache` in exact-shape mode, so each *distinct*
   problem is tuned and ground-truth-simulated exactly once -- repeated
   layers (and shapes shared across workloads) are cache hits;
2. the full stream -- ``layers`` repetitions of the per-layer operator list --
   is then replayed on the discrete-event engine
   (:class:`~repro.sim.engine.EventEngine`), producing the whole-model
   latency and a :class:`~repro.sim.trace.Trace` that can be exported to
   Chrome trace format;
3. the same stream is priced under the non-overlap baseline and the
   perfect-overlap bound, giving the Table 4 comparison (overlap vs
   sequential vs bound) per layer and per model.

Everything is deterministic: the same workload, settings and plan store
produce a bit-identical estimate, and disabling plan reuse (``capacity=0``)
changes wall-clock cost but not a single reported latency (asserted by the
differential tests and the e2e benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.config import DEFAULT_SETTINGS, OverlapSettings
from repro.gpu.kernels import KernelCategory
from repro.plans import CachedPlan, PlanCache
from repro.sim.engine import EventEngine
from repro.sim.trace import Trace
from repro.workloads.operators import EndToEndWorkload, OperatorInstance

#: Trace stream names of the estimator timeline.
STREAM = "model"

#: Plan-store capacity of a standalone estimator run.  Exact-shape keys are
#: few (a handful per distinct layer), so this is effectively unbounded.
DEFAULT_STORE_CAPACITY = 1024


def make_plan_store(
    settings: OverlapSettings = DEFAULT_SETTINGS,
    reuse: bool = True,
    warm_start=None,
) -> PlanCache:
    """The estimator's plan store: exact-shape keying, LRU far off the path.

    ``reuse=False`` sets capacity 0 -- every lookup re-tunes, the "no plan
    reuse" arm of the differential tests and the e2e benchmark.
    """
    return PlanCache(
        settings,
        capacity=DEFAULT_STORE_CAPACITY if reuse else 0,
        warm_start=warm_start,
        bucketing=False,
    )


@dataclass(frozen=True)
class OperatorEstimate:
    """Per-occurrence latencies of one operator in the stream."""

    name: str
    pattern: str  # "GEMM+AR" / "GEMM+RS" / "GEMM+A2A" / "others"
    count: int
    is_overlap_target: bool
    overlap_latency: float
    non_overlap_latency: float
    theoretical_latency: float
    use_overlap: bool = True  # False: tuner fell back to sequential execution
    plan_cached: bool = False  # served from the plan store without tuning

    @property
    def speedup(self) -> float:
        return self.non_overlap_latency / self.overlap_latency

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "pattern": self.pattern,
            "count": self.count,
            "is_overlap_target": self.is_overlap_target,
            "overlap_latency": self.overlap_latency,
            "non_overlap_latency": self.non_overlap_latency,
            "theoretical_latency": self.theoretical_latency,
            "use_overlap": self.use_overlap,
            "plan_cached": self.plan_cached,
        }


@dataclass
class WorkloadEstimate:
    """The end-to-end estimate of one workload (all layers)."""

    name: str
    layers: int
    #: One entry per operator of one layer, in stream order (first layer's
    #: cache-hit flags; later layers hit the store by construction).
    operators: list[OperatorEstimate]
    overlap_total: float  # event-engine makespan of the overlapped stream
    non_overlap_total: float
    theoretical_total: float
    plan_stats: dict = field(default_factory=dict)  # store-hit deltas of this estimate
    trace: Trace | None = None

    @property
    def speedup(self) -> float:
        """End-to-end speedup of FlashOverlap over the non-overlap execution."""
        return self.non_overlap_total / self.overlap_total

    @property
    def bound_speedup(self) -> float:
        """End-to-end speedup of the perfect-overlap bound (Table 4 column)."""
        return self.non_overlap_total / self.theoretical_total

    @property
    def layer_overlap_latency(self) -> float:
        return self.overlap_total / self.layers

    def pattern_shares(self, method: str = "non-overlap") -> dict[str, float]:
        """Latency share per pattern (Fig. 4), fractions summing to 1."""
        attr = "non_overlap_latency" if method == "non-overlap" else "overlap_latency"
        totals: dict[str, float] = {}
        for op in self.operators:
            totals[op.pattern] = totals.get(op.pattern, 0.0) + getattr(op, attr) * op.count
        grand = sum(totals.values())
        if grand <= 0:
            return dict.fromkeys(totals, 0.0)
        return {k: v / grand for k, v in sorted(totals.items())}

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "layers": self.layers,
            "operators": [op.to_dict() for op in self.operators],
            "overlap_total": self.overlap_total,
            "non_overlap_total": self.non_overlap_total,
            "theoretical_total": self.theoretical_total,
            "speedup": self.speedup,
            "bound_speedup": self.bound_speedup,
            "pattern_shares": self.pattern_shares(),
            "plan_stats": self.plan_stats,
        }


class EndToEndEstimator:
    """Estimate whole-model latency through a shared plan store.

    One estimator owns one :class:`~repro.plans.PlanCache`; estimating several
    workloads through the same estimator shares tuned plans across them
    (cross-layer *and* cross-model reuse).  Pass ``reuse=False`` to re-tune
    every operator occurrence -- the estimates are bit-identical either way,
    only the wall-clock cost differs.
    """

    def __init__(
        self,
        settings: OverlapSettings = DEFAULT_SETTINGS,
        plan_store: PlanCache | None = None,
        reuse: bool = True,
        warm_start=None,
    ) -> None:
        self.settings = settings
        # Explicit None check: an empty PlanCache is falsy (len() == 0).
        if plan_store is None:
            plan_store = make_plan_store(settings, reuse=reuse, warm_start=warm_start)
        self.plan_store = plan_store
        if self.plan_store.bucketing:
            raise ValueError(
                "the e2e estimator needs an exact-shape plan store "
                "(PlanCache(bucketing=False)); bucketed M would distort the estimate"
            )

    # -- per-operator resolution ---------------------------------------------------

    def resolve_operator(self, op: OperatorInstance) -> OperatorEstimate:
        """Price one operator through the shared plan store.

        The public entry point other consumers reuse (the pipeline scheduler
        prices its forward/backward cells with it), so their per-operator
        latencies are bit-identical to an e2e estimate of the same stream.
        """
        return self._resolve(op)[0]

    def _resolve(self, op: OperatorInstance) -> tuple[OperatorEstimate, CachedPlan | None]:
        if op.problem is None:
            estimate = OperatorEstimate(
                name=op.name,
                pattern=op.pattern(),
                count=op.count,
                is_overlap_target=False,
                overlap_latency=op.other_latency,
                non_overlap_latency=op.other_latency,
                theoretical_latency=op.other_latency,
            )
            return estimate, None
        hits_before = self.plan_store.hits
        plan = self.plan_store.lookup(op.problem)
        estimate = OperatorEstimate(
            name=op.name,
            pattern=op.pattern(),
            count=op.count,
            is_overlap_target=True,
            overlap_latency=plan.overlap_latency,
            non_overlap_latency=plan.non_overlap_latency,
            theoretical_latency=plan.theoretical_latency,
            use_overlap=plan.tuning.use_overlap,
            plan_cached=self.plan_store.hits > hits_before,
        )
        return estimate, plan

    # -- stream simulation -----------------------------------------------------------

    def _category(self, estimate: OperatorEstimate) -> KernelCategory:
        if estimate.is_overlap_target:
            return KernelCategory.COMMUNICATION
        return KernelCategory.GEMM if "gemm" in estimate.name.lower() else KernelCategory.OTHER

    def _run_stream(
        self, per_layer: list[OperatorEstimate], layers: int, record_trace: bool
    ) -> tuple[float, Trace | None]:
        """Replay the full operator stream on the event engine.

        Each occurrence is one event chained after its predecessor, so the
        makespan is the in-order float sum of the occurrence latencies --
        exactly what summing independently simulated operators yields (the
        differential tests assert bit-equality).
        """
        engine = EventEngine()
        trace = Trace() if record_trace else None
        occurrences: list[tuple[str, float, KernelCategory]] = []
        for layer in range(layers):
            for estimate in per_layer:
                for _ in range(estimate.count):
                    occurrences.append(
                        (
                            f"L{layer}/{estimate.name}",
                            estimate.overlap_latency,
                            self._category(estimate),
                        )
                    )
        iterator = iter(occurrences)

        def start_next() -> None:
            item = next(iterator, None)
            if item is None:
                return
            engine.schedule_after(item[1], finish, item, engine.now)

        def finish(item: tuple[str, float, KernelCategory], start: float) -> None:
            if trace is not None:
                trace.record(STREAM, item[0], start, engine.now, item[2])
            start_next()

        engine.schedule(0.0, start_next)
        engine.run()
        return engine.now, trace

    # -- entry point -----------------------------------------------------------------

    def estimate(self, workload: EndToEndWorkload, record_trace: bool = False) -> WorkloadEstimate:
        """Tune-once / reuse-everywhere estimate of one workload."""
        with obs.span("e2e.estimate", workload=workload.name):
            return self._estimate(workload, record_trace)

    def _estimate(self, workload: EndToEndWorkload, record_trace: bool) -> WorkloadEstimate:
        if workload.settings != self.settings:
            raise ValueError(
                f"workload {workload.name!r} carries different OverlapSettings than "
                "the estimator's plan store; build both from the same settings"
            )
        hits_before = self.plan_store.hits
        misses_before = self.plan_store.misses
        tunes_before = self.plan_store.tuner_invocations

        # Resolve each operator once per layer occurrence so the hit/miss
        # stats reflect the reuse structure (layer 2+ of an identical layer
        # hits the store), while the simulated latencies stay exact.
        with obs.span("e2e.price"):
            per_layer = [self._resolve(op)[0] for op in workload.operators]
            for _ in range(workload.layers - 1):
                for op in workload.operators:
                    if op.problem is not None:
                        self.plan_store.lookup(op.problem)

        with obs.span("e2e.replay"):
            overlap_total, trace = self._run_stream(per_layer, workload.layers, record_trace)
        non_overlap_total = 0.0
        theoretical_total = 0.0
        for _ in range(workload.layers):
            for estimate in per_layer:
                for _ in range(estimate.count):
                    non_overlap_total += estimate.non_overlap_latency
                    theoretical_total += estimate.theoretical_latency

        lookups = (self.plan_store.hits - hits_before) + (self.plan_store.misses - misses_before)
        hits = self.plan_store.hits - hits_before
        plan_stats = {
            "lookups": lookups,
            "hits": hits,
            "misses": self.plan_store.misses - misses_before,
            "hit_rate": hits / lookups if lookups else 0.0,
            "tuner_invocations": self.plan_store.tuner_invocations - tunes_before,
        }
        return WorkloadEstimate(
            name=workload.name,
            layers=workload.layers,
            operators=per_layer,
            overlap_total=overlap_total,
            non_overlap_total=non_overlap_total,
            theoretical_total=theoretical_total,
            plan_stats=plan_stats,
            trace=trace,
        )
