"""End-to-end model estimation (the paper's Table 4 / Fig. 12 at scale).

The operator-level machinery tunes and simulates one "GEMM + collective"
instance; this package chains it across every operator of a full transformer
stack:

* :mod:`repro.e2e.estimator` -- resolves each distinct operator shape once
  through a shared exact-shape :class:`~repro.plans.PlanCache` (cross-layer
  and cross-model plan reuse, with hit/miss stats), then replays the full
  stream on :class:`~repro.sim.engine.EventEngine` into whole-model
  latencies and an exportable timeline trace;
* :mod:`repro.e2e.report` -- aggregates several workloads into the
  Table-4-style comparison (non-overlap vs FlashOverlap vs perfect-overlap
  bound, per-operator and Fig. 4 pattern breakdowns).

Wired into the CLI as ``repro e2e``.
"""

from repro.e2e.estimator import (
    DEFAULT_STORE_CAPACITY,
    EndToEndEstimator,
    OperatorEstimate,
    WorkloadEstimate,
    make_plan_store,
)
from repro.e2e.report import EndToEndReport, estimate_models

__all__ = [
    "DEFAULT_STORE_CAPACITY",
    "EndToEndEstimator",
    "OperatorEstimate",
    "WorkloadEstimate",
    "make_plan_store",
    "EndToEndReport",
    "estimate_models",
]
