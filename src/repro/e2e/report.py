"""Table-4-style reporting of end-to-end estimates.

One :class:`EndToEndReport` aggregates the estimates of several workloads run
through a shared plan store: the whole-model latency under non-overlap /
FlashOverlap / perfect-overlap execution, the per-operator speedup
breakdown, the Fig. 4 pattern shares (via :mod:`repro.analysis.breakdown`)
and the plan-store reuse stats.  ``to_dict()`` is JSON-stable -- identical
runs produce byte-identical reports, which is what the committed golden
fixtures diff against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.breakdown import estimate_breakdown_table
from repro.analysis.reporting import ReportMixin, format_table
from repro.comm.topology import Topology
from repro.core.config import DEFAULT_SETTINGS, OverlapSettings
from repro.e2e.estimator import EndToEndEstimator, WorkloadEstimate
from repro.gpu.device import A800, GPUSpec
from repro.workloads.e2e import build_workload, workload_builders


@dataclass
class EndToEndReport(ReportMixin):
    """Estimates of several workloads plus the shared plan-store stats."""

    estimates: list[WorkloadEstimate]
    plan_stats: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def by_name(self) -> dict[str, WorkloadEstimate]:
        return {estimate.name: estimate for estimate in self.estimates}

    # -- rendering -------------------------------------------------------------------

    def table(self) -> str:
        """The Table 4 summary: one row per application."""
        rows = []
        for estimate in self.estimates:
            rows.append(
                [
                    estimate.name,
                    estimate.layers,
                    f"{estimate.non_overlap_total * 1e3:.3f}",
                    f"{estimate.overlap_total * 1e3:.3f}",
                    f"{estimate.theoretical_total * 1e3:.3f}",
                    f"{estimate.speedup:.3f}x",
                    f"{estimate.bound_speedup:.3f}x",
                    f"{estimate.plan_stats.get('hit_rate', 0.0) * 100:.0f}%",
                ]
            )
        return format_table(
            [
                "application",
                "layers",
                "non-overlap (ms)",
                "FlashOverlap (ms)",
                "bound (ms)",
                "speedup",
                "bound speedup",
                "plan hits",
            ],
            rows,
            title="Table 4 -- end-to-end latency estimates",
        )

    def breakdown_table(self) -> str:
        """The Fig. 4 pattern-share table of every estimated workload."""
        return estimate_breakdown_table(self.estimates)

    def operator_table(self, estimate: WorkloadEstimate) -> str:
        """Per-operator latencies and speedups of one workload's layer."""
        rows = []
        for op in estimate.operators:
            rows.append(
                [
                    op.name,
                    op.pattern,
                    f"{op.non_overlap_latency * 1e3:.3f}",
                    f"{op.overlap_latency * 1e3:.3f}",
                    f"{op.speedup:.3f}x" if op.is_overlap_target else "-",
                    ("overlap" if op.use_overlap else "fallback") if op.is_overlap_target else "-",
                    ("hit" if op.plan_cached else "miss") if op.is_overlap_target else "-",
                ]
            )
        return format_table(
            ["operator", "pattern", "non-overlap (ms)", "FlashOverlap (ms)", "speedup", "mode", "plan"],
            rows,
            title=f"{estimate.name}: per-operator breakdown (one layer)",
        )

    def summary_table(self) -> str:
        """The headline rendering of the ``repro.api`` report protocol."""
        return self.table()

    def to_dict(self) -> dict:
        return self._with_observability({
            "meta": self.meta,
            "workloads": {estimate.name: estimate.to_dict() for estimate in self.estimates},
            "plan_store": self.plan_stats,
        })


def estimate_models(
    names: list[str] | None = None,
    tokens: int | None = None,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int | None = None,
    settings: OverlapSettings = DEFAULT_SETTINGS,
    estimator: EndToEndEstimator | None = None,
    reuse: bool = True,
    record_trace: bool = False,
) -> EndToEndReport:
    """Estimate the named paper workloads through one shared plan store.

    ``names=None`` runs all five registry workloads.  All knobs apply to every
    workload (``tokens=None`` keeps each model's paper default input size).
    """
    names = list(names) if names else sorted(workload_builders())
    estimator = estimator or EndToEndEstimator(settings, reuse=reuse)
    estimates = []
    for name in names:
        workload = build_workload(
            name, tokens=tokens, device=device, topology=topology, layers=layers,
            settings=settings,
        )
        estimates.append(estimator.estimate(workload, record_trace=record_trace))
    return EndToEndReport(
        estimates=estimates,
        plan_stats=estimator.plan_store.stats(),
        meta={
            "workloads": names,
            "layers": layers,
            "tokens": tokens,
            "device": device.name,
            "seed": settings.seed,
            "reuse": reuse,
        },
    )
