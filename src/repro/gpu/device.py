"""Device specifications for the simulated accelerators.

Only a handful of numbers matter to the overlap model: the number of streaming
multiprocessors (which sets the wave size of a GEMM), the peak dense FP16
throughput and its achievable fraction (which set the compute-bound GEMM
duration), the HBM bandwidth (which sets the memory-bound duration and the
element-wise kernel costs), and the kernel-launch overhead.  Presets follow
published datasheet figures for the devices used in the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one accelerator.

    Attributes
    ----------
    name:
        Human-readable device name.
    sm_count:
        Number of streaming multiprocessors (or AI cores for NPUs).
    fp16_tflops:
        Peak dense FP16/BF16 tensor throughput in TFLOP/s.
    hbm_bandwidth_gbps:
        Peak device-memory bandwidth in GB/s.
    compute_efficiency:
        Fraction of peak throughput achieved by a well-tuned GEMM with a large
        accumulation dimension.
    kernel_launch_us:
        Fixed per-kernel launch overhead in microseconds.
    l2_cache_mb:
        L2 cache capacity in MiB (used by the swizzle heuristic).
    """

    name: str
    sm_count: int
    fp16_tflops: float
    hbm_bandwidth_gbps: float
    compute_efficiency: float = 0.80
    kernel_launch_us: float = 6.0
    l2_cache_mb: float = 40.0

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise ValueError("sm_count must be positive")
        if self.fp16_tflops <= 0 or self.hbm_bandwidth_gbps <= 0:
            raise ValueError("throughput and bandwidth must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")

    # -- derived rates -----------------------------------------------------

    @property
    def flops_per_second(self) -> float:
        """Peak FP16 FLOP/s."""
        return self.fp16_tflops * 1e12

    @property
    def flops_per_sm(self) -> float:
        """Peak FP16 FLOP/s contributed by a single SM."""
        return self.flops_per_second / self.sm_count

    @property
    def memory_bytes_per_second(self) -> float:
        """Peak HBM bandwidth in bytes/s."""
        return self.hbm_bandwidth_gbps * 1e9

    @property
    def kernel_launch_seconds(self) -> float:
        return self.kernel_launch_us * 1e-6

    def with_sm_count(self, sm_count: int) -> "GPUSpec":
        """Return a copy with a restricted SM budget (for contention modeling).

        Peak FLOP/s scales with the SM count; HBM bandwidth is shared and kept
        unchanged.
        """
        if sm_count <= 0:
            raise ValueError("sm_count must be positive")
        scale = sm_count / self.sm_count
        return replace(
            self,
            sm_count=sm_count,
            fp16_tflops=self.fp16_tflops * scale,
        )


# -- presets -----------------------------------------------------------------

RTX_4090 = GPUSpec(
    name="RTX 4090",
    sm_count=128,
    fp16_tflops=330.0,
    hbm_bandwidth_gbps=1008.0,
    compute_efficiency=0.75,
    kernel_launch_us=6.0,
    l2_cache_mb=72.0,
)

RTX_3090 = GPUSpec(
    name="RTX 3090",
    sm_count=82,
    fp16_tflops=142.0,
    hbm_bandwidth_gbps=936.0,
    compute_efficiency=0.72,
    kernel_launch_us=6.0,
    l2_cache_mb=6.0,
)

A800 = GPUSpec(
    name="A800",
    sm_count=108,
    fp16_tflops=312.0,
    hbm_bandwidth_gbps=1935.0,
    compute_efficiency=0.80,
    kernel_launch_us=5.0,
    l2_cache_mb=40.0,
)

A100 = GPUSpec(
    name="A100",
    sm_count=108,
    fp16_tflops=312.0,
    hbm_bandwidth_gbps=2039.0,
    compute_efficiency=0.80,
    kernel_launch_us=5.0,
    l2_cache_mb=40.0,
)

H100 = GPUSpec(
    name="H100 SXM",
    sm_count=132,
    fp16_tflops=989.0,
    hbm_bandwidth_gbps=3350.0,
    compute_efficiency=0.78,
    kernel_launch_us=5.0,
    l2_cache_mb=50.0,
)

ASCEND_910B = GPUSpec(
    name="Ascend 910B",
    sm_count=24,
    fp16_tflops=376.0,
    hbm_bandwidth_gbps=1600.0,
    compute_efficiency=0.70,
    kernel_launch_us=10.0,
    l2_cache_mb=192.0,
)


def known_devices() -> dict[str, GPUSpec]:
    """Return the preset devices keyed by short name."""
    return {
        "rtx4090": RTX_4090,
        "rtx3090": RTX_3090,
        "a800": A800,
        "a100": A100,
        "h100": H100,
        "ascend910b": ASCEND_910B,
    }


def device_by_name(name: str) -> GPUSpec:
    """Look up a preset device by its short name (case-insensitive)."""
    devices = known_devices()
    key = name.strip().lower().replace(" ", "").replace("-", "").replace("_", "")
    if key not in devices:
        raise KeyError(f"unknown device {name!r}; known: {sorted(devices)}")
    return devices[key]
