"""Analytical GEMM kernel model: tiles, waves, durations, completion times.

The model captures exactly the properties the overlap design depends on:

* the tile grid of the output and the (swizzled) execution order,
* the number of waves ``T = ceil(num_tiles / available_SMs)``,
* the total kernel duration (roofline: compute-bound vs memory-bound),
* the completion time of every wave and tile (Fig. 3 wave pattern),
* how the duration stretches when communication reserves part of the SMs.

It deliberately ignores micro-architectural detail (register pressure, shared
memory bank conflicts, ...) that does not change the overlap behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import GPUSpec
from repro.gpu.swizzle import execution_order
from repro.tensor.layout import TileLayout

#: Bytes per element for the FP16/BF16 data type used throughout the paper.
DTYPE_BYTES = 2

#: Accumulation length at which a GEMM reaches half of its asymptotic
#: efficiency (models prologue/epilogue amortisation along ``K``).
_K_HALF_EFFICIENCY = 384.0


@dataclass(frozen=True)
class GemmShape:
    """Problem size of ``A[M, K] @ B[K, N] = C[M, N]``."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {self}")

    @property
    def flops(self) -> float:
        """Multiply-accumulate FLOP count (2 * M * N * K)."""
        return 2.0 * self.m * self.n * self.k

    @property
    def output_elements(self) -> int:
        return self.m * self.n

    def output_bytes(self, dtype_bytes: int = DTYPE_BYTES) -> int:
        return self.output_elements * dtype_bytes

    def input_bytes(self, dtype_bytes: int = DTYPE_BYTES) -> int:
        return (self.m * self.k + self.k * self.n) * dtype_bytes

    def total_bytes(self, dtype_bytes: int = DTYPE_BYTES) -> int:
        """Minimum HBM traffic: read A and B once, write C once."""
        return self.input_bytes(dtype_bytes) + self.output_bytes(dtype_bytes)

    def arithmetic_intensity(self, dtype_bytes: int = DTYPE_BYTES) -> float:
        """FLOPs per byte of minimum memory traffic."""
        return self.flops / self.total_bytes(dtype_bytes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"GEMM(M={self.m}, N={self.n}, K={self.k})"


@dataclass(frozen=True)
class GemmTileConfig:
    """Tiling / swizzling configuration of the GEMM kernel."""

    tile_m: int = 128
    tile_n: int = 128
    tile_k: int = 32
    swizzle_size: int = 3
    stages: int = 4

    def __post_init__(self) -> None:
        if min(self.tile_m, self.tile_n, self.tile_k) <= 0:
            raise ValueError("tile dims must be positive")
        if self.swizzle_size < 0:
            raise ValueError("swizzle_size must be >= 0")

    @classmethod
    def default_for(cls, shape: GemmShape, device: GPUSpec) -> "GemmTileConfig":
        """Pick a reasonable tile size for a shape/device pair.

        Mirrors what the CUTLASS profiler would do at a coarse level: prefer
        128x128 tiles; fall back to 128x64 / 64x64 tiles when the output is too
        small to fill the device with full-size tiles.
        """
        for tile_m, tile_n in ((128, 128), (128, 64), (64, 64), (64, 32), (32, 32)):
            grid = -(-shape.m // tile_m) * (-(-shape.n // tile_n))
            if grid >= device.sm_count or (tile_m, tile_n) == (32, 32):
                return cls(tile_m=tile_m, tile_n=tile_n)
        return cls()  # pragma: no cover - unreachable

    def tile_elements(self) -> int:
        return self.tile_m * self.tile_n

    def tile_bytes(self, dtype_bytes: int = DTYPE_BYTES) -> int:
        return self.tile_elements() * dtype_bytes


class GemmKernelModel:
    """Wave schedule and duration model of one GEMM kernel on one device."""

    def __init__(
        self,
        shape: GemmShape,
        device: GPUSpec,
        config: GemmTileConfig | None = None,
        dtype_bytes: int = DTYPE_BYTES,
    ) -> None:
        self.shape = shape
        self.device = device
        self.config = config or GemmTileConfig.default_for(shape, device)
        self.dtype_bytes = dtype_bytes
        self.layout = TileLayout(shape.m, shape.n, self.config.tile_m, self.config.tile_n)

    # -- tiles and waves ---------------------------------------------------

    @property
    def num_tiles(self) -> int:
        return self.layout.num_tiles

    def execution_order(self) -> list[int]:
        """Tile indices in launch order (swizzled)."""
        return execution_order(self.layout, self.config.swizzle_size)

    def wave_size(self, sm_count: int | None = None) -> int:
        """Tiles executed concurrently: one per available SM."""
        sms = self._sms(sm_count)
        return sms

    def num_waves(self, sm_count: int | None = None) -> int:
        """Number of waves ``T = ceil(num_tiles / SMs)``."""
        return -(-self.num_tiles // self._sms(sm_count))

    def wave_tiles(self, sm_count: int | None = None) -> list[list[int]]:
        """Tile indices of each wave, in execution order."""
        order = self.execution_order()
        size = self._sms(sm_count)
        return [order[i : i + size] for i in range(0, len(order), size)]

    def wave_sizes(self, sm_count: int | None = None) -> list[int]:
        """Number of tiles in each wave (last wave may be partial)."""
        return [len(w) for w in self.wave_tiles(sm_count)]

    # -- durations ---------------------------------------------------------

    def efficiency(self) -> float:
        """Achieved fraction of peak throughput for this shape.

        Large ``K`` amortises the per-tile prologue/epilogue; small ``K``
        GEMMs are increasingly memory/launch bound.
        """
        k = self.shape.k
        return self.device.compute_efficiency * k / (k + _K_HALF_EFFICIENCY)

    def tile_compute_time(self) -> float:
        """Seconds for one SM to compute one full tile."""
        tile_flops = 2.0 * self.config.tile_m * self.config.tile_n * self.shape.k
        return tile_flops / (self.device.flops_per_sm * self.efficiency())

    def compute_time(self, sm_count: int | None = None) -> float:
        """Compute-bound duration of the main loop (seconds)."""
        return self.num_waves(sm_count) * self.tile_compute_time()

    def memory_time(self) -> float:
        """Memory-bound duration: minimum HBM traffic at peak bandwidth."""
        return self.shape.total_bytes(self.dtype_bytes) / self.device.memory_bytes_per_second

    def duration(self, sm_count: int | None = None, include_launch: bool = True) -> float:
        """Total kernel duration (roofline of compute and memory time)."""
        body = max(self.compute_time(sm_count), self.memory_time())
        if include_launch:
            body += self.device.kernel_launch_seconds
        return body

    def wave_duration(self, sm_count: int | None = None) -> float:
        """Duration of a single wave (kernel body split evenly across waves)."""
        waves = self.num_waves(sm_count)
        return self.duration(sm_count, include_launch=False) / waves

    def wave_completion_times(self, sm_count: int | None = None) -> np.ndarray:
        """Completion time of each wave measured from kernel-body start."""
        waves = self.num_waves(sm_count)
        return (np.arange(1, waves + 1)) * self.wave_duration(sm_count)

    def tile_completion_times(
        self,
        sm_count: int | None = None,
        jitter: float = 0.05,
        seed: int = 0,
    ) -> np.ndarray:
        """Completion time of every tile, indexed by tile index.

        Tiles in the same wave complete within ``jitter`` of a wave duration
        of each other (the paper reports "typically within 5% of a wave
        duration"), reproducing the staircase of Fig. 3.
        """
        waves = self.wave_tiles(sm_count)
        wave_end = self.wave_completion_times(sm_count)
        wave_len = self.wave_duration(sm_count)
        rng = np.random.default_rng(seed)
        times = np.empty(self.num_tiles, dtype=np.float64)
        for wave_index, tiles in enumerate(waves):
            spread = rng.uniform(-jitter, 0.0, size=len(tiles)) * wave_len
            for offset, tile_index in enumerate(tiles):
                times[tile_index] = wave_end[wave_index] + spread[offset]
        return times

    # -- group helpers (used by the overlap planner) ------------------------

    def group_bytes(self, tiles: list[int]) -> int:
        """Bytes of output produced by a set of tiles."""
        return sum(self.layout.tile_elements(t) for t in tiles) * self.dtype_bytes

    def _sms(self, sm_count: int | None) -> int:
        sms = self.device.sm_count if sm_count is None else sm_count
        if sms <= 0:
            raise ValueError("sm_count must be positive")
        return sms

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GemmKernelModel({self.shape}, tiles={self.num_tiles}, "
            f"waves={self.num_waves()}, dur={self.duration() * 1e3:.3f} ms)"
        )
