"""Light kernel-launch descriptors shared by the simulator and the planners."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class KernelCategory(enum.Enum):
    """Coarse category of a launched kernel, used for traces and breakdowns."""

    GEMM = "gemm"
    COMMUNICATION = "comm"
    SIGNAL = "signal"
    ELEMENTWISE = "elementwise"
    REORDER = "reorder"
    OTHER = "other"


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel enqueued on a stream.

    ``duration`` is the modeled execution time in seconds (excluding launch
    overhead, which the stream/timeline adds per launch).  ``sm_count`` is the
    number of SMs the kernel occupies while running; it is informational for
    most kernels but drives the contention model for communication kernels.
    """

    name: str
    duration: float
    category: KernelCategory = KernelCategory.OTHER
    sm_count: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"kernel {self.name!r} has negative duration")
        if self.sm_count < 0:
            raise ValueError(f"kernel {self.name!r} has negative SM count")

    def scaled(self, factor: float) -> "KernelLaunch":
        """Return a copy with the duration scaled by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return KernelLaunch(
            name=self.name,
            duration=self.duration * factor,
            category=self.category,
            sm_count=self.sm_count,
            metadata=dict(self.metadata),
        )
