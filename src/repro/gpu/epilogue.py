"""Element-wise kernels and the fused-reorder overhead model.

FlashOverlap hides the cost of its two reorderings by fusing them into kernels
that already touch the data: the pre-communication reorder goes into the GEMM
epilogue, and the post-communication reorder goes into the next element-wise
kernel (RMSNorm in the paper's Table 5 study).  This module provides

* functional NumPy implementations of the element-wise operators used by the
  workloads (RMSNorm, bias add, ReLU, SiLU),
* a duration model for element-wise kernels (memory-bound roofline),
* :class:`ReorderOverheadModel`, which estimates the relative latency increase
  of fusing a reorder at tile / sub-tile / sub-token granularity, following
  the paper's analysis: the overhead comes from the mapping-table traffic and
  from cache-line under-utilisation caused by the irregular access pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import GPUSpec
from repro.gpu.gemm import DTYPE_BYTES, GemmShape, GemmTileConfig

#: Granularities at which the post-communication reorder operates.
REORDER_UNITS = ("tile", "subtile", "subtoken")

#: DRAM burst / cache-line size used by the irregular-access penalty model.
_CACHE_LINE_BYTES = 128

#: Index width of a mapping-table entry.
_INDEX_BYTES = 4


# -- functional element-wise operators ---------------------------------------


def rmsnorm(x: np.ndarray, weight: np.ndarray | None = None, eps: float = 1e-6) -> np.ndarray:
    """Root-mean-square normalisation over the last axis."""
    x = np.asarray(x, dtype=np.float64)
    scale = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    out = x / scale
    if weight is not None:
        out = out * np.asarray(weight, dtype=np.float64)
    return out


def bias_add(x: np.ndarray, bias: np.ndarray) -> np.ndarray:
    """Row-broadcast bias addition."""
    return np.asarray(x) + np.asarray(bias)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x), 0)


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid linear unit (swish)."""
    x = np.asarray(x, dtype=np.float64)
    return x / (1.0 + np.exp(-x))


# -- duration model -----------------------------------------------------------


@dataclass(frozen=True)
class ElementwiseKernelModel:
    """Memory-bound duration model of an element-wise kernel.

    ``bytes_per_element`` counts the HBM traffic per output element; RMSNorm
    reads and writes each element once (plus a negligible weight vector), so
    the default is one read plus one write of an FP16 value.
    """

    device: GPUSpec
    bytes_per_element: float = 2.0 * DTYPE_BYTES

    def duration(self, elements: int, include_launch: bool = True) -> float:
        """Kernel duration for ``elements`` output elements (seconds)."""
        if elements < 0:
            raise ValueError("elements must be non-negative")
        body = elements * self.bytes_per_element / self.device.memory_bytes_per_second
        if include_launch:
            body += self.device.kernel_launch_seconds
        return body


# -- reorder overhead model ----------------------------------------------------


@dataclass(frozen=True)
class ReorderOverheadModel:
    """Relative overhead of fusing a reorder into an existing kernel.

    Two effects are modeled, following Sec. 6.6 of the paper:

    * **mapping-table traffic** -- one index per reordered unit must be read;
      relative to the payload this is ``index_bytes / (unit_row_bytes)`` for
      each row segment the unit contributes;
    * **irregular access** -- gathering units that are no longer adjacent in
      memory under-utilises cache lines; the penalty grows as the contiguous
      span of a unit row shrinks relative to a cache line, and shrinks with
      higher HBM bandwidth headroom of the device.

    The constants are calibrated so that an A800 sees roughly 7.5%/7.9%/8.5%
    extra latency for tile/sub-tile/sub-token reorders fused into RMSNorm and
    well under 1% fused into the GEMM epilogue, matching Table 5.
    """

    device: GPUSpec
    cache_line_bytes: int = _CACHE_LINE_BYTES
    index_bytes: int = _INDEX_BYTES
    #: Base irregular-access penalty for an element-wise (bandwidth-bound) kernel.
    elementwise_base_penalty: float = 0.055
    #: Reference HBM bandwidth used to scale the penalty across devices.
    reference_bandwidth_gbps: float = 1935.0

    def _bandwidth_scale(self) -> float:
        """Devices with less HBM bandwidth feel irregular access more."""
        return (self.reference_bandwidth_gbps / self.device.hbm_bandwidth_gbps) ** 0.25

    def unit_row_bytes(self, unit: str, config: GemmTileConfig, n_gpus: int,
                       dtype_bytes: int = DTYPE_BYTES) -> float:
        """Contiguous bytes of one row segment of a reordered unit."""
        self._check_unit(unit)
        if unit == "tile":
            return config.tile_n * dtype_bytes
        if unit == "subtile":
            # A sub-tile keeps full tile rows; contiguity is the same as a tile
            # row, but there are ``n_gpus`` times more units to index.
            return config.tile_n * dtype_bytes
        # sub-token: one row of one tile, addressed per token.
        return config.tile_n * dtype_bytes / max(1, n_gpus) * n_gpus / max(1, n_gpus)

    def table_traffic_ratio(self, unit: str, config: GemmTileConfig, n_gpus: int,
                            dtype_bytes: int = DTYPE_BYTES) -> float:
        """Mapping-table bytes per payload byte."""
        self._check_unit(unit)
        if unit == "tile":
            unit_rows = config.tile_m
            units_per_tile = 1
        elif unit == "subtile":
            unit_rows = max(1, config.tile_m // max(1, n_gpus))
            units_per_tile = max(1, n_gpus)
        else:  # subtoken
            unit_rows = 1
            units_per_tile = config.tile_m
        payload = config.tile_m * config.tile_n * dtype_bytes
        # The fused kernel re-reads the index for every row segment it emits.
        per_row_reads = unit_rows * units_per_tile * self.index_bytes
        return per_row_reads / payload

    def irregularity_penalty(self, unit: str, config: GemmTileConfig, n_gpus: int,
                             dtype_bytes: int = DTYPE_BYTES) -> float:
        """Cache-line under-utilisation penalty (relative)."""
        self._check_unit(unit)
        row_bytes = config.tile_n * dtype_bytes
        base = self.elementwise_base_penalty * self._bandwidth_scale()
        # Finer units add a small extra penalty per indirection level.
        extra = {"tile": 0.0, "subtile": 0.004, "subtoken": 0.008}[unit]
        line_term = self.cache_line_bytes / max(row_bytes, self.cache_line_bytes) * 0.01
        return base + extra + line_term

    def elementwise_overhead(self, unit: str, config: GemmTileConfig, n_gpus: int,
                             shape: GemmShape | None = None,
                             dtype_bytes: int = DTYPE_BYTES) -> float:
        """Relative extra latency of the post-reorder fused into an
        element-wise kernel (e.g. RMSNorm)."""
        ratio = self.table_traffic_ratio(unit, config, n_gpus, dtype_bytes)
        penalty = self.irregularity_penalty(unit, config, n_gpus, dtype_bytes)
        small_matrix_term = 0.0
        if shape is not None:
            # Small matrices amplify the overhead (poorer cache-line reuse).
            elements = shape.output_elements
            small_matrix_term = 0.02 * (1024 * 1024) / (elements + 1024 * 1024)
        return ratio + penalty + small_matrix_term

    def gemm_epilogue_overhead(self, unit: str, config: GemmTileConfig, n_gpus: int,
                               shape: GemmShape,
                               dtype_bytes: int = DTYPE_BYTES) -> float:
        """Relative extra latency of the pre-reorder fused into the GEMM.

        The GEMM main loop dominates; the reorder only perturbs the epilogue
        store, so the element-wise overhead is scaled down by the ratio of
        output traffic to total GEMM work (which shrinks as ``K`` grows).
        """
        elementwise = self.elementwise_overhead(unit, config, n_gpus, shape, dtype_bytes)
        output_bytes = shape.output_bytes(dtype_bytes)
        total_bytes = shape.total_bytes(dtype_bytes)
        compute_amplification = max(1.0, shape.k / 256.0)
        store_share = output_bytes / total_bytes / compute_amplification
        scatter_factor = 1.0 if unit == "tile" else 1.9
        return elementwise * store_share * scatter_factor

    @staticmethod
    def _check_unit(unit: str) -> None:
        if unit not in REORDER_UNITS:
            raise ValueError(f"unknown reorder unit {unit!r}; expected {REORDER_UNITS}")
