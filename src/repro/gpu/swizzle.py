"""Block-swizzling tile execution order.

GEMM kernels do not launch output tiles in address (row-major) order.  To
improve L2 reuse of the ``B`` operand, CUTLASS-style kernels *swizzle* the
launch order: tiles are visited column-panel by column-panel (a panel is
``swizzle_size`` tile columns wide), walking down the rows within a panel.
The consequence exploited by FlashOverlap is that the tiles of an execution
wave are **not contiguous in memory**, which is why a pre-communication
reordering is needed (paper Sec. 2.1.2 and Fig. 2).
"""

from __future__ import annotations

import numpy as np

from repro.tensor.layout import TileLayout


def unswizzled_order(layout: TileLayout) -> list[int]:
    """Row-major (address order) tile execution order."""
    return list(range(layout.num_tiles))


def swizzled_order(layout: TileLayout, swizzle_size: int) -> list[int]:
    """Tile execution order under block swizzling.

    Tiles are launched panel by panel, where a panel is ``swizzle_size``
    consecutive tile columns; within a panel the walk is row-major across the
    panel's columns, descending the tile rows.  ``swizzle_size == 1`` reduces
    to a column-major launch; ``swizzle_size >= grid_n`` reduces to the
    row-major order.
    """
    if swizzle_size <= 0:
        raise ValueError("swizzle_size must be positive")
    order: list[int] = []
    for panel_start in range(0, layout.grid_n, swizzle_size):
        panel_cols = range(panel_start, min(panel_start + swizzle_size, layout.grid_n))
        for row_block in range(layout.grid_m):
            for col_block in panel_cols:
                order.append(layout.tile_index(row_block, col_block))
    return order


def execution_order(layout: TileLayout, swizzle_size: int | None) -> list[int]:
    """Return the tile execution order; ``None`` or ``0`` disables swizzling."""
    if not swizzle_size:
        return unswizzled_order(layout)
    return swizzled_order(layout, swizzle_size)


def is_valid_order(layout: TileLayout, order: list[int]) -> bool:
    """Check that ``order`` is a permutation of all tile indices."""
    return sorted(order) == list(range(layout.num_tiles))


def address_discontiguity(layout: TileLayout, order: list[int], window: int) -> float:
    """Fraction of adjacent pairs in the first ``window`` launched tiles that
    are *not* adjacent in address order.

    A value of 0 means the first wave is a contiguous block (communication
    could proceed without reordering); larger values quantify how much the
    swizzle scrambles addresses.
    """
    if window < 2:
        return 0.0
    window = min(window, len(order))
    pairs = zip(order[: window - 1], order[1:window])
    broken = sum(1 for a, b in pairs if b != a + 1)
    return broken / (window - 1)


def default_swizzle_size(layout: TileLayout, l2_cache_mb: float, dtype_bytes: int = 2,
                         k: int | None = None) -> int:
    """Heuristic swizzle size: keep a panel of ``B`` columns resident in L2.

    The panel footprint along ``N`` is ``swizzle_size * tile_n * K * dtype``;
    the heuristic picks the largest power of two that fits in roughly half of
    L2, clamped to ``[1, grid_n]``.  When ``k`` is unknown a fixed panel of 3
    (the value used in the paper's Fig. 3) is returned.
    """
    if k is None:
        return max(1, min(3, layout.grid_n))
    budget = l2_cache_mb * 1024 * 1024 / 2
    per_column_panel = layout.tile_n * k * dtype_bytes
    if per_column_panel <= 0:
        return 1
    size = max(1, int(budget // per_column_panel))
    power = 1
    while power * 2 <= size:
        power *= 2
    return max(1, min(power, layout.grid_n))


def wave_partition(order: list[int], wave_size: int) -> list[list[int]]:
    """Chunk an execution order into waves of ``wave_size`` tiles.

    The last wave may be smaller.  ``wave_size`` is normally the number of SMs
    available to the GEMM kernel.
    """
    if wave_size <= 0:
        raise ValueError("wave_size must be positive")
    return [order[i : i + wave_size] for i in range(0, len(order), wave_size)]


def tiles_to_waves(order: list[int], wave_size: int) -> np.ndarray:
    """Return ``wave_of[tile_index] = wave number`` for an execution order."""
    wave_of = np.empty(len(order), dtype=np.int64)
    for position, tile_index in enumerate(order):
        wave_of[tile_index] = position // wave_size
    return wave_of
