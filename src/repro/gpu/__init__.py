"""GPU execution-model substrate.

FlashOverlap's behaviour is driven by *when GEMM tiles finish* (the wave
pattern), by the total GEMM duration, and by the cost of the epilogue /
element-wise kernels that the reorderings are fused into.  This package models
all of that analytically for a configurable device:

* :mod:`repro.gpu.device` -- device specifications (SM count, peak FP16
  throughput, HBM bandwidth) with presets for the GPUs/NPUs used in the paper,
* :mod:`repro.gpu.swizzle` -- the block-swizzling tile execution order,
* :mod:`repro.gpu.gemm` -- tile grid, wave schedule and roofline duration of a
  GEMM kernel, including per-tile completion times (Fig. 3),
* :mod:`repro.gpu.epilogue` -- functional element-wise kernels (RMSNorm, bias,
  activations) and the memory-traffic overhead model of the fused reorderings
  (Table 5),
* :mod:`repro.gpu.kernels` -- light kernel-launch descriptors shared with the
  simulator.
"""

from repro.gpu.device import (
    A100,
    A800,
    ASCEND_910B,
    H100,
    RTX_3090,
    RTX_4090,
    GPUSpec,
    known_devices,
)
from repro.gpu.gemm import GemmKernelModel, GemmShape, GemmTileConfig
from repro.gpu.swizzle import execution_order, swizzled_order, unswizzled_order
from repro.gpu.epilogue import (
    ElementwiseKernelModel,
    ReorderOverheadModel,
    bias_add,
    relu,
    rmsnorm,
    silu,
)
from repro.gpu.kernels import KernelLaunch, KernelCategory

__all__ = [
    "GPUSpec",
    "RTX_4090",
    "RTX_3090",
    "A800",
    "A100",
    "H100",
    "ASCEND_910B",
    "known_devices",
    "GemmShape",
    "GemmTileConfig",
    "GemmKernelModel",
    "execution_order",
    "swizzled_order",
    "unswizzled_order",
    "ElementwiseKernelModel",
    "ReorderOverheadModel",
    "rmsnorm",
    "bias_add",
    "relu",
    "silu",
    "KernelLaunch",
    "KernelCategory",
]
