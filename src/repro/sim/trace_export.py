"""Export simulated timelines to the Chrome trace-event format.

The JSON produced here can be loaded into ``chrome://tracing`` / Perfetto to
inspect a simulated overlap schedule the same way one would inspect an Nsight
capture of the real system: one row per stream, one slice per kernel, instant
events for signals.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.gpu.kernels import KernelCategory
from repro.sim.trace import Trace

#: Chrome trace colour names per kernel category.
_CATEGORY_COLORS = {
    KernelCategory.GEMM: "thread_state_running",
    KernelCategory.COMMUNICATION: "rail_response",
    KernelCategory.SIGNAL: "vsync_highlight_color",
    KernelCategory.ELEMENTWISE: "thread_state_runnable",
    KernelCategory.REORDER: "thread_state_iowait",
    KernelCategory.OTHER: "generic_work",
}


def trace_to_chrome_events(trace: Trace, process_name: str = "simulated-gpu") -> list[dict]:
    """Convert a :class:`Trace` into a list of Chrome trace-event dicts.

    Durations are emitted in microseconds (the Chrome trace unit).  Streams
    become threads of a single process; zero-duration spans become instant
    events.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    stream_ids = {stream: index for index, stream in enumerate(trace.streams())}
    for stream, tid in stream_ids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid, "args": {"name": stream}}
        )
    for span in trace.spans:
        tid = stream_ids[span.stream]
        start_us = span.start * 1e6
        if span.duration == 0.0:
            events.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": tid,
                    "ts": start_us,
                    "cat": span.category.value,
                }
            )
            continue
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": start_us,
                "dur": span.duration * 1e6,
                "cat": span.category.value,
                "cname": _CATEGORY_COLORS.get(span.category, "generic_work"),
            }
        )
    return events


def obs_spans_to_chrome_events(spans: list[dict], pid: int = 1) -> list[dict]:
    """Convert :mod:`repro.obs` span dicts into Chrome trace events.

    The span forest lands in its own ``observability`` process (``pid=1`` by
    default, so it never collides with the simulated-GPU process at
    ``pid=0``) with one thread per nesting depth -- the slices then stack in
    the viewer the way the spans nested at runtime.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "observability"},
        }
    ]
    max_depth = 0

    def visit(node: dict, depth: int) -> None:
        nonlocal max_depth
        max_depth = max(max_depth, depth)
        events.append(
            {
                "name": node["name"],
                "ph": "X",
                "pid": pid,
                "tid": depth,
                "ts": node["start_s"] * 1e6,
                "dur": node["duration_s"] * 1e6,
                "cat": "obs",
                "args": node.get("attrs", {}),
            }
        )
        for child in node.get("children", ()):
            visit(child, depth + 1)

    for root in spans:
        visit(root, 0)
    for depth in range(max_depth + 1):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": depth,
                "args": {"name": f"spans (depth {depth})"},
            }
        )
    return events


def export_chrome_trace(
    trace: Trace,
    path: str | Path,
    process_name: str = "simulated-gpu",
    obs_spans: list[dict] | None = None,
) -> Path:
    """Write a Chrome trace JSON file and return its path.

    ``obs_spans`` (the ``spans`` list of a profile snapshot) lands in the
    same file on a separate ``observability`` process track, so simulated
    events and profiling spans can be inspected side by side.
    """
    from repro.atomic import atomic_write_text

    events = trace_to_chrome_events(trace, process_name)
    if obs_spans:
        events.extend(obs_spans_to_chrome_events(obs_spans))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    return atomic_write_text(path, json.dumps(payload, indent=2))


def load_chrome_trace(path: str | Path) -> dict:
    """Read back a Chrome trace JSON file (round-trip helper for tests/tools)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
