"""Export simulated timelines to the Chrome trace-event format.

The JSON produced here can be loaded into ``chrome://tracing`` / Perfetto to
inspect a simulated overlap schedule the same way one would inspect an Nsight
capture of the real system: one row per stream, one slice per kernel, instant
events for signals.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.gpu.kernels import KernelCategory
from repro.sim.trace import Trace

#: Chrome trace colour names per kernel category.
_CATEGORY_COLORS = {
    KernelCategory.GEMM: "thread_state_running",
    KernelCategory.COMMUNICATION: "rail_response",
    KernelCategory.SIGNAL: "vsync_highlight_color",
    KernelCategory.ELEMENTWISE: "thread_state_runnable",
    KernelCategory.REORDER: "thread_state_iowait",
    KernelCategory.OTHER: "generic_work",
}


def trace_to_chrome_events(trace: Trace, process_name: str = "simulated-gpu") -> list[dict]:
    """Convert a :class:`Trace` into a list of Chrome trace-event dicts.

    Durations are emitted in microseconds (the Chrome trace unit).  Streams
    become threads of a single process; zero-duration spans become instant
    events.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    stream_ids = {stream: index for index, stream in enumerate(trace.streams())}
    for stream, tid in stream_ids.items():
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid, "args": {"name": stream}}
        )
    for span in trace.spans:
        tid = stream_ids[span.stream]
        start_us = span.start * 1e6
        if span.duration == 0.0:
            events.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": tid,
                    "ts": start_us,
                    "cat": span.category.value,
                }
            )
            continue
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": start_us,
                "dur": span.duration * 1e6,
                "cat": span.category.value,
                "cname": _CATEGORY_COLORS.get(span.category, "generic_work"),
            }
        )
    return events


def export_chrome_trace(trace: Trace, path: str | Path, process_name: str = "simulated-gpu") -> Path:
    """Write a Chrome trace JSON file and return its path."""
    from repro.atomic import atomic_write_text

    payload = {"traceEvents": trace_to_chrome_events(trace, process_name), "displayTimeUnit": "ms"}
    return atomic_write_text(path, json.dumps(payload, indent=2))


def load_chrome_trace(path: str | Path) -> dict:
    """Read back a Chrome trace JSON file (round-trip helper for tests/tools)."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
