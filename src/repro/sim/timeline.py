"""Stream-ordered timeline builder.

Models the execution semantics the overlap design relies on:

* kernels on one stream execute in enqueue order, back to back,
* a kernel may additionally wait on a cross-stream dependency (the signal
  released when a wave group finishes),
* every launch pays a fixed overhead before the kernel body runs.

The builder produces a :class:`~repro.sim.trace.Trace` so all analyses (head /
overlap / tail, busy time, rendering) are shared with other executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.kernels import KernelCategory, KernelLaunch
from repro.sim.trace import Span, Trace


@dataclass
class StreamTimeline:
    """In-order multi-stream timeline with cross-stream dependencies."""

    launch_overhead: float = 0.0
    trace: Trace = field(default_factory=Trace)
    _stream_available: dict[str, float] = field(default_factory=dict)

    def stream_available_at(self, stream: str) -> float:
        """Time at which a stream becomes free for its next kernel."""
        return self._stream_available.get(stream, 0.0)

    def enqueue(
        self,
        stream: str,
        kernel: KernelLaunch,
        not_before: float = 0.0,
        pay_launch_overhead: bool = True,
    ) -> Span:
        """Enqueue a kernel on a stream.

        ``not_before`` expresses a cross-stream dependency: the kernel body
        cannot start before that time even if the stream is idle (this is how
        the signal-wait of a wave group is modeled).
        """
        overhead = self.launch_overhead if pay_launch_overhead else 0.0
        ready = max(self.stream_available_at(stream), not_before)
        start = ready + overhead
        end = start + kernel.duration
        self._stream_available[stream] = end
        return self.trace.record(stream, kernel.name, start, end, kernel.category)

    def run_sequence(
        self, stream: str, kernels: list[KernelLaunch], not_before: float = 0.0
    ) -> list[Span]:
        """Enqueue a list of kernels back to back on one stream."""
        spans = []
        gate = not_before
        for kernel in kernels:
            spans.append(self.enqueue(stream, kernel, not_before=gate))
            gate = 0.0
        return spans

    def barrier(self, streams: list[str] | None = None) -> float:
        """Return the time at which all (or the given) streams are idle."""
        streams = streams or list(self._stream_available)
        if not streams:
            return 0.0
        return max(self.stream_available_at(s) for s in streams)

    def makespan(self) -> float:
        return self.trace.makespan()

    def idle_time(self, stream: str) -> float:
        """Idle gaps on a stream between time 0 and the overall makespan."""
        return self.makespan() - self.trace.busy_time(stream)

    def record_marker(self, stream: str, name: str, time: float) -> Span:
        """Record a zero-duration marker span (e.g. a signal firing)."""
        return self.trace.record(stream, name, time, time, KernelCategory.SIGNAL)
