"""Dependency-aware replay of tasks on serial resources (multi-stage replay).

The event engine executes timed callbacks; this module layers a small
scheduling semantic on top of it that several subsystems need (the pipeline
scheduler replays stage timelines with it):

* every :class:`ReplayTask` runs on one named *resource* (a pipeline stage, a
  CUDA stream, ...) that executes its tasks strictly in list order, one at a
  time;
* a task additionally waits for its *dependencies* -- other tasks, each with
  an optional extra delay after the dependency finishes (e.g. a P2P transfer
  between pipeline stages);
* a task therefore starts at ``max(resource free, max(dep end + delay))``,
  which is exactly the greedy list-scheduling rule, realized event by event
  on :class:`~repro.sim.engine.EventEngine`.

The result carries per-task spans, per-resource busy times and a
:class:`~repro.sim.trace.Trace` (one stream per resource) ready for Chrome
trace export.  An order that can never make progress (a dependency cycle
through the resource orders) raises instead of hanging.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Protocol

from repro.gpu.kernels import KernelCategory
from repro.sim.engine import EventEngine
from repro.sim.trace import Trace

__all__ = ["ReplayTask", "ReplayResult", "SpeedProfile", "replay_tasks"]


class SpeedProfile(Protocol):
    """Anything that can stretch a task's duration over wall-clock time.

    ``finish_time(start, work)`` returns when ``work`` nominal seconds of
    work complete if started at ``start``.  The fault layer's
    :class:`repro.faults.timeline.SpeedTimeline` satisfies this; the protocol
    keeps ``sim`` free of a dependency on ``faults``.
    """

    def finish_time(self, start: float, work: float) -> float: ...


@dataclass(frozen=True)
class ReplayTask:
    """One unit of work on a serial resource.

    ``deps`` is a tuple of ``(task name, extra delay)`` pairs: the task may
    start only once every named dependency has finished plus its delay.
    """

    name: str
    resource: str
    duration: float
    deps: tuple[tuple[str, float], ...] = ()
    category: KernelCategory = KernelCategory.OTHER

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name!r} has a negative duration")
        for dep, delay in self.deps:
            if delay < 0:
                raise ValueError(f"task {self.name!r} dependency {dep!r} has a negative delay")


@dataclass
class ReplayResult:
    """Realized timeline of one replay."""

    makespan: float
    #: Task name -> (start, end) in replay time.
    spans: dict[str, tuple[float, float]]
    #: Resource names in first-appearance order.
    resources: list[str]
    trace: Trace | None = None
    busy: dict[str, float] = field(default_factory=dict)

    def start(self, name: str) -> float:
        return self.spans[name][0]

    def end(self, name: str) -> float:
        return self.spans[name][1]

    def idle(self, resource: str) -> float:
        """Wall-clock time the resource is not executing within the makespan."""
        return self.makespan - self.busy[resource]


def replay_tasks(
    tasks: list[ReplayTask],
    record_trace: bool = False,
    resource_profiles: Mapping[str, SpeedProfile] | None = None,
) -> ReplayResult:
    """Replay ``tasks`` (FIFO per resource, dependency-gated) on the engine.

    ``resource_profiles`` optionally maps a resource name to a
    :class:`SpeedProfile`; that resource's tasks then take
    ``profile.finish_time(start, duration) - start`` wall-clock seconds
    instead of ``duration`` (straggling or crashed stages stretch, nominal
    profiles change nothing).
    """
    by_name = {}
    for task in tasks:
        if task.name in by_name:
            raise ValueError(f"duplicate task name {task.name!r}")
        by_name[task.name] = task
    for task in tasks:
        for dep, _ in task.deps:
            if dep not in by_name:
                raise ValueError(f"task {task.name!r} depends on unknown task {dep!r}")

    queues: dict[str, list[ReplayTask]] = {}
    for task in tasks:
        queues.setdefault(task.resource, []).append(task)
    resources = list(queues)

    engine = EventEngine()
    trace = Trace() if record_trace else None
    heads = dict.fromkeys(resources, 0)  # next queue index per resource
    running: dict[str, bool] = dict.fromkeys(resources, False)
    free_at: dict[str, float] = dict.fromkeys(resources, 0.0)
    ends: dict[str, float] = {}
    spans: dict[str, tuple[float, float]] = {}

    def finish(task: ReplayTask, start: float) -> None:
        ends[task.name] = engine.now
        spans[task.name] = (start, engine.now)
        if trace is not None:
            trace.record(task.resource, task.name, start, engine.now, task.category)
        running[task.resource] = False
        free_at[task.resource] = engine.now
        pump()

    def pump() -> None:
        # Start every resource head whose dependencies have completed.  A
        # completion can unblock heads on any resource, so scan them all;
        # each start is O(1) and the loop runs once per finish event.
        for resource in resources:
            if running[resource] or heads[resource] >= len(queues[resource]):
                continue
            task = queues[resource][heads[resource]]
            if any(dep not in ends for dep, _ in task.deps):
                continue
            ready = free_at[resource]
            for dep, delay in task.deps:
                ready = max(ready, ends[dep] + delay)
            start = max(ready, engine.now)
            heads[resource] += 1
            running[resource] = True
            profile = (resource_profiles or {}).get(resource)
            end = start + task.duration if profile is None else profile.finish_time(
                start, task.duration
            )
            engine.schedule(end, finish, task, start)

    engine.schedule(0.0, pump)
    engine.run()
    stuck = [
        queues[resource][heads[resource]].name
        for resource in resources
        if heads[resource] < len(queues[resource])
    ]
    if stuck:
        raise RuntimeError(
            f"replay deadlocked: tasks {stuck} wait on dependencies that can "
            "never finish (cyclic schedule?)"
        )
    busy = {
        resource: sum(spans[task.name][1] - spans[task.name][0] for task in queue)
        for resource, queue in queues.items()
    }
    makespan = max((end for _, end in spans.values()), default=0.0)
    return ReplayResult(
        makespan=makespan, spans=spans, resources=resources, trace=trace, busy=busy
    )
