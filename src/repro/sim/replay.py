"""Dependency-aware replay of tasks on serial resources (multi-stage replay).

The event engine executes timed callbacks; this module layers a small
scheduling semantic on top of it that several subsystems need (the pipeline
scheduler replays stage timelines with it):

* every :class:`ReplayTask` runs on one named *resource* (a pipeline stage, a
  CUDA stream, ...) that executes its tasks strictly in list order, one at a
  time;
* a task additionally waits for its *dependencies* -- other tasks, each with
  an optional extra delay after the dependency finishes (e.g. a P2P transfer
  between pipeline stages);
* a task therefore starts at ``max(resource free, max(dep end + delay))``,
  which is exactly the greedy list-scheduling rule, realized event by event
  on :class:`~repro.sim.engine.EventEngine`.

Two interchangeable executions implement that rule:

* the **reference path** (``fast=False``, or whenever a trace is recorded)
  replays event by event on the engine -- the semantics above, literally;
* the **fast path** (``fast=True``, the default) lowers the task list to
  numpy cell arrays (durations, dependency edges, serial-resource edges) and
  resolves every start/end time with a vectorized topological sweep.  Because
  greedy list scheduling on serial resources is equivalent to longest-path
  evaluation over the dependency DAG extended with per-resource chain edges,
  the sweep produces **bit-identical** spans, busy times and makespans -- the
  hypothesis differential suite asserts exactly that, including under
  straggling :class:`SpeedProfile` stretches (profiled resources fall back to
  scalar ``finish_time`` calls inside the sweep).

The result carries per-task spans, per-resource busy times and a
:class:`~repro.sim.trace.Trace` (one stream per resource) ready for Chrome
trace export.  An order that can never make progress (a dependency cycle
through the resource orders) raises instead of hanging.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from operator import itemgetter, sub
from typing import Protocol

import numpy as np

from repro.gpu.kernels import KernelCategory
from repro.sim.engine import EventEngine
from repro.sim.trace import Trace

__all__ = ["ReplayTask", "ReplayResult", "SpeedProfile", "replay_tasks"]


class SpeedProfile(Protocol):
    """Anything that can stretch a task's duration over wall-clock time.

    ``finish_time(start, work)`` returns when ``work`` nominal seconds of
    work complete if started at ``start``.  The fault layer's
    :class:`repro.faults.timeline.SpeedTimeline` satisfies this; the protocol
    keeps ``sim`` free of a dependency on ``faults``.
    """

    def finish_time(self, start: float, work: float) -> float: ...


@dataclass(frozen=True)
class ReplayTask:
    """One unit of work on a serial resource.

    ``deps`` is a tuple of ``(task name, extra delay)`` pairs: the task may
    start only once every named dependency has finished plus its delay.
    """

    name: str
    resource: str
    duration: float
    deps: tuple[tuple[str, float], ...] = ()
    category: KernelCategory = KernelCategory.OTHER

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name!r} has a negative duration")
        for dep, delay in self.deps:
            if delay < 0:
                raise ValueError(f"task {self.name!r} dependency {dep!r} has a negative delay")


@dataclass
class ReplayResult:
    """Realized timeline of one replay.

    ``busy`` is *occupancy*: the wall-clock length of every span the resource
    executed, straggler stretch included.  ``work`` is the *nominal* duration
    sum of the same tasks -- what the resource would have been busy for at
    full speed.  The two coincide (up to float association) on unprofiled
    replays and diverge exactly by the fault stretch under a
    :class:`SpeedProfile`.
    """

    makespan: float
    #: Task name -> (start, end) in replay time.
    spans: dict[str, tuple[float, float]]
    #: Resource names in first-appearance order.
    resources: list[str]
    trace: Trace | None = None
    #: Stretched occupancy per resource (wall-clock span lengths).
    busy: dict[str, float] = field(default_factory=dict)
    #: Nominal work per resource (task durations, stretch excluded).
    work: dict[str, float] = field(default_factory=dict)

    def start(self, name: str) -> float:
        return self.spans[name][0]

    def end(self, name: str) -> float:
        return self.spans[name][1]

    def idle(self, resource: str) -> float:
        """Wall-clock time the resource spends *unoccupied* within the makespan.

        Straggler-stretched spans count as occupied: a slowed stage is not
        idle, it is slow.  Use :meth:`stall` for the useful-work view.
        """
        return self.makespan - self.busy[resource]

    def stall(self, resource: str) -> float:
        """Makespan share not covered by *nominal* work on the resource.

        Unlike :meth:`idle`, straggler stretch counts as stalled time, so
        this is the number that exposes fault-induced bubbles: it answers
        "how much of the step was not useful work on this resource".
        """
        return self.makespan - self.work[resource]


def replay_tasks(
    tasks: list[ReplayTask],
    record_trace: bool = False,
    resource_profiles: Mapping[str, SpeedProfile] | None = None,
    fast: bool = True,
) -> ReplayResult:
    """Replay ``tasks`` (FIFO per resource, dependency-gated).

    ``resource_profiles`` optionally maps a resource name to a
    :class:`SpeedProfile`; that resource's tasks then take
    ``profile.finish_time(start, duration) - start`` wall-clock seconds
    instead of ``duration`` (straggling or crashed stages stretch, nominal
    profiles change nothing).

    ``fast=True`` (the default) resolves the timeline with the vectorized
    topological sweep; ``fast=False`` replays event by event on the engine.
    Both produce bit-identical results (``trace`` excepted: recording a trace
    always routes through the reference path, whose event order defines the
    stream layout).
    """
    if record_trace or not fast:
        _validate(tasks)
        queues = _queues(tasks)
        return _replay_reference(tasks, queues, list(queues), record_trace, resource_profiles)
    return _replay_fast(tasks, resource_profiles)


def _validate(tasks: list[ReplayTask]) -> None:
    by_name = set()
    for task in tasks:
        if task.name in by_name:
            raise ValueError(f"duplicate task name {task.name!r}")
        by_name.add(task.name)
    for task in tasks:
        for dep, _ in task.deps:
            if dep not in by_name:
                raise ValueError(f"task {task.name!r} depends on unknown task {dep!r}")


def _queues(tasks: list[ReplayTask]) -> dict[str, list[ReplayTask]]:
    queues: dict[str, list[ReplayTask]] = {}
    for task in tasks:
        queues.setdefault(task.resource, []).append(task)
    return queues


def _finalize(
    queues: dict[str, list[ReplayTask]],
    resources: list[str],
    spans: dict[str, tuple[float, float]],
    trace: Trace | None,
) -> ReplayResult:
    """Derive the per-resource aggregates both paths share.

    The float reductions run in queue order over python floats, so the fast
    and reference paths fold identical values in an identical order.
    """
    busy = {
        resource: sum(spans[task.name][1] - spans[task.name][0] for task in queue)
        for resource, queue in queues.items()
    }
    work = {
        resource: sum(task.duration for task in queue)
        for resource, queue in queues.items()
    }
    makespan = max((end for _, end in spans.values()), default=0.0)
    return ReplayResult(
        makespan=makespan, spans=spans, resources=resources, trace=trace,
        busy=busy, work=work,
    )


def _stuck_error(stuck: list[str]) -> RuntimeError:
    return RuntimeError(
        f"replay deadlocked: tasks {stuck} wait on dependencies that can "
        "never finish (cyclic schedule?)"
    )


def _replay_reference(
    tasks: list[ReplayTask],
    queues: dict[str, list[ReplayTask]],
    resources: list[str],
    record_trace: bool,
    resource_profiles: Mapping[str, SpeedProfile] | None,
) -> ReplayResult:
    """Event-by-event greedy list scheduling on the engine (the semantics)."""
    engine = EventEngine()
    trace = Trace() if record_trace else None
    heads = dict.fromkeys(resources, 0)  # next queue index per resource
    running: dict[str, bool] = dict.fromkeys(resources, False)
    free_at: dict[str, float] = dict.fromkeys(resources, 0.0)
    ends: dict[str, float] = {}
    spans: dict[str, tuple[float, float]] = {}

    def finish(task: ReplayTask, start: float) -> None:
        ends[task.name] = engine.now
        spans[task.name] = (start, engine.now)
        if trace is not None:
            trace.record(task.resource, task.name, start, engine.now, task.category)
        running[task.resource] = False
        free_at[task.resource] = engine.now
        pump()

    def pump() -> None:
        # Start every resource head whose dependencies have completed.  A
        # completion can unblock heads on any resource, so scan them all;
        # each start is O(1) and the loop runs once per finish event.
        for resource in resources:
            if running[resource] or heads[resource] >= len(queues[resource]):
                continue
            task = queues[resource][heads[resource]]
            if any(dep not in ends for dep, _ in task.deps):
                continue
            ready = free_at[resource]
            for dep, delay in task.deps:
                ready = max(ready, ends[dep] + delay)
            start = max(ready, engine.now)
            heads[resource] += 1
            running[resource] = True
            profile = (resource_profiles or {}).get(resource)
            end = start + task.duration if profile is None else profile.finish_time(
                start, task.duration
            )
            engine.schedule(end, finish, task, start)

    engine.schedule(0.0, pump)
    engine.run()
    stuck = [
        queues[resource][heads[resource]].name
        for resource in resources
        if heads[resource] < len(queues[resource])
    ]
    if stuck:
        raise _stuck_error(stuck)
    return _finalize(queues, resources, spans, trace)


#: A topological frontier holds at most one task per serial resource (the
#: chain edges serialize each queue), so replays on few resources produce
#: frontiers too narrow to amortize numpy dispatch: those resolve the same
#: longest-path recurrence through the fused scalar sweep instead.
_VECTOR_MIN_RESOURCES = 64
_VECTOR_MIN_TASKS = 1024


def _replay_fast(
    tasks: list[ReplayTask],
    resource_profiles: Mapping[str, SpeedProfile] | None,
) -> ReplayResult:
    """Lowered topological sweep (vectorized when frontiers can be wide).

    Greedy list scheduling with FIFO serial resources is longest-path
    evaluation over the dependency DAG once each queue's serial order is
    added as zero-delay chain edges: every task starts at the max of its
    predecessors' ``end + delay`` (``end + 0.0 == end`` exactly, so the chain
    edges are float-transparent).  Wide replays (many resources) resolve
    whole indegree-zero frontiers at a time with ``np.maximum.at`` over the
    lowered cell arrays; narrow replays fold the identical recurrence in one
    scalar Kahn pass, because their frontiers (at most one task per
    resource) cannot amortize per-level array dispatch.  Both branches
    perform the same float additions and max selections as the reference
    path, so results are bit-identical.
    """
    n = len(tasks)
    names = [task.name for task in tasks]
    index = dict(zip(names, range(n)))
    if len(index) != n:
        _validate(tasks)  # raises the duplicate-name error
    durations_list = [task.duration for task in tasks]

    profiles = resource_profiles or {}
    profile_of = [profiles.get(task.resource) for task in tasks] if profiles else None

    wide = n >= _VECTOR_MIN_TASKS and len(
        {task.resource for task in tasks}
    ) >= _VECTOR_MIN_RESOURCES
    sweep = _sweep_vector if wide else _sweep_scalar
    starts_list, ends_list, queue_indices, arrays = sweep(
        tasks, names, index, durations_list, profile_of
    )

    spans = dict(zip(names, zip(starts_list, ends_list)))
    # Left-fold python floats in queue order -- the exact reduction the
    # reference path's _finalize performs -- over C-speed gathers.
    busy = {}
    work = {}
    if arrays is None:
        for resource, queue in queue_indices.items():
            if len(queue) == 1:
                i = queue[0]
                busy[resource] = ends_list[i] - starts_list[i]
                work[resource] = durations_list[i]
                continue
            get = itemgetter(*queue)
            busy[resource] = sum(map(sub, get(ends_list), get(starts_list)))
            work[resource] = sum(get(durations_list))
    else:
        starts_arr, ends_arr, durations_arr = arrays
        for resource, queue in queue_indices.items():
            ids = np.asarray(queue, dtype=np.intp)
            busy[resource] = sum((ends_arr[ids] - starts_arr[ids]).tolist())
            work[resource] = sum(durations_arr[ids].tolist())
    makespan = max(ends_list) if ends_list else 0.0
    return ReplayResult(
        makespan=makespan, spans=spans, resources=list(queue_indices),
        trace=None, busy=busy, work=work,
    )


def _sweep_scalar(
    tasks: list[ReplayTask],
    names: list[str],
    index: dict[str, int],
    durations_list: list[float],
    profile_of: list[SpeedProfile | None] | None,
) -> tuple[list[float], list[float], dict[str, list[int]], tuple | None]:
    """Fused Kahn sweep for narrow replays (chain-like pipeline DAGs)."""
    n = len(tasks)
    out: list[list[tuple[int, float]] | None] = [None] * n
    chain_next = [-1] * n
    indeg = [0] * n
    ready = [0.0] * n
    ends = [0.0] * n
    queue_indices: dict[str, list[int]] = {}
    try:
        for i, task in enumerate(tasks):
            deps = task.deps
            if deps:
                indeg[i] = len(deps)
                for dep, delay in deps:
                    j = index[dep]
                    edges = out[j]
                    if edges is None:
                        out[j] = [(i, delay)]
                    else:
                        edges.append((i, delay))
            queue = queue_indices.get(task.resource)
            if queue is None:
                queue_indices[task.resource] = [i]
            else:
                chain_next[queue[-1]] = i
                indeg[i] += 1
                queue.append(i)
    except KeyError:
        _validate(tasks)  # raises the unknown-dependency error
        raise

    stack = [i for i in range(n) if not indeg[i]]
    pop = stack.pop
    push = stack.append
    resolved = 0
    if profile_of is None:
        while stack:
            u = pop()
            resolved += 1
            end = ready[u] + durations_list[u]
            ends[u] = end
            edges = out[u]
            if edges is not None:
                for v, delay in edges:
                    t = end + delay
                    if t > ready[v]:
                        ready[v] = t
                    d = indeg[v] - 1
                    indeg[v] = d
                    if not d:
                        push(v)
            v = chain_next[u]
            if v >= 0:
                if end > ready[v]:
                    ready[v] = end
                d = indeg[v] - 1
                indeg[v] = d
                if not d:
                    push(v)
    else:
        while stack:
            u = pop()
            resolved += 1
            start = ready[u]
            profile = profile_of[u]
            end = (
                start + durations_list[u]
                if profile is None
                else profile.finish_time(start, durations_list[u])
            )
            ends[u] = end
            edges = out[u]
            if edges is not None:
                for v, delay in edges:
                    t = end + delay
                    if t > ready[v]:
                        ready[v] = t
                    d = indeg[v] - 1
                    indeg[v] = d
                    if not d:
                        push(v)
            v = chain_next[u]
            if v >= 0:
                if end > ready[v]:
                    ready[v] = end
                d = indeg[v] - 1
                indeg[v] = d
                if not d:
                    push(v)

    if resolved < n:
        _raise_stuck(names, queue_indices, indeg)
    return ready, ends, queue_indices, None


def _sweep_vector(
    tasks: list[ReplayTask],
    names: list[str],
    index: dict[str, int],
    durations_list: list[float],
    profile_of: list[SpeedProfile | None] | None,
) -> tuple[list[float], list[float], dict[str, list[int]], tuple | None]:
    """Vectorized frontier sweep for wide replays (many serial resources)."""
    n = len(tasks)
    durations = np.asarray(durations_list, dtype=np.float64)

    # Lower the dependency edges plus each queue's serial chain edges; an
    # unknown dependency surfaces as a KeyError, which _validate turns into
    # the same error message the reference path reports.  The chain edges
    # ride in as list slices (queue[:-1] -> queue[1:], zero delay).
    queue_indices: dict[str, list[int]] = {}
    for i, task in enumerate(tasks):
        queue = queue_indices.get(task.resource)
        if queue is None:
            queue_indices[task.resource] = [i]
        else:
            queue.append(i)
    try:
        src_list = [index[dep] for task in tasks for dep, _ in task.deps]
    except KeyError:
        _validate(tasks)  # raises the unknown-dependency error
        raise
    dst_list = [i for i, task in enumerate(tasks) for _ in task.deps]
    delay_list = [delay for task in tasks for _, delay in task.deps]
    dep_edges = len(src_list)
    for queue in queue_indices.values():
        src_list.extend(queue[:-1])
        dst_list.extend(queue[1:])

    src = np.asarray(src_list, dtype=np.intp)
    dst = np.asarray(dst_list, dtype=np.intp)
    delays = np.zeros(len(src_list), dtype=np.float64)
    delays[:dep_edges] = delay_list

    # CSR grouping of the edges by source task.
    order = np.argsort(src, kind="stable")
    src_sorted = src[order]
    dst_sorted = dst[order]
    delay_sorted = delays[order]
    out_start = np.zeros(n + 1, dtype=np.intp)
    if src.size:
        np.cumsum(np.bincount(src, minlength=n), out=out_start[1:])
    out_lo = out_start[:-1]
    out_hi = out_start[1:]

    indegree = np.bincount(dst, minlength=n) if dst.size else np.zeros(n, dtype=np.intp)
    ready = np.zeros(n, dtype=np.float64)
    ends = np.zeros(n, dtype=np.float64)

    frontier = np.flatnonzero(indegree == 0)
    resolved = 0
    while frontier.size:
        resolved += frontier.size
        starts = ready[frontier]
        finish = starts + durations[frontier]
        if profile_of is not None:
            for position, node in enumerate(frontier):
                profile = profile_of[node]
                if profile is not None:
                    finish[position] = profile.finish_time(
                        float(starts[position]), float(durations[node])
                    )
        ends[frontier] = finish

        # Gather the frontier's out-edges from the CSR ranges in one shot.
        begins = out_lo[frontier]
        widths = out_hi[frontier] - begins
        total = int(widths.sum())
        if total == 0:
            break
        offsets = np.repeat(np.cumsum(widths) - widths, widths)
        edge_ids = np.repeat(begins, widths) + (np.arange(total, dtype=np.intp) - offsets)
        targets = dst_sorted[edge_ids]
        np.maximum.at(ready, targets, ends[src_sorted[edge_ids]] + delay_sorted[edge_ids])
        np.subtract.at(indegree, targets, 1)
        frontier = np.unique(targets[indegree[targets] == 0])

    if resolved < n:
        # Every resolvable task enters exactly one frontier, so the stuck
        # ones are exactly those whose indegree never reached zero.
        _raise_stuck(names, queue_indices, indegree)
    return ready.tolist(), ends.tolist(), queue_indices, (ready, ends, durations)


def _raise_stuck(
    names: list[str],
    queue_indices: dict[str, list[int]],
    indegree,
) -> None:
    stuck = []
    for queue in queue_indices.values():
        for i in queue:
            if indegree[i] > 0:
                stuck.append(names[i])
                break
    raise _stuck_error(stuck)
