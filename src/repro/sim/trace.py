"""Timeline traces: spans on named streams, with overlap queries.

A trace is the simulated analogue of an Nsight timeline: every kernel
execution becomes a :class:`Span` on a stream.  The analysis helpers compute
the quantities discussed in the paper -- head latency, overlapped time, tail
latency -- and an ASCII rendering makes it easy to eyeball a plan from a
terminal or a test failure message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.kernels import KernelCategory


@dataclass(frozen=True)
class Span:
    """One kernel execution on a stream."""

    stream: str
    name: str
    start: float
    end: float
    category: KernelCategory = KernelCategory.OTHER

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span {self.name!r} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Span") -> float:
        """Overlapped duration with another span."""
        return max(0.0, min(self.end, other.end) - max(self.start, other.start))


@dataclass
class Trace:
    """An ordered collection of spans."""

    spans: list[Span] = field(default_factory=list)

    def add(self, span: Span) -> Span:
        self.spans.append(span)
        return span

    def record(
        self,
        stream: str,
        name: str,
        start: float,
        end: float,
        category: KernelCategory = KernelCategory.OTHER,
    ) -> Span:
        return self.add(Span(stream=stream, name=name, start=start, end=end, category=category))

    # -- queries ---------------------------------------------------------------

    def streams(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.stream, None)
        return list(seen)

    def spans_on(self, stream: str) -> list[Span]:
        return [s for s in self.spans if s.stream == stream]

    def by_category(self, category: KernelCategory) -> list[Span]:
        return [s for s in self.spans if s.category == category]

    def makespan(self) -> float:
        """End time of the last span (start of time is 0)."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans)

    def start_time(self) -> float:
        if not self.spans:
            return 0.0
        return min(s.start for s in self.spans)

    def busy_time(self, stream: str) -> float:
        """Total busy time of a stream (spans on one stream never overlap)."""
        return sum(s.duration for s in self.spans_on(stream))

    def overlapped_time(self, stream_a: str, stream_b: str) -> float:
        """Total wall-clock time during which both streams are busy."""
        total = 0.0
        for a in self.spans_on(stream_a):
            for b in self.spans_on(stream_b):
                total += a.overlaps(b)
        return total

    def category_time(self, category: KernelCategory) -> float:
        return sum(s.duration for s in self.by_category(category))

    def head_tail_overlap(self, compute_stream: str, comm_stream: str) -> tuple[float, float, float]:
        """Split the makespan into (head, overlapped, tail) as in Fig. 8.

        Head is the time before the first communication span starts; tail is
        the time after the last compute span ends; overlapped is the busy-busy
        intersection of the two streams.
        """
        comm = self.spans_on(comm_stream)
        compute = self.spans_on(compute_stream)
        if not comm or not compute:
            return self.makespan(), 0.0, 0.0
        head = min(s.start for s in comm)
        tail = max(0.0, self.makespan() - max(s.end for s in compute))
        return head, self.overlapped_time(compute_stream, comm_stream), tail

    # -- rendering --------------------------------------------------------------

    def render_ascii(self, width: int = 80) -> str:
        """Render the trace as one text row per stream."""
        makespan = self.makespan()
        if makespan <= 0 or not self.spans:
            return "(empty trace)"
        lines = []
        for stream in self.streams():
            row = [" "] * width
            for span in self.spans_on(stream):
                lo = int(span.start / makespan * (width - 1))
                hi = max(lo + 1, int(span.end / makespan * (width - 1)) + 1)
                mark = span.name[:1].upper() or "#"
                for i in range(lo, min(hi, width)):
                    row[i] = mark
            lines.append(f"{stream:>12} |{''.join(row)}|")
        lines.append(f"{'':>12} 0{'':<{max(0, width - 12)}}{makespan * 1e3:.3f} ms")
        return "\n".join(lines)

    def validate_stream_order(self) -> None:
        """Raise if spans on any single stream overlap each other."""
        for stream in self.streams():
            spans = sorted(self.spans_on(stream), key=lambda s: s.start)
            for earlier, later in zip(spans, spans[1:]):
                if later.start < earlier.end - 1e-12:
                    raise ValueError(
                        f"stream {stream!r}: span {later.name!r} starts before "
                        f"{earlier.name!r} finishes"
                    )
