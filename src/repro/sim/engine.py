"""A minimal discrete-event simulation engine.

Events are ``(time, callback)`` pairs ordered by time (FIFO among equal
times).  Callbacks may schedule further events.  The engine is deliberately
tiny -- the overlap timeline only needs ordered execution and a clock -- but it
is written as a general component so other executors (e.g. the event-driven
overlap executor used for cross-checking the analytic timeline) can build on
it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    executed: bool = field(compare=False, default=False)


class EventEngine:
    """Priority-queue driven event loop with a simulated clock."""

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._pending = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Maintained as a counter updated on schedule/cancel/execute, so the
        query is O(1) instead of scanning the heap.
        """
        return self._pending

    def schedule(self, time: float, callback: Callable[..., Any], *args: Any) -> _ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule event at {time} before now ({self._now})")
        event = _ScheduledEvent(time=time, sequence=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        self._pending += 1
        return event

    def schedule_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> _ScheduledEvent:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, callback, *args)

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (it will be skipped).

        Cancelling an already-cancelled or already-executed event is a no-op.
        """
        if event.cancelled or event.executed:
            return
        event.cancelled = True
        self._pending -= 1

    def next_event_time(self) -> float | None:
        """Time of the next live event, or None when the queue is drained.

        Cancelled heads are popped on the way (they are dead weight anyway),
        so the query is amortized O(1).
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def advance_to(self, time: float) -> None:
        """Manually advance the clock to ``time`` (monotonic).

        Fast paths that execute work inline between events use this to keep
        the simulated clock honest without paying a schedule/pop round trip
        per step.  Rewinding is rejected.
        """
        if time < self._now:
            raise ValueError(f"cannot advance the clock to {time} before now ({self._now})")
        self._now = time

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run events until the queue drains (or a limit is reached).

        With ``until=T`` the clock always lands on ``min(T, next-event
        time)`` -- whether events executed, none were due, or the loop
        stopped on an event scheduled past ``T`` (``max_events`` exhaustion
        leaves the clock at the last executed event instead: the caller
        limited execution, not time).  Returns the final simulation time.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return self._now
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            event.executed = True
            self._pending -= 1
            self._now = max(self._now, event.time)
            event.callback(*event.args)
            self._processed += 1
            executed += 1
        if until is not None:
            upcoming = self.next_event_time()
            self._now = max(self._now, until if upcoming is None else min(until, upcoming))
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        for event in self._queue:
            # Mark dropped events so a cancel() through a stale handle cannot
            # decrement the pending counter of the post-reset engine.
            event.cancelled = True
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
        self._pending = 0
