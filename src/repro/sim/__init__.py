"""Discrete-event / timeline simulation substrate.

The overlap executor needs to know *when things happen* on a device with two
CUDA streams: the computation stream running the GEMM kernel, and the
communication stream running signal-wait kernels followed by NCCL kernels.
This package provides:

* :mod:`repro.sim.engine` -- a small discrete-event engine (heap of timed
  callbacks) used by the event-driven executor,
* :mod:`repro.sim.trace` -- timeline traces made of spans, with overlap /
  busy-time queries and an ASCII rendering for quick inspection,
* :mod:`repro.sim.timeline` -- a stream-ordered timeline builder that models
  in-order execution per stream plus cross-stream dependencies (signals),
* :mod:`repro.sim.replay` -- dependency-aware replay of tasks on serial
  resources (FIFO per resource, cross-resource dependency edges with
  transfer delays), the substrate of the pipeline-stage timelines.
"""

from repro.sim.engine import EventEngine
from repro.sim.replay import ReplayResult, ReplayTask, replay_tasks
from repro.sim.trace import Span, Trace
from repro.sim.timeline import StreamTimeline

__all__ = [
    "EventEngine",
    "Span",
    "Trace",
    "StreamTimeline",
    "ReplayResult",
    "ReplayTask",
    "replay_tasks",
]
