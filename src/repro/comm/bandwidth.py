"""Size-dependent effective-bandwidth curves (paper Fig. 8).

Collectives only reach the interconnect's peak bandwidth for large messages;
below a topology-dependent threshold the per-call setup cost dominates and the
effective bandwidth collapses.  FlashOverlap's tuner relies on this curve in
two ways: the *simulator* uses the analytic curve directly, while the
*predictive search* uses a curve sampled offline at a handful of message sizes
and interpolated (Alg. 1, line 5 / line 14), exactly as the real system
samples NCCL.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.topology import Topology


@dataclass(frozen=True)
class AnalyticBandwidthCurve:
    """Closed-form effective-bandwidth model.

    ``bandwidth(s) = peak * s / (s + s_half)`` where ``s_half`` is the
    half-saturation message size.  The corresponding transfer latency,
    ``s / bandwidth(s) = (s + s_half) / peak``, is affine in the message size,
    which matches the usual alpha-beta model of collectives while exposing the
    sharp bandwidth degradation below the knee that Fig. 8 shows.
    """

    peak_bandwidth_bytes: float
    half_saturation_bytes: float

    @classmethod
    def for_topology(cls, topology: Topology) -> "AnalyticBandwidthCurve":
        return cls(
            peak_bandwidth_bytes=topology.peak_bus_bandwidth_bytes,
            half_saturation_bytes=topology.half_saturation_bytes,
        )

    def bandwidth(self, nbytes: float | np.ndarray) -> float | np.ndarray:
        """Effective bandwidth (bytes/s) for a message of ``nbytes``.

        Accepts scalars or arrays; array inputs are evaluated element-wise in
        one vectorized pass (the offline profiling loop samples the whole size
        grid with a single call).
        """
        arr = np.asarray(nbytes, dtype=np.float64)
        if arr.ndim == 0:
            if nbytes <= 0:
                return 0.0
            return self.peak_bandwidth_bytes * nbytes / (nbytes + self.half_saturation_bytes)
        with np.errstate(divide="ignore", invalid="ignore"):
            bw = self.peak_bandwidth_bytes * arr / (arr + self.half_saturation_bytes)
        return np.where(arr <= 0, 0.0, bw)

    def transfer_time(self, nbytes: float | np.ndarray) -> float | np.ndarray:
        """Pure transfer time of ``nbytes`` (seconds), excluding base latency.

        Scalar in, scalar out; array in, array out (element-wise identical to
        the scalar path).
        """
        arr = np.asarray(nbytes, dtype=np.float64)
        if arr.ndim == 0:
            if nbytes <= 0:
                return 0.0
            return nbytes / self.bandwidth(nbytes)
        bw = self.peak_bandwidth_bytes * arr / (arr + self.half_saturation_bytes)
        with np.errstate(divide="ignore", invalid="ignore"):
            time = arr / bw
        return np.where(arr <= 0, 0.0, time)

    def utilization(self, nbytes: float) -> float:
        """Fraction of peak bandwidth achieved at this message size."""
        if nbytes <= 0:
            return 0.0
        return self.bandwidth(nbytes) / self.peak_bandwidth_bytes

    def knee_bytes(self, target_utilization: float = 0.8) -> float:
        """Message size required to reach ``target_utilization`` of peak."""
        if not 0 < target_utilization < 1:
            raise ValueError("target_utilization must be in (0, 1)")
        return self.half_saturation_bytes * target_utilization / (1 - target_utilization)


@dataclass(frozen=True)
class SampledBandwidthCurve:
    """Bandwidth curve sampled at discrete message sizes (offline profiling).

    The predictive tuner never queries the analytic model directly -- it
    interpolates between sampled points, like the real system interpolates
    between profiled NCCL measurements.  Interpolation is linear in
    *transfer time* versus size, which is exact for the affine latency model
    between sample points.
    """

    sizes_bytes: np.ndarray
    bandwidths_bytes: np.ndarray

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes_bytes, dtype=np.float64)
        bws = np.asarray(self.bandwidths_bytes, dtype=np.float64)
        if sizes.ndim != 1 or bws.ndim != 1 or sizes.size != bws.size:
            raise ValueError("sizes and bandwidths must be 1-D arrays of equal length")
        if sizes.size < 2:
            raise ValueError("need at least two sample points")
        if np.any(np.diff(sizes) <= 0):
            raise ValueError("sample sizes must be strictly increasing")
        if np.any(bws <= 0):
            raise ValueError("sampled bandwidths must be positive")
        object.__setattr__(self, "sizes_bytes", sizes)
        object.__setattr__(self, "bandwidths_bytes", bws)

    @property
    def num_samples(self) -> int:
        return int(self.sizes_bytes.size)

    def bandwidth(self, nbytes: float | np.ndarray) -> float | np.ndarray:
        """Interpolated effective bandwidth at ``nbytes`` (scalar or array)."""
        arr = np.asarray(nbytes, dtype=np.float64)
        if arr.ndim == 0:
            if nbytes <= 0:
                return 0.0
            return nbytes / self.transfer_time(nbytes)
        time = self.transfer_time(arr)
        with np.errstate(divide="ignore", invalid="ignore"):
            bw = arr / time
        return np.where(arr <= 0, 0.0, bw)

    def transfer_time(self, nbytes: float | np.ndarray) -> float | np.ndarray:
        """Interpolated transfer time at ``nbytes`` (seconds).

        Accepts scalars or arrays.  The array path evaluates every message
        size in one vectorized pass and is element-wise identical to the
        scalar path (the batch latency predictor relies on this).
        """
        arr = np.asarray(nbytes, dtype=np.float64)
        times = self.sizes_bytes / self.bandwidths_bytes
        if arr.ndim == 0:
            if nbytes <= 0:
                return 0.0
            if nbytes <= self.sizes_bytes[0]:
                # Below the smallest sample: scale the first point's bandwidth.
                return nbytes / self.bandwidths_bytes[0] + (times[0] - self.sizes_bytes[0] / self.bandwidths_bytes[0])
            if nbytes >= self.sizes_bytes[-1]:
                return nbytes / self.bandwidths_bytes[-1]
            return float(np.interp(nbytes, self.sizes_bytes, times))
        out = np.interp(arr, self.sizes_bytes, times)
        below = arr <= self.sizes_bytes[0]
        if below.any():
            low = arr / self.bandwidths_bytes[0] + (times[0] - self.sizes_bytes[0] / self.bandwidths_bytes[0])
            out = np.where(below, low, out)
        above = arr >= self.sizes_bytes[-1]
        if above.any():
            out = np.where(above, arr / self.bandwidths_bytes[-1], out)
        return np.where(arr <= 0, 0.0, out)


def default_sample_sizes(min_bytes: int = 64 * 1024, max_bytes: int = 1 << 30,
                         points_per_decade: int = 4) -> np.ndarray:
    """Log-spaced message sizes used for offline bandwidth profiling."""
    if min_bytes <= 0 or max_bytes <= min_bytes:
        raise ValueError("need 0 < min_bytes < max_bytes")
    decades = np.log10(max_bytes / min_bytes)
    count = max(2, int(round(decades * points_per_decade)) + 1)
    return np.unique(np.geomspace(min_bytes, max_bytes, count).astype(np.int64)).astype(np.float64)


def sample_bandwidth(
    curve: AnalyticBandwidthCurve,
    sizes_bytes: np.ndarray | None = None,
    noise: float = 0.0,
    seed: int = 0,
) -> SampledBandwidthCurve:
    """Profile an analytic curve at discrete sizes (optionally with noise).

    ``noise`` models measurement fluctuation of the offline profiling stage as
    a relative multiplicative error, which is one of the sources of the
    predictor error studied in Fig. 15.
    """
    sizes = default_sample_sizes() if sizes_bytes is None else np.asarray(sizes_bytes, dtype=np.float64)
    bws = np.asarray(curve.bandwidth(sizes), dtype=np.float64)
    if noise > 0:
        rng = np.random.default_rng(seed)
        bws = bws * (1.0 + rng.uniform(-noise, noise, size=bws.shape))
    return SampledBandwidthCurve(sizes_bytes=sizes, bandwidths_bytes=bws)
