"""Functional NumPy collectives over simulated per-GPU buffers.

A "GPU" here is simply one NumPy array in a list; rank ``g`` owns
``buffers[g]``.  These functions define the *data semantics* that the overlap
pipeline must preserve: the FlashOverlap path (reorder -> collective ->
reorder back) is validated against them in the correctness tests, mirroring
artifact experiment E1.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def _check_same_shape(buffers: Sequence[np.ndarray]) -> None:
    if not buffers:
        raise ValueError("need at least one buffer")
    shape = buffers[0].shape
    for rank, buf in enumerate(buffers):
        if buf.shape != shape:
            raise ValueError(
                f"rank {rank} buffer shape {buf.shape} differs from rank 0 shape {shape}"
            )


def all_reduce(buffers: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Sum-AllReduce: every rank receives the element-wise sum of all buffers."""
    _check_same_shape(buffers)
    total = np.sum(np.stack([np.asarray(b, dtype=np.float64) for b in buffers]), axis=0)
    return [total.copy() for _ in buffers]


def reduce_scatter(buffers: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Sum-ReduceScatter along the leading axis.

    The reduced tensor is split into ``n`` equal row blocks; rank ``g``
    receives block ``g``.  The leading dimension must be divisible by the
    number of ranks (as it is for the GEMM outputs used in tensor parallelism).
    """
    _check_same_shape(buffers)
    n = len(buffers)
    rows = buffers[0].shape[0]
    if rows % n != 0:
        raise ValueError(f"leading dim {rows} not divisible by {n} ranks")
    total = np.sum(np.stack([np.asarray(b, dtype=np.float64) for b in buffers]), axis=0)
    chunk = rows // n
    return [total[g * chunk : (g + 1) * chunk].copy() for g in range(n)]


def reduce_scatter_flat(buffers: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Sum-ReduceScatter over the flattened buffer (NCCL's native semantics).

    Rank ``g`` receives elements ``[g*S/n, (g+1)*S/n)`` of the element-wise
    sum, where ``S`` is the flattened size.
    """
    _check_same_shape(buffers)
    n = len(buffers)
    flat = [np.asarray(b, dtype=np.float64).ravel() for b in buffers]
    size = flat[0].size
    if size % n != 0:
        raise ValueError(f"buffer size {size} not divisible by {n} ranks")
    total = np.sum(np.stack(flat), axis=0)
    chunk = size // n
    return [total[g * chunk : (g + 1) * chunk].copy() for g in range(n)]


def all_gather(chunks: Sequence[np.ndarray]) -> list[np.ndarray]:
    """AllGather along the leading axis: every rank receives the concatenation."""
    if not chunks:
        raise ValueError("need at least one chunk")
    gathered = np.concatenate([np.asarray(c) for c in chunks], axis=0)
    return [gathered.copy() for _ in chunks]


def all_to_all(send: Sequence[Sequence[np.ndarray]]) -> list[list[np.ndarray]]:
    """All-to-All exchange of per-destination buffers.

    ``send[src][dst]`` is the buffer rank ``src`` sends to rank ``dst``; the
    result ``recv[dst][src]`` is the buffer rank ``dst`` received from rank
    ``src``.  Buffers may have different sizes (uneven token routing).
    """
    n = len(send)
    for src, row in enumerate(send):
        if len(row) != n:
            raise ValueError(f"rank {src} provides {len(row)} buffers, expected {n}")
    return [[np.asarray(send[src][dst]).copy() for src in range(n)] for dst in range(n)]


def all_to_all_rows(
    buffers: Sequence[np.ndarray], destinations: Sequence[np.ndarray]
) -> list[np.ndarray]:
    """Row-level All-to-All used by MoE layers.

    Every rank ``src`` owns a matrix of tokens (rows) and a destination rank
    per token.  Rank ``dst`` receives, concatenated in order of source rank and
    then source row index, all tokens routed to it.  This is the reference
    semantics the FlashOverlap sub-token reordering must reproduce.
    """
    if len(buffers) != len(destinations):
        raise ValueError("buffers and destinations must have the same length")
    n = len(buffers)
    received: list[list[np.ndarray]] = [[] for _ in range(n)]
    for src in range(n):
        tokens = np.asarray(buffers[src])
        dests = np.asarray(destinations[src])
        if dests.shape[0] != tokens.shape[0]:
            raise ValueError(
                f"rank {src}: {tokens.shape[0]} tokens but {dests.shape[0]} destinations"
            )
        if dests.size and (dests.min() < 0 or dests.max() >= n):
            raise ValueError(f"rank {src}: destination out of range 0..{n - 1}")
        for dst in range(n):
            selected = tokens[dests == dst]
            if selected.size:
                received[dst].append(selected)
            else:
                received[dst].append(tokens[:0])
    return [
        np.concatenate(parts, axis=0) if parts else np.empty((0,) + buffers[0].shape[1:])
        for parts in received
    ]


def broadcast(buffers: Sequence[np.ndarray], root: int = 0) -> list[np.ndarray]:
    """Broadcast from ``root`` to every rank."""
    if not 0 <= root < len(buffers):
        raise IndexError(f"root {root} out of range for {len(buffers)} ranks")
    src = np.asarray(buffers[root])
    return [src.copy() for _ in buffers]
