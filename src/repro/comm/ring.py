"""Step-by-step ring collectives.

NCCL's default algorithm for large messages is the bandwidth-optimal ring
(Patarasuk & Yuan): an AllReduce of ``S`` elements on ``n`` ranks moves
``2 * (n - 1) / n * S`` elements per rank, a ReduceScatter or AllGather moves
``(n - 1) / n * S``.  This module implements the ring chunk schedule
explicitly so that (a) the functional results can be checked against the
direct collectives and (b) the per-rank traffic used by the latency model is
derived from the algorithm rather than hard-coded.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RingTrafficReport:
    """Per-rank traffic of one ring collective execution."""

    n_ranks: int
    steps: int
    elements_sent_per_rank: float

    def volume_factor(self, payload_elements: float) -> float:
        """Traffic per rank relative to the per-rank payload size."""
        if payload_elements <= 0:
            return 0.0
        return self.elements_sent_per_rank / payload_elements

    def combine(self, other: "RingTrafficReport") -> "RingTrafficReport":
        """Accumulate the traffic of a second phase (e.g. RS followed by AG)."""
        if other.n_ranks != self.n_ranks:
            raise ValueError("cannot combine reports with different rank counts")
        return RingTrafficReport(
            n_ranks=self.n_ranks,
            steps=self.steps + other.steps,
            elements_sent_per_rank=self.elements_sent_per_rank + other.elements_sent_per_rank,
        )


def _as_flat_copies(buffers: Sequence[np.ndarray]) -> list[np.ndarray]:
    flats = [np.asarray(b, dtype=np.float64).ravel().copy() for b in buffers]
    size = flats[0].size
    for rank, flat in enumerate(flats):
        if flat.size != size:
            raise ValueError(f"rank {rank} buffer size {flat.size} differs from {size}")
    return flats


def ring_reduce_scatter(buffers: Sequence[np.ndarray]) -> tuple[list[np.ndarray], RingTrafficReport]:
    """Ring ReduceScatter over flattened buffers.

    Returns per-rank reduced chunks -- rank ``g`` ends up owning chunk ``g`` of
    the element-wise sum, matching NCCL's semantics -- plus a traffic report.
    """
    n = len(buffers)
    if n < 1:
        raise ValueError("need at least one rank")
    flats = _as_flat_copies(buffers)
    chunks = [list(np.array_split(f, n)) for f in flats]

    sent_elements = 0
    # Step t: rank r sends chunk (r - t - 1) mod n to rank (r + 1) mod n, which
    # accumulates it.  After n - 1 steps rank r holds the fully reduced chunk r.
    for step in range(n - 1):
        transfers = []
        for rank in range(n):
            chunk_id = (rank - step - 1) % n
            dst = (rank + 1) % n
            transfers.append((dst, chunk_id, chunks[rank][chunk_id]))
            sent_elements += chunks[rank][chunk_id].size
        for dst, chunk_id, data in transfers:
            chunks[dst][chunk_id] = chunks[dst][chunk_id] + data
    owned = [chunks[rank][rank].copy() for rank in range(n)]
    report = RingTrafficReport(
        n_ranks=n, steps=max(0, n - 1), elements_sent_per_rank=sent_elements / max(1, n)
    )
    return owned, report


def ring_all_gather(chunks: Sequence[np.ndarray]) -> tuple[list[np.ndarray], RingTrafficReport]:
    """Ring AllGather: every rank ends with the concatenation of all chunks."""
    n = len(chunks)
    if n < 1:
        raise ValueError("need at least one rank")
    parts = [np.asarray(c, dtype=np.float64).ravel().copy() for c in chunks]
    have: list[dict[int, np.ndarray]] = [{rank: parts[rank].copy()} for rank in range(n)]

    sent_elements = 0
    # Step t: rank r forwards chunk (r - t) mod n, which it received (or owned)
    # in the previous step, to rank (r + 1) mod n.
    for step in range(n - 1):
        transfers = []
        for rank in range(n):
            chunk_id = (rank - step) % n
            dst = (rank + 1) % n
            transfers.append((dst, chunk_id, have[rank][chunk_id]))
            sent_elements += have[rank][chunk_id].size
        for dst, chunk_id, data in transfers:
            have[dst][chunk_id] = data.copy()
    gathered = [np.concatenate([have[rank][i] for i in range(n)]) for rank in range(n)]
    report = RingTrafficReport(
        n_ranks=n, steps=max(0, n - 1), elements_sent_per_rank=sent_elements / max(1, n)
    )
    return gathered, report


def ring_all_reduce(buffers: Sequence[np.ndarray]) -> tuple[list[np.ndarray], RingTrafficReport]:
    """Ring AllReduce = ring ReduceScatter followed by ring AllGather."""
    shape = np.asarray(buffers[0]).shape
    owned, rs_report = ring_reduce_scatter(buffers)
    gathered, ag_report = ring_all_gather(owned)
    results = [g.reshape(shape) for g in gathered]
    return results, rs_report.combine(ag_report)
