"""Communication substrate: topologies, bandwidth curves and collectives.

The paper calls NCCL through its public API and treats communication as a
black box characterised by (1) the data semantics of each collective and
(2) its latency as a function of message size on a given interconnect.  This
package provides both halves:

* **functional collectives** (:mod:`repro.comm.collectives`,
  :mod:`repro.comm.ring`) operate on lists of NumPy arrays -- one per
  simulated GPU -- and are used for the numerical-correctness path;
* **latency models** (:mod:`repro.comm.topology`,
  :mod:`repro.comm.bandwidth`, :mod:`repro.comm.primitives`) reproduce the
  size-dependent effective-bandwidth curve of Fig. 8 for PCIe / NVLink / HCCS
  interconnects and are used by the simulator and the predictive tuner.
"""

from repro.comm.topology import (
    InterconnectKind,
    Topology,
    a800_nvlink,
    ascend_hccs,
    known_topologies,
    multinode_a800,
    rtx4090_pcie,
)
from repro.comm.bandwidth import AnalyticBandwidthCurve, SampledBandwidthCurve, sample_bandwidth
from repro.comm.primitives import CollectiveKind, CollectiveModel
from repro.comm.collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    reduce_scatter,
    reduce_scatter_flat,
)
from repro.comm.ring import ring_all_reduce, ring_reduce_scatter, ring_all_gather

__all__ = [
    "InterconnectKind",
    "Topology",
    "rtx4090_pcie",
    "a800_nvlink",
    "ascend_hccs",
    "multinode_a800",
    "known_topologies",
    "AnalyticBandwidthCurve",
    "SampledBandwidthCurve",
    "sample_bandwidth",
    "CollectiveKind",
    "CollectiveModel",
    "all_reduce",
    "reduce_scatter",
    "reduce_scatter_flat",
    "all_gather",
    "all_to_all",
    "ring_all_reduce",
    "ring_reduce_scatter",
    "ring_all_gather",
]
