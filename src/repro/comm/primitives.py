"""Collective primitives: latency models and NCCL-style metadata.

FlashOverlap is *communication agnostic*: it only ever calls the collective
through a library API and needs, per primitive, the transfer volume per rank,
the per-call setup latency and the effective bandwidth at a given message
size.  :class:`CollectiveModel` packages exactly that and is shared by the
non-overlap baseline, the decomposition baselines, the overlap simulator and
the predictive tuner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.comm.bandwidth import AnalyticBandwidthCurve, SampledBandwidthCurve
from repro.comm.topology import Topology


class CollectiveKind(enum.Enum):
    """Collective communication primitives used in the paper."""

    ALL_REDUCE = "allreduce"
    REDUCE_SCATTER = "reducescatter"
    ALL_GATHER = "allgather"
    ALL_TO_ALL = "alltoall"

    @classmethod
    def from_name(cls, name: str) -> "CollectiveKind":
        key = name.strip().lower().replace("_", "").replace("-", "")
        aliases = {
            "ar": cls.ALL_REDUCE,
            "allreduce": cls.ALL_REDUCE,
            "rs": cls.REDUCE_SCATTER,
            "reducescatter": cls.REDUCE_SCATTER,
            "ag": cls.ALL_GATHER,
            "allgather": cls.ALL_GATHER,
            "a2a": cls.ALL_TO_ALL,
            "alltoall": cls.ALL_TO_ALL,
        }
        if key not in aliases:
            raise KeyError(f"unknown collective {name!r}")
        return aliases[key]

    @property
    def short_name(self) -> str:
        return {"allreduce": "AR", "reducescatter": "RS", "allgather": "AG", "alltoall": "A2A"}[
            self.value
        ]


def ring_volume_factor(kind: CollectiveKind, n_gpus: int) -> float:
    """Bytes moved per rank relative to the per-rank payload, ring algorithm."""
    if n_gpus < 2:
        return 0.0
    scale = (n_gpus - 1) / n_gpus
    if kind == CollectiveKind.ALL_REDUCE:
        return 2.0 * scale
    if kind in (CollectiveKind.REDUCE_SCATTER, CollectiveKind.ALL_GATHER):
        return scale
    if kind == CollectiveKind.ALL_TO_ALL:
        return scale
    raise ValueError(f"unhandled collective {kind}")  # pragma: no cover


@dataclass(frozen=True)
class CollectiveModel:
    """Latency model of one collective on one topology.

    ``latency(nbytes)`` models a single library call moving ``nbytes`` of
    payload per rank: a fixed setup term (kernel launch + protocol), plus the
    ring transfer time of ``volume_factor * nbytes`` at the size-dependent
    effective bandwidth.  A :class:`SampledBandwidthCurve` can be substituted
    for the analytic curve to reproduce the tuner's offline-profiling view.
    """

    kind: CollectiveKind
    topology: Topology
    curve: AnalyticBandwidthCurve | SampledBandwidthCurve = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.curve is None:
            object.__setattr__(self, "curve", AnalyticBandwidthCurve.for_topology(self.topology))

    # -- basic quantities ----------------------------------------------------

    @property
    def n_gpus(self) -> int:
        return self.topology.n_gpus

    @property
    def sm_cost(self) -> int:
        """SMs occupied by the communication kernels while they run."""
        return self.topology.comm_sm_count

    def volume_factor(self) -> float:
        return ring_volume_factor(self.kind, self.n_gpus)

    def wire_bytes(self, payload_bytes: float) -> float:
        """Bytes actually moved per rank for a payload of ``payload_bytes``."""
        return self.volume_factor() * payload_bytes

    # -- latency ---------------------------------------------------------------

    def setup_latency(self) -> float:
        """Per-call fixed cost (seconds).

        All-to-All is built from point-to-point send/receive pairs and pays a
        setup cost per peer rather than per call.
        """
        base = self.topology.base_latency_s
        if self.kind == CollectiveKind.ALL_TO_ALL:
            return base * max(1, self.n_gpus - 1) * 0.5
        return base

    def latency(self, payload_bytes: float) -> float:
        """Latency of one collective call on ``payload_bytes`` per rank."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if payload_bytes == 0:
            return 0.0
        wire = self.wire_bytes(payload_bytes)
        if hasattr(self.curve, "transfer_time"):
            transfer = self.curve.transfer_time(wire)
        else:  # pragma: no cover - defensive
            transfer = wire / self.curve.bandwidth(wire)
        return self.setup_latency() + transfer

    def latency_array(self, payload_bytes) -> np.ndarray:
        """Vectorized :meth:`latency` over an array of per-rank payloads.

        Element-wise identical to the scalar path (same operation order), so
        the batch latency predictor can rank candidates bit-identically to the
        per-candidate reference.
        """
        payloads = np.asarray(payload_bytes, dtype=np.float64)
        if np.any(payloads < 0):
            raise ValueError("payload_bytes must be non-negative")
        wire = self.volume_factor() * payloads
        transfer = self.curve.transfer_time(wire)
        return np.where(payloads == 0.0, 0.0, self.setup_latency() + transfer)

    def effective_bandwidth(self, payload_bytes: float) -> float:
        """Observed algorithm bandwidth: payload divided by call latency."""
        lat = self.latency(payload_bytes)
        if lat <= 0:
            return 0.0
        return payload_bytes / lat

    def bus_bandwidth(self, payload_bytes: float) -> float:
        """Observed bus bandwidth (NCCL convention): wire bytes over latency."""
        lat = self.latency(payload_bytes)
        if lat <= 0:
            return 0.0
        return self.wire_bytes(payload_bytes) / lat

    def segmented_latency(self, payload_bytes: float, segments: int) -> float:
        """Total latency when the payload is split into equal segments,
        each communicated with its own call (communication fragmentation)."""
        if segments <= 0:
            raise ValueError("segments must be positive")
        return segments * self.latency(payload_bytes / segments)

    def with_curve(self, curve: AnalyticBandwidthCurve | SampledBandwidthCurve) -> "CollectiveModel":
        """Return a copy using a different bandwidth curve (e.g. a sampled one)."""
        return CollectiveModel(kind=self.kind, topology=self.topology, curve=curve)
