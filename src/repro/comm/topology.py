"""Interconnect topologies of the simulated multi-GPU servers.

Only the parameters that shape the Fig. 8 bandwidth curve and the SM
contention matter to the overlap model:

* the peak per-GPU link bandwidth (bus bandwidth of the collective),
* the per-call base latency (launch + protocol setup), which is what makes
  small messages so inefficient,
* the message size at which the effective bandwidth reaches half of its peak,
* the number of SMs the communication kernels occupy while running,
* whether GPU peer-to-peer access is available (required by the Async-TP and
  FLUX baselines).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InterconnectKind(enum.Enum):
    """Kind of inter-GPU link."""

    PCIE = "pcie"
    NVLINK = "nvlink"
    NVLINK_PAIRWISE = "nvlink-pairwise"
    HCCS = "hccs"
    INFINIBAND = "infiniband"


@dataclass(frozen=True)
class Topology:
    """One multi-GPU server configuration.

    ``peak_bus_bandwidth_gbps`` is the saturated *bus bandwidth* of a large
    collective (the quantity NCCL reports as busbw), per GPU.
    ``half_saturation_mb`` is the per-GPU message size (in MiB) at which the
    effective bandwidth is half of the peak; a fast interconnect needs larger
    messages to amortise its per-transfer protocol cost, so the NVLink knee
    sits at a larger message size than the PCIe knee.
    """

    name: str
    n_gpus: int
    kind: InterconnectKind
    peak_bus_bandwidth_gbps: float
    base_latency_us: float
    half_saturation_mb: float
    comm_sm_count: int
    supports_p2p: bool
    intra_node: bool = True
    #: GPU count at which the raw bandwidth/latency parameters are specified;
    #: :meth:`with_n_gpus` applies its scaling penalty relative to this count.
    #: Defaults to ``n_gpus`` at construction (a directly-built topology's
    #: numbers are taken at face value).
    base_n_gpus: int | None = None

    def __post_init__(self) -> None:
        if self.n_gpus < 2:
            raise ValueError("a topology needs at least 2 GPUs")
        if self.peak_bus_bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.base_latency_us < 0 or self.half_saturation_mb <= 0:
            raise ValueError("latency and saturation point must be positive")
        if self.comm_sm_count < 0:
            raise ValueError("comm_sm_count must be non-negative")
        if self.base_n_gpus is None:
            object.__setattr__(self, "base_n_gpus", self.n_gpus)
        elif self.base_n_gpus < 2:
            raise ValueError("base_n_gpus must be >= 2")

    @property
    def peak_bus_bandwidth_bytes(self) -> float:
        return self.peak_bus_bandwidth_gbps * 1e9

    @property
    def base_latency_s(self) -> float:
        return self.base_latency_us * 1e-6

    @property
    def half_saturation_bytes(self) -> float:
        return self.half_saturation_mb * 1024 * 1024

    def _gpu_count_scales(self, n_gpus: int) -> tuple[float, float]:
        """(bandwidth, latency) scale of ``n_gpus`` relative to ``base_n_gpus``.

        Only penalties, never bonuses: a GPU count at or below the base keeps
        the base parameters (scaling an InfiniBand cluster *down* must not
        make it faster than its NIC-derived model).
        """
        doublings = max(0.0, (n_gpus - self.base_n_gpus) / 2.0)
        bandwidth = 0.92**doublings if self.kind == InterconnectKind.PCIE else 0.97**doublings
        return bandwidth, 1.0 + 0.1 * doublings

    def with_n_gpus(self, n_gpus: int) -> "Topology":
        """Return the same server type scaled to a different GPU count.

        Going through more PCIe hops / NUMA nodes or sharing NVLink lanes
        reduces the per-GPU bus bandwidth slightly; the model applies a mild
        penalty per doubling beyond :attr:`base_n_gpus` (the count the raw
        parameters were specified at).  The scaling already baked into
        ``self`` is divided out first, so the method is idempotent and
        path-independent: ``t.with_n_gpus(k).with_n_gpus(k) ==
        t.with_n_gpus(k)`` (a preset at its default GPU count passes through
        unchanged).
        """
        if n_gpus < 2:
            raise ValueError("n_gpus must be >= 2")
        if n_gpus == self.n_gpus:
            return self
        current_bw, current_lat = self._gpu_count_scales(self.n_gpus)
        target_bw, target_lat = self._gpu_count_scales(n_gpus)
        return Topology(
            name=self.name,
            n_gpus=n_gpus,
            kind=self.kind,
            peak_bus_bandwidth_gbps=self.peak_bus_bandwidth_gbps / current_bw * target_bw,
            base_latency_us=self.base_latency_us / current_lat * target_lat,
            half_saturation_mb=self.half_saturation_mb,
            comm_sm_count=self.comm_sm_count,
            supports_p2p=self.supports_p2p,
            intra_node=self.intra_node,
            base_n_gpus=self.base_n_gpus,
        )

    def degraded(self, factor: float) -> "Topology":
        """The same server with its links running at ``factor`` of peak bandwidth.

        Models a degraded interconnect (flapping link, congested fabric): the
        whole Fig. 8 bandwidth curve scales down while the base latency and
        saturation knee stay put.  The name gains a ``@bw<factor>`` suffix so
        plan caches keyed on topology name keep faulted and nominal pricing
        separate.  ``factor == 1`` returns ``self`` unchanged.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("degradation factor must be in (0, 1]")
        if factor == 1.0:
            return self
        return Topology(
            name=f"{self.name}@bw{factor:g}",
            n_gpus=self.n_gpus,
            kind=self.kind,
            peak_bus_bandwidth_gbps=self.peak_bus_bandwidth_gbps * factor,
            base_latency_us=self.base_latency_us,
            half_saturation_mb=self.half_saturation_mb,
            comm_sm_count=self.comm_sm_count,
            supports_p2p=self.supports_p2p,
            intra_node=self.intra_node,
            base_n_gpus=self.base_n_gpus,
        )


# -- presets -----------------------------------------------------------------


def rtx4090_pcie(n_gpus: int = 4) -> Topology:
    """Consumer server: RTX 4090 GPUs over PCIe 4.0 across NUMA nodes.

    No peer-to-peer access (the paper notes FLUX / Async-TP cannot run here).
    The effective bus bandwidth of NCCL collectives over PCIe is ~ 12-20 GB/s.
    """
    base = Topology(
        name="rtx4090-pcie",
        n_gpus=2,
        kind=InterconnectKind.PCIE,
        peak_bus_bandwidth_gbps=18.0,
        base_latency_us=30.0,
        half_saturation_mb=1.2,
        comm_sm_count=4,
        supports_p2p=False,
    )
    return base.with_n_gpus(n_gpus)


def a800_nvlink(n_gpus: int = 4) -> Topology:
    """Data-center server: A800 GPUs with pairwise NVLink bridges."""
    base = Topology(
        name="a800-nvlink",
        n_gpus=2,
        kind=InterconnectKind.NVLINK_PAIRWISE,
        peak_bus_bandwidth_gbps=170.0,
        base_latency_us=12.0,
        half_saturation_mb=6.0,
        comm_sm_count=8,
        supports_p2p=True,
    )
    return base.with_n_gpus(n_gpus)


def ascend_hccs(n_gpus: int = 4) -> Topology:
    """HUAWEI Ascend 910B NPUs connected through HCCS."""
    base = Topology(
        name="ascend910b-hccs",
        n_gpus=2,
        kind=InterconnectKind.HCCS,
        peak_bus_bandwidth_gbps=90.0,
        base_latency_us=18.0,
        half_saturation_mb=4.0,
        comm_sm_count=2,
        supports_p2p=True,
    )
    return base.with_n_gpus(n_gpus)


def multinode_a800(n_nodes: int = 2, gpus_per_node: int = 8) -> Topology:
    """Multi-node A800 cluster: NVLink inside a node, InfiniBand across nodes.

    For collectives spanning nodes the inter-node fabric is the bottleneck, so
    the effective per-GPU bus bandwidth is the NIC bandwidth divided by the
    GPUs sharing it, with a noticeably higher base latency than any intra-node
    link.  This is the configuration the paper's reusability notes (A.6.2)
    point at when moving from multi-processing to a distributed backend.
    """
    if n_nodes < 2:
        raise ValueError("a multi-node topology needs at least 2 nodes")
    if gpus_per_node < 1:
        raise ValueError("gpus_per_node must be >= 1")
    nic_bandwidth_gbps = 50.0  # 400 Gb/s HDR InfiniBand per node
    return Topology(
        name=f"a800-{n_nodes}node-ib",
        n_gpus=n_nodes * gpus_per_node,
        kind=InterconnectKind.INFINIBAND,
        peak_bus_bandwidth_gbps=nic_bandwidth_gbps / max(1, gpus_per_node // 4),
        base_latency_us=45.0,
        half_saturation_mb=8.0,
        comm_sm_count=12,
        supports_p2p=False,
        intra_node=False,
    )


def tiny_pcie(n_gpus: int = 4) -> Topology:
    """Miniature PCIe box for correctness pipelines and tests.

    Deliberately slow and small so numeric verification problems produce few
    waves and tiny messages; the default topology of ``repro verify``.
    """
    base = Topology(
        name="tiny-pcie",
        n_gpus=2,
        kind=InterconnectKind.PCIE,
        peak_bus_bandwidth_gbps=10.0,
        base_latency_us=20.0,
        half_saturation_mb=0.5,
        comm_sm_count=2,
        supports_p2p=False,
    )
    return base.with_n_gpus(n_gpus)


def known_topologies() -> dict[str, Topology]:
    """Preset topologies at their default GPU counts."""
    return {
        "rtx4090-pcie": rtx4090_pcie(),
        "a800-nvlink": a800_nvlink(),
        "ascend910b-hccs": ascend_hccs(),
        "a800-2node-ib": multinode_a800(),
        "tiny-pcie": tiny_pcie(),
    }
