"""Parallel scenario sweeps: declarative matrices, fan-out execution, storage.

A sweep turns the one-off benchmark scripts into a reusable subsystem:

* :mod:`repro.sweep.matrix` -- :class:`ScenarioMatrix`, the declarative
  workload x shape x platform x settings grid, expanded into deterministic
  :class:`Scenario` jobs;
* :mod:`repro.sweep.presets` -- named matrices drawn from the workload
  models (LLM inference/training, MoE, text-to-video, Table 3 suites);
* :mod:`repro.sweep.store` -- the JSONL :class:`ResultStore` with
  resume-on-rerun;
* :mod:`repro.sweep.runner` -- :class:`SweepRunner`, fanning jobs over
  worker processes with a shared :class:`~repro.core.tuner.GemmShapeCache`
  warm start;
* :mod:`repro.sweep.aggregate` -- per-scenario and per-group speedup tables
  built on :mod:`repro.analysis`.
"""

from repro.sweep.aggregate import (
    group_summary_table,
    method_summary,
    records_to_comparisons,
    scenario_table,
    summarize_by_group,
)
from repro.sweep.matrix import Platform, Scenario, ScenarioMatrix
from repro.sweep.presets import matrix_from_preset, sweep_presets
from repro.sweep.runner import SweepRunner, SweepSummary
from repro.sweep.store import ResultStore

__all__ = [
    "Platform",
    "Scenario",
    "ScenarioMatrix",
    "matrix_from_preset",
    "sweep_presets",
    "ResultStore",
    "SweepRunner",
    "SweepSummary",
    "method_summary",
    "records_to_comparisons",
    "scenario_table",
    "group_summary_table",
    "summarize_by_group",
]
