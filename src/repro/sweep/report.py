"""Report object of one sweep run (``repro sweep`` / ``api.sweep``).

Aggregates the per-matrix :class:`~repro.sweep.runner.SweepSummary` objects
of one invocation behind the shared report protocol.  The per-job records
are deterministic (no wall-clock fields), so ``to_dict()`` is stable across
identical runs -- what the CLI/API parity tests diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import ReportMixin
from repro.sweep.aggregate import group_summary_table, scenario_table
from repro.sweep.runner import SweepSummary

__all__ = ["SweepReport"]

#: Default scenario fields of the per-group rollup.
DEFAULT_GROUP_KEYS = ("workload", "collective", "topology")


@dataclass
class SweepReport(ReportMixin):
    """Summaries + records of every matrix one sweep invocation executed."""

    summaries: list[tuple[str, SweepSummary]] = field(default_factory=list)
    group_keys: tuple[str, ...] = DEFAULT_GROUP_KEYS
    meta: dict = field(default_factory=dict)

    @property
    def records(self) -> list[dict]:
        return [record for _, summary in self.summaries for record in summary.records]

    @property
    def failed(self) -> int:
        return sum(summary.failed for _, summary in self.summaries)

    def summary_table(self) -> str:
        lines = [f"{name}: {summary.describe()}" for name, summary in self.summaries]
        records = self.records
        if records:
            lines.append("")
            lines.append(scenario_table(records, title="per-scenario results"))
            lines.append("")
            lines.append(
                group_summary_table(records, keys=self.group_keys, title="per-group summary")
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return self._with_observability({
            "meta": self.meta,
            "matrices": [
                {
                    "name": name,
                    "total_scenarios": summary.total_scenarios,
                    "executed": summary.executed,
                    "skipped": summary.skipped,
                    "failed": summary.failed,
                    "tuned": summary.tuned,
                    "cache_hits": summary.cache_hits,
                }
                for name, summary in self.summaries
            ],
            "records": self.records,
        })
