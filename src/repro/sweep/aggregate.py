"""Turn stored sweep records into the tables the paper-style analysis emits.

Bridges the sweep subsystem to :mod:`repro.analysis`: records can be lifted
back into :class:`~repro.analysis.speedup.OperatorComparison` objects (so the
existing per-method aggregation applies unchanged) and rendered with the
shared :mod:`repro.analysis.reporting` formatters.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.speedup import OperatorComparison, summarize_speedups
from repro.sweep.matrix import Scenario


def _ok(records: Iterable[dict]) -> list[dict]:
    return [r for r in records if r.get("status") == "ok"]


def records_to_comparisons(records: Iterable[dict]) -> list[OperatorComparison]:
    """Lift sweep records into the analysis layer's comparison objects.

    Records from a ``baselines=True`` sweep carry every method's speedup;
    plain records contribute the FlashOverlap-vs-non-overlap ratio only.
    """
    comparisons = []
    for record in _ok(records):
        problem = Scenario.from_dict(record["scenario"]).to_problem()
        speedups = dict(record.get("method_speedups") or {"flashoverlap": record["speedup"]})
        comparisons.append(OperatorComparison(problem=problem, speedups=speedups))
    return comparisons


def summarize_by_group(
    records: Iterable[dict], keys: tuple[str, ...] = ("workload", "collective", "topology")
) -> dict[tuple, dict[str, float]]:
    """Per-group speedup statistics over the scenario axes named by ``keys``."""
    grouped: dict[tuple, list[dict]] = {}
    for record in _ok(records):
        scenario = record["scenario"]
        grouped.setdefault(tuple(scenario[k] for k in keys), []).append(record)
    summary = {}
    for group, members in grouped.items():
        speedups = np.asarray([r["speedup"] for r in members])
        ratios = np.asarray([r["ratio_of_theoretical"] for r in members])
        summary[group] = {
            "count": int(speedups.size),
            "mean_speedup": float(speedups.mean()),
            "min_speedup": float(speedups.min()),
            "max_speedup": float(speedups.max()),
            "mean_ratio_of_theoretical": float(np.minimum(ratios, 1.0).mean()),
            "tuned": int(sum(1 for r in members if r.get("tuned"))),
        }
    return summary


def scenario_table(records: Iterable[dict], title: str | None = None) -> str:
    """Per-scenario speedup table (one row per completed job)."""
    rows = []
    for record in _ok(records):
        s = record["scenario"]
        rows.append(
            [
                record["job_id"],
                f"{s['m']}x{s['n']}x{s['k']}",
                s["collective"],
                f"{s['gpus']}x{s['device']}",
                "hit" if record.get("cache_hit") else "tune",
                record["speedup"],
                min(1.0, record["ratio_of_theoretical"]),
            ]
        )
    return format_table(
        ["job", "shape", "collective", "platform", "cache", "speedup", "of-theory"],
        rows,
        title=title,
    )


def group_summary_table(
    records: Iterable[dict],
    keys: tuple[str, ...] = ("workload", "collective", "topology"),
    title: str | None = None,
) -> str:
    """Aggregated per-group table (the Fig. 10-style rollup of a sweep)."""
    summary = summarize_by_group(records, keys)
    rows = [
        [
            "/".join(str(part) for part in group),
            stats["count"],
            stats["mean_speedup"],
            stats["min_speedup"],
            stats["max_speedup"],
            stats["mean_ratio_of_theoretical"],
        ]
        for group, stats in sorted(summary.items())
    ]
    return format_table(
        ["group", "n", "mean", "min", "max", "of-theory"], rows, title=title
    )


def method_summary(records: Iterable[dict]) -> dict[str, dict[str, float]]:
    """Per-method mean/min/max over a ``baselines=True`` sweep."""
    return summarize_speedups(records_to_comparisons(records))
