"""Fan a scenario matrix out over worker processes.

The :class:`SweepRunner` executes every :class:`~repro.sweep.matrix.Scenario`
of a matrix -- tune (or reuse a cached partition), simulate, compare against
the sequential baseline -- and appends one record per job to a
:class:`~repro.sweep.store.ResultStore`.

Determinism is a design constraint: the same matrix on 1 worker or N workers
produces identical records.  To guarantee that, every job looks partitions up
against the *initial* shape-cache snapshot (never against entries tuned by a
sibling job of the same run, whose availability would depend on scheduling);
freshly tuned entries are merged into the cache after the run, so the warm
start applies across runs, not within one.

Two caches with different scopes make a sweep fast:

* the :class:`GemmShapeCache` warm start skips tuning entirely for shapes
  close to an already-tuned entry (persisted across runs via ``cache_path``);
* the process-level offline-profile memoization
  (:meth:`repro.core.predictor.OfflineProfile.cached`) shares sampled
  bandwidth curves and offline profiles across all jobs a worker process
  executes, so cache misses only pay the candidate search, not the offline
  stage.  The in-process hit/miss counters are reported on the summary.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro import obs
from repro.analysis.speedup import compare_methods
from repro.core.baselines import NonOverlapBaseline
from repro.core.executor import OverlapExecutor
from repro.core.predictor import profile_cache_info
from repro.core.tuner import GemmShapeCache, PredictiveTuner
from repro.plans.store import PricedCellStore, plan_key
from repro.sweep.matrix import Scenario, ScenarioMatrix
from repro.sweep.store import ResultStore

#: The priced fields of one sweep record -- everything downstream of tuning
#: and simulation, all deterministic functions of the scenario content.  This
#: is what a :class:`PricedCellStore` cell carries (plus ``method_speedups``
#: when the cell was priced with baselines).
_PRICED_FIELDS = (
    "use_overlap",
    "partition",
    "candidates_evaluated",
    "overlap_latency",
    "non_overlap_latency",
    "theoretical_latency",
    "speedup",
    "ratio_of_theoretical",
)

#: Per-worker-process state, set once by :func:`_init_worker` so the shared
#: shape cache and priced-cell snapshot are deserialised per worker, not per
#: job.
_WORKER_CACHE: GemmShapeCache | None = None
_WORKER_BASELINES = False
_WORKER_PLANS: PricedCellStore | None = None


def _init_worker(cache_json: str | None, baselines: bool, plans_json: str | None) -> None:
    global _WORKER_CACHE, _WORKER_BASELINES, _WORKER_PLANS
    _WORKER_CACHE = GemmShapeCache.from_json(cache_json) if cache_json else GemmShapeCache()
    _WORKER_BASELINES = baselines
    _WORKER_PLANS = PricedCellStore.from_json(plans_json) if plans_json is not None else None


def _execute_in_worker(payload: dict) -> dict:
    return _execute_scenario(payload, _WORKER_CACHE, _WORKER_BASELINES, _WORKER_PLANS)


def _execute_scenario(
    payload: dict,
    cache: GemmShapeCache | None,
    baselines: bool,
    plans: PricedCellStore | None = None,
) -> dict:
    """Run one sweep job; module-level so worker processes can pickle it.

    ``cache`` and ``plans`` are only read, never mutated (beyond hit/miss
    counters), so the in-process path can hand in its live objects directly.
    Returns the result record; on a shape-cache miss the freshly tuned entry
    rides along under ``"cache_entry"``, and on a priced-cell miss the fresh
    cell rides along under ``"priced_cell"``, so the parent can merge both
    into the shared stores (the keys are popped before the record is stored).
    """
    scenario = Scenario.from_dict(payload)
    record: dict = {"job_id": scenario.job_id, "scenario": scenario.to_dict()}
    try:
        cell_key = plan_key(scenario.to_dict()) if plans is not None else None
        cell = plans.lookup(cell_key) if plans is not None else None
        if cell is not None and baselines and "method_speedups" not in cell:
            cell = None  # the stored cell was priced without baselines
        if cell is not None:
            # The scenario content is unchanged since the cell was priced, and
            # pricing is deterministic, so replaying the stored values is
            # bit-identical to re-simulating (the differential tests assert
            # this).  No tuner or executor work happens at all.
            if not baselines:
                cell.pop("method_speedups", None)
            record.update(cell)
            record.update(status="ok", tuned=False, cache_hit=False, priced_cell_hit=True)
            return record

        problem = scenario.to_problem()
        settings = scenario.to_settings()

        result = cache.lookup(problem, settings) if cache is not None else None
        tuned = result is None
        if tuned:
            result = PredictiveTuner(settings).tune(problem)

        executor = OverlapExecutor(problem, settings)
        if result.use_overlap:
            overlap_latency = executor.simulate(result.partition).latency
        else:
            overlap_latency = executor.simulate_sequential().latency
        non_overlap = NonOverlapBaseline(settings).latency(problem)
        theoretical = executor.theoretical_latency()

        record.update(
            status="ok",
            tuned=tuned,
            cache_hit=not tuned,
            use_overlap=result.use_overlap,
            partition=list(result.partition.group_sizes),
            candidates_evaluated=result.candidates_evaluated,
            overlap_latency=overlap_latency,
            non_overlap_latency=non_overlap,
            theoretical_latency=theoretical,
            speedup=non_overlap / overlap_latency,
            ratio_of_theoretical=theoretical / overlap_latency,
        )
        if tuned:
            fresh = GemmShapeCache()
            fresh.add(problem.shape, result)
            record["cache_entry"] = json.loads(fresh.to_json())[0]
        if baselines:
            comparison = compare_methods(problem, settings=settings)
            record["method_speedups"] = dict(comparison.speedups)
        if plans is not None:
            fresh_cell = {field: record[field] for field in _PRICED_FIELDS}
            if baselines:
                fresh_cell["method_speedups"] = record["method_speedups"]
            record["priced_cell"] = {"key": cell_key, "cell": fresh_cell}
    except Exception as error:  # noqa: BLE001 - a failed job must not kill the sweep
        record.update(
            status="error",
            error=f"{type(error).__name__}: {error}",
            traceback=traceback.format_exc(),
        )
    return record


@dataclass
class SweepSummary:
    """What one :meth:`SweepRunner.run` call did."""

    total_scenarios: int
    executed: int
    skipped: int
    failed: int
    tuned: int
    cache_hits: int
    #: Jobs replayed wholesale from the priced-cell store (no tuner or
    #: executor work; 0 when no store is attached).
    priced_hits: int = 0
    #: Jobs that needed more than one attempt (crashed worker, raised error).
    retried: int = 0
    #: Jobs that exhausted their retry budget and were stored as ``failed``.
    quarantined: int = 0
    records: list[dict] = field(default_factory=list)
    #: Offline-profile memoization counters of *this* process (worker
    #: processes keep their own caches; None when nothing ran in-process).
    profile_cache: dict | None = None

    def describe(self) -> str:
        text = (
            f"{self.executed}/{self.total_scenarios} jobs executed "
            f"({self.skipped} resumed, {self.cache_hits} cache hits, "
            f"{self.tuned} tuned, {self.failed} failed)"
        )
        if self.priced_hits:
            text += f"; {self.priced_hits} replayed from the priced-cell store"
        if self.retried or self.quarantined:
            text += f"; {self.retried} retried, {self.quarantined} quarantined"
        return text


class _Heartbeat:
    """Periodic progress lines for a running sweep.

    A daemon thread wakes every ``interval_s`` seconds and emits one
    ``[sweep] done/total`` line with retry/quarantine counts and an ETA
    extrapolated from the mean per-job wall time so far.  The counts mirror
    the ``sweep.*`` observability counters (the runner increments both from
    the same completion path); ``emit`` is injectable so tests can capture
    lines without a real clock cadence.
    """

    def __init__(self, total: int, interval_s: float, emit=None) -> None:
        self.total = total
        self.interval_s = interval_s
        self.emit = emit if emit is not None else self._print
        self.done = 0
        self.retried = 0
        self.quarantined = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._start_s = obs.now()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    @staticmethod
    def _print(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    def job_done(self, record: dict) -> None:
        with self._lock:
            self.done += 1
            if record.get("attempts", 1) > 1:
                self.retried += 1
            if record.get("status") == "failed":
                self.quarantined += 1

    def line(self) -> str:
        with self._lock:
            done, retried, quarantined = self.done, self.retried, self.quarantined
        elapsed = obs.now() - self._start_s
        remaining = self.total - done
        text = (
            f"[sweep] {done}/{self.total} jobs, "
            f"{retried} retried, {quarantined} quarantined"
        )
        if 0 < done < self.total:
            text += f", ETA {elapsed / done * remaining:.1f}s"
        elif done >= self.total:
            text += f", done in {elapsed:.1f}s"
        return text

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.emit(self.line())

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self.emit(self.line())


class SweepRunner:
    """Execute a scenario matrix and persist per-job records.

    Parameters
    ----------
    store:
        JSONL result store; completed job IDs in it are skipped when
        ``resume`` is set.
    workers:
        Number of worker processes.  ``workers <= 1`` runs in-process, which
        by construction produces the same records as any worker count.
    cache:
        Shape-cache warm start.  Lookups hit this snapshot; fresh tunes are
        merged back after the run (and written to ``cache_path`` if given).
    baselines:
        Also evaluate every baseline method per scenario (slower; feeds the
        per-method aggregation of :mod:`repro.analysis.speedup`).
    plan_store:
        Content-addressed :class:`PricedCellStore`: jobs whose scenario
        content matches a stored cell replay the priced values instead of
        re-simulating (see :mod:`repro.plans.store`).  Workers receive the
        initial snapshot once at pool-init time; freshly priced cells are
        merged back after the run (and written to ``plan_store_path`` if
        given).  ``plan_store_path`` alone loads/creates the store at that
        path.
    max_retries:
        How many extra attempts a job whose execution *raised* (crashed
        worker process, broken pool) gets, with exponential backoff, before
        it is quarantined as a ``failed`` record.  Errors caught inside the
        job keep producing ``error`` records without retries -- they are
        deterministic and would fail again.
    heartbeat_s:
        Emit a ``[sweep] done/total`` progress line (with retry/quarantine
        counts and an ETA) every ``heartbeat_s`` seconds while jobs run.
        ``0`` (the default) disables the heartbeat.  ``heartbeat_emit``
        overrides the line sink (default: stderr) -- tests inject a list
        appender.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        resume: bool = False,
        cache: GemmShapeCache | None = None,
        cache_path: str | None = None,
        baselines: bool = False,
        plan_store: PricedCellStore | None = None,
        plan_store_path: str | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        heartbeat_s: float = 0.0,
        heartbeat_emit=None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if heartbeat_s < 0:
            raise ValueError("heartbeat_s must be >= 0")
        self.store = store
        self.workers = workers
        self.resume = resume
        self.cache = cache if cache is not None else GemmShapeCache()
        self.cache_path = cache_path
        self.baselines = baselines
        if plan_store is None and plan_store_path is not None:
            plan_store = PricedCellStore.load(plan_store_path, missing_ok=True)
        self.plan_store = plan_store
        self.plan_store_path = plan_store_path
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.heartbeat_s = heartbeat_s
        self.heartbeat_emit = heartbeat_emit

    def run(self, matrix: ScenarioMatrix | list[Scenario]) -> SweepSummary:
        name = matrix.name if isinstance(matrix, ScenarioMatrix) else None
        with obs.span("sweep.run", matrix=name):
            return self._run(matrix)

    def _run(self, matrix: ScenarioMatrix | list[Scenario]) -> SweepSummary:
        scenarios = matrix.expand() if isinstance(matrix, ScenarioMatrix) else list(matrix)
        completed = self.store.completed_ids() if self.resume else set()
        pending = [s for s in scenarios if s.job_id not in completed]

        heartbeat = (
            _Heartbeat(len(pending), self.heartbeat_s, self.heartbeat_emit)
            if self.heartbeat_s > 0 and pending
            else None
        )
        try:
            if self.workers > 1 and pending:
                cache_json = self.cache.to_json() if len(self.cache) else None
                plans_json = (
                    self.plan_store.to_json() if self.plan_store is not None else None
                )
                records = self._run_pool(pending, cache_json, plans_json, heartbeat)
            else:
                # The cache is read-only during job execution (merges happen
                # afterwards), so the live object can be shared directly.
                records = []
                for scenario in pending:
                    with obs.span("sweep.job", job_id=scenario.job_id):
                        record = self._attempt_with_retries(scenario)
                    self._account(record, heartbeat)
                    records.append(record)
        finally:
            if heartbeat is not None:
                heartbeat.stop()

        # Deterministic store order regardless of worker completion order.
        by_id = {record["job_id"]: record for record in records}
        ordered = [by_id[s.job_id] for s in pending]
        for record in ordered:
            entry = record.pop("cache_entry", None)
            if entry is not None:
                self._merge_cache_entry(entry)
            priced = record.pop("priced_cell", None)
            if priced is not None and self.plan_store is not None:
                self.plan_store.add(priced["key"], priced["cell"])
            self.store.append(record)

        if self.cache_path is not None:
            self.cache.save(self.cache_path)
        if self.plan_store is not None and self.plan_store_path is not None:
            self.plan_store.save(self.plan_store_path)

        failed = sum(1 for r in ordered if r.get("status") != "ok")
        quarantined = sum(1 for r in ordered if r.get("status") == "failed")
        profile_cache = profile_cache_info() if self.workers <= 1 and pending else None
        if profile_cache is not None:
            for key, value in profile_cache.items():
                obs.gauge(f"profile_cache.{key}").set(value)
        if quarantined and obs.enabled():
            # Preserve the recent span/event history for post-mortem: the
            # quarantined jobs' retry trail is exactly what the flight
            # recorder buffered.
            obs.dump_flight(f"{self.store.path}.flight.jsonl")
        return SweepSummary(
            total_scenarios=len(scenarios),
            executed=len(ordered),
            skipped=len(scenarios) - len(pending),
            failed=failed,
            tuned=sum(1 for r in ordered if r.get("tuned")),
            cache_hits=sum(1 for r in ordered if r.get("cache_hit")),
            priced_hits=sum(1 for r in ordered if r.get("priced_cell_hit")),
            retried=sum(1 for r in ordered if r.get("attempts", 1) > 1),
            quarantined=quarantined,
            records=ordered,
            profile_cache=profile_cache,
        )

    def _account(self, record: dict, heartbeat: _Heartbeat | None) -> None:
        """Post one finished job to the registry (and the heartbeat)."""
        obs.counter("sweep.jobs_done").inc()
        if record.get("cache_hit"):
            obs.counter("sweep.cache_hits").inc()
        if record.get("priced_cell_hit"):
            obs.counter("sweep.priced_cell_hits").inc()
        if record.get("tuned"):
            obs.counter("sweep.tuned").inc()
        if record.get("attempts", 1) > 1:
            obs.counter("sweep.retried").inc()
        if record.get("status") == "failed":
            obs.counter("sweep.quarantined").inc()
            obs.event("sweep.quarantine", job_id=record["job_id"],
                      error=record.get("error", ""))
        if heartbeat is not None:
            heartbeat.job_done(record)

    def _attempt_with_retries(self, scenario: Scenario, already_failed: int = 0) -> dict:
        """Run one job in-process, retrying *raised* failures with backoff.

        ``_execute_scenario`` catches in-job errors itself (those records come
        back as ``status="error"`` and are not retried -- rerunning a
        deterministic failure cannot help).  A raise from the execution
        machinery is the in-process analog of a crashed worker: the job is
        retried up to ``max_retries`` times with exponential backoff, then
        quarantined as a ``failed`` record carrying the traceback.
        ``already_failed`` counts prior attempts (crashed pool jobs) so the
        stored attempt count reflects the whole history.
        """
        last_traceback = ""
        last_error = ""
        for attempt in range(self.max_retries + 1 - already_failed):
            if attempt and self.retry_backoff_s:
                time.sleep(self.retry_backoff_s * 2 ** (attempt - 1))
            try:
                # The 4th argument is only passed when a store is attached, so
                # tests (and callers) stubbing the 3-argument execution hook
                # keep working unchanged.
                if self.plan_store is not None:
                    record = _execute_scenario(
                        scenario.to_dict(), self.cache, self.baselines, self.plan_store
                    )
                else:
                    record = _execute_scenario(scenario.to_dict(), self.cache, self.baselines)
            except Exception as error:  # noqa: BLE001 - crash analog, retried
                last_error = f"{type(error).__name__}: {error}"
                last_traceback = traceback.format_exc()
                continue
            total_attempts = already_failed + attempt + 1
            if total_attempts > 1:
                record["attempts"] = total_attempts
            return record
        return {
            "job_id": scenario.job_id,
            "scenario": scenario.to_dict(),
            "status": "failed",
            "error": last_error or "worker process crashed",
            "traceback": last_traceback,
            "attempts": self.max_retries + 1,
        }

    def _run_pool(
        self,
        pending: list[Scenario],
        cache_json: str | None,
        plans_json: str | None = None,
        heartbeat: _Heartbeat | None = None,
    ) -> list[dict]:
        records: list[dict] = []
        crashed: list[Scenario] = []
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(cache_json, self.baselines, plans_json),
        ) as pool:
            futures = {pool.submit(_execute_in_worker, s.to_dict()): s for s in pending}
            for future in as_completed(futures):
                try:
                    record = future.result()
                except Exception:  # noqa: BLE001 - crashed worker / broken pool
                    crashed.append(futures[future])
                    continue
                self._account(record, heartbeat)
                records.append(record)
        # A worker crash (or a broken pool) lost these jobs; retry them
        # in-process, where the remaining budget and quarantine apply.
        for scenario in crashed:
            with obs.span("sweep.job", job_id=scenario.job_id, crashed_in_pool=True):
                record = self._attempt_with_retries(scenario, already_failed=1)
            self._account(record, heartbeat)
            records.append(record)
        return records

    def _merge_cache_entry(self, entry: dict) -> None:
        merged = GemmShapeCache.from_json(json.dumps([entry]))
        self.cache.entries.extend(merged.entries)
