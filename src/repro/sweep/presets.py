"""Named scenario matrices drawn from the workload models.

Each preset turns one workload family (dense LLM inference/training, MoE
expert parallelism, text-to-video DiT, the Table 3 operator suites) into a
:class:`~repro.sweep.matrix.ScenarioMatrix` whose GEMM shapes come from the
same model configurations the end-to-end benchmarks use, so a sweep covers
the shapes that actually occur in those workloads rather than an arbitrary
grid.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.comm.primitives import CollectiveKind
from repro.gpu.gemm import GemmShape
from repro.sweep.matrix import Platform, ScenarioMatrix
from repro.workloads.llm import LLAMA3_70B, ModelConfig
from repro.workloads.moe import MIXTRAL_8X7B, MoEConfig
from repro.workloads.shapes import operator_suite
from repro.workloads.t2v import STEP_VIDEO_T2V, DiTConfig

A800_NODE = Platform(device="a800", topology="a800-nvlink", gpus=4)
A800_NODE_8 = Platform(device="a800", topology="a800-nvlink", gpus=8)
RTX4090_NODE = Platform(device="rtx4090", topology="rtx4090-pcie", gpus=4)


def _row_parallel_shapes(model: ModelConfig, tokens: tuple[int, ...], tp: int) -> list[GemmShape]:
    """The row-parallel projections followed by a collective under TP."""
    shapes = []
    for t in tokens:
        shapes.append(GemmShape(m=t, n=model.hidden_size, k=model.hidden_size // tp))
        shapes.append(GemmShape(m=t, n=model.hidden_size, k=model.intermediate_size // tp))
    return shapes


def llm_inference_matrix(
    model: ModelConfig = LLAMA3_70B,
    tokens: tuple[int, ...] = (2048, 4096),
    tp: int = 4,
) -> ScenarioMatrix:
    """GEMM+AllReduce pairs of dense-LLM TP inference (attn-out, mlp-down)."""
    return ScenarioMatrix.build(
        name=f"llm-inference-{model.name.lower()}",
        workload="llm-inference",
        shapes=_row_parallel_shapes(model, tokens, tp),
        platforms=[Platform(device="a800", topology="a800-nvlink", gpus=tp)],
        collectives=["allreduce"],
    )


def llm_training_matrix(
    model: ModelConfig = LLAMA3_70B,
    tokens: tuple[int, ...] = (4096,),
    tp: int = 4,
) -> ScenarioMatrix:
    """GEMM+ReduceScatter pairs of TP training: forward row-parallel + wgrad."""
    shapes = _row_parallel_shapes(model, tokens, tp)
    for t in tokens:
        shapes.append(GemmShape(m=model.hidden_size, n=model.hidden_size // tp, k=t))
        shapes.append(GemmShape(m=model.intermediate_size // tp, n=model.hidden_size, k=t))
    return ScenarioMatrix.build(
        name=f"llm-training-{model.name.lower()}",
        workload="llm-training",
        shapes=shapes,
        platforms=[Platform(device="a800", topology="a800-nvlink", gpus=tp)],
        collectives=["reducescatter"],
    )


def moe_alltoall_matrix(
    model: MoEConfig = MIXTRAL_8X7B,
    tokens: tuple[int, ...] = (4096, 8192),
    ep: int = 4,
    imbalances: tuple[float, ...] = (1.0, 1.15, 1.3),
) -> ScenarioMatrix:
    """Expert down-projection + All-to-All under imbalanced routing."""
    shapes = [
        GemmShape(
            m=t * model.top_k // ep,
            n=model.hidden_size,
            k=model.expert_intermediate_size,
        )
        for t in tokens
    ]
    return ScenarioMatrix.build(
        name=f"moe-alltoall-{model.name.lower()}",
        workload="moe-alltoall",
        shapes=shapes,
        platforms=[Platform(device="a800", topology="a800-nvlink", gpus=ep)],
        collectives=["alltoall"],
        imbalances=imbalances,
    )


def t2v_matrix(
    config: DiTConfig = STEP_VIDEO_T2V,
    tokens: tuple[int, ...] = (20480, 30720),
    tp: int = 4,
) -> ScenarioMatrix:
    """Long-sequence DiT blocks: the largest GEMM+AR share of the paper."""
    return ScenarioMatrix.build(
        name=f"t2v-{config.name.lower()}",
        workload="t2v",
        shapes=_row_parallel_shapes(config.dense, tokens, tp),
        platforms=[Platform(device="a800", topology="a800-nvlink", gpus=tp)],
        collectives=["allreduce"],
    )


def table3_matrix(collective: str = "allreduce", device_family: str = "rtx4090") -> ScenarioMatrix:
    """Reduced grid over the Table 3 operator-level range for one pair."""
    kind = CollectiveKind.from_name(collective)
    suite = operator_suite(kind, device_family, mn_points=3, k_points=2)
    platform = RTX4090_NODE if device_family == "rtx4090" else A800_NODE
    return ScenarioMatrix.build(
        name=suite.name,
        workload=f"table3-{device_family}",
        shapes=list(suite),
        platforms=[platform],
        collectives=[collective],
    )


def serving_matrix(
    rate_rps: float = 32.0,
    model: ModelConfig = LLAMA3_70B,
    tp: int = 4,
    num_requests: int = 48,
    max_batch_tokens: int = 4096,
    max_batch_size: int = 32,
    distribution: str = "chat",
    seed: int = 0,
) -> ScenarioMatrix:
    """GEMM+AllReduce pairs that continuous batching produces at one arrival rate.

    A dry scheduler run over seeded Poisson traffic yields every iteration's
    batched token count; the distinct power-of-two buckets become the ``M``
    axis of the matrix (with the row-parallel N/K of the served model), so a
    sweep over ``serving-rate*`` presets grids the tuner over exactly the
    shapes online serving would request at those arrival rates.
    """
    from repro.serve import (
        PoissonArrivals,
        bucket_tokens,
        distribution_by_name,
        iteration_gemm_shapes,
        profile_iteration_tokens,
    )

    requests = PoissonArrivals(
        rate_rps=rate_rps,
        distribution=distribution_by_name(distribution),
        seed=seed,
        num_requests=num_requests,
    ).generate()
    tokens = profile_iteration_tokens(
        requests, max_batch_tokens=max_batch_tokens, max_batch_size=max_batch_size
    )
    buckets = sorted({bucket_tokens(t) for t in tokens})
    shapes = [shape for b in buckets for shape in iteration_gemm_shapes(b, model, tp)]
    return ScenarioMatrix.build(
        name=f"serving-rate{rate_rps:g}",
        workload=f"serving-rate{rate_rps:g}",
        shapes=shapes,
        platforms=[Platform(device="a800", topology="a800-nvlink", gpus=tp)],
        collectives=["allreduce"],
    )


def e2e_matrix(
    workload: str,
    tokens: tuple[int, ...],
    collective: str,
    tp: int | None = None,
    name: str | None = None,
) -> ScenarioMatrix:
    """Overlap-target shapes of an end-to-end workload across input sizes.

    Builds the registry workload (one layer) at every token count, collects
    the distinct GEMM shapes whose following collective matches
    ``collective``, and grids them on the workload's own platform -- so a
    sweep covers exactly the operators ``repro e2e`` estimates.  ``tp``
    overrides the tensor-parallel degree by rescaling the sharded dimension,
    which is how the ``e2e-*-tp*`` presets scan TP degrees.
    """
    from repro.workloads.e2e import build_workload

    kind = CollectiveKind.from_name(collective)
    shapes: list[GemmShape] = []
    imbalances: set[float] = set()
    gpus = None
    for t in tokens:
        built = build_workload(workload, tokens=t, layers=1)
        for op in built.operators:
            if op.problem is None or op.problem.collective is not kind:
                continue
            shape = op.problem.shape
            if tp is not None:
                # Rescale the TP-sharded accumulation depth to the target degree.
                native_tp = op.problem.n_gpus
                shape = GemmShape(m=shape.m, n=shape.n, k=max(1, shape.k * native_tp // tp))
            if shape not in shapes:
                shapes.append(shape)
            imbalances.add(round(op.problem.imbalance, 4))
            gpus = tp if tp is not None else op.problem.n_gpus
    if not shapes or gpus is None:
        raise ValueError(
            f"workload {workload!r} has no overlap target followed by {collective!r}"
        )
    return ScenarioMatrix.build(
        name=name or f"e2e-{workload}",
        workload=f"e2e-{workload}",
        shapes=shapes,
        platforms=[Platform(device="a800", topology="a800-nvlink", gpus=gpus)],
        collectives=[collective],
        imbalances=sorted(imbalances) or (1.0,),
    )


def smoke_matrix() -> ScenarioMatrix:
    """Small-but-wide matrix for CI and tests: 12 cheap scenarios.

    Shapes are tiny so one scenario costs milliseconds, yet the matrix still
    spans two platforms and two collectives (the axes CI wants covered).
    """
    return ScenarioMatrix.build(
        name="smoke",
        workload="smoke",
        shapes=[(512, 1024, 1024), (1024, 2048, 1024), (2048, 2048, 2048)],
        platforms=[RTX4090_NODE, A800_NODE],
        collectives=["allreduce", "reducescatter"],
    )


_PRESETS: dict[str, Callable[[], ScenarioMatrix]] = {
    "smoke": smoke_matrix,
    "llm-inference": llm_inference_matrix,
    "llm-training": llm_training_matrix,
    "moe-alltoall": moe_alltoall_matrix,
    "t2v": t2v_matrix,
    "table3-ar-rtx4090": lambda: table3_matrix("allreduce", "rtx4090"),
    "table3-rs-a800": lambda: table3_matrix("reducescatter", "a800"),
    "table3-a2a-a800": lambda: table3_matrix("alltoall", "a800"),
    # Serving traffic at increasing arrival rates: sweep several presets
    # together (``--preset serving-rate8 --preset serving-rate32 ...``) to
    # grid the tuner over the shapes online serving produces under load.
    "serving-rate8": lambda: serving_matrix(rate_rps=8.0),
    "serving-rate32": lambda: serving_matrix(rate_rps=32.0),
    "serving-rate128": lambda: serving_matrix(rate_rps=128.0),
    # End-to-end workload scans: the exact overlap-target shapes `repro e2e`
    # estimates, gridded over chunk sizes (``-chunks``) or tensor-parallel
    # degrees (``-tp*``); sweep several presets together to scan both.
    "e2e-llama3-chunks": lambda: e2e_matrix(
        "llama3-inference", tokens=(4096, 8192, 16384), collective="allreduce",
        name="e2e-llama3-chunks"),
    "e2e-llama3-tp2": lambda: e2e_matrix(
        "llama3-inference", tokens=(16384,), collective="allreduce", tp=2,
        name="e2e-llama3-tp2"),
    "e2e-llama3-tp4": lambda: e2e_matrix(
        "llama3-inference", tokens=(16384,), collective="allreduce", tp=4,
        name="e2e-llama3-tp4"),
    "e2e-llama3-tp8": lambda: e2e_matrix(
        "llama3-inference", tokens=(16384,), collective="allreduce", tp=8,
        name="e2e-llama3-tp8"),
    "e2e-mixtral-a2a": lambda: e2e_matrix(
        "mixtral-training", tokens=(16384, 32768), collective="alltoall",
        name="e2e-mixtral-a2a"),
    "e2e-step-video-chunks": lambda: e2e_matrix(
        "step-video", tokens=(16896, 33792), collective="allreduce",
        name="e2e-step-video-chunks"),
    # Pipeline-parallel scans: `repro pp` splits the paper input into
    # microbatches, so the microbatch count is the axis that changes the
    # tuned GEMM shapes (stage count and schedule choice re-price the same
    # shapes and share plans).  Each preset grids the overlap targets at the
    # microbatch token counts of M in {2, 4, 8} (llama3 trains on 16384
    # tokens, mixtral on 32768), warming the shape cache for pp runs across
    # any stage count x microbatch count x schedule combination.
    "pp-llama3-microbatches": lambda: e2e_matrix(
        "llama3-training", tokens=(2048, 4096, 8192), collective="reducescatter",
        name="pp-llama3-microbatches"),
    "pp-mixtral-microbatches": lambda: e2e_matrix(
        "mixtral-training", tokens=(4096, 8192, 16384), collective="alltoall",
        name="pp-mixtral-microbatches"),
    "pp-step-video-microbatches": lambda: e2e_matrix(
        "step-video", tokens=(4224, 8448, 16896), collective="allreduce",
        name="pp-step-video-microbatches"),
}


def sweep_presets() -> dict[str, Callable[[], ScenarioMatrix]]:
    """The named preset registry (name -> matrix factory)."""
    return dict(_PRESETS)


def matrix_from_preset(name: str) -> ScenarioMatrix:
    """Instantiate a named preset matrix."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown sweep preset {name!r}; known: {sorted(_PRESETS)}") from None
    return factory()
